"""F1 — Figure 1 operationalized: devices per human vs mission throughput.

The paper's Figure 1 shows many devices under one human's command
collaboratively executing tasks, with the human only issuing high-level
commands.  This bench sweeps the fleet size per operator and reports
mission throughput (dispatch completions) and how many interventions the
human made — with and without generative policy management (without it,
drones lack the peer-bound dispatch policies, so cross-device collaboration
collapses).

Shape expectation: tasks completed grows with fleet size; generative
management completes dispatches where static builtin policies do not
(their generic call_support has no addressee); human interventions per
device stay flat (the self-management claim).
"""

import pytest

from repro.scenarios.harness import ExperimentTable, SafeguardConfig
from repro.scenarios.peacekeeping import PeacekeepingScenario

HORIZON = 150.0


def run_fleet(n_per_org: int, generative: bool, seed: int = 1) -> dict:
    scenario = PeacekeepingScenario(
        seed=seed,
        config=SafeguardConfig.full(),
        n_drones_per_org=n_per_org,
        n_mules_per_org=max(1, n_per_org // 2),
        n_civilians=20,
        convoy_interval=8.0,
        generative=generative,
    )
    return scenario.run(until=HORIZON)


@pytest.mark.parametrize("n_per_org", [2, 4, 8])
def test_f1_fleet_scaling(benchmark, experiment, n_per_org):
    result = benchmark.pedantic(
        run_fleet, args=(n_per_org, True), rounds=1, iterations=1,
    )
    table = ExperimentTable(
        f"F1 fleet scaling (drones/org={n_per_org}, horizon={HORIZON:g})",
        ["management", "devices", "convoys intercepted", "convoys escaped",
         "human interventions", "interventions/device"],
    )
    for label, generative in (("generative", True), ("static builtin", False)):
        row = result if generative else run_fleet(n_per_org, False)
        n_devices = 2 * (n_per_org + max(1, n_per_org // 2))
        table.add_row(
            label, n_devices, row["convoys_intercepted"],
            row["convoys_escaped"], row["human_interventions"],
            round(row["human_interventions"] / n_devices, 2),
        )
    experiment(table)

    generative_row = table.rows[0]
    static_row = table.rows[1]
    # Generative management physically intercepts convoys; static builtin
    # policies (no peer-bound dispatch) let them escape.
    assert generative_row[2] > 0
    assert generative_row[2] >= static_row[2]


def test_f1_dispatches_grow_with_fleet(experiment, benchmark):
    sizes = [2, 4, 8]
    results = {size: run_fleet(size, True) for size in sizes}
    benchmark.pedantic(run_fleet, args=(2, True), rounds=1, iterations=1)
    table = ExperimentTable(
        "F1 mission throughput vs fleet size (generative, full safeguards)",
        ["drones/org", "devices", "convoys intercepted", "actions executed"],
    )
    for size in sizes:
        n_devices = 2 * (size + max(1, size // 2))
        table.add_row(size, n_devices, results[size]["convoys_intercepted"],
                      results[size]["actions_executed"])
    experiment(table)
    # More devices, more total activity.
    assert (results[8]["actions_executed"] > results[2]["actions_executed"])
