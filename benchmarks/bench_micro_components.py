"""Micro-benchmarks of the core primitives.

Not tied to a paper figure — these keep the substrate honest: condition
parsing/evaluation, policy selection at scale, robust aggregation, audit
chain append+verify, bounded reachability, and state estimation all get
real multi-round timings so regressions surface in CI.
"""


from repro.audit.log import AuditLog
from repro.core.actions import Action, Effect
from repro.core.conditions import parse_condition
from repro.core.events import Event
from repro.core.policy import Policy, PolicySet
from repro.sim.rng import SeededRNG
from repro.statespace.classifier import BoxClassifier, BoxRegion
from repro.statespace.estimation import NoisyChannel, StateEstimator
from repro.statespace.reachability import ReachabilityAnalyzer
from repro.trust.aggregation import IterativeFilteringAggregator, SensorReading


def test_condition_parse(benchmark):
    text = "temp > 80 and mode == 'patrol' or not (fuel < 10)"
    condition = benchmark(parse_condition, text)
    assert condition.evaluate({"temp": 90.0, "mode": "idle", "fuel": 50.0})


def test_condition_eval(benchmark):
    condition = parse_condition("temp > 80 and fuel > 10 and mode == 'patrol'")
    state = {"temp": 90.0, "fuel": 50.0, "mode": "patrol"}
    result = benchmark(condition.evaluate, state)
    assert result


def test_policy_selection_1000_policies(benchmark):
    policies = PolicySet()
    for index in range(1000):
        policies.add(Policy.make(
            f"net.topic{index % 50}", "temp > 1000",
            Action(f"a{index}", "m"), policy_id=f"p{index}",
        ))
    policies.add(Policy.make("timer", None, Action("live", "m"),
                             policy_id="live", priority=1))
    event = Event(kind="timer.tick")
    winner = benchmark(policies.select, event, {"temp": 20.0})
    assert winner.policy_id == "live"


def test_iterative_filtering_round(benchmark):
    rng = SeededRNG(seed=3).stream("bench")
    readings = [SensorReading(f"s{i}", 50.0 + rng.gauss(0, 0.5))
                for i in range(20)]
    readings += [SensorReading(f"evil{i}", 500.0) for i in range(5)]
    aggregator = IterativeFilteringAggregator()
    estimate = benchmark(aggregator.aggregate, readings)
    assert abs(estimate - 50.0) < 2.0


def test_audit_append(benchmark):
    log = AuditLog()

    def append():
        log.append(1.0, "breakglass.used", "dev1", {"grant_id": 1})

    benchmark(append)
    assert log.verify()


def test_audit_verify_1000_entries(benchmark):
    log = AuditLog()
    for index in range(1000):
        log.append(float(index), "kind", "subject", {"n": index})
    assert benchmark(log.verify)


def test_reachability_explore(benchmark):
    classifier = BoxClassifier(
        good=[BoxRegion.make("g", x=(0, 50), y=(0, 50))],
        bad=[BoxRegion.make("b", x=(90, None))],
    )
    actions = [
        Action(f"move{dx}{dy}", "m",
               effects=[Effect("x", "add", float(dx)),
                        Effect("y", "add", float(dy))])
        for dx in (-5, 5) for dy in (-5, 5)
    ]
    analyzer = ReachabilityAnalyzer(actions, classifier, max_states=2000)
    root = benchmark(analyzer.explore, {"x": 25.0, "y": 25.0}, 4)
    assert root.children


def test_state_estimator_update(benchmark):
    rng = SeededRNG(seed=5).stream("bench")
    channel = NoisyChannel(rng, noise_sigma=1.0)
    estimator = StateEstimator()
    truth = {"temp": 60.0, "fuel": 40.0, "altitude": 100.0}

    def update():
        estimator.update(channel.observe(truth))

    benchmark(update)
    assert abs(estimator.get("temp") - 60.0) < 10.0


def test_event_queue_push_pop_throughput(benchmark):
    from repro.sim.event_queue import EventQueue

    def churn():
        queue = EventQueue()
        for index in range(2000):
            queue.push(float(index % 97), lambda: None, label="bench:evt")
        drained = 0
        while queue.pop_until(100.0) is not None:
            drained += 1
        return drained

    assert benchmark(churn) == 2000


def test_simulator_event_loop_throughput(benchmark):
    """The tentpole fast path: tuple-heap pop_until + slots payloads,
    tracing off, no profiler — pure run-loop overhead per event."""
    from repro.sim.simulator import Simulator

    def spin(n_events):
        sim = Simulator(seed=1, trace_enabled=False)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < n_events:
                sim.schedule(0.001, tick, label="bench:tick")

        sim.schedule(0.001, tick, label="bench:tick")
        sim.run()
        return count[0]

    assert benchmark(spin, 5000) == 5000


def test_simulator_loop_profiled_overhead(benchmark):
    from repro.sim.profiling import profile_run
    from repro.sim.simulator import Simulator

    def spin(n_events):
        sim = Simulator(seed=1, trace_enabled=False)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < n_events:
                sim.schedule(0.001, tick, label="bench:tick")

        sim.schedule(0.001, tick, label="bench:tick")
        with profile_run(sim) as profiler:
            sim.run()
        assert profiler.per_label["bench:tick"][0] == n_events
        return count[0]

    assert benchmark(spin, 2000) == 2000
