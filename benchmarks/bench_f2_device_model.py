"""F2 — Figure 2 operationalized: the event->logic->action loop, timed.

The abstract device model's cost centre is the logic box: match the event
against the policy set, run the guard chain, fire the actuator.  This
bench measures events/second through a device engine as the policy count
grows, with and without the guard chain.

Shape expectation: the policy set is indexed by event-pattern root, so
throughput stays within a small factor across a 500x growth in *irrelevant*
policies (the filler rules live under a different event root); the guard
chain adds a bounded constant factor, not an asymptotic penalty.
"""

import os

import pytest

from repro.core.events import Event
from repro.core.policy import Policy
from repro.safeguards.statespace import StateSpaceGuard
from repro.scenarios.harness import ExperimentTable
from repro.scenarios.sweep import run_sweep
from repro.statespace.classifier import ThresholdBand, ThresholdClassifier

from tests.conftest import make_test_device


def build_device(n_policies: int, guarded: bool):
    device = make_test_device("bench")
    for index in range(n_policies):
        # Non-matching filler policies force a realistic scan.
        device.engine.policies.add(Policy.make(
            f"net.topic{index}", "temp > 1000",
            device.engine.actions.get("cool_down"),
            policy_id=f"filler{index}",
        ))
    device.engine.policies.add(Policy.make(
        "timer", "temp < 1000", device.engine.actions.get("burn_fuel"),
        policy_id="live", priority=1,
    ))
    if guarded:
        device.engine.add_safeguard(StateSpaceGuard(ThresholdClassifier([
            ThresholdBand("temp", safe_high=140.0, hard_high=149.0),
            ThresholdBand("fuel", safe_low=-1.0, hard_low=-2.0),
        ])))
    return device


def drive(device, n_events: int = 200) -> int:
    acted = 0
    for index in range(n_events):
        decision = device.deliver(Event(kind="timer.tick", time=float(index)))
        if decision.acted:
            acted += 1
        device.state.set("fuel", 100.0)   # refuel so the loop never stalls
    return acted


def f2_cell(n_policies: int, guarded: bool, n_events: int = 500) -> int:
    """One summary-table cell: events/sec through a fresh device.

    Module-level so the sweep executor can ship it to worker processes.
    """
    import time

    device = build_device(n_policies, guarded)
    start = time.perf_counter()
    drive(device, n_events=n_events)
    elapsed = time.perf_counter() - start
    return int(n_events / elapsed)


@pytest.mark.parametrize("n_policies", [1, 10, 100, 500])
@pytest.mark.parametrize("guarded", [False, True])
def test_f2_engine_throughput(benchmark, n_policies, guarded):
    device = build_device(n_policies, guarded)
    acted = benchmark(drive, device)
    assert acted > 0


def test_f2_summary_table(experiment, benchmark):
    table = ExperimentTable(
        "F2 device-model loop: events/sec vs policy count",
        ["policies", "guard chain", "events/sec"],
    )
    cells = [(n_policies, guarded)
             for n_policies in (1, 10, 100, 500)
             for guarded in (False, True)]
    rates = run_sweep(f2_cell, cells)
    for (n_policies, guarded), rate in zip(cells, rates):
        table.add_row(n_policies, "on" if guarded else "off", rate)
    experiment(table)
    benchmark.pedantic(drive, args=(build_device(10, True), 100),
                       rounds=1, iterations=1)
    rates = table.column("events/sec")
    assert all(rate > 0 for rate in rates)
    if os.environ.get("F2_COUNT_ONLY", "") in ("", "0"):
        # Wall-clock floor — skipped under F2_COUNT_ONLY=1 (CI perf smoke
        # on shared runners), where only deterministic counts are checked.
        assert min(rates) > 100   # even worst case remains usable


def test_f2_deterministic_action_counts():
    """Count-based invariant for CI: the number of *acted* decisions is a
    pure function of the cell, independent of machine speed.  The live
    policy fires on every tick (fuel is refilled each iteration), guarded
    or not — so a perf regression can't hide behind a flaky rate floor
    and a behaviour regression can't hide behind timing noise."""
    for n_policies in (1, 100):
        for guarded in (False, True):
            device = build_device(n_policies, guarded)
            assert drive(device, n_events=300) == 300
