"""E7 — sec IV adversarial machine learning: poisoning and its defenses.

Two sweeps:

1. **Training-data poisoning** (label flips at rate p): accuracy of a
   policy-relevant classifier trained raw vs trained through the
   sanitization pipeline (MAD outlier filter + trusted-seed label
   screening) — the counter-measures the paper says "enable machines to
   exclude selected training data from consideration".
2. **Sensor collusion** (deception, ref [13]): estimation error of the
   plain mean vs trimmed mean vs iterative filtering as the colluding
   fraction grows.

Shape expectations: raw training accuracy degrades steeply with p while
sanitized training stays flat; the mean's error grows linearly with the
colluder fraction while iterative filtering stays near zero until the
colluders approach half the sources.
"""

import pytest

from repro.attacks.deception import SensorDeceptionAttack, make_reading_provider
from repro.attacks.poisoning import PoisoningCampaign
from repro.learning.adversarial import train_sanitized
from repro.learning.online import OnlinePerceptron
from repro.scenarios.harness import ExperimentTable
from repro.sim.rng import SeededRNG
from repro.trust.aggregation import (
    IterativeFilteringAggregator,
    mean_aggregate,
    trimmed_mean_aggregate,
)

POISON_RATES = (0.0, 0.1, 0.2, 0.3, 0.4)
COLLUDER_COUNTS = (0, 1, 2, 3, 4)
N_SOURCES = 9
TRUTH = 50.0
FALSE_VALUE = 500.0


def labelled_dataset(n: int = 120, seed: int = 5):
    """Separable 2-feature data: label = sign of a noisy linear score."""
    rng = SeededRNG(seed).stream("dataset")
    samples = []
    for _ in range(n):
        x0 = rng.uniform(-5.0, 5.0)
        x1 = rng.uniform(-5.0, 5.0)
        label = 1 if (x0 + 0.5 * x1) > 0 else -1
        # Small margin: poisoned labels genuinely hurt the learner.
        samples.append(((x0 + label * 0.2, x1 + label * 0.1), label))
    return samples


def run_poisoning(rate: float, seed: int = 5) -> dict:
    clean = labelled_dataset(seed=seed)
    holdout = labelled_dataset(seed=seed + 100)
    trusted = labelled_dataset(n=12, seed=seed + 200)
    campaign = PoisoningCampaign(rate=rate, mode="label_flip", seed=seed)
    poisoned = campaign.apply(clean)

    raw_model = OnlinePerceptron(n_features=2, learning_rate=0.2)
    raw_model.fit(poisoned, epochs=5)
    sanitized_model, report = train_sanitized(
        2, poisoned, trusted=trusted, epochs=5, learning_rate=0.2,
    )
    return {
        "raw_accuracy": raw_model.accuracy(holdout),
        "sanitized_accuracy": sanitized_model.accuracy(holdout),
        "removed": report.removed,
        "actually_poisoned": campaign.poisoned_count,
    }


def run_collusion(n_colluders: int, seed: int = 5) -> dict:
    rng = SeededRNG(seed).stream("collusion")
    sources = [f"s{i}" for i in range(N_SOURCES)]
    attack = SensorDeceptionAttack(sources, sources[:n_colluders],
                                   FALSE_VALUE) if n_colluders else None
    provider = make_reading_provider(lambda: TRUTH, sources, rng,
                                     honest_noise=0.5, attack=attack)
    if attack is not None:
        attack.active = True
    errors = {"mean": [], "trimmed": [], "iterative": []}
    aggregator = IterativeFilteringAggregator()
    for round_index in range(20):
        readings = provider(time=float(round_index))
        errors["mean"].append(abs(mean_aggregate(readings) - TRUTH))
        errors["trimmed"].append(
            abs(trimmed_mean_aggregate(readings, 0.25) - TRUTH))
        errors["iterative"].append(abs(aggregator.aggregate(readings) - TRUTH))
    return {name: sum(values) / len(values) for name, values in errors.items()}


@pytest.mark.parametrize("rate", [0.0, 0.3])
def test_e7_poisoning_benchmarks(benchmark, rate):
    result = benchmark.pedantic(run_poisoning, args=(rate,), rounds=1,
                                iterations=1)
    assert 0.0 <= result["raw_accuracy"] <= 1.0


def test_e7_poisoning_table(experiment, benchmark):
    seeds = (5, 6, 7, 8, 9)
    results = {}
    for rate in POISON_RATES:
        runs = [run_poisoning(rate, seed) for seed in seeds]
        results[rate] = {
            "raw_accuracy": sum(r["raw_accuracy"] for r in runs) / len(runs),
            "sanitized_accuracy": sum(r["sanitized_accuracy"]
                                      for r in runs) / len(runs),
            "removed": sum(r["removed"] for r in runs),
            "actually_poisoned": sum(r["actually_poisoned"] for r in runs),
        }
    benchmark.pedantic(run_poisoning, args=(0.2,), rounds=1, iterations=1)

    table = ExperimentTable(
        f"E7a label-flip poisoning: holdout accuracy over {len(seeds)} seeds,"
        " raw vs sanitized training",
        ["poison rate", "raw accuracy", "sanitized accuracy",
         "samples removed", "samples poisoned"],
    )
    for rate in POISON_RATES:
        row = results[rate]
        table.add_row(f"{rate:.0%}", round(row["raw_accuracy"], 3),
                      round(row["sanitized_accuracy"], 3), row["removed"],
                      row["actually_poisoned"])
    experiment(table)

    # Raw training degrades at heavy poisoning...
    assert results[0.4]["raw_accuracy"] < results[0.0]["raw_accuracy"]
    # ... and the sanitizer flattens the curve: strictly better than raw
    # under heavy poisoning and strong in absolute terms throughout.
    assert (results[0.4]["sanitized_accuracy"]
            > results[0.4]["raw_accuracy"])
    for rate in POISON_RATES:
        assert results[rate]["sanitized_accuracy"] >= 0.85


def test_e7_collusion_table(experiment, benchmark):
    results = {count: run_collusion(count) for count in COLLUDER_COUNTS}
    benchmark.pedantic(run_collusion, args=(3,), rounds=1, iterations=1)

    table = ExperimentTable(
        f"E7b sensor collusion ({N_SOURCES} sources, false value "
        f"{FALSE_VALUE:g} vs truth {TRUTH:g}): mean abs error",
        ["colluders", "plain mean", "trimmed mean", "iterative filtering"],
    )
    for count in COLLUDER_COUNTS:
        row = results[count]
        table.add_row(count, round(row["mean"], 2), round(row["trimmed"], 2),
                      round(row["iterative"], 2))
    experiment(table)

    # The mean is dragged roughly linearly with the colluder count.
    assert results[4]["mean"] > results[2]["mean"] > results[0]["mean"]
    assert results[4]["mean"] > 100.0
    # Iterative filtering holds the line while colluders are a minority.
    for count in COLLUDER_COUNTS:
        assert results[count]["iterative"] < 2.0
