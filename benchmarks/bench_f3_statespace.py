"""F3 — Figure 3 operationalized: time spent in good/neutral/bad regions.

Figure 3 draws a two-variable state space with a good region surrounded by
bad ones.  This bench subjects a device (temp, fuel) to a disturbance
workload (external heating, fuel drain) under the paper's three management
regimes:

* **manual** (sec V "typical manual management"): a human inspects every
  ``manual_period`` ticks and resets out-of-range variables;
* **policy-based**: human-written ECA rules react every tick;
* **policy + state-space guard** (sec VI-B): rules plus the guard that
  refuses bad transitions.

Shape expectation: time-in-bad shrinks monotonically across the three
regimes; the guarded regime never *enters* bad through its own actions.
"""

import pytest

from repro.core.actions import Action, Effect
from repro.core.events import Event
from repro.core.policy import Policy
from repro.safeguards.statespace import StateSpaceGuard
from repro.scenarios.harness import ExperimentTable
from repro.scenarios.peacekeeping import device_safety_classifier
from repro.sim.rng import SeededRNG
from repro.types import Safeness

from tests.conftest import make_test_device

TICKS = 600


def build_device(regime: str):
    device = make_test_device("f3")
    library = device.engine.actions
    library.add(Action("refuel", "motor", effects=[Effect("fuel", "set", 100.0)]))
    library.add(Action("work", "motor", effects=[Effect("temp", "add", 1.0)]))
    if regime in ("policy", "guarded"):
        device.engine.policies.add(Policy.make(
            "timer", "temp > 80", library.get("cool_down"), priority=10,
        ))
        device.engine.policies.add(Policy.make(
            "timer", "fuel < 20", library.get("refuel"), priority=9,
        ))
        device.engine.policies.add(Policy.make(
            "timer", None, library.get("work"), priority=1,
        ))
    if regime == "guarded":
        device.engine.add_safeguard(StateSpaceGuard(device_safety_classifier()))
    return device


def run_regime(regime: str, seed: int = 4, manual_period: int = 10) -> dict:
    rng = SeededRNG(seed).stream(f"f3/{regime}")
    device = build_device(regime)
    classifier = device_safety_classifier()
    counts = {Safeness.GOOD: 0, Safeness.NEUTRAL: 0, Safeness.BAD: 0}
    bad_entries = 0
    was_bad = False
    for tick in range(TICKS):
        # Disturbance: ambient heating + fuel drain.
        state = device.state
        state.apply(state.clamp_changes({
            "temp": float(state.get("temp")) + rng.uniform(0.0, 6.0),
            "fuel": max(0.0, float(state.get("fuel")) - 1.0),
        }), time=float(tick), cause="environment")
        if regime == "manual":
            if tick % manual_period == 0:
                if float(state.get("temp")) > 80.0:
                    state.set("temp", 20.0, cause="manual-repair")
                if float(state.get("fuel")) < 20.0:
                    state.set("fuel", 100.0, cause="manual-repair")
        else:
            device.deliver(Event(kind="timer.tick", time=float(tick)))
        classification = classifier.classify(state.snapshot())
        counts[classification] += 1
        if classification == Safeness.BAD and not was_bad:
            bad_entries += 1
        was_bad = classification == Safeness.BAD
    return {
        "good": counts[Safeness.GOOD] / TICKS,
        "neutral": counts[Safeness.NEUTRAL] / TICKS,
        "bad": counts[Safeness.BAD] / TICKS,
        "bad_entries": bad_entries,
    }


@pytest.mark.parametrize("regime", ["manual", "policy", "guarded"])
def test_f3_regime_benchmarks(benchmark, regime):
    result = benchmark.pedantic(run_regime, args=(regime,), rounds=1,
                                iterations=1)
    assert 0.99 < result["good"] + result["neutral"] + result["bad"] <= 1.01


def test_f3_summary_shape(experiment, benchmark):
    results = {regime: run_regime(regime) for regime in
               ("manual", "policy", "guarded")}
    benchmark.pedantic(run_regime, args=("policy",), rounds=1, iterations=1)
    table = ExperimentTable(
        f"F3 state-space occupancy over {TICKS} ticks (2-variable walk)",
        ["management", "good", "neutral", "bad", "bad entries"],
    )
    for regime in ("manual", "policy", "guarded"):
        row = results[regime]
        table.add_row(regime, round(row["good"], 3), round(row["neutral"], 3),
                      round(row["bad"], 3), row["bad_entries"])
    experiment(table)

    # Shape: each regime strictly improves time-in-bad over the previous.
    assert results["policy"]["bad"] < results["manual"]["bad"]
    assert results["guarded"]["bad"] <= results["policy"]["bad"]
    assert results["guarded"]["good"] >= results["manual"]["good"]
