"""E13 (extension) — sec IV human error as a malevolence channel.

"A wrong command by the human operator, a mistake in understanding the
limitations of the system, or inappropriate use of a device can lead to
malevolent conditions."

Workload: an operator issues routine *move* orders to a drone fleet
operating among civilians; with slip probability ``e`` a command comes out
as a strike, targets the wrong device, or carries garbled coordinates
(the three classic slips).  Arms: unguarded vs the sec VI-A pre-action
check.  A second table shows the *misdeployment* mistake — a war-fighting
policy set deployed into the peacekeeping environment.

Shape expectations: unguarded harm grows with the slip rate; the
pre-action check holds harm at ~0 at every rate, costing only vetoes of
the erroneous commands; the misdeployed device harms civilians unguarded
and is fully contained by the same check.
"""

import pytest

from repro.attacks.human_error import ErrorProneOperator, misdeployed_policy_set
from repro.core.actions import Action
from repro.core.policy import Policy, PolicySet
from repro.devices.drone import make_drone
from repro.devices.world import World, WorldHarmModel
from repro.safeguards.preaction import PreActionCheck
from repro.scenarios.harness import ExperimentTable
from repro.sim.simulator import Simulator

SLIP_RATES = (0.0, 0.1, 0.2, 0.4)
N_ORDERS = 60
N_DRONES = 4


def run_slips(slip_rate: float, guarded: bool, seed: int = 51) -> dict:
    sim = Simulator(seed=seed)
    world = World(sim)
    devices = {}
    harm_model = WorldHarmModel(world, sensor_range=15.0)
    for index in range(N_DRONES):
        drone = make_drone(f"uav{index}", world, x=20.0 * index + 10.0, y=50.0)
        if guarded:
            drone.engine.add_safeguard(PreActionCheck(harm_model))
        # A civilian stands near each drone: a slipped strike is dangerous.
        world.add_human(f"civ{index}", 20.0 * index + 12.0, 50.0, speed=0.0)
        devices[drone.device_id] = drone

    operator = ErrorProneOperator(
        "op1", devices, sim.rng.stream("operator"),
        wrong_verb_prob=slip_rate,
        wrong_target_prob=slip_rate / 2,
        wrong_params_prob=slip_rate / 2,
        verb_pool=["move", "strike", "return"],
    )
    vetoes = 0
    for order in range(N_ORDERS):
        target = f"uav{order % N_DRONES}"
        decision = operator.command(target, "move", {
            "target_x": 50.0, "target_y": 10.0,
        })
        if decision is not None and decision.vetoes:
            vetoes += 1
    return {
        "harm": world.harm_count(),
        "slips": operator.slip_count,
        "vetoes": vetoes,
    }


def run_misdeployment(guarded: bool, seed: int = 52) -> dict:
    """The lab-system-deployed-without-validation mistake."""
    sim = Simulator(seed=seed)
    world = World(sim)
    world.add_human("civ", 51.0, 50.0, speed=0.0)
    drone = make_drone("uav1", world, x=50.0, y=50.0)
    if guarded:
        drone.engine.add_safeguard(PreActionCheck(
            WorldHarmModel(world, sensor_range=15.0)))
    # The war-fighting policy set: strike on every contact, no questions.
    warfighting = PolicySet([Policy.make(
        "sensor.contact", None,
        Action("engage", "weapon", tags={"kinetic"}, reversible=False),
        priority=30, policy_id="wf-engage",
    )])
    misdeployed_policy_set(drone, warfighting)
    from repro.core.events import Event

    for contact in range(10):
        drone.deliver(Event(kind="sensor.contact", time=float(contact)))
    return {"harm": world.harm_count()}


@pytest.mark.parametrize("guarded", [False, True], ids=["raw", "guarded"])
def test_e13_arm_benchmarks(benchmark, guarded):
    result = benchmark.pedantic(run_slips, args=(0.4, guarded), rounds=1,
                                iterations=1)
    assert result["slips"] >= 0


def test_e13_slip_table(experiment, benchmark):
    results = {}
    for rate in SLIP_RATES:
        results[rate] = {"raw": run_slips(rate, False),
                         "guarded": run_slips(rate, True)}
    benchmark.pedantic(run_slips, args=(0.2, True), rounds=1, iterations=1)

    table = ExperimentTable(
        f"E13a operator slips: {N_ORDERS} move orders to {N_DRONES} drones "
        "with civilians alongside",
        ["slip rate", "slips", "raw harm", "guarded harm", "guarded vetoes"],
    )
    for rate in SLIP_RATES:
        row = results[rate]
        table.add_row(f"{rate:.0%}", row["raw"]["slips"],
                      row["raw"]["harm"], row["guarded"]["harm"],
                      row["guarded"]["vetoes"])
    experiment(table)

    # No slips, no harm.
    assert results[0.0]["raw"]["harm"] == 0
    # Unguarded harm appears once slips do, and grows with the rate.
    assert results[0.4]["raw"]["harm"] > 0
    assert results[0.4]["raw"]["harm"] >= results[0.1]["raw"]["harm"]
    # The pre-action check holds harm at zero at every slip rate.
    for rate in SLIP_RATES:
        assert results[rate]["guarded"]["harm"] == 0
    assert results[0.4]["guarded"]["vetoes"] > 0


def test_e13_misdeployment_table(experiment, benchmark):
    results = {"raw": run_misdeployment(False),
               "guarded": run_misdeployment(True)}
    benchmark.pedantic(run_misdeployment, args=(True,), rounds=1, iterations=1)

    table = ExperimentTable(
        "E13b misdeployment: war-fighting policies in a peacekeeping "
        "environment (10 contacts beside a civilian)",
        ["configuration", "harm"],
    )
    table.add_row("misdeployed, unguarded", results["raw"]["harm"])
    table.add_row("misdeployed + preaction", results["guarded"]["harm"])
    experiment(table)

    assert results["raw"]["harm"] > 0
    assert results["guarded"]["harm"] == 0
