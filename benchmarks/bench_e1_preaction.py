"""E1 — sec VI-A pre-action checks, with the dig-a-hole indirect-harm gap.

Peacekeeping workload with misguided strike orders (direct-harm channel)
and entrenchment digs (indirect-harm channel).  Arms: unguarded baseline,
pre-action checks, pre-action + hazard blocking (the stricter variant),
pre-action + obligations (the paper's own answer to indirect harm).

Shape expectations: pre-action checks drive *direct* harm to ~0 but leave
*indirect* harm untouched; obligations collapse indirect harm; blocking
predicted hazards also prevents indirect harm but at the cost of the
mission's digging work.
"""

import pytest

from repro.scenarios.harness import ExperimentTable, SafeguardConfig
from repro.scenarios.peacekeeping import PeacekeepingScenario

HORIZON = 300.0
SEEDS = (1, 2, 3)

ARMS = [
    ("baseline", SafeguardConfig.none()),
    ("preaction", SafeguardConfig.only(preaction=True)),
    ("preaction+hazardblock", SafeguardConfig.only(preaction=True,
                                                   preaction_hazards=True)),
    ("preaction+obligations", SafeguardConfig.only(preaction=True,
                                                   obligations=True)),
]


def run_arm(config: SafeguardConfig, seed: int) -> dict:
    scenario = PeacekeepingScenario(
        seed=seed, config=config, n_civilians=40,
        strike_interval=6.0, dig_interval=5.0,
    )
    return scenario.run(until=HORIZON)


def aggregate(config: SafeguardConfig) -> dict:
    totals = {"harm_direct": 0, "harm_indirect": 0, "open_hazards": 0,
              "vetoes": 0, "digs": 0}
    for seed in SEEDS:
        result = run_arm(config, seed)
        totals["harm_direct"] += result["harm_direct"]
        totals["harm_indirect"] += result["harm_indirect"]
        totals["open_hazards"] += result["open_hazards"]
        totals["vetoes"] += result["vetoes"]
    return totals


@pytest.mark.parametrize("label,config", ARMS, ids=[a[0] for a in ARMS])
def test_e1_arm_benchmarks(benchmark, label, config):
    result = benchmark.pedantic(run_arm, args=(config, 1), rounds=1,
                                iterations=1)
    assert result["horizon"] == HORIZON


def test_e1_preaction_table(experiment, benchmark):
    results = {label: aggregate(config) for label, config in ARMS}
    benchmark.pedantic(run_arm, args=(ARMS[0][1], 1), rounds=1, iterations=1)

    table = ExperimentTable(
        f"E1 pre-action checks: harm per {len(SEEDS)}x{HORIZON:g}t "
        "(40 civilians)",
        ["configuration", "direct harm", "indirect harm", "open hazards",
         "vetoes"],
    )
    for label, _config in ARMS:
        row = results[label]
        table.add_row(label, row["harm_direct"], row["harm_indirect"],
                      row["open_hazards"], row["vetoes"])
    experiment(table)

    baseline = results["baseline"]
    preaction = results["preaction"]
    obligations = results["preaction+obligations"]
    hazardblock = results["preaction+hazardblock"]

    # Direct harm happens unguarded and vanishes under pre-action checks.
    assert baseline["harm_direct"] > 0
    assert preaction["harm_direct"] == 0
    # The paper's gap: the plain check does not touch indirect harm.
    assert preaction["harm_indirect"] == baseline["harm_indirect"]
    assert baseline["harm_indirect"] > 0
    # Obligations close (most of) the gap and leave no open hazards.
    assert obligations["harm_indirect"] < preaction["harm_indirect"]
    assert obligations["open_hazards"] == 0
    # Blocking predicted hazards prevents the digs themselves.
    assert hazardblock["open_hazards"] == 0
    assert hazardblock["harm_indirect"] == 0
