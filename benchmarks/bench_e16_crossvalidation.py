"""E16 (extension) — sec II human cross-validation at scale.

"Since each human will oversee many different devices, ranging from tens
to hundreds, the devices would need to be self-managing ... with only a
few decisions being sent for human cross-validation."

Workload: a fleet routes every kinetic request through its (rate-limited)
human operator via the :class:`CrossValidationGuard`.  Sweeping fleet size
at fixed human review capacity shows the scaling wall the paper's argument
rests on: past the human's bandwidth, reviews defer and — because the
guard fails closed — kinetic responsiveness collapses.  Self-management
(routing only the *few* genuinely human-worthy decisions) is not a
convenience but a structural necessity.

Shape expectations: approval fraction ~1 while the request rate fits the
human's capacity, then degrades as the fleet outgrows it; deferrals (not
unreviewed executions) absorb the overflow — the fail-closed guarantee.
"""

import pytest

from repro.core.actions import Action
from repro.core.events import Event
from repro.core.policy import Policy
from repro.devices.human import HumanOperator
from repro.safeguards.crossvalidation import CrossValidationGuard
from repro.scenarios.harness import ExperimentTable
from repro.sim.simulator import Simulator

from tests.conftest import make_test_device

FLEET_SIZES = (2, 5, 10, 25)
CAPACITY = 5.0        # reviews per time unit
TICKS = 40


def run_fleet(n_devices: int) -> dict:
    sim = Simulator(seed=81)
    operator = HumanOperator("op1", sim, review_capacity_per_unit=CAPACITY)
    guard = CrossValidationGuard(operator)
    devices = []
    for index in range(n_devices):
        device = make_test_device(f"d{index}", safeguards=[guard])
        strike = Action("strike", "motor", tags={"kinetic"})
        device.engine.actions.add(strike)
        device.engine.policies.add(Policy.make(
            "mgmt.strike", None, strike, priority=9,
        ))
        devices.append(device)
        operator.assign(device)

    executed = 0
    requests = 0
    for tick in range(TICKS):
        sim.queue.push(float(tick), lambda: None)   # advance sim time
        sim.run(until=float(tick))
        for device in devices:
            requests += 1
            decision = device.deliver(Event(kind="mgmt.strike",
                                            time=float(tick)))
            if decision.executed == "strike":
                executed += 1
    return {
        "requests": requests,
        "executed": executed,
        "approval_fraction": executed / requests,
        "deferred": guard.deferred,
        "reviews": operator.reviews_answered,
        "unreviewed_executions": executed - guard.approved,
    }


@pytest.mark.parametrize("n_devices", [2, 25])
def test_e16_arm_benchmarks(benchmark, n_devices):
    result = benchmark.pedantic(run_fleet, args=(n_devices,), rounds=1,
                                iterations=1)
    assert result["requests"] == n_devices * TICKS


def test_e16_scaling_table(experiment, benchmark):
    results = {size: run_fleet(size) for size in FLEET_SIZES}
    benchmark.pedantic(run_fleet, args=(5,), rounds=1, iterations=1)

    table = ExperimentTable(
        f"E16 human cross-validation wall (capacity {CAPACITY:g} reviews/t, "
        f"1 kinetic request/device/t)",
        ["devices", "requests", "approved+executed", "approval fraction",
         "deferred (fail closed)"],
    )
    for size in FLEET_SIZES:
        row = results[size]
        table.add_row(size, row["requests"], row["executed"],
                      round(row["approval_fraction"], 3), row["deferred"])
    experiment(table)

    # Within capacity everything is reviewed and approved...
    assert results[2]["approval_fraction"] > 0.95
    # ... past it, approval collapses monotonically with fleet size...
    assert (results[25]["approval_fraction"]
            < results[10]["approval_fraction"]
            < results[5]["approval_fraction"] + 1e-9)
    # ... and overflow defers rather than executing unreviewed: fail closed.
    for size in FLEET_SIZES:
        assert results[size]["unreviewed_executions"] == 0
        assert (results[size]["executed"] + results[size]["deferred"]
                == results[size]["requests"])
