"""E4 — sec VI-D checks on collection formation: the cumulative-heat case.

Devices each emit heat well inside their individual limits, but the
*collection's* total can exceed the fleet safety limit — the paper's
canonical emergent violation.  Arms:

* **unchecked** — devices join freely and act freely;
* **join checks** — the offline analyzer + (simulated) human review gate
  every join on worst-case aggregate heat;
* **collaborative assessment** — admitted devices jointly pre-commit their
  actions each round, deferring those that would breach the aggregate.

Shape expectations: unchecked accumulates aggregate violations that are
*emergent* (no individual is ever in a bad state); join checks cap the
admitted population so worst-case heat fits; collaborative assessment
admits everyone but defers actions, also eliminating violations.
"""

import pytest

from repro.core.actions import Action, Effect
from repro.devices.drone import make_drone
from repro.devices.world import World
from repro.emergent.aggregate import AggregateMonitor
from repro.safeguards.collection import (
    AggregateConstraint,
    CollectionGuard,
    CollectiveStateAssessment,
    HumanCheckModel,
    OfflineAnalyzer,
)
from repro.scenarios.harness import ExperimentTable
from repro.scenarios.peacekeeping import device_safety_classifier
from repro.sim.simulator import Simulator

N_DEVICES = 12
HEAT_LIMIT = 60.0     # each device can emit up to 10 (heat_output_max)
HORIZON = 60.0


def heat_action():
    return Action("run_hot", "cooler",
                  effects=[Effect("heat_output", "set", 9.0),
                           Effect("temp", "add", 1.0)])


def idle_action():
    return Action("run_idle", "cooler",
                  effects=[Effect("heat_output", "set", 1.0)])


def run_arm(arm: str, seed: int = 6) -> dict:
    sim = Simulator(seed=seed)
    world = World(sim)
    constraint = AggregateConstraint("heat", "heat_output", "sum", HEAT_LIMIT)
    guard = CollectionGuard(
        OfflineAnalyzer([constraint]),
        human=HumanCheckModel(sim.rng.stream("human-check")),
        worst_case=True,
    )
    assessment = CollectiveStateAssessment([constraint])

    candidates = []
    for index in range(N_DEVICES):
        device = make_drone(f"unit{index}", world, x=float(index), y=0.0,
                            with_builtin_policies=False)
        device.engine.actions.add(heat_action())
        device.engine.actions.add(idle_action())
        candidates.append(device)

    admitted = {}
    rejected = 0
    for device in candidates:
        if arm == "join_checks":
            if guard.request_join(device, sim.now):
                admitted[device.device_id] = device
            else:
                rejected += 1
        else:
            guard.force_join(device)
            admitted[device.device_id] = device

    monitor = AggregateMonitor(sim, admitted, [constraint], interval=1.0,
                               individual_classifier=device_safety_classifier())
    deferred_total = {"count": 0}

    def work_round() -> None:
        if arm == "collaborative":
            proposals = {
                device_id: (device, heat_action())
                for device_id, device in admitted.items()
            }
            verdict = assessment.assess(proposals)
            deferred_total["count"] += len(verdict["deferred"])
            for device_id in verdict["approved"]:
                device = admitted[device_id]
                device.state.apply(device.state.clamp_changes(
                    heat_action().predicted_changes(device.state.snapshot())),
                    time=sim.now, cause="work")
            for device_id in verdict["deferred"]:
                device = admitted[device_id]
                device.state.apply(device.state.clamp_changes(
                    idle_action().predicted_changes(device.state.snapshot())),
                    time=sim.now, cause="deferred")
        else:
            for device in admitted.values():
                device.state.apply(device.state.clamp_changes(
                    heat_action().predicted_changes(device.state.snapshot())),
                    time=sim.now, cause="work")

    sim.every(1.0, work_round, start_after=0.5)
    sim.run(until=HORIZON)
    return {
        "admitted": len(admitted),
        "rejected": rejected,
        "violations": len(monitor.violations),
        "emergent_violations": len(monitor.emergent_violations()),
        "time_over_limit": round(
            monitor.violation_time_fraction("heat", HORIZON), 3),
        "deferred_actions": deferred_total["count"],
    }


@pytest.mark.parametrize("arm", ["unchecked", "join_checks", "collaborative"])
def test_e4_arm_benchmarks(benchmark, arm):
    result = benchmark.pedantic(run_arm, args=(arm,), rounds=1, iterations=1)
    assert result["admitted"] >= 1


def test_e4_collection_table(experiment, benchmark):
    results = {arm: run_arm(arm) for arm in ("unchecked", "join_checks",
                                             "collaborative")}
    benchmark.pedantic(run_arm, args=("unchecked",), rounds=1, iterations=1)

    table = ExperimentTable(
        f"E4 collection formation: {N_DEVICES} devices, fleet heat limit "
        f"{HEAT_LIMIT:g} (each device individually fine)",
        ["configuration", "admitted", "rejected joins", "violations",
         "emergent", "time over limit", "deferred actions"],
    )
    for arm in ("unchecked", "join_checks", "collaborative"):
        row = results[arm]
        table.add_row(arm, row["admitted"], row["rejected"],
                      row["violations"], row["emergent_violations"],
                      row["time_over_limit"], row["deferred_actions"])
    experiment(table)

    unchecked = results["unchecked"]
    join_checks = results["join_checks"]
    collaborative = results["collaborative"]
    # The paper's emergent case: violations with no individually-bad device.
    assert unchecked["violations"] > 0
    assert unchecked["emergent_violations"] == unchecked["violations"]
    # Join checks cap the population so worst-case heat fits the limit.
    assert join_checks["rejected"] > 0
    assert join_checks["violations"] == 0
    # Collaborative assessment admits everyone but defers excess actions.
    assert collaborative["admitted"] == N_DEVICES
    assert collaborative["violations"] == 0
    assert collaborative["deferred_actions"] > 0
