"""E15 (extension) — sec VI-C under realistic observation (sec V, ref [10]).

The paper's mechanisms assume devices' states can be "automatically
detect[ed]"; in the field the watchdog *observes* state through noisy,
dropping channels (the helicopter-vision state-inference setting of
ref [10]).  This bench runs the watchdog against a fleet where one device
goes thermally bad mid-run, with the watchdog reading states through a
:class:`NoisyChannel` + :class:`StateEstimator` at increasing noise
levels, against the godlike direct-read baseline.

Shape expectations: detection latency grows with observation noise but
stays bounded (the estimator converges); healthy devices are never
false-positively killed at any noise level (the estimator's outlier
rejection absorbs spikes); with the estimator *removed* (raw noisy
readings), heavy noise produces false deactivations — the reason state
inference, not raw sensing, backs the kill decision.
"""

import pytest

from repro.safeguards.deactivation import Watchdog
from repro.scenarios.harness import ExperimentTable
from repro.scenarios.peacekeeping import device_safety_classifier
from repro.sim.simulator import Simulator
from repro.statespace.estimation import (
    NoisyChannel,
    StateEstimator,
    estimated_state_reader,
)
from repro.types import DeviceStatus

from tests.conftest import make_test_device

NOISE_LEVELS = (0.0, 2.0, 5.0, 10.0)
N_DEVICES = 6
FAULT_TIME = 20.0
HORIZON = 80.0


def run_arm(noise: float, estimator_on: bool, seed: int = 71) -> dict:
    sim = Simulator(seed=seed)
    devices = {f"d{i}": make_test_device(f"d{i}") for i in range(N_DEVICES)}
    for device in devices.values():
        # Healthy devices cruise warm (true temp 75, safe-but-close): a
        # raw noisy reading can cross the 100-degree bad line by chance.
        device.state.set("temp", 75.0)
    readers = {}
    for device_id, device in devices.items():
        channel = NoisyChannel(sim.rng.stream(f"chan/{device_id}"),
                               noise_sigma=noise)
        if estimator_on:
            readers[device_id] = estimated_state_reader(
                device, channel, StateEstimator(alpha=0.4),
            )
        else:
            readers[device_id] = (
                lambda device=device, channel=channel:
                {**device.state.snapshot(),
                 **channel.observe(device.state.snapshot())}
            )
    watchdog = Watchdog(sim, devices, device_safety_classifier(),
                        check_interval=1.0, state_readers=readers)
    # One device develops a genuine thermal fault mid-run.
    sim.schedule_at(FAULT_TIME, lambda: devices["d0"].state.set("temp", 130.0))
    sim.run(until=HORIZON)

    fault_report = next((report for report in watchdog.reports
                         if report.device_id == "d0"), None)
    false_positives = sum(1 for report in watchdog.reports
                          if report.device_id != "d0")
    return {
        "detected": fault_report is not None,
        "latency": (fault_report.time - FAULT_TIME
                    if fault_report is not None else -1.0),
        "false_positives": false_positives,
        "healthy_alive": sum(
            1 for device_id, device in devices.items()
            if device_id != "d0" and device.status == DeviceStatus.ACTIVE),
    }


@pytest.mark.parametrize("noise", [0.0, 5.0])
def test_e15_arm_benchmarks(benchmark, noise):
    result = benchmark.pedantic(run_arm, args=(noise, True), rounds=1,
                                iterations=1)
    assert result["detected"]


def test_e15_estimation_table(experiment, benchmark):
    rows = []
    for noise in NOISE_LEVELS:
        with_estimator = run_arm(noise, estimator_on=True)
        raw = run_arm(noise, estimator_on=False)
        rows.append((noise, with_estimator, raw))
    benchmark.pedantic(run_arm, args=(2.0, True), rounds=1, iterations=1)

    table = ExperimentTable(
        f"E15 watchdog under noisy observation ({N_DEVICES} devices, fault "
        f"at t={FAULT_TIME:g})",
        ["noise sigma", "est. latency", "est. false kills",
         "raw latency", "raw false kills"],
    )
    for noise, with_estimator, raw in rows:
        table.add_row(
            noise,
            round(with_estimator["latency"], 1) if with_estimator["detected"]
            else "missed",
            with_estimator["false_positives"],
            round(raw["latency"], 1) if raw["detected"] else "missed",
            raw["false_positives"],
        )
    experiment(table)

    results = {noise: (with_estimator, raw)
               for noise, with_estimator, raw in rows}
    # The estimator-backed watchdog detects the fault at every noise level
    # and never kills a healthy device.
    for noise in NOISE_LEVELS:
        with_estimator, _raw = results[noise]
        assert with_estimator["detected"]
        assert with_estimator["false_positives"] == 0
        assert with_estimator["healthy_alive"] == N_DEVICES - 1
    # Latency is modest even at heavy noise (estimator must converge).
    assert results[10.0][0]["latency"] <= 20.0
    # Raw noisy readings at heavy noise kill healthy devices.
    assert results[10.0][1]["false_positives"] > 0
