"""E12 (extension) — sec IV policy sharing as an infection vector.

Devices "share the information and policies they generate with other
devices" over gossip — which means a single compromised device can publish
a malevolent policy and have the whole fleet adopt it ("a reprogrammed
device may turn malevolent and convert other devices into following the
same behaviors").

Arms: shared policies installed blindly vs installed only after the sec
VI-E governance review.

Shape expectations: blind installation propagates the rogue policy to the
entire reachable fleet within a few gossip rounds while benign shared
policies also spread; governed installation admits every benign policy and
zero rogue ones.
"""

import pytest

from repro.core.actions import Action
from repro.core.generative.refinement import PolicyRefinement, serialize_policy
from repro.core.generative.templates import PolicyTemplate, TemplateRegistry
from repro.core.policy import Policy
from repro.net.gossip import GossipNode
from repro.net.network import Network
from repro.safeguards.governance import Collective, GovernanceSystem, MetaPolicy
from repro.scenarios.harness import ExperimentTable
from repro.sim.simulator import Simulator
from repro.types import Branch

from tests.conftest import make_test_device

N_DEVICES = 8
HORIZON = 40.0


def make_governance():
    reviewer = GovernanceSystem.scope_reviewer([
        MetaPolicy("no_harm", forbidden_tags={"harm_human"}),
        MetaPolicy("priority_cap", max_priority=50),
    ])
    return GovernanceSystem(
        Collective(Branch.EXECUTIVE, ["e0", "e1", "e2"], reviewer),
        Collective(Branch.LEGISLATIVE, ["l0", "l1", "l2"], reviewer),
        Collective(Branch.JUDICIARY, ["j0", "j1", "j2"], reviewer),
    )


def shareable_policy(policy_id: str, action: Action, priority: int) -> Policy:
    """Build a template-style policy carrying condition_str metadata."""
    registry = TemplateRegistry([PolicyTemplate.make(
        f"t_{policy_id}", "timer", "fuel > 5", action.name, priority=priority,
    )])
    from repro.core.actions import ActionLibrary

    return registry.get(f"t_{policy_id}").instantiate(
        {}, ActionLibrary([action]), policy_id=policy_id,
    )


def run_arm(governed: bool, seed: int = 41) -> dict:
    sim = Simulator(seed=seed)
    network = Network(sim, base_latency=0.01, jitter=0.0)
    governance = make_governance() if governed else None
    refinement = PolicyRefinement(governance=governance)

    devices, nodes = {}, {}
    for index in range(N_DEVICES):
        device = make_test_device(f"unit{index}")
        device.engine.actions.add(Action("benign_sync", "motor"))
        device.engine.actions.add(Action("rogue_strike", "motor",
                                         tags={"harm_human"}))
        devices[device.device_id] = device

        def handler(message, device_id=device.device_id):
            if GossipNode.is_exchange(message):
                nodes[device_id].handle_exchange(message)

        network.register(device.device_id, handler)
        nodes[device.device_id] = GossipNode(
            device.device_id, sim, network, interval=1.0, fanout=2,
            on_update=refinement.installer(device, time_fn=lambda: sim.now),
        )

    benign = shareable_policy("benign", Action("benign_sync", "motor"),
                              priority=3)
    rogue = shareable_policy("rogue", Action("rogue_strike", "motor",
                                             tags={"harm_human"}),
                             priority=40)
    nodes["unit0"].publish(f"policy:{benign.policy_id}",
                           serialize_policy(benign))
    nodes["unit1"].publish(f"policy:{rogue.policy_id}",
                           serialize_policy(rogue), tainted=True)

    sim.run(until=HORIZON)

    def adopted(policy_id: str) -> int:
        return sum(
            1 for device in devices.values()
            if any(pid.startswith(f"shared:{policy_id}:")
                   for pid in device.engine.policies.snapshot())
        )

    return {
        "benign_adopted": adopted("benign"),
        "rogue_adopted": adopted("rogue"),
        "installed": refinement.shared_installed,
        "rejected": refinement.shared_rejected,
    }


@pytest.mark.parametrize("governed", [False, True], ids=["blind", "governed"])
def test_e12_arm_benchmarks(benchmark, governed):
    result = benchmark.pedantic(run_arm, args=(governed,), rounds=1,
                                iterations=1)
    assert result["installed"] + result["rejected"] > 0


def test_e12_sharing_table(experiment, benchmark):
    results = {"blind": run_arm(False), "governed": run_arm(True)}
    benchmark.pedantic(run_arm, args=(True,), rounds=1, iterations=1)

    table = ExperimentTable(
        f"E12 policy sharing over gossip ({N_DEVICES} devices, one rogue "
        f"publisher, horizon {HORIZON:g})",
        ["installation", "benign adopted", "rogue adopted",
         "installs", "rejections"],
    )
    # A publisher keeps its original policy rather than re-installing its
    # own share, so full adoption is fleet size minus the publisher.
    full = N_DEVICES - 1
    for label in ("blind", "governed"):
        row = results[label]
        table.add_row(label, f"{row['benign_adopted']}/{full}",
                      f"{row['rogue_adopted']}/{full}",
                      row["installed"], row["rejected"])
    experiment(table)

    blind, governed = results["blind"], results["governed"]
    # Blind installation spreads both policies fleet-wide.
    assert blind["benign_adopted"] == full
    assert blind["rogue_adopted"] == full
    # Governance admits every benign share and zero rogue shares.
    assert governed["benign_adopted"] == full
    assert governed["rogue_adopted"] == 0
    assert governed["rejected"] >= full
