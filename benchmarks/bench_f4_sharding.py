"""F4 — sharded fleet execution + vectorized batch evaluation, measured.

Three claims, one experiment file:

* **Vectorization** — evaluating a 10k-device fleet per tick through the
  compiled numpy guard/safeness path is >= 3x the scalar twin's
  device-decisions/sec (measured well above 10x), and the two paths
  produce byte-identical traces.  This claim is core-count independent,
  so it is asserted everywhere.

* **Sharding** — partitioning the fleet across worker processes leaves
  the merged trace/audit digests byte-identical for every shard count
  (asserted everywhere).  The wall-clock speedup claim (>= 3x
  events/sec at 4 shards) only *means* anything with >= 4 cores; on
  smaller hosts the bench records ``determinism-equivalence`` for the
  speedup cell instead of a number, following the F2 precedent of never
  letting a shared-runner wall clock fail a correctness suite.

* **Scale** — one 10k-device confrontation (240k guard decisions)
  completes within a fixed wall budget on one core.

Results export to ``benchmarks/results/BENCH_F4.json``.

Quick mode (``F4_QUICK=1``, used by CI's perf-smoke job): 2k devices,
2 shards, shorter horizon — the determinism assertions all still run.
"""

import json
import os
import time

from repro.scenarios.harness import ExperimentTable
from repro.scenarios.sharded import ShardedScenario

QUICK = os.environ.get("F4_QUICK", "") not in ("", "0")

N_DEVICES = 2_000 if QUICK else 10_000
HORIZON = 16.0 if QUICK else 24.0
SHARD_COUNTS = (1, 2) if QUICK else (1, 2, 4)
SPEEDUP_FLOOR = 3.0
SCALE_WALL_BUDGET_SEC = 60.0
MIN_CORES_FOR_SPEEDUP = 4

SPEC = dict(seed=7, horizon=HORIZON, window=4.0, n_communities=64,
            n_devices=N_DEVICES)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULTS_PATH = os.path.join(RESULTS_DIR, "BENCH_F4.json")


def _export(section: str, payload: dict) -> None:
    """Merge one section into BENCH_F4.json (tests run in any order)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    document = {
        "experiment": "F4",
        "title": "Sharded fleet execution + vectorized guard/safeness "
                 "batch evaluation",
        "unit": {"decisions_per_sec": "guard decisions / wall second",
                 "events_per_sec": "simulator events / wall second"},
        "quick": QUICK,
        "cores": os.cpu_count(),
    }
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH, encoding="utf-8") as handle:
            document = json.load(handle)
    document[section] = payload
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


def timed_run(**kwargs):
    scenario = ShardedScenario(**{**SPEC, **kwargs})
    start = time.perf_counter()
    run = scenario.run()
    return run, time.perf_counter() - start


def test_f4_vectorized_vs_scalar(experiment):
    """The tentpole perf claim: the numpy path is >= 3x the scalar twin
    in device-decisions/sec, byte-identical trace either way."""
    vector, vec_wall = timed_run(n_shards=1, vectorized=True)
    scalar, sca_wall = timed_run(n_shards=1, vectorized=False)
    assert vector.trace_digest == scalar.trace_digest
    assert vector.audit_digest == scalar.audit_digest

    decisions = vector.summary["decisions"]
    vec_rate = decisions / vec_wall
    sca_rate = decisions / sca_wall
    speedup = vec_rate / sca_rate

    table = ExperimentTable(
        f"F4 vectorized batch evaluation ({N_DEVICES} devices, "
        f"{decisions} decisions)",
        ["path", "wall s", "decisions/sec"],
    )
    table.add_row("scalar", round(sca_wall, 3), int(sca_rate))
    table.add_row("vectorized", round(vec_wall, 3), int(vec_rate))
    experiment(table)
    _export("vectorization", {
        "devices": N_DEVICES, "decisions": decisions,
        "scalar_wall_sec": sca_wall, "vector_wall_sec": vec_wall,
        "scalar_decisions_per_sec": int(sca_rate),
        "vector_decisions_per_sec": int(vec_rate),
        "speedup": round(speedup, 2),
        "trace_digest": vector.trace_digest,
    })
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized path only {speedup:.1f}x the scalar twin")


def test_f4_shard_scaling(experiment):
    """Byte-identity across shard counts always; the wall-clock speedup
    floor only where the host has the cores to express it."""
    cores = os.cpu_count() or 1
    runs = {}
    for n_shards in SHARD_COUNTS:
        runs[n_shards] = timed_run(n_shards=n_shards,
                                   processes=n_shards > 1)

    base_run, base_wall = runs[SHARD_COUNTS[0]]
    table = ExperimentTable(
        f"F4 shard scaling ({N_DEVICES} devices, {cores} cores)",
        ["shards", "wall s", "events/sec", "imbalance", "digest ok"],
    )
    rows = {}
    for n_shards, (run, wall) in runs.items():
        assert run.trace_digest == base_run.trace_digest
        assert run.audit_digest == base_run.audit_digest
        assert run.summary == base_run.summary
        table.add_row(n_shards, round(wall, 3),
                      int(run.perf["events"] / wall),
                      round(run.perf["imbalance"], 2), "yes")
        rows[str(n_shards)] = {
            "wall_sec": wall,
            "events_per_sec": int(run.perf["events"] / wall),
            "imbalance": run.perf["imbalance"],
            "barrier_windows": run.perf["windows"],
        }
    experiment(table)

    top = SHARD_COUNTS[-1]
    speedup = base_wall / runs[top][1]
    multicore = cores >= MIN_CORES_FOR_SPEEDUP and top >= 4
    _export("sharding", {
        "shard_counts": list(SHARD_COUNTS), "runs": rows,
        "trace_digest": base_run.trace_digest,
        "speedup_at_top": round(speedup, 2),
        "speedup_assertion": (
            f"asserted >= {SPEEDUP_FLOOR}x" if multicore
            else "determinism-equivalence only "
                 f"({cores} cores < {MIN_CORES_FOR_SPEEDUP}; F2 precedent)"),
    })
    if multicore:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{top} shards only {speedup:.1f}x serial on {cores} cores")


def test_f4_scale_within_wall_budget():
    """The 10k-device scenario (240k decisions) stays inside a fixed wall
    budget even serially on one core — the scale claim does not depend
    on parallel hardware."""
    run, wall = timed_run(n_shards=1)
    _export("fleet_scale", {
        "devices": N_DEVICES, "horizon": HORIZON,
        "decisions": run.summary["decisions"],
        "wall_sec": wall, "budget_sec": SCALE_WALL_BUDGET_SEC,
        "events_per_sec": int(run.perf["events"] / wall),
    })
    assert wall < SCALE_WALL_BUDGET_SEC
    assert run.summary["devices"] == N_DEVICES
    assert run.summary["healthy_killed"] == 0
