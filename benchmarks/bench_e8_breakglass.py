"""E8 — sec VI-B break-glass with trustworthy context and abuse audits.

The paper requires that a device "be able to obtain trustworthy
information concerning its own status and the environment to allow the
device to base its decision of breaking the glass on true information",
protected from deception attacks via secure aggregation (ref [13]).

Workload: a mix of *real* emergencies and *fake* emergency claims (a
compromised device trying to bypass its guards).  During fake claims a
colluding minority of the threat sensors reports a high threat level.
Arms differ in what backs the break-glass context verifier:

* **plain mean** over the threat sensors — deceivable;
* **iterative filtering** — robust.

Shape expectations: the mean-backed verifier grants the fake claims (the
colluders drag the estimate over the threshold) and the post-hoc audit
flags every resulting use as abuse; the robust verifier denies fakes while
still granting every real emergency, and its audit comes back clean.
"""

import pytest

from repro.audit.auditor import BreakGlassAuditor
from repro.audit.log import AuditLog
from repro.scenarios.harness import ExperimentTable
from repro.sim.rng import SeededRNG
from repro.statespace.breakglass import BreakGlassController, BreakGlassRule
from repro.trust.aggregation import (
    IterativeFilteringAggregator,
    SensorReading,
    mean_aggregate,
)

N_SENSORS = 9
N_COLLUDERS = 3
THREAT_THRESHOLD = 5.0
REAL_THREAT = 9.0
CALM = 1.0
FAKE_CLAIM_VALUE = 50.0
N_EVENTS = 30          # alternating real / fake


def run_arm(verifier_kind: str, seed: int = 21) -> dict:
    rng = SeededRNG(seed).stream("e8")
    log = AuditLog()
    world_state = {"real_threat": False, "fake_active": False}

    def sensor_readings(time: float):
        truth = REAL_THREAT if world_state["real_threat"] else CALM
        readings = []
        for index in range(N_SENSORS):
            value = truth + rng.gauss(0.0, 0.3)
            if world_state["fake_active"] and index < N_COLLUDERS:
                value = FAKE_CLAIM_VALUE
            readings.append(SensorReading(f"t{index}", value, time))
        return readings

    aggregator = IterativeFilteringAggregator()

    def verify(device_id: str) -> dict:
        readings = sensor_readings(0.0)
        if verifier_kind == "mean":
            estimate = mean_aggregate(readings)
        else:
            estimate = aggregator.aggregate(readings)
        return {"threat_level": estimate}

    controller = BreakGlassController(context_verifier=verify,
                                      audit_sink=log.sink())
    controller.register_rule(BreakGlassRule.make(
        "override", f"threat_level > {THREAT_THRESHOLD}", {"statespace"},
        max_duration=1.0, max_uses=1,
    ))

    real_granted = fake_granted = 0
    emergency_windows = []
    time = 0.0
    for event_index in range(N_EVENTS):
        time += 5.0
        is_real = event_index % 2 == 0
        world_state["real_threat"] = is_real
        world_state["fake_active"] = not is_real
        if is_real:
            emergency_windows.append((time - 0.5, time + 1.5))
        grant = controller.request("unit1", "override",
                                   "threat response" if is_real
                                   else "claimed threat", time)
        if grant is not None:
            controller.is_bypassed("unit1", "statespace", time + 0.5)
            if is_real:
                real_granted += 1
            else:
                fake_granted += 1
        world_state["real_threat"] = False
        world_state["fake_active"] = False

    findings = BreakGlassAuditor(denial_storm_threshold=1000,
                                 max_same_justification=1000).audit(
        log, emergency_truth={"unit1": emergency_windows},
    )
    abuses = sum(1 for finding in findings
                 if finding.kind == "use_outside_emergency")
    return {
        "real_granted": real_granted,
        "fake_granted": fake_granted,
        "abuses_caught": abuses,
        "audit_verified": log.verify(),
    }


@pytest.mark.parametrize("verifier", ["mean", "robust"])
def test_e8_arm_benchmarks(benchmark, verifier):
    result = benchmark.pedantic(run_arm, args=(verifier,), rounds=1,
                                iterations=1)
    assert result["audit_verified"]


def test_e8_breakglass_table(experiment, benchmark):
    results = {kind: run_arm(kind) for kind in ("mean", "robust")}
    benchmark.pedantic(run_arm, args=("robust",), rounds=1, iterations=1)

    n_real = N_EVENTS // 2
    n_fake = N_EVENTS - n_real
    table = ExperimentTable(
        f"E8 break-glass trustworthiness ({n_real} real emergencies, "
        f"{n_fake} fake claims, {N_COLLUDERS}/{N_SENSORS} sensors colluding)",
        ["context verifier", "real granted", "fake granted", "abuses caught"],
    )
    for kind, label in (("mean", "plain mean (deceivable)"),
                        ("robust", "iterative filtering")):
        row = results[kind]
        table.add_row(label, f"{row['real_granted']}/{n_real}",
                      f"{row['fake_granted']}/{n_fake}", row["abuses_caught"])
    experiment(table)

    mean_arm, robust_arm = results["mean"], results["robust"]
    # Both verifiers grant every genuine emergency.
    assert mean_arm["real_granted"] == n_real
    assert robust_arm["real_granted"] == n_real
    # The deceivable verifier grants fakes; every fake use is caught by the
    # audit afterwards (detection, but after the fact).
    assert mean_arm["fake_granted"] == n_fake
    assert mean_arm["abuses_caught"] == n_fake
    # The robust verifier denies every fake up front: prevention, clean audit.
    assert robust_arm["fake_granted"] == 0
    assert robust_arm["abuses_caught"] == 0
