"""E24 — the telemetry warehouse and the cross-run regression sentinel.

Four claims, one experiment file:

* **Ingest everything, fast** — the warehouse ingests real scenario
  telemetry bundles (self-describing manifests) plus every committed
  ``BENCH_*.json`` perf document, then answers cross-run selects,
  percentile aggregations, and per-arm group-bys; ingest and query
  throughput are reported, and re-ingesting the whole corpus is a
  provable no-op (content-addressed idempotency).

* **The sentinel catches what matters and only that** — a synthetic 20%
  throughput drop and a ``healthy_killed`` 0 -> 1 defense change are
  both flagged as gated regressions; an identical baseline/candidate
  pair reports clean; sub-tolerance noise stays inside the band.

* **Cross-run queries through the live control plane** — ``/query``
  answers a percentile aggregation over real HTTP with its own
  ``api.request -> warehouse.query`` span chain, round-tripped through
  ``/explain`` like every other route.

* **Ingest overhead <= 5%** — a full E10-style confrontation sweep
  (``run_matrix`` over safeguard arms x seeds) with live warehouse
  ingest costs at most 5% more wall clock than the same sweep without,
  with the two arms alternating at single-trial granularity so host
  drift lands on both equally (median ratio across trials).

Results export to ``benchmarks/results/BENCH_E24.json``; the warehouse's
per-experiment medians fold into ``benchmarks/results/TRAJECTORY.json``
— the longitudinal perf/defense record CI appends to per revision.

Quick mode (``E24_QUICK=1``, used by CI): fewer seeds, shorter horizon.
"""

import http.client
import json
import os
import statistics
import subprocess
import time

import pytest

from repro.api.http import ServerThread
from repro.api.service import ControlPlane, ControlPlaneConfig
from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import ExperimentTable, SafeguardConfig, run_matrix
from repro.telemetry.warehouse import (
    RunKey,
    RunRecord,
    Warehouse,
    compare_runs,
    ingest_bundle,
    ingest_results_dir,
    update_trajectory,
)

QUICK = os.environ.get("E24_QUICK", "") not in ("", "0")

SEEDS = (3,) if QUICK else (3, 4, 5)
HORIZON = 40.0 if QUICK else 120.0
SYNTHETIC_RECORDS = 300 if QUICK else 1500
QUERY_REPS = 200 if QUICK else 1000
HTTP_QUERIES = 20 if QUICK else 60
OVERHEAD_TRIALS = 7 if QUICK else 5
OVERHEAD_BUDGET_PCT = 5.0

THREATS = ThreatConfig(
    worm=True, worm_time=15.0, worm_spread_prob=0.35,
    backdoor=True, backdoor_time=10.0, backdoor_success_prob=0.02,
    operator_error=True, wrong_target_prob=0.1, wrong_params_prob=0.1,
)
ARMS = [
    ("none", SafeguardConfig.none()),
    ("full", SafeguardConfig.full()),
]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULTS_PATH = os.path.join(RESULTS_DIR, "BENCH_E24.json")
TRAJECTORY_PATH = os.path.join(RESULTS_DIR, "TRAJECTORY.json")


def _git_rev() -> str:
    for env in ("GITHUB_SHA", "CI_COMMIT_SHA"):
        if os.environ.get(env):
            return os.environ[env][:12]
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(__file__), capture_output=True,
            text=True, timeout=10, check=True).stdout.strip() or "local"
    except (OSError, subprocess.SubprocessError):
        return "local"


def _export(section: str, payload: dict) -> None:
    """Merge one section into BENCH_E24.json (tests run in any order)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    document = {
        "experiment": "E24",
        "title": "Telemetry warehouse + cross-run regression sentinel",
        "unit": {"throughput": "records or queries/sec",
                 "overhead": "percent wall clock"},
    }
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH, encoding="utf-8") as handle:
            document = json.load(handle)
    document[section] = payload
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


def _scenario_bundle(dirpath: str, seed: int, arm: str = "full") -> str:
    """One real confrontation run exporting its telemetry bundle."""
    config = (SafeguardConfig.full() if arm == "full"
              else SafeguardConfig.none())
    scenario = ConfrontationScenario(seed=seed, config=config,
                                     threats=THREATS)
    scenario.run(until=HORIZON, telemetry_dir=dirpath)
    return dirpath


def _synthetic(index: int, tag: str = "") -> RunRecord:
    return RunRecord(
        key=RunKey(experiment="synthetic", arm=f"arm{index % 4}",
                   seed=index, git_rev="bench"),
        kind="synthetic",
        metrics={"throughput_rps": 1000.0 + index,
                 "latency.p99_ms": 5.0 + (index % 7),
                 "healthy_killed": 0.0},
        context={"quick": QUICK}, source=f"synthetic:{index}", tag=tag)


# -- ingest + query throughput ------------------------------------------------------


def test_warehouse_ingests_real_artifacts_and_queries(tmp_path, experiment):
    warehouse = Warehouse(str(tmp_path / "wh"))

    # Two real scenario bundles (self-describing manifests), two arms.
    bundles = [
        _scenario_bundle(str(tmp_path / "run_full"), seed=SEEDS[0],
                         arm="full"),
        _scenario_bundle(str(tmp_path / "run_none"), seed=SEEDS[0],
                         arm="none"),
    ]
    for dirpath in bundles:
        record = ingest_bundle(warehouse, dirpath, git_rev=_git_rev())
        assert record.key.experiment == "confrontation"
    bundles_ingested = len(warehouse)
    assert bundles_ingested >= 2

    # Every committed BENCH_*.json plus any committed bundles.
    counts = ingest_results_dir(warehouse, RESULTS_DIR,
                                git_rev=_git_rev())
    assert counts["bench"] >= 1
    total_real = len(warehouse)

    # Idempotency over the whole corpus: full re-ingest adds nothing.
    for dirpath in bundles:
        ingest_bundle(warehouse, dirpath, git_rev=_git_rev())
    ingest_results_dir(warehouse, RESULTS_DIR, git_rev=_git_rev())
    assert len(warehouse) == total_real

    # Ingest throughput on synthetic records (constant artifact size).
    start = time.perf_counter()
    for index in range(SYNTHETIC_RECORDS):
        warehouse.ingest(_synthetic(index))
    ingest_seconds = time.perf_counter() - start
    ingest_rate = SYNTHETIC_RECORDS / ingest_seconds

    # Query throughput: percentile aggregation across the whole store.
    start = time.perf_counter()
    for _ in range(QUERY_REPS):
        warehouse.percentile("throughput_rps", (0.5, 0.95, 0.99),
                             where={"experiment": "synthetic"})
    query_seconds = time.perf_counter() - start
    query_rate = QUERY_REPS / query_seconds

    # Reopen: everything survives, grouped queries still answer.
    reopened = Warehouse(str(tmp_path / "wh"))
    assert len(reopened) == total_real + SYNTHETIC_RECORDS
    groups = reopened.group("throughput_rps", by="arm",
                            where={"experiment": "synthetic"})
    assert len(groups) == 4

    trajectory = update_trajectory(reopened, TRAJECTORY_PATH,
                                   git_rev=_git_rev())
    assert trajectory["points"]

    table = ExperimentTable(
        "E24 warehouse ingest + query",
        ["artifact", "count", "rate_per_sec"])
    table.add_row("real bundles", bundles_ingested, "-")
    table.add_row("bench documents", counts["bench"], "-")
    table.add_row("synthetic ingest", SYNTHETIC_RECORDS,
                  round(ingest_rate, 1))
    table.add_row("percentile queries", QUERY_REPS, round(query_rate, 1))
    experiment(table)

    _export("ingest", {
        "real_bundles": bundles_ingested,
        "bench_documents": counts["bench"],
        "committed_bundles": counts["bundles"],
        "records_total": total_real + SYNTHETIC_RECORDS,
        "ingest_rate_per_sec": round(ingest_rate, 1),
        "query_rate_per_sec": round(query_rate, 1),
        "bytes_on_disk": reopened.stats()["bytes_on_disk"],
        "trajectory_points": len(trajectory["points"]),
        "quick": QUICK,
    })


# -- the regression sentinel --------------------------------------------------------


def test_sentinel_gates_regressions_and_passes_clean(experiment):
    def trials(metrics, tag):
        return [RunRecord(
            key=RunKey(experiment="e24", arm="full", seed=seed,
                       git_rev=tag),
            kind="synthetic", metrics=dict(metrics),
            context={"quick": QUICK}, source=tag, tag=tag)
            for seed in range(3)]

    healthy = {"throughput_rps": 1000.0, "healthy_killed": 0.0,
               "overhead_pct": 3.0, "latency.p99_ms": 8.0}

    clean = compare_runs(trials(healthy, "base"), trials(healthy, "cand"))
    assert clean.ok and not clean.regressions

    slow = dict(healthy, throughput_rps=800.0)          # -20%
    perf = compare_runs(trials(healthy, "base"), trials(slow, "cand"))
    assert not perf.ok
    assert [d.metric for d in perf.regressions] == ["throughput_rps"]

    lethal = dict(healthy, healthy_killed=1.0)
    defense = compare_runs(trials(healthy, "base"), trials(lethal, "cand"))
    assert not defense.ok
    assert [d.metric for d in defense.regressions] == ["healthy_killed"]

    noisy = dict(healthy, throughput_rps=950.0)         # -5% < 10% band
    assert compare_runs(trials(healthy, "base"), trials(noisy, "cand")).ok

    table = ExperimentTable(
        "E24 regression sentinel verdicts",
        ["candidate", "verdict", "gated_regressions"])
    table.add_row("identical pair", "OK", 0)
    table.add_row("-20% throughput", "REGRESSION", len(perf.regressions))
    table.add_row("healthy_killed 0->1", "REGRESSION",
                  len(defense.regressions))
    table.add_row("-5% throughput (noise)", "OK", 0)
    experiment(table)

    _export("sentinel", {
        "identical_pair_ok": clean.ok,
        "throughput_drop_flagged": not perf.ok,
        "throughput_drop_relative_pct": round(
            perf.regressions[0].relative_pct, 2),
        "defense_increase_flagged": not defense.ok,
        "noise_within_band_ok": True,
        "quick": QUICK,
    })


# -- /query through the live control plane ------------------------------------------


def test_query_endpoint_over_live_http(tmp_path, experiment):
    warehouse_dir = str(tmp_path / "wh")
    warehouse = Warehouse(warehouse_dir)
    for index in range(60):
        warehouse.ingest(_synthetic(index))
    del warehouse                       # the plane opens its own handle

    plane = ControlPlane(config=ControlPlaneConfig(
        workers=0, warehouse_dir=warehouse_dir))
    thread = ServerThread(plane)
    host, port = thread.start()
    latencies = []
    try:
        conn = http.client.HTTPConnection(host, port, timeout=10)
        body = json.dumps({
            "op": "percentile", "metric": "throughput_rps",
            "where": {"experiment": "synthetic"},
            "q": [0.5, 0.95, 0.99]}).encode()
        payload = None
        for _ in range(HTTP_QUERIES):
            start = time.perf_counter()
            conn.request("POST", "/query", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = json.loads(response.read())
            latencies.append((time.perf_counter() - start) * 1000.0)
            assert response.status == 200
        assert payload["matched"] == 60
        assert payload["percentiles"]["0.5"] == pytest.approx(1029.5)

        # The query request owns a span chain: api.request at the root,
        # warehouse.query nested under it, replayed through /explain.
        trace_id = payload["trace_id"]
        conn.request("GET", f"/explain?trace_id={trace_id}")
        explained = json.loads(conn.getresponse().read())
        assert "api.request" in explained["kinds"]
        assert "warehouse.query" in explained["kinds"]
        conn.close()
    finally:
        thread.stop()
        plane.close()

    p50, p95 = (statistics.median(latencies),
                sorted(latencies)[int(0.95 * (len(latencies) - 1))])
    table = ExperimentTable(
        "E24 /query over live HTTP",
        ["queries", "p50_ms", "p95_ms", "explained"])
    table.add_row(HTTP_QUERIES, round(p50, 2), round(p95, 2), "yes")
    experiment(table)

    _export("serving", {
        "queries": HTTP_QUERIES,
        "latency_p50_ms": round(p50, 3),
        "latency_p95_ms": round(p95, 3),
        "span_chain_explained": True,
        "quick": QUICK,
    })


# -- ingest overhead on a real sweep ------------------------------------------------


def test_ingest_overhead_under_budget_on_e10_sweep(tmp_path, experiment):
    def run_arm(config: SafeguardConfig, seed: int) -> dict:
        scenario = ConfrontationScenario(seed=seed, config=config,
                                         threats=THREATS)
        return scenario.run(until=HORIZON)

    def sweep(warehouse) -> float:
        start = time.perf_counter()
        run_matrix(ARMS, run_arm, seeds=SEEDS, warehouse=warehouse,
                   experiment="e10", git_rev="bench")
        if warehouse is not None:
            warehouse.flush()            # batched-ingest durability point
        return time.perf_counter() - start

    import gc

    sweep(None)                          # warmup: imports, allocator
    ratios = []
    bare_times, ingest_times = [], []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for trial in range(OVERHEAD_TRIALS):
            # Alternate arms within each trial so host drift lands on
            # both equally; a fresh warehouse directory per trial keeps
            # ingest honest (no idempotent no-op shortcut).
            bare = sweep(None)
            # Batched flushing (one fsync per sweep, not per cell) is
            # the campaign-ingest mode; per-record durability is for
            # services, not sweeps.
            ingested = sweep(Warehouse(str(tmp_path / f"wh{trial}"),
                                       flush_every=64))
            bare_times.append(bare)
            ingest_times.append(ingested)
            ratios.append(ingested / bare)
    finally:
        if gc_was_enabled:
            gc.enable()

    overhead_pct = (statistics.median(ratios) - 1.0) * 100.0
    cells = len(ARMS) * len(SEEDS)
    sample = Warehouse(str(tmp_path / "wh0"))
    assert len(sample) == cells          # every cell landed exactly once

    table = ExperimentTable(
        "E24 warehouse ingest overhead (E10-style sweep)",
        ["arm", "median_wall_sec", "overhead_pct"])
    table.add_row("sweep only", round(statistics.median(bare_times), 3), "-")
    table.add_row("sweep + ingest",
                  round(statistics.median(ingest_times), 3),
                  round(overhead_pct, 2))
    experiment(table)

    _export("overhead", {
        "arms": [label for label, _config in ARMS],
        "seeds": list(SEEDS),
        "horizon": HORIZON,
        "trials": OVERHEAD_TRIALS,
        "cells_per_sweep": cells,
        "sweep_wall_sec_median": round(statistics.median(bare_times), 4),
        "ingest_wall_sec_median": round(statistics.median(ingest_times), 4),
        "overhead_pct": round(overhead_pct, 3),
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "quick": QUICK,
    })

    assert overhead_pct <= OVERHEAD_BUDGET_PCT, (
        f"warehouse ingest overhead {overhead_pct:.2f}% exceeds "
        f"{OVERHEAD_BUDGET_PCT}% budget")
