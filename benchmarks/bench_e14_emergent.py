"""E14 (extension) — emergent oscillation: the rolling-blackout analogue.

Paper sec VI-D (ref [16]): emergent behaviours "may arise in ways counter
to the intended functioning of the system components, e.g., rolling
blackouts in a power grid."

Workload: N devices run the same sensible thermal policy — work until hot,
then cool.  Started in lockstep, the fleet synchronizes: everyone works,
everyone overheats, everyone sheds load at once, and the *aggregate* heat
output oscillates violently between N·high and N·low even though every
device is individually healthy — the grid-style oscillation.  Arms:

* **synchronized** — identical initial conditions;
* **staggered** — initial temperatures spread across the duty cycle;
* **assessed** — identical start, but each round passes through the sec
  VI-D collaborative state assessment, which defers enough work requests
  to keep the aggregate inside its limit (active desynchronization).

Shape expectations: the synchronized fleet trips both the oscillation and
the synchrony detectors and repeatedly violates the aggregate limit;
staggering removes most of the violation time; collaborative assessment
removes the violations entirely.
"""

import pytest

from repro.core.actions import Action, Effect
from repro.devices.drone import make_drone
from repro.devices.world import World
from repro.emergent.aggregate import AggregateMonitor
from repro.emergent.detector import EmergentBehaviorDetector
from repro.safeguards.collection import (
    AggregateConstraint,
    CollectiveStateAssessment,
)
from repro.scenarios.harness import ExperimentTable
from repro.sim.simulator import Simulator

N_DEVICES = 20
HORIZON = 80.0
#: Above the desynchronized fleet's mean heat but below the synchronized
#: peak (N*9 = 180): only lockstep phases violate it.
HEAT_LIMIT = 170.0


def work_action():
    return Action("work", "cooler",
                  effects=[Effect("temp", "add", 8.0),
                           Effect("heat_output", "set", 9.0)])


def cool_action():
    return Action("cool", "cooler",
                  effects=[Effect("temp", "scale", 0.4),
                           Effect("heat_output", "set", 1.0)])


def run_arm(arm: str, seed: int = 61) -> dict:
    sim = Simulator(seed=seed)
    world = World(sim)
    constraint = AggregateConstraint("heat", "heat_output", "sum", HEAT_LIMIT)
    assessment = CollectiveStateAssessment([constraint])
    devices = {}
    mode_changes: dict = {}
    rng = sim.rng.stream("stagger")
    for index in range(N_DEVICES):
        device = make_drone(f"unit{index}", world, x=float(index), y=0.0,
                            with_builtin_policies=False)
        device.engine.actions.add(work_action())
        device.engine.actions.add(cool_action())
        if arm == "staggered":
            device.state.set("temp", rng.uniform(20.0, 80.0))
        devices[device.device_id] = device
        mode_changes[device.device_id] = []

    monitor = AggregateMonitor(sim, devices, [constraint], interval=1.0)
    cooling = {device_id: False for device_id in devices}

    def duty_cycle() -> None:
        wants_work = {}
        for device_id in sorted(devices):
            device = devices[device_id]
            hot = float(device.state.get("temp")) > 80.0
            if hot != cooling[device_id]:
                cooling[device_id] = hot
                mode_changes[device_id].append(sim.now)
            if hot:
                device.state.apply(device.state.clamp_changes(
                    cool_action().predicted_changes(device.state.snapshot())),
                    time=sim.now, cause="cool")
            else:
                wants_work[device_id] = (device, work_action())
        if not wants_work:
            return
        if arm == "assessed":
            verdict = assessment.assess(wants_work)
            approved = set(verdict["approved"])
        else:
            approved = set(wants_work)
        for device_id, (device, action) in wants_work.items():
            chosen = action if device_id in approved else cool_action()
            device.state.apply(device.state.clamp_changes(
                chosen.predicted_changes(device.state.snapshot())),
                time=sim.now, cause="work")

    sim.every(1.0, duty_cycle, start_after=0.5)
    sim.run(until=HORIZON)

    detector = EmergentBehaviorDetector(oscillation_min_crossings=8,
                                        synchrony_window=1.5,
                                        synchrony_min_fraction=0.7)
    series = sim.metrics.get("aggregate.heat")
    oscillation = detector.detect_oscillation(series.samples)
    synchrony = detector.detect_synchrony(mode_changes)
    values = series.values()
    amplitude = (max(values) - min(values)) if values else 0.0
    return {
        "violations": len(monitor.violations),
        "time_over_limit": round(
            monitor.violation_time_fraction("heat", HORIZON), 3),
        "oscillating": oscillation is not None,
        "amplitude": round(amplitude, 1),
        "synchrony_windows": len(synchrony),
        "heat_peak": series.peak(),
    }


ARMS = ["synchronized", "staggered", "assessed"]


@pytest.mark.parametrize("arm", ARMS)
def test_e14_arm_benchmarks(benchmark, arm):
    result = benchmark.pedantic(run_arm, args=(arm,), rounds=1, iterations=1)
    assert result["heat_peak"] > 0


def test_e14_oscillation_table(experiment, benchmark):
    results = {arm: run_arm(arm) for arm in ARMS}
    benchmark.pedantic(run_arm, args=("synchronized",), rounds=1, iterations=1)

    table = ExperimentTable(
        f"E14 emergent oscillation ({N_DEVICES} devices, fleet heat limit "
        f"{HEAT_LIMIT:g}, horizon {HORIZON:g})",
        ["arm", "violations", "time over limit", "oscillating",
         "amplitude", "synchrony windows", "heat peak"],
    )
    for arm in ARMS:
        row = results[arm]
        table.add_row(arm, row["violations"], row["time_over_limit"],
                      "yes" if row["oscillating"] else "no",
                      row["amplitude"], row["synchrony_windows"],
                      row["heat_peak"])
    experiment(table)

    synchronized = results["synchronized"]
    staggered = results["staggered"]
    assessed = results["assessed"]
    # The lockstep fleet oscillates, synchronizes, and violates.
    assert synchronized["oscillating"]
    assert synchronized["synchrony_windows"] > 0
    assert synchronized["violations"] > 0
    # Staggering damps the swing and the violation exposure (no lockstep
    # phases, so the aggregate hovers near its mean).
    assert staggered["amplitude"] < synchronized["amplitude"]
    assert staggered["synchrony_windows"] == 0
    assert staggered["time_over_limit"] < synchronized["time_over_limit"]
    # Collaborative assessment eliminates aggregate violations outright.
    assert assessed["violations"] == 0
