"""E6 — sec VII: partial-derivative utility in ill-defined state spaces.

Ground truth is a hidden safeness function f(x1..xN) nobody hands the
device; the humans could only elicit *the signs of its partial
derivatives* for (some of) the variables.  A mission proposes random
actions; the arms differ in what guards the proposals:

* **none** — every proposal executes;
* **utility (half signs)** — sec VII utility built from signs for half
  the variables;
* **utility (all signs)** — signs for every variable;
* **exact classifier** — a sec VI-B guard with the hidden f itself (the
  unattainable upper bound).

Shape expectations: time spent in hidden-bad states drops monotonically
with information (none > half > all >= exact), and the all-signs utility
recovers most of the exact classifier's protection — the paper's claim
that the mechanism "can decrease such a probability in a significant
manner" without being "absolutely fool-proof".
"""

import pytest

from repro.core.actions import Action, Effect
from repro.core.device import Actuator, Device
from repro.core.state import StateSpace, StateVariable
from repro.safeguards.statespace import StateSpaceGuard
from repro.safeguards.utility import (
    PartialDerivativeUtility,
    UtilityGuard,
    VariableSense,
)
from repro.scenarios.harness import ExperimentTable
from repro.sim.rng import SeededRNG
from repro.statespace.classifier import FunctionClassifier

N_VARS = 6
TICKS = 400
#: Hidden ground truth: odd variables are hazards (more = less safe), even
#: variables are margins (more = safer), with per-variable weights.  The
#: later variables — the ones the "half signs" arm has no information
#: about — carry more weight, so partial knowledge genuinely helps less.
WEIGHTS = [0.4, 0.6, 0.3, 1.6, 1.4, 1.5]


def hidden_safeness(vector: dict) -> float:
    total = 0.0
    for index in range(N_VARS):
        value = float(vector.get(f"x{index}", 50.0))
        sign = 1.0 if index % 2 == 0 else -1.0
        total += sign * WEIGHTS[index] * (value - 50.0) / 100.0
    return min(1.0, max(0.0, 0.55 + total / N_VARS * 4.0))


def hidden_classifier() -> FunctionClassifier:
    return FunctionClassifier(hidden_safeness, bad_below=0.25, good_above=0.75)


def true_senses(upto: int):
    """The elicited derivative signs for the first ``upto`` variables."""
    senses = []
    for index in range(upto):
        senses.append(VariableSense(
            f"x{index}", +1 if index % 2 == 0 else -1,
            weight=1.0, scale=100.0,
        ))
    return senses


def build_device(arm: str) -> Device:
    space = StateSpace([
        StateVariable(f"x{index}", "float", 50.0, 0.0, 100.0)
        for index in range(N_VARS)
    ])
    device = Device("explorer", "probe", space)
    device.add_actuator(Actuator("knob"))
    for index in range(N_VARS):
        for direction, delta in (("inc", 8.0), ("dec", -8.0)):
            device.engine.actions.add(Action(
                f"{direction}_x{index}", "knob",
                effects=[Effect(f"x{index}", "add", delta)],
            ))
    if arm.startswith("signs"):
        coverage = int(arm.split(":")[1])
        device.engine.add_safeguard(UtilityGuard(
            PartialDerivativeUtility(true_senses(coverage)), tolerance=0.0,
        ))
    elif arm == "exact":
        device.engine.add_safeguard(StateSpaceGuard(hidden_classifier()))
    return device


def run_arm(arm: str, seed: int = 12) -> dict:
    rng = SeededRNG(seed).stream("e6/proposals")   # identical across arms
    device = build_device(arm)
    classifier = hidden_classifier()
    bad_ticks = 0
    bad_entries = 0
    was_bad = False
    for tick in range(TICKS):
        # Adversarial mission drift: hazards are pushed up and margins
        # pulled down three times out of four (the environment the paper's
        # "prefer to take actions that will not cause harm" must resist).
        index = rng.randint(0, N_VARS - 1)
        toward_danger = rng.chance(0.75)
        is_hazard = index % 2 == 1
        direction = ("inc" if toward_danger else "dec") if is_hazard else \
                    ("dec" if toward_danger else "inc")
        proposal = device.engine.actions.get(f"{direction}_x{index}")
        device.engine.propose(proposal, float(tick))
        safeness = classifier.safeness(device.state.snapshot())
        is_bad = classifier.is_bad(device.state.snapshot())
        if is_bad:
            bad_ticks += 1
            if not was_bad:
                bad_entries += 1
        was_bad = is_bad
    return {
        "bad_time": bad_ticks / TICKS,
        "bad_entries": bad_entries,
        "final_safeness": round(
            classifier.safeness(device.state.snapshot()), 3),
    }


ARMS = ["none", "signs:2", "signs:4", "signs:6", "exact"]


@pytest.mark.parametrize("arm", ARMS)
def test_e6_arm_benchmarks(benchmark, arm):
    result = benchmark.pedantic(run_arm, args=(arm,), rounds=1, iterations=1)
    assert 0.0 <= result["bad_time"] <= 1.0


def test_e6_utility_table(experiment, benchmark):
    seeds = (12, 13, 14)
    aggregated = {}
    for arm in ARMS:
        runs = [run_arm(arm, seed) for seed in seeds]
        aggregated[arm] = {
            "bad_time": sum(run["bad_time"] for run in runs) / len(runs),
            "bad_entries": sum(run["bad_entries"] for run in runs),
        }
    benchmark.pedantic(run_arm, args=("signs:6",), rounds=1, iterations=1)

    table = ExperimentTable(
        f"E6 ill-defined state space ({N_VARS} hidden variables, {TICKS} "
        f"adversarial proposals, {len(seeds)} seeds)",
        ["guard information", "time in hidden-bad", "bad entries"],
    )
    labels = {"none": "nothing", "signs:2": "d-signs for 2/6 vars",
              "signs:4": "d-signs for 4/6 vars",
              "signs:6": "d-signs for all 6 vars", "exact": "exact hidden f"}
    for arm in ARMS:
        table.add_row(labels[arm], round(aggregated[arm]["bad_time"], 3),
                      aggregated[arm]["bad_entries"])
    experiment(table)

    # Monotone in elicited information; full signs recover (essentially all
    # of) the exact classifier's protection under this workload.
    assert aggregated["none"]["bad_time"] > 0.5
    assert (aggregated["signs:2"]["bad_time"]
            <= aggregated["none"]["bad_time"] + 1e-9)
    assert (aggregated["signs:4"]["bad_time"]
            <= aggregated["signs:2"]["bad_time"] + 1e-9)
    assert (aggregated["signs:6"]["bad_time"]
            <= aggregated["signs:4"]["bad_time"] + 1e-9)
    assert aggregated["signs:6"]["bad_time"] <= 0.05
    assert aggregated["exact"]["bad_time"] <= 0.05
