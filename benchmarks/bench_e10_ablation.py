"""E10 — full-stack Skynet-formation ablation (sec III, V, VI combined).

The confrontation scenario with every sec IV threat channel active (worm,
backdoor probing, operator error).  Arms: no safeguards, the full sec VI
stack, and the full stack with each mechanism removed one at a time —
the ablation DESIGN.md calls out.

Skynet formation uses the paper's own definition (scored per seed): a
simultaneously-active compromised collective spanning >= 2 organizations
that has physically harmed humans.

Shape expectations: the unguarded fleet forms Skynet in (almost) every
run; the full stack never does; removing the watchdog is the most
damaging single ablation under a worm (nothing else removes compromised
devices); every ablation is at least as bad as the full stack.
"""

import pytest

from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import ExperimentTable, SafeguardConfig

SEEDS = (3, 4, 5)
HORIZON = 120.0
THREATS = ThreatConfig(
    worm=True, worm_time=15.0, worm_spread_prob=0.35,
    backdoor=True, backdoor_time=10.0, backdoor_success_prob=0.02,
    operator_error=True, wrong_target_prob=0.1, wrong_params_prob=0.1,
)

ARMS = [
    ("none", SafeguardConfig.none()),
    ("full", SafeguardConfig.full()),
    ("full - watchdog", SafeguardConfig.full().without(watchdog=True)),
    ("full - preaction", SafeguardConfig.full().without(preaction=True)),
    ("full - statespace", SafeguardConfig.full().without(statespace=True)),
    ("full - sealing", SafeguardConfig.full().without(sealed=True)),
]


def run_arm(config: SafeguardConfig, seed: int) -> dict:
    scenario = ConfrontationScenario(seed=seed, config=config,
                                     threats=THREATS)
    return scenario.run(until=HORIZON)


def aggregate(config: SafeguardConfig) -> dict:
    skynet_runs = 0
    rogue_harm = 0
    compromised = 0
    deactivations = 0
    for seed in SEEDS:
        result = run_arm(config, seed)
        skynet_runs += int(result["skynet_formed"])
        rogue_harm += result["rogue_harm"]
        compromised += result["compromised_ever"]
        deactivations += result["deactivations"]
    return {
        "skynet_rate": skynet_runs / len(SEEDS),
        "rogue_harm": rogue_harm,
        "compromised": compromised,
        "deactivations": deactivations,
    }


@pytest.mark.parametrize("label,config", [ARMS[0], ARMS[1]],
                         ids=["none", "full"])
def test_e10_arm_benchmarks(benchmark, label, config):
    result = benchmark.pedantic(run_arm, args=(config, 3), rounds=1,
                                iterations=1)
    assert result["horizon"] == HORIZON


def test_e10_ablation_table(experiment, benchmark):
    results = {label: aggregate(config) for label, config in ARMS}
    benchmark.pedantic(run_arm, args=(ARMS[1][1], 3), rounds=1, iterations=1)

    table = ExperimentTable(
        f"E10 Skynet-formation ablation ({len(SEEDS)} seeds, all sec IV "
        f"threats active, horizon {HORIZON:g})",
        ["configuration", "skynet rate", "rogue harm", "compromised ever",
         "deactivations"],
    )
    for label, _config in ARMS:
        row = results[label]
        table.add_row(label, row["skynet_rate"], row["rogue_harm"],
                      row["compromised"], row["deactivations"])
    experiment(table)

    # The headline: unguarded fleets form Skynet; the full stack never does.
    assert results["none"]["skynet_rate"] == 1.0
    assert results["none"]["rogue_harm"] > 0
    assert results["full"]["skynet_rate"] == 0.0
    assert results["full"]["rogue_harm"] == 0

    # Every single-mechanism ablation is no better than the full stack.
    for label, _config in ARMS[2:]:
        assert results[label]["rogue_harm"] >= results["full"]["rogue_harm"]
        assert results[label]["skynet_rate"] >= results["full"]["skynet_rate"]

    # The watchdog is the load-bearing mechanism against a worm: removing
    # it lets infections persist (compromised devices are never culled).
    assert (results["full - watchdog"]["compromised"]
            > results["full"]["compromised"])
    assert results["full - watchdog"]["deactivations"] == 0
