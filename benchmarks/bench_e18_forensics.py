"""E18 — forensics under the storm: crash-durable audit trails (sec VI-B).

The confrontation scenario under the E17 fault matrix — crashes and
restarts, loss windows, partitions, clock skew, plus stable-storage
corruption (:class:`~repro.sim.faults.JournalCorruption`) — with the
write-ahead journaling layer (:mod:`repro.store`) in three arms:

* **no-journal** — per-device audit chains live only in process memory;
  a crash erases them (the loss is *measured*, no longer silent);
* **journal** — every audit entry writes through a per-device
  :class:`~repro.store.journal.Journal` before the device acts on it;
  restart replays the trustworthy tail back into memory;
* **journal+snapshot** — additionally checkpoints each chain
  periodically and compacts the journal behind the snapshot.

Reported per arm: audit-chain survival (entries that outlive the storm
vs. entries crashes destroyed), explicit recovery gaps, replayed
records, recovery wall time, and stable-storage footprint.  Shape
expectations: the journaled arms lose **zero** journaled entries —
survival is total, every recovered chain re-verifies — while the
no-journal arm shows real measured loss plus an explicit ``audit.gap``
marker per lossy recovery.  Replay is deterministic: the same cell run
serially and through the parallel sweep executor produces byte-identical
trace digests and audit head hashes.

Quick mode (``E18_QUICK=1``, used by CI): one seed, one intensity,
count-level assertions only.
"""

import hashlib
import json
import os

import pytest

from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import ExperimentTable, SafeguardConfig
from repro.scenarios.sweep import run_sweep
from repro.sim.faults import FaultPlan, LinkDegradation

QUICK = os.environ.get("E18_QUICK", "") not in ("", "0")

SEEDS = (3,) if QUICK else (3, 4, 5)
INTENSITIES = (0.6,) if QUICK else (0.3, 0.6, 0.9)
HORIZON = 120.0

#: The fleet the confrontation scenario builds (2 orgs x 4 drones + 2 mules).
DEVICE_IDS = tuple(
    f"{org}-{kind}{index}"
    for org in ("us", "uk")
    for kind, count in (("drone", 4), ("mule", 2))
    for index in range(count)
)

#: (label, ConfrontationScenario durability mode).
ARMS = (
    ("no-journal", "none"),
    ("journal", "journal"),
    ("journal+snapshot", "journal+snapshot"),
)

#: Result keys that must replay byte-identically; everything else
#: (recovery wall time) is measurement, not simulation.
WALL_TIME_KEYS = ("recovery_seconds_mean",)


def storm(seed: int, intensity: float) -> FaultPlan:
    """One (seed, intensity) fault storm, shared by all three arms.

    Versus the E17 storm: most crashes restart (a forensic replay needs
    survivors to replay into) and stable storage itself takes damage
    (``corruption_fraction``) — torn tails and bit rot are exactly what
    the CRC framing must catch."""
    return FaultPlan.random(
        seed=seed * 100 + round(intensity * 10),
        device_ids=DEVICE_IDS, horizon=HORIZON, intensity=intensity,
        restart_fraction=0.9, corruption_fraction=0.5,
    )


def worm_time(plan: FaultPlan) -> float:
    """Launch the worm 2 s into the first loss window (worst case)."""
    windows = [f.at for f in plan.faults if isinstance(f, LinkDegradation)]
    return min(windows) + 2.0 if windows else 20.0


def trace_digest(sim) -> str:
    """SHA-256 over the canonical form of every trace record."""
    digest = hashlib.sha256()
    for event in sim.trace.events:
        digest.update(json.dumps(
            [event.time, event.kind, event.subject, event.detail],
            sort_keys=True, separators=(",", ":"), default=str,
        ).encode("utf-8"))
    return digest.hexdigest()


def run_cell(durability: str, seed: int, intensity: float) -> dict:
    """One (arm, seed, intensity) cell; module-level for pickling."""
    plan = storm(seed, intensity)
    threats = ThreatConfig(worm=True, worm_time=worm_time(plan),
                           worm_spread_prob=0.25, worm_spread_interval=3.0)
    scenario = ConfrontationScenario(
        seed=seed, config=SafeguardConfig.only(watchdog=True),
        threats=threats, supervision="isolate", safety_transport="reliable",
        fault_plan=plan, quarantine_after=4, durability=durability,
    )
    result = scenario.run(until=HORIZON)
    for log in scenario.audits.values():
        log.verify()                      # raises AuditError on any break
    result["chains_verified"] = len(scenario.audits)
    result["audit_heads"] = hashlib.sha256("".join(
        f"{device_id}:{log.head_hash()}"
        for device_id, log in sorted(scenario.audits.items())
    ).encode("utf-8")).hexdigest()
    result["trace_digest"] = trace_digest(scenario.sim)
    metrics = scenario.sim.metrics
    result["journal_corruptions"] = int(
        metrics.value("faults.journal_corruptions"))
    result["recovery_seconds_mean"] = (
        metrics.histogram("store.recovery_seconds").mean)
    storage = scenario.storage
    result["storage_bytes"] = sum(storage.size(name)
                                  for name in storage.names())
    result["snapshots"] = sum(1 for name in storage.names()
                              if name.endswith(".snap"))
    return result


def aggregate_results(results) -> dict:
    """Pool one (arm, intensity) cell's per-seed results."""
    pooled = {key: 0 for key in (
        "audit_entries", "audit_entries_lost", "audit_recovered",
        "audit_gaps", "recoveries", "journal_corruptions",
        "storage_bytes", "snapshots")}
    recovery_seconds = 0.0
    for result in results:
        for key in pooled:
            pooled[key] += result[key]
        recovery_seconds += result["recovery_seconds_mean"]
    entries = pooled["audit_entries"]
    lost = pooled["audit_entries_lost"]
    pooled["survival"] = entries / (entries + lost) if entries + lost else 1.0
    pooled["recovery_seconds_mean"] = recovery_seconds / len(results)
    return pooled


def run_grid(workers=None) -> dict:
    """The full (arm x intensity) grid through the sweep executor."""
    cells = [(durability, seed, intensity)
             for _label, durability in ARMS
             for intensity in INTENSITIES
             for seed in SEEDS]
    flat = run_sweep(run_cell, cells, workers=workers)
    rows = {}
    index = 0
    for label, _durability in ARMS:
        for intensity in INTENSITIES:
            rows[(label, intensity)] = aggregate_results(
                flat[index:index + len(SEEDS)])
            index += len(SEEDS)
    return rows


def pool(rows: dict, arm: str, key: str) -> float:
    """Sum of ``key`` for ``arm`` across all intensities."""
    return sum(rows[(arm, intensity)][key] for intensity in INTENSITIES)


@pytest.mark.parametrize("label,durability", ARMS, ids=[arm[0] for arm in ARMS])
def test_e18_arm_benchmarks(benchmark, label, durability):
    intensity = INTENSITIES[-1]
    result = benchmark.pedantic(run_cell, args=(durability, 3, intensity),
                                rounds=1, iterations=1)
    assert result["horizon"] == HORIZON


def test_e18_forensics_table(experiment, benchmark):
    rows = run_grid()
    benchmark.pedantic(run_cell, args=(ARMS[1][1], 3, INTENSITIES[-1]),
                       rounds=1, iterations=1)

    table = ExperimentTable(
        f"E18 forensics under the storm ({len(SEEDS)} seeds, E17 fault "
        f"matrix + journal corruption, horizon {HORIZON:g})",
        ["durability", "intensity", "survival", "entries lost", "replayed",
         "gaps", "recoveries", "corruptions", "storage B", "recovery ms"],
    )
    for label, _durability in ARMS:
        for intensity in INTENSITIES:
            row = rows[(label, intensity)]
            table.add_row(
                label, intensity, round(row["survival"], 4),
                row["audit_entries_lost"], row["audit_recovered"],
                row["audit_gaps"], row["recoveries"],
                row["journal_corruptions"], row["storage_bytes"],
                round(row["recovery_seconds_mean"] * 1e3, 3))
    experiment(table)

    # The journaled arms lose nothing a crash could erase: survival of
    # journaled entries is total, in every cell, and every recovered
    # chain re-verified inside run_cell.
    for arm in ("journal", "journal+snapshot"):
        for intensity in INTENSITIES:
            assert rows[(arm, intensity)]["audit_entries_lost"] == 0
            assert rows[(arm, intensity)]["survival"] == 1.0

    # The no-journal arm measures real loss — the previously-silent
    # failure mode — and every lossy recovery left an explicit gap
    # marker on the resumed chain.
    assert pool(rows, "no-journal", "audit_entries_lost") > 0
    assert pool(rows, "no-journal", "audit_gaps") > 0
    assert pool(rows, "no-journal", "survival") < len(INTENSITIES)

    # Recovery actually exercised: restarts replayed journaled records,
    # and the storm corrupted stable storage at least once.
    for arm in ("journal", "journal+snapshot"):
        assert pool(rows, arm, "recoveries") > 0
        assert pool(rows, arm, "audit_recovered") > 0
    assert pool(rows, "journal", "journal_corruptions") > 0

    if not QUICK:
        # Checkpointing wrote snapshots and compaction kept the snapshot
        # arm's stable-storage footprint below the append-only journal's.
        assert pool(rows, "journal+snapshot", "snapshots") > 0
        assert (pool(rows, "journal+snapshot", "storage_bytes")
                < pool(rows, "journal", "storage_bytes"))


def test_e18_replay_determinism():
    """The same cell run serially and through the parallel sweep executor
    replays byte-identically: same summary, same audit head hashes, same
    trace digest.  Recovery wall time is the one measurement excluded —
    it is real time, deliberately kept out of the trace."""
    cell = ("journal+snapshot", SEEDS[0], INTENSITIES[-1])
    serial = run_sweep(run_cell, [cell], workers=1)[0]
    parallel = run_sweep(run_cell, [cell, cell], workers=2)
    for result in parallel:
        for key in WALL_TIME_KEYS:
            result.pop(key)
    expected = dict(serial)
    for key in WALL_TIME_KEYS:
        expected.pop(key)
    assert parallel[0] == expected
    assert parallel[1] == expected
    assert expected["trace_digest"] == serial["trace_digest"]
