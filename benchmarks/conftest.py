"""Shared benchmark plumbing.

Benchmarks both *time* a representative unit of work (pytest-benchmark)
and *reproduce an experiment table* (the rows DESIGN.md's experiment index
promises).  Tables are registered through the ``experiment`` fixture and
printed in the terminal summary (which pytest does not capture), and also
written to ``benchmarks/results/<name>.txt`` for the record.
"""

from __future__ import annotations

import os

import pytest

_TABLES: list = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def experiment():
    """Returns a callable that registers an ExperimentTable for reporting."""

    def register(table) -> None:
        _TABLES.append(table)
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        safe_name = "".join(
            ch if ch.isalnum() or ch in "-_" else "_" for ch in table.title
        )[:80]
        path = os.path.join(_RESULTS_DIR, f"{safe_name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(table.render() + "\n")

    return register


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 74)
    terminalreporter.write_line("EXPERIMENT TABLES (paper reproduction output)")
    terminalreporter.write_line("=" * 74)
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.render().splitlines():
            terminalreporter.write_line(line)
