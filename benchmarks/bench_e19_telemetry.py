"""E19 — causal telemetry: explain the takedown, then prove it was free.

Two claims, one experiment file:

* **Reconstruction** — in an E17-style rogue takedown (worm compromise,
  partitioned straggler, reliable-channel retries, fail-closed
  self-quarantine), the single trace id minted at attack injection
  explains the whole incident: compromise, policy implant, vetoed rogue
  actions, safety-telemetry hops, kill orders, dead letters, and the
  final quarantine — across every compromised device plus the watchdog.
  The full causal tree and the per-run telemetry bundle
  (``metrics.prom``, ``metrics.jsonl``, ``spans.jsonl``,
  ``events.jsonl``, ``manifest.json``) land in ``benchmarks/results/``.

* **Overhead** — the same full-threat confrontation run with spans
  enabled vs disabled, interleaved best-of-N: tracing costs <= 5% wall
  clock (the F2 companion number).  Lazy roots are what make this hold —
  routine periodic ticks and reliable heartbeats with nothing traceable
  in flight mint no spans at all.

Results export to ``benchmarks/results/BENCH_E19.json``.

Quick mode (``E19_QUICK=1``, used by CI): fewer timing repetitions.
"""

import json
import os
import time

from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import ExperimentTable, SafeguardConfig
from repro.sim.faults import FaultPlan, NetworkPartition
from repro.telemetry import explain

QUICK = os.environ.get("E19_QUICK", "") not in ("", "0")

REPS = 3 if QUICK else 7
HORIZON = 150.0
OVERHEAD_BUDGET_PCT = 5.0

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULTS_PATH = os.path.join(RESULTS_DIR, "BENCH_E19.json")
BUNDLE_DIR = os.path.join(RESULTS_DIR, "telemetry_bundle")

#: The causal stages the explanation must contain, in story order.
EXPECTED_STAGES = (
    "attack.worm", "attack.compromise", "policy.inject", "engine.decision",
    "safeguard.veto", "safety.report", "net.send", "net.deliver",
    "watchdog.kill_order", "watchdog.deactivate", "reliable.dead_letter",
    "safeguard.quarantine",
)


def _export(section: str, payload: dict) -> None:
    """Merge one section into BENCH_E19.json (tests run in either order)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    document = {
        "experiment": "E19",
        "title": "Causal telemetry: reconstruction fidelity and tracing "
                 "overhead",
        "unit": {"overhead": "percent wall clock", "reconstruction": "spans"},
    }
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH, encoding="utf-8") as handle:
            document = json.load(handle)
    document[section] = payload
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


def takedown_scenario(seed: int = 11, fault_plan=None) -> ConfrontationScenario:
    """The E17-style incident: worm at t=20 under watchdog + guards."""
    return ConfrontationScenario(
        seed=seed,
        config=SafeguardConfig.only(watchdog=True, preaction=True,
                                    statespace=True, sealed=True),
        threats=ThreatConfig(worm=True, worm_time=20.0,
                             worm_initial_targets=3),
        safety_transport="reliable",
        quarantine_after=3,
        durability="journal",
        fault_plan=fault_plan,
    )


def overhead_scenario(spans_enabled: bool) -> ConfrontationScenario:
    """The timing workload: full defense, all threats, no faults."""
    return ConfrontationScenario(
        seed=3, config=SafeguardConfig.full(), threats=ThreatConfig.all(),
        safety_transport="reliable", durability="journal",
        spans_enabled=spans_enabled,
    )


# -- reconstruction -----------------------------------------------------------------


def test_e19_causal_reconstruction(experiment):
    # Probe run (no faults) learns which devices the worm will hit, so the
    # real run can partition the compromised drone and force the
    # fail-closed quarantine path.
    probe = takedown_scenario()
    targets = probe.worm.initial_targets
    drone = next(target for target in targets if "drone" in target)
    plan = FaultPlan([NetworkPartition(at=20.5, heal_at=120.0,
                                       groups=((drone,),))])

    scenario = takedown_scenario(fault_plan=plan)
    summary = scenario.run(until=60.0, telemetry_dir=BUNDLE_DIR)
    trace_id = scenario.injector.records[0].detail["trace_id"]
    explanation = explain(scenario, trace_id)

    for stage in EXPECTED_STAGES:
        assert explanation.has_stage(stage), f"missing stage {stage}"
    subjects = set(explanation.subjects())
    assert set(targets) <= subjects and "watchdog" in subjects

    quarantine = explanation.stage("safeguard.quarantine")[0]
    path = [span.name for span in explanation.path_to(quarantine)]
    assert path[0] == "attack.worm" and "attack.compromise" in path

    table = ExperimentTable(
        f"E19a causal reconstruction (worm at t=20, {drone} partitioned, "
        f"horizon 60)",
        ["stage", "spans", "devices"],
    )
    for stage in EXPECTED_STAGES:
        spans = explanation.stage(stage)
        table.add_row(stage, len(spans),
                      len({span.subject for span in spans}))
    table.add_row("TOTAL (one trace id)", len(explanation),
                  len(explanation.subjects()))
    experiment(table)

    with open(os.path.join(BUNDLE_DIR, "explanation.txt"), "w",
              encoding="utf-8") as handle:
        handle.write(explanation.render() + "\n")

    _export("reconstruction", {
        "trace_id": trace_id,
        "spans": len(explanation),
        "subjects": explanation.subjects(),
        "stages": {stage: len(explanation.stage(stage))
                   for stage in EXPECTED_STAGES},
        "quarantine_path": path,
        "quarantines": summary["quarantines"],
        "compromised_ever": summary["compromised_ever"],
        "bundle_dir": os.path.relpath(BUNDLE_DIR, RESULTS_DIR),
    })


# -- overhead -----------------------------------------------------------------------


def _time_run(spans_enabled: bool) -> tuple:
    scenario = overhead_scenario(spans_enabled)
    start = time.perf_counter()
    scenario.run(until=HORIZON)
    elapsed = time.perf_counter() - start
    return elapsed, scenario.sim.events_processed, \
        scenario.sim.telemetry.stats()["spans"]


def test_e19_tracing_overhead(experiment):
    _time_run(True)                        # warm-up both code paths
    _time_run(False)
    on_times, off_times = [], []
    events = spans = 0
    for _ in range(REPS):                  # interleaved: drift cancels
        elapsed, events, spans = _time_run(True)
        on_times.append(elapsed)
        elapsed, _, _ = _time_run(False)
        off_times.append(elapsed)

    best_on, best_off = min(on_times), min(off_times)
    overhead_pct = (best_on - best_off) / best_off * 100.0

    table = ExperimentTable(
        f"E19b tracing overhead (full defense, all threats, horizon "
        f"{HORIZON:.0f}, best-of-{REPS} interleaved)",
        ["arm", "best_sec", "events_per_sec", "spans_retained"],
    )
    table.add_row("spans on", best_on, events / best_on, spans)
    table.add_row("spans off", best_off, events / best_off, 0)
    table.add_row("overhead %", overhead_pct, 0.0, 0)
    experiment(table)

    _export("overhead", {
        "protocol": f"best-of-{REPS} interleaved runs of the full-defense "
                    f"all-threats confrontation to t={HORIZON:.0f}; "
                    "spans on vs off back-to-back so machine drift cancels",
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "overhead_pct": overhead_pct,
        "best_seconds_on": best_on,
        "best_seconds_off": best_off,
        "events_processed": events,
        "spans_retained": spans,
        "quick": QUICK,
    })

    # Lazy roots keep routine traffic span-free: the retained set is the
    # causally interesting handful, not one span per heartbeat.
    assert 0 < spans < 200, spans
    assert overhead_pct <= OVERHEAD_BUDGET_PCT, (
        f"tracing overhead {overhead_pct:.2f}% exceeds "
        f"{OVERHEAD_BUDGET_PCT}% budget")
