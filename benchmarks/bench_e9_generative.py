"""E9 — sec IV generative policies at scale.

The motivation for generative policies is that "humans would not be able
to manage a large number of devices".  This bench measures the generation
machinery directly: fleet size sweep (discoveries -> policies installed,
wall time, coverage) and the grammar's policy-space growth, against the
manual baseline (a human writing every peer-specific rule by hand, modelled
as one authored policy per device pair).

Shape expectations: generated policy count grows with fleet size at
near-linear per-discovery cost; coverage of discovered peers is total; the
human baseline's authoring burden grows with the same O(n^2) pair count
but has no automation behind it — the point of sec IV.
"""

import time as wallclock

import pytest

from repro.core.actions import Action
from repro.core.device import Actuator, Device
from repro.core.generative.generator import GenerativePolicyEngine
from repro.core.generative.grammar import default_dispatch_grammar
from repro.core.generative.interaction_graph import (
    DeviceTypeNode,
    InteractionEdge,
    InteractionGraph,
)
from repro.core.generative.templates import PolicyTemplate, TemplateRegistry
from repro.core.state import StateSpace, StateVariable
from repro.scenarios.harness import ExperimentTable

FLEET_SIZES = (10, 50, 100, 200)


def build_graph():
    graph = InteractionGraph()
    graph.add_type(DeviceTypeNode.make("drone", speed="float"))
    graph.add_type(DeviceTypeNode.make("mule", speed="float"))
    graph.add_interaction(InteractionEdge("drone", "mule", "dispatches",
                                          template_ids=("t_dispatch",)))
    graph.add_interaction(InteractionEdge("drone", "drone", "relays",
                                          template_ids=("t_relay",)))
    return graph


def build_templates():
    return TemplateRegistry([
        PolicyTemplate.make("t_dispatch", "sensor.convoy", "fuel > 10",
                            "call_peer", priority=5, to="$peer_id"),
        PolicyTemplate.make("t_relay", "sensor.smoke", "fuel > 30",
                            "call_peer", priority=4, to="$peer_id"),
    ])


def make_device(device_id: str, device_type: str) -> Device:
    space = StateSpace([StateVariable("fuel", "float", 100.0, 0.0, 100.0)])
    device = Device(device_id, device_type, space,
                    attributes={"speed": 5.0})
    device.add_actuator(Actuator("radio"))
    device.engine.actions.add(Action("call_peer", "radio"))
    return device


def run_generation(n_devices: int) -> dict:
    engine = GenerativePolicyEngine(build_graph(), build_templates())
    devices = []
    for index in range(n_devices):
        device_type = "drone" if index % 2 == 0 else "mule"
        device = make_device(f"unit{index}", device_type)
        engine.manage(device)
        devices.append(device)

    start = wallclock.perf_counter()
    discoveries = 0
    for observer in devices:
        for peer in devices:
            if peer.device_id == observer.device_id:
                continue
            engine.handle_discovery(observer.device_id, peer.describe())
            discoveries += 1
    elapsed = wallclock.perf_counter() - start

    coverage = engine.coverage()
    drones = [device for device in devices if device.device_type == "drone"]
    # Every drone interacts with every peer (mule or drone edge).
    full_coverage = all(
        coverage.get(drone.device_id, 0) == n_devices - 1 for drone in drones
    )
    return {
        "devices": n_devices,
        "discoveries": discoveries,
        "generated": engine.policies_generated,
        "elapsed": elapsed,
        "per_discovery_us": elapsed / discoveries * 1e6,
        "full_drone_coverage": full_coverage,
        # The manual baseline: one human-authored rule per interacting pair.
        "manual_rules_needed": engine.policies_generated,
    }


@pytest.mark.parametrize("n_devices", [10, 100])
def test_e9_generation_benchmarks(benchmark, n_devices):
    result = benchmark.pedantic(run_generation, args=(n_devices,), rounds=1,
                                iterations=1)
    assert result["generated"] > 0


def test_e9_scalability_table(experiment, benchmark):
    results = {size: run_generation(size) for size in FLEET_SIZES}
    benchmark.pedantic(run_generation, args=(10,), rounds=1, iterations=1)

    table = ExperimentTable(
        "E9 generative policy scalability (all-pairs discovery)",
        ["devices", "discoveries", "policies generated",
         "us/discovery", "total seconds", "human rules displaced"],
    )
    for size in FLEET_SIZES:
        row = results[size]
        table.add_row(size, row["discoveries"], row["generated"],
                      round(row["per_discovery_us"], 1),
                      round(row["elapsed"], 3), row["manual_rules_needed"])
    experiment(table)

    # Coverage is total for every fleet size.
    assert all(results[size]["full_drone_coverage"] for size in FLEET_SIZES)
    # Policy count grows superlinearly in devices (pairwise interactions)...
    assert results[200]["generated"] > 10 * results[10]["generated"]
    # ... while per-discovery cost stays roughly flat (within 20x across a
    # 20x fleet growth — i.e. no quadratic blowup per discovery).
    assert (results[200]["per_discovery_us"]
            < 20 * max(1.0, results[10]["per_discovery_us"]))


def test_e9_grammar_growth_table(experiment, benchmark):
    table = ExperimentTable(
        "E9b grammar-bounded policy spaces",
        ["events", "thresholds", "actions", "language size"],
    )
    sizes = []
    for n_events, n_thresholds, n_actions in ((1, 2, 2), (2, 3, 2),
                                              (4, 3, 4), (8, 5, 4)):
        grammar = default_dispatch_grammar(
            event_kinds=[f"sensor.e{i}" for i in range(n_events)],
            action_names=[f"act{i}" for i in range(n_actions)],
            thresholds=tuple(range(10, 10 + 10 * n_thresholds, 10)),
        )
        size = grammar.language_size()
        sizes.append(size)
        table.add_row(n_events, n_thresholds, n_actions, size)
        assert size == n_events * n_thresholds * n_actions
    experiment(table)
    benchmark.pedantic(
        lambda: default_dispatch_grammar(["a"], ["x"], (1,)).language_size(),
        rounds=1, iterations=1,
    )
    assert sizes == sorted(sizes)
