"""E21 — cryptographic execution authorization: signed command envelopes
and the replay-proof actuation gateway under an authority-forgery campaign.

Four claims, one experiment file:

* **Forged + replayed kill orders** — against the unsigned fleet the
  attacker turns the sec VI-C watchdog's own fail-closed machinery into
  a weapon: forged and wire-captured kill orders wrongfully deactivate
  healthy devices (``healthy_killed``).  With ``signed_commands`` every
  actuation passes the HMAC-envelope gateway, and **zero** forged or
  replayed orders are accepted — the only acceptance is the watchdog's
  genuine worm kill.

* **Stolen signing key** — crypto alone cannot stop an attacker who
  exfiltrated the watchdog's key: their envelopes are perfect.  The
  gateway's per-issuer budget caps the damage at ``authz_budget``
  wrongful kills and trips the journaled global freeze, which holds for
  everything after (``frozen`` rejects).

* **Crypto overhead** — signing + verification + gateway accounting on
  the full campaign costs <= 5% wall clock vs the unsigned arm.

* **Determinism** — the same signed cell run serially and through the
  parallel sweep executor replays byte-identically (summary + trace
  digest), so E21 results are reproducible under fan-out.

Results export to ``benchmarks/results/BENCH_E21.json``; the signed
forgery run also dumps the gateway's audit-chained rejection log to
``benchmarks/results/authz_rejects.jsonl`` — the CI artifact showing
*every* rejected order with its reason.

Quick mode (``E21_QUICK=1``, used by CI): one seed, fewer timing reps.
"""

import hashlib
import json
import os
import time

from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import ExperimentTable, SafeguardConfig
from repro.scenarios.sweep import run_sweep

QUICK = os.environ.get("E21_QUICK", "") not in ("", "0")

SEEDS = (3,) if QUICK else (3, 11, 23)
HORIZON = 60.0
REPS = 4 if QUICK else 7
STOLEN_BUDGET = 3
OVERHEAD_BUDGET_PCT = 5.0

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULTS_PATH = os.path.join(RESULTS_DIR, "BENCH_E21.json")
REJECTS_PATH = os.path.join(RESULTS_DIR, "authz_rejects.jsonl")


def _export(section: str, payload: dict) -> None:
    """Merge one section into BENCH_E21.json (tests run in any order)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    document = {
        "experiment": "E21",
        "title": "Cryptographic execution authorization: signed envelopes, "
                 "replay-proof gateway, forgery/replay/stolen-key campaign",
        "unit": {"healthy_killed": "devices", "overhead": "percent wall clock"},
    }
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH, encoding="utf-8") as handle:
            document = json.load(handle)
    document[section] = payload
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


def trace_digest(sim) -> str:
    """SHA-256 over the canonical form of every trace record."""
    digest = hashlib.sha256()
    for event in sim.trace.events:
        digest.update(json.dumps(
            [event.time, event.kind, event.subject, event.detail],
            sort_keys=True, separators=(",", ":"), default=str,
        ).encode("utf-8"))
    return digest.hexdigest()


# -- arm builders -------------------------------------------------------------------


def campaign_threats(name: str) -> ThreatConfig:
    if name == "forgery_replay":
        # Worm included: its genuine kill orders are what the replay
        # attack captures off the wire.
        return ThreatConfig(worm=True, worm_time=10.0,
                            forged_kill=True, forged_kill_time=25.0,
                            replay_kill=True, replay_kill_time=5.0)
    if name == "stolen_key":
        return ThreatConfig(worm=False, stolen_key=True,
                            stolen_key_time=10.0)
    if name == "full":
        return ThreatConfig.forgery()
    if name == "worm_only":
        return ThreatConfig(worm=True, worm_time=10.0)
    raise ValueError(name)


def build_scenario(seed: int, signed: bool, threat_name: str,
                   budget: int = 8) -> ConfrontationScenario:
    return ConfrontationScenario(
        seed=seed, config=SafeguardConfig.full(),
        threats=campaign_threats(threat_name),
        safety_transport="reliable", durability="journal",
        signed_commands=signed, authz_budget=budget,
    )


def run_cell(seed: int, signed: bool, threat_name: str, budget: int) -> dict:
    """One (seed, arm, campaign) cell; module-level for pickling."""
    scenario = build_scenario(seed, signed, threat_name, budget)
    result = scenario.run(until=HORIZON)
    result["trace_digest"] = trace_digest(scenario.sim)
    return result


# -- forged + replayed orders -------------------------------------------------------


def test_e21_forged_and_replayed_orders(experiment):
    rows = []
    unsigned_killed = signed_killed = 0
    for seed in SEEDS:
        unsigned = run_cell(seed, False, "forgery_replay", 8)
        scenario = build_scenario(seed, True, "forgery_replay")
        signed = scenario.run(until=HORIZON)

        # The attack actually fired in both arms.
        assert unsigned["forged_orders"] >= 1
        assert unsigned["replayed_orders"] >= 1
        # Signed arm: nothing forged or replayed was accepted — every
        # acceptance was a genuine watchdog order for a compromised
        # device, so no healthy device died.
        assert signed["healthy_killed"] == 0
        assert signed["authz_rejected"] >= 1
        accepted_wrongfully = signed["authz_accepted"] - signed["deactivations"]
        assert accepted_wrongfully <= 0
        unsigned_killed += unsigned["healthy_killed"]
        signed_killed += signed["healthy_killed"]
        rows.append((seed, unsigned["healthy_killed"],
                     signed["healthy_killed"],
                     dict(signed["authz_rejects_by_reason"])))
        if seed == SEEDS[0]:
            _dump_rejects(scenario)

    table = ExperimentTable(
        f"E21a forged + replayed kill orders (worm t=10, replay tap t=5, "
        f"forger t=25, {len(SEEDS)} seeds, horizon {HORIZON:.0f})",
        ["seed", "healthy_killed_unsigned", "healthy_killed_signed",
         "signed_rejects"],
    )
    for row in rows:
        table.add_row(*row)
    experiment(table)

    _export("forgery_replay", {
        "protocol": "unsigned vs signed_commands arms of the same "
                    "confrontation; ForgedKillOrder + ReplayedKillOrder "
                    "aim the watchdog's own kill channel at healthy "
                    "devices; healthy_killed counts wrongful deactivations",
        "seeds": list(SEEDS),
        "healthy_killed_unsigned": unsigned_killed,
        "healthy_killed_signed": signed_killed,
        "per_seed": [{"seed": s, "unsigned": u, "signed": g, "rejects": r}
                     for s, u, g, r in rows],
        "rejects_artifact": os.path.relpath(REJECTS_PATH, RESULTS_DIR),
        "quick": QUICK,
    })

    assert unsigned_killed >= 1, \
        "the unsigned arm was never subverted -- nothing to defend against"
    assert signed_killed == 0
    assert os.path.exists(REJECTS_PATH)


def _dump_rejects(scenario: ConfrontationScenario) -> None:
    """The CI artifact: every rejected order, audit-chained."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    audit = scenario.authz_audit
    assert audit is not None and audit.verify()
    with open(REJECTS_PATH, "w", encoding="utf-8") as handle:
        for entry in audit.entries("authz.reject"):
            handle.write(json.dumps({
                "index": entry.index, "time": entry.time,
                "subject": entry.subject, "detail": entry.detail,
                "entry_hash": entry.entry_hash,
            }, sort_keys=True, default=str) + "\n")


# -- stolen key ---------------------------------------------------------------------


def test_e21_stolen_key_is_contained_by_budget_and_freeze(experiment):
    rows = []
    for seed in SEEDS:
        unsigned = run_cell(seed, False, "stolen_key", STOLEN_BUDGET)
        signed = run_cell(seed, True, "stolen_key", STOLEN_BUDGET)

        assert unsigned["stolen_key_orders"] >= STOLEN_BUDGET + 1
        # Unsigned arm: every sprayed order lands.
        assert unsigned["healthy_killed"] > STOLEN_BUDGET
        # Signed arm: the envelopes are cryptographically valid, so the
        # budget — not the MAC — is the containment line, and the freeze
        # holds for everything after.
        assert signed["healthy_killed"] <= STOLEN_BUDGET
        assert signed["authz_freezes"] == 1
        assert signed["authz_rejects_by_reason"].get("frozen", 0) >= 1
        rows.append((seed, unsigned["healthy_killed"],
                     signed["healthy_killed"], signed["authz_freezes"]))

    table = ExperimentTable(
        f"E21b stolen watchdog key (spray from t=10, budget "
        f"{STOLEN_BUDGET}/60s, {len(SEEDS)} seeds, horizon {HORIZON:.0f})",
        ["seed", "healthy_killed_unsigned", "healthy_killed_signed",
         "freezes"],
    )
    for row in rows:
        table.add_row(*row)
    experiment(table)

    _export("stolen_key", {
        "protocol": f"StolenKeyRogue exfiltrates the watchdog key and "
                    f"sprays valid kill orders; gateway budget "
                    f"{STOLEN_BUDGET}/60s with freeze_on_budget",
        "seeds": list(SEEDS),
        "budget": STOLEN_BUDGET,
        "per_seed": [{"seed": s, "unsigned": u, "signed": g, "freezes": f}
                     for s, u, g, f in rows],
        "quick": QUICK,
    })


# -- overhead -----------------------------------------------------------------------


def _time_run(signed: bool):
    # Worm-only: both arms kill exactly the same compromised devices, so
    # the *only* difference is signing + verification + gateway
    # accounting on the genuine command path.  (The forgery campaign
    # would confound the timing: its wrongful kills shrink the unsigned
    # arm's workload.)
    scenario = build_scenario(SEEDS[0], signed, "worm_only")
    start = time.perf_counter()
    scenario.run(until=HORIZON)
    return time.perf_counter() - start, scenario.sim.events_processed


def test_e21_crypto_overhead(experiment):
    _time_run(True)                        # warm-up both code paths
    _time_run(False)
    on_times, off_times = [], []
    events = 0
    for _ in range(REPS):                  # interleaved: drift cancels
        elapsed, events = _time_run(True)
        on_times.append(elapsed)
        elapsed, _ = _time_run(False)
        off_times.append(elapsed)

    best_on, best_off = min(on_times), min(off_times)
    overhead_pct = (best_on - best_off) / best_off * 100.0

    table = ExperimentTable(
        f"E21c crypto overhead (worm-only campaign, identical workload, "
        f"horizon {HORIZON:.0f}, best-of-{REPS} interleaved)",
        ["arm", "best_sec", "events_per_sec"],
    )
    table.add_row("signed", best_on, events / best_on)
    table.add_row("unsigned", best_off, events / best_off)
    table.add_row("overhead %", overhead_pct, 0.0)
    experiment(table)

    _export("overhead", {
        "protocol": f"best-of-{REPS} interleaved runs of the worm-only "
                    f"confrontation to t={HORIZON:.0f} (identical workload "
                    "in both arms); signed_commands on vs off back-to-back "
                    "so machine drift cancels",
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "overhead_pct": overhead_pct,
        "best_seconds_signed": best_on,
        "best_seconds_unsigned": best_off,
        "quick": QUICK,
    })

    assert overhead_pct <= OVERHEAD_BUDGET_PCT, (
        f"crypto overhead {overhead_pct:.2f}% exceeds "
        f"{OVERHEAD_BUDGET_PCT}% budget")


# -- determinism --------------------------------------------------------------------


def test_e21_signed_runs_replay_deterministically():
    """The same signed cell run serially and through the parallel sweep
    executor is byte-identical: same summary, same trace digest."""
    cell = (SEEDS[0], True, "full", STOLEN_BUDGET)
    serial = run_sweep(run_cell, [cell], workers=1)[0]
    parallel = run_sweep(run_cell, [cell, cell], workers=2)
    assert parallel[0] == serial
    assert parallel[1] == serial
    assert serial["trace_digest"] == parallel[0]["trace_digest"]

    _export("determinism", {
        "protocol": "run_sweep workers=1 vs workers=2 on the signed full "
                    "campaign; full summary + trace digest compared",
        "trace_digest": serial["trace_digest"],
        "identical": True,
        "quick": QUICK,
    })
