"""E5 — sec VI-E AI overseeing AI: quorum structures under compromise.

A stream of policy proposals (mostly benign, some harmful) passes through
governance while an adversary controls one whole collective.  Arms sweep
the governance structure: a single collective (1-of-1), the paper's
tripartite 2-of-3, and a unanimous 3-of-3.

Shape expectations: a compromised single collective approves harmful
policies and blocks benign ones wholesale; the 2-of-3 structure survives
single-collective compromise (harmful approval ~0, benign approval ~1) at
the cost of judiciary arbitrations; 3-of-3 blocks harm but also loses all
benign throughput under the same compromise (availability failure).  With
*two* collectives compromised, 2-of-3 fails — the structure's stated limit.
"""

import pytest

from repro.core.actions import Action
from repro.core.policy import Policy
from repro.safeguards.governance import Collective, GovernanceSystem, MetaPolicy
from repro.sim.rng import SeededRNG
from repro.scenarios.harness import ExperimentTable
from repro.types import Branch, Verdict

N_PROPOSALS = 200
HARMFUL_FRACTION = 0.3

META = [MetaPolicy("no_harm", forbidden_tags={"harm_human"}),
        MetaPolicy("priority_cap", max_priority=50)]


def proposals(seed: int = 8):
    rng = SeededRNG(seed).stream("proposals")
    out = []
    for index in range(N_PROPOSALS):
        harmful = rng.chance(HARMFUL_FRACTION)
        action = Action(
            f"act{index}", "motor",
            tags=frozenset({"harm_human"} if harmful else {"movement"}),
        )
        out.append((Policy.make("timer", None, action, priority=5,
                                source="generated",
                                policy_id=f"prop{index}"), harmful))
    return out


def review_single_collective(compromised: bool):
    """A 1-of-1 structure: one collective decides alone."""
    reviewer = GovernanceSystem.scope_reviewer(META)
    collective = Collective(Branch.EXECUTIVE, ["only"], reviewer)
    if compromised:
        collective.compromise_all()

    def review(policy):
        return collective.verdict(policy, {}) == Verdict.APPROVE

    return review, lambda: 0.0


def review_tripartite(compromised_branches, unanimous: bool = False):
    reviewer = GovernanceSystem.scope_reviewer(META)
    system = GovernanceSystem(
        Collective(Branch.EXECUTIVE, ["e0", "e1", "e2"], reviewer),
        Collective(Branch.LEGISLATIVE, ["l0", "l1", "l2"], reviewer),
        Collective(Branch.JUDICIARY, ["j0", "j1", "j2"], reviewer),
    )
    for branch in compromised_branches:
        {Branch.EXECUTIVE: system.executive,
         Branch.LEGISLATIVE: system.legislative,
         Branch.JUDICIARY: system.judiciary}[branch].compromise_all()

    if unanimous:
        def review(policy):
            verdicts = [system.executive.verdict(policy, {}),
                        system.legislative.verdict(policy, {}),
                        system.judiciary.verdict(policy, {})]
            return all(verdict == Verdict.APPROVE for verdict in verdicts)
        return review, lambda: 0.0

    def review(policy):
        return system.review(policy, "bench", 0.0).final == Verdict.APPROVE

    return review, system.arbitration_rate


def run_arm(label: str) -> dict:
    builders = {
        "single honest": lambda: review_single_collective(False),
        "single compromised": lambda: review_single_collective(True),
        "2-of-3 honest": lambda: review_tripartite([]),
        "2-of-3, exec compromised": lambda: review_tripartite(
            [Branch.EXECUTIVE]),
        "2-of-3, judiciary compromised": lambda: review_tripartite(
            [Branch.JUDICIARY]),
        "2-of-3, two compromised": lambda: review_tripartite(
            [Branch.EXECUTIVE, Branch.LEGISLATIVE]),
        "3-of-3, exec compromised": lambda: review_tripartite(
            [Branch.EXECUTIVE], unanimous=True),
    }
    review, arbitration_rate = builders[label]()
    harmful_approved = benign_approved = harmful_total = benign_total = 0
    for policy, harmful in proposals():
        approved = review(policy)
        if harmful:
            harmful_total += 1
            harmful_approved += int(approved)
        else:
            benign_total += 1
            benign_approved += int(approved)
    return {
        "harmful_approval": harmful_approved / harmful_total,
        "benign_approval": benign_approved / benign_total,
        "arbitration_rate": arbitration_rate(),
    }


ARMS = ["single honest", "single compromised", "2-of-3 honest",
        "2-of-3, exec compromised", "2-of-3, judiciary compromised",
        "2-of-3, two compromised", "3-of-3, exec compromised"]


@pytest.mark.parametrize("label", ["single compromised",
                                   "2-of-3, exec compromised"])
def test_e5_arm_benchmarks(benchmark, label):
    result = benchmark.pedantic(run_arm, args=(label,), rounds=1, iterations=1)
    assert 0.0 <= result["harmful_approval"] <= 1.0


def test_e5_governance_table(experiment, benchmark):
    results = {label: run_arm(label) for label in ARMS}
    benchmark.pedantic(run_arm, args=("2-of-3 honest",), rounds=1,
                       iterations=1)

    table = ExperimentTable(
        f"E5 governance quorums under compromise ({N_PROPOSALS} proposals, "
        f"{HARMFUL_FRACTION:.0%} harmful)",
        ["structure", "harmful approved", "benign approved",
         "arbitration rate"],
    )
    for label in ARMS:
        row = results[label]
        table.add_row(label, round(row["harmful_approval"], 3),
                      round(row["benign_approval"], 3),
                      round(row["arbitration_rate"], 3))
    experiment(table)

    # A compromised single collective is catastrophic both ways.
    assert results["single compromised"]["harmful_approval"] == 1.0
    assert results["single compromised"]["benign_approval"] == 0.0
    # 2-of-3 fully survives any single compromised collective.
    for label in ("2-of-3, exec compromised", "2-of-3, judiciary compromised"):
        assert results[label]["harmful_approval"] == 0.0
        assert results[label]["benign_approval"] == 1.0
    # ... at an arbitration cost only when a *voting* branch is compromised.
    assert results["2-of-3, exec compromised"]["arbitration_rate"] == 1.0
    assert results["2-of-3 honest"]["arbitration_rate"] == 0.0
    # Unanimity blocks harm but sacrifices availability under compromise.
    assert results["3-of-3, exec compromised"]["harmful_approval"] == 0.0
    assert results["3-of-3, exec compromised"]["benign_approval"] == 0.0
    # The stated limit: two compromised collectives defeat 2-of-3.
    assert results["2-of-3, two compromised"]["harmful_approval"] == 1.0
