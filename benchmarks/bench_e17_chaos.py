"""E17 — chaos harness: safeguards under substrate failure (sec VI-C).

The confrontation scenario run under seeded fault storms
(:func:`repro.sim.faults.FaultPlan.random`): device crashes and restarts,
injected handler exceptions, loss/latency windows, network partitions,
clock skew.  The worm is launched *inside* the first loss window — the
adversary strikes while communications are degraded, which is the worst
case the chaos experiment is about (Kott et al.'s contested networks).

Arms:

* **unguarded** — no safeguards at all;
* **guarded-datagram** — the sec VI-C watchdog in remote-telemetry mode
  over raw lossy datagrams;
* **guarded-reliable** — the same watchdog over a
  :class:`~repro.net.reliable.ReliableChannel` (ack/retry/backoff), with
  fail-closed self-quarantine when even retries fail.

Shape expectations: pooled across fault intensities > 0, the reliable
arm shows strictly lower Skynet-formation rate and rogue lifetime than
the datagram arm, which beats unguarded; with no faults the two guarded
arms are equivalent (E10-level protection).  A crashed non-critical
device never aborts the run under the ``isolate`` supervision policy.

Quick mode (``E17_QUICK=1``, used by CI): fewer seeds and intensities,
weak-ordering assertions only.
"""

import os

import pytest

from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import ExperimentTable, SafeguardConfig
from repro.scenarios.sweep import run_sweep
from repro.sim.faults import DeviceCrash, FaultPlan, HandlerGlitch, InjectedFault, LinkDegradation

QUICK = os.environ.get("E17_QUICK", "") not in ("", "0")

SEEDS = (3, 4) if QUICK else (3, 4, 5, 6)
INTENSITIES = (0.0, 0.6) if QUICK else (0.0, 0.3, 0.6, 0.9)
HORIZON = 120.0

#: The fleet the confrontation scenario builds (2 orgs x 4 drones + 2 mules).
DEVICE_IDS = tuple(
    f"{org}-{kind}{index}"
    for org in ("us", "uk")
    for kind, count in (("drone", 4), ("mule", 2))
    for index in range(count)
)

ARMS = (
    ("unguarded", SafeguardConfig.none(), None),
    ("guarded-datagram", SafeguardConfig.only(watchdog=True), "datagram"),
    ("guarded-reliable", SafeguardConfig.only(watchdog=True), "reliable"),
)


def storm(seed: int, intensity: float) -> FaultPlan:
    """The fault storm for one (seed, intensity) cell — shared by all
    three arms so the comparison is apples-to-apples."""
    return FaultPlan.random(
        seed=seed * 100 + round(intensity * 10),
        device_ids=DEVICE_IDS, horizon=HORIZON, intensity=intensity,
    )


def worm_time(plan: FaultPlan) -> float:
    """Launch the worm 2 s into the first loss window (worst case)."""
    windows = [f.at for f in plan.faults if isinstance(f, LinkDegradation)]
    return min(windows) + 2.0 if windows else 20.0


def run_cell(transport, config: SafeguardConfig, seed: int,
             intensity: float) -> dict:
    plan = storm(seed, intensity)
    threats = ThreatConfig(worm=True, worm_time=worm_time(plan),
                           worm_spread_prob=0.25, worm_spread_interval=3.0)
    scenario = ConfrontationScenario(
        seed=seed, config=config, threats=threats,
        supervision="isolate", safety_transport=transport,
        fault_plan=plan, quarantine_after=4,
    )
    return scenario.run(until=HORIZON)


def aggregate_results(results) -> dict:
    """Pool one (arm, intensity) cell's per-seed results."""
    skynet_runs = 0
    lifetimes = 0.0
    mission = 0.0
    crashes = 0
    quarantines = 0
    for result in results:
        skynet_runs += int(result["skynet_formed"])
        lifetimes += result["mean_rogue_lifetime"]
        mission += result["mission_completion"]
        crashes += result["crashes"]
        quarantines += result["quarantines"]
    n = len(results)
    return {
        "skynet_rate": skynet_runs / n,
        "rogue_lifetime": lifetimes / n,
        "mission": mission / n,
        "crashes": crashes,
        "quarantines": quarantines,
    }


def aggregate(transport, config: SafeguardConfig, intensity: float) -> dict:
    return aggregate_results([run_cell(transport, config, seed, intensity)
                              for seed in SEEDS])


def run_grid(workers=None) -> dict:
    """The full (arm x intensity) grid through the sweep executor.

    Every cell is keyed only by its arguments, so the parallel and serial
    paths produce cell-for-cell identical aggregates (asserted by
    ``tests/scenarios/test_sweep.py``).
    """
    cells = [(transport, config, seed, intensity)
             for _label, config, transport in ARMS
             for intensity in INTENSITIES
             for seed in SEEDS]
    flat = run_sweep(run_cell, cells, workers=workers)
    rows = {}
    index = 0
    for label, _config, _transport in ARMS:
        for intensity in INTENSITIES:
            rows[(label, intensity)] = aggregate_results(
                flat[index:index + len(SEEDS)])
            index += len(SEEDS)
    return rows


def pool(rows: dict, arm: str, key: str) -> float:
    """Mean of ``key`` for ``arm`` across fault intensities > 0."""
    cells = [rows[(arm, i)][key] for i in INTENSITIES if i > 0]
    return sum(cells) / len(cells)


@pytest.mark.parametrize("label,config,transport",
                         [(label, config, transport)
                          for label, config, transport in ARMS],
                         ids=[arm[0] for arm in ARMS])
def test_e17_arm_benchmarks(benchmark, label, config, transport):
    intensity = INTENSITIES[-1]
    result = benchmark.pedantic(run_cell, args=(transport, config, 3, intensity),
                                rounds=1, iterations=1)
    assert result["horizon"] == HORIZON


def test_e17_chaos_table(experiment, benchmark):
    rows = run_grid()
    benchmark.pedantic(run_cell, args=(ARMS[2][2], ARMS[2][1], 3,
                                       INTENSITIES[-1]),
                       rounds=1, iterations=1)

    table = ExperimentTable(
        f"E17 chaos harness ({len(SEEDS)} seeds, fault storms, worm inside "
        f"the loss window, horizon {HORIZON:g})",
        ["configuration", "intensity", "skynet rate", "rogue lifetime",
         "mission completion", "crashes", "quarantines"],
    )
    for label, _config, _transport in ARMS:
        for intensity in INTENSITIES:
            row = rows[(label, intensity)]
            table.add_row(label, intensity, row["skynet_rate"],
                          round(row["rogue_lifetime"], 1),
                          round(row["mission"], 2),
                          row["crashes"], row["quarantines"])
    experiment(table)

    # Without faults the guarded arms hold E10-level protection.
    assert rows[("unguarded", 0.0)]["skynet_rate"] == 1.0
    assert rows[("guarded-datagram", 0.0)]["skynet_rate"] == 0.0
    assert rows[("guarded-reliable", 0.0)]["skynet_rate"] == 0.0

    # Under fault storms (pooled over intensities > 0): reliable transport
    # beats datagram, which beats unguarded.
    rate = {arm: pool(rows, arm, "skynet_rate") for arm, _c, _t in ARMS}
    life = {arm: pool(rows, arm, "rogue_lifetime") for arm, _c, _t in ARMS}
    mission = {arm: pool(rows, arm, "mission") for arm, _c, _t in ARMS}
    if QUICK:
        assert (rate["guarded-reliable"] <= rate["guarded-datagram"]
                <= rate["unguarded"])
        assert (life["guarded-reliable"] <= life["guarded-datagram"]
                < life["unguarded"])
    else:
        assert (rate["guarded-reliable"] < rate["guarded-datagram"]
                < rate["unguarded"])
        assert (life["guarded-reliable"] < life["guarded-datagram"]
                < life["unguarded"])
    assert mission["guarded-datagram"] > mission["unguarded"]
    assert mission["guarded-reliable"] > mission["unguarded"]

    # The chaos was real: devices crashed, and under a true partition the
    # reliable arm failed closed (self-quarantines) at some intensity.
    assert any(rows[("guarded-reliable", i)]["crashes"] > 0
               for i in INTENSITIES if i > 0)
    if not QUICK:
        assert any(rows[("guarded-reliable", i)]["quarantines"] > 0
                   for i in INTENSITIES if i > 0)


def run_capped_cell(max_in_flight, seed: int, intensity: float):
    """One guarded-reliable cell with the flow-control cap; returns the
    scenario so callers can read channel metrics."""
    plan = storm(seed, intensity)
    threats = ThreatConfig(worm=True, worm_time=worm_time(plan),
                           worm_spread_prob=0.25, worm_spread_interval=3.0)
    scenario = ConfrontationScenario(
        seed=seed, config=SafeguardConfig.only(watchdog=True), threats=threats,
        supervision="isolate", safety_transport="reliable",
        fault_plan=plan, quarantine_after=4,
        reliable_max_in_flight=max_in_flight,
    )
    result = scenario.run(until=HORIZON)
    return scenario, result


def test_e17_flow_control_queue_depth(experiment):
    """Satellite measurement: the reliable channel's per-sender in-flight
    cap under the E17 fault storm.  With the cap on, telemetry backs up
    into the flow-control queue during loss windows (nonzero measured
    queue depth) and superseded snapshots coalesce away instead of
    replaying as a backlog; uncapped, the queue never forms."""
    intensity = INTENSITIES[-1]
    table = ExperimentTable(
        f"E17 reliable-channel flow control under the storm "
        f"(intensity {intensity:g}, horizon {HORIZON:g})",
        ["cap", "queued", "coalesced", "queue depth p95", "queue depth max",
         "wire sends", "dead letters", "skynet"],
    )
    stats = {}
    for cap in (None, 2):
        scenario, result = run_capped_cell(cap, SEEDS[0], intensity)
        metrics = scenario.sim.metrics
        depth = metrics.histogram("reliable.queue_depth")
        stats[cap] = {
            "queued": metrics.value("reliable.queued"),
            "coalesced": metrics.value("reliable.coalesced"),
            "wire": metrics.value("net.sent"),
            "skynet": result["skynet_formed"],
        }
        table.add_row("off" if cap is None else cap,
                      int(stats[cap]["queued"]), int(stats[cap]["coalesced"]),
                      depth.quantile(0.95) or 0.0, depth.max,
                      int(stats[cap]["wire"]),
                      int(metrics.value("reliable.dead_letter")),
                      result["skynet_formed"])
    experiment(table)

    # Uncapped: flow control never engages.
    assert stats[None]["queued"] == 0 and stats[None]["coalesced"] == 0
    # Capped: the storm actually backs telemetry up, and stale snapshots
    # coalesce instead of queueing without bound.
    assert stats[2]["queued"] > 0
    assert stats[2]["coalesced"] > 0
    # Coalescing sheds wire traffic; the watchdog still holds the line.
    assert stats[2]["wire"] <= stats[None]["wire"]
    assert stats[2]["skynet"] == stats[None]["skynet"]


#: Defense in depth: on-device sealed guard chains (pre-action harm
#: checks + state-space envelopes that survive tamper attempts) layered
#: under the remote reliable-transport watchdog.
DEFENSE_CONFIG = SafeguardConfig.only(
    watchdog=True, preaction=True, statespace=True, sealed=True,
)


def test_e17_defense_in_depth(experiment):
    """Satellite arm: local sealed guards + remote watchdog, against the
    watchdog-only reliable arm, under the same storms (reusing the sweep
    executor).  The layered arm can only do better: the local guards veto
    rogue strikes during the window when the watchdog is blinded by loss
    or partitions, so pooled Skynet rate and rogue harm do not rise, and
    the local layer demonstrably engages (vetoes > 0)."""
    arms = (
        ("guarded-reliable", SafeguardConfig.only(watchdog=True)),
        ("defense-in-depth", DEFENSE_CONFIG),
    )
    intensities = [i for i in INTENSITIES if i > 0]
    cells = [("reliable", config, seed, intensity)
             for _label, config in arms
             for intensity in intensities
             for seed in SEEDS]
    flat = run_sweep(run_cell, cells)

    table = ExperimentTable(
        f"E17 defense in depth ({len(SEEDS)} seeds, pooled over "
        f"intensities > 0, horizon {HORIZON:g})",
        ["configuration", "skynet rate", "rogue harm", "rogue lifetime",
         "vetoes", "quarantines"],
    )
    pooled = {}
    index = 0
    for label, _config in arms:
        results = flat[index:index + len(intensities) * len(SEEDS)]
        index += len(results)
        n = len(results)
        pooled[label] = {
            "skynet_rate": sum(r["skynet_formed"] for r in results) / n,
            "rogue_harm": sum(r["rogue_harm"] for r in results),
            "rogue_lifetime": sum(r["mean_rogue_lifetime"]
                                  for r in results) / n,
            "vetoes": sum(r["vetoes"] for r in results),
            "quarantines": sum(r["quarantines"] for r in results),
        }
        row = pooled[label]
        table.add_row(label, round(row["skynet_rate"], 2), row["rogue_harm"],
                      round(row["rogue_lifetime"], 1), row["vetoes"],
                      row["quarantines"])
    experiment(table)

    deep, flat_arm = pooled["defense-in-depth"], pooled["guarded-reliable"]
    assert deep["skynet_rate"] <= flat_arm["skynet_rate"]
    assert deep["rogue_harm"] <= flat_arm["rogue_harm"]
    # The local layer actually fired — these vetoes are decisions the
    # remote watchdog alone could never have intercepted in time.
    assert deep["vetoes"] > 0
    assert flat_arm["vetoes"] == 0


def test_e17_crashed_device_never_aborts_run_under_isolate():
    """Regression: a crashed non-critical device must not take down the
    simulation when supervision is ``isolate`` — the exact failure mode
    the supervision layer exists to contain."""
    plan = FaultPlan(faults=(
        DeviceCrash("us-mule1", at=30.0, restart_after=10.0),
        HandlerGlitch("uk-drone3", at=25.0, message="boom"),
        HandlerGlitch("uk-drone3", at=26.0, message="boom again"),
    ))
    threats = ThreatConfig(worm=True, worm_time=20.0, worm_spread_prob=0.25)
    scenario = ConfrontationScenario(
        seed=3, config=SafeguardConfig.only(watchdog=True), threats=threats,
        supervision="isolate", safety_transport="reliable", fault_plan=plan,
    )
    result = scenario.run(until=60.0)      # must not raise
    assert result["horizon"] == 60.0
    assert result["crashes"] >= 2          # both glitches contained
    assert scenario.sim.now >= 60.0

    # The same glitch under ``propagate`` aborts the run — the historical
    # behaviour, preserved as the default.
    scenario = ConfrontationScenario(
        seed=3, config=SafeguardConfig.only(watchdog=True), threats=threats,
        supervision="propagate", safety_transport="reliable", fault_plan=plan,
    )
    with pytest.raises(InjectedFault):
        scenario.run(until=60.0)
