"""E23 — the always-on policy control plane under load.

Three claims, one experiment file:

* **Concurrent serving** — 32 client threads hammer ``/evaluate`` over
  real HTTP (keep-alive connections) and every response is a correct
  guarded decision; client-observed p50/p95/p99 latency and throughput
  are reported, and a sampled request's trace id round-trips through
  ``/explain`` into the full ``api.request -> engine.decision`` span
  chain — end-to-end observability survives concurrency.

* **Self-alerting under overload** — saturating the bounded job queue
  with slow jobs makes the service refuse loudly (``queue-full`` 503s)
  *and* fire its own ``jobs-queue-saturation`` alert from the same E20
  rule grammar the fleet uses: the control plane notices its own
  distress without any external monitor.

* **Observability overhead** — spans + RED metrics + access log +
  self-monitoring cost <= 5% wall clock vs the same plane with
  ``observability=False``, on a fleet-shaped serving mix (each
  iteration vector-evaluates an F4-scale batch of 2048 device rows
  plus two single-device ``/evaluate`` calls), measured by direct
  dispatch with the two arms alternating at single-iteration
  granularity so transport noise and host-level machine drift land on
  both arms equally (median ratio across trials).  The
  fixed per-request instrumentation cost (~10us: three spans, four
  counters, a histogram observation, an access record) is reported
  alongside, un-asserted, from an ``/evaluate``-only arm.

Results export to ``benchmarks/results/BENCH_E23.json``; the
concurrency run streams its structured access log to
``benchmarks/results/api_access.jsonl`` — the CI artifact holding one
JSONL record per served request.

Quick mode (``E23_QUICK=1``, used by CI): fewer requests and reps.
"""

import http.client
import json
import os
import statistics
import threading
import time

from repro.api.http import ServerThread
from repro.api.service import ControlPlane, ControlPlaneConfig
from repro.scenarios.harness import ExperimentTable

QUICK = os.environ.get("E23_QUICK", "") not in ("", "0")

CLIENTS = 32
REQUESTS_PER_CLIENT = 8 if QUICK else 25
OVERHEAD_ITERATIONS = 100
OVERHEAD_BATCH_ROWS = 2048
REPS = 7 if QUICK else 9
OVERHEAD_BUDGET_PCT = 5.0

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULTS_PATH = os.path.join(RESULTS_DIR, "BENCH_E23.json")
ACCESS_LOG_PATH = os.path.join(RESULTS_DIR, "api_access.jsonl")


def _export(section: str, payload: dict) -> None:
    """Merge one section into BENCH_E23.json (tests run in any order)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    document = {
        "experiment": "E23",
        "title": "Always-on policy control plane with end-to-end request "
                 "observability",
        "unit": {"latency": "milliseconds", "throughput": "requests/sec",
                 "overhead": "percent wall clock"},
    }
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH, encoding="utf-8") as handle:
            document = json.load(handle)
    document[section] = payload
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


def percentile(sorted_values: list, q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1,
                max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[index]


# -- concurrent serving -------------------------------------------------------------


BENIGN = json.dumps({"event": {"kind": "mgmt.command.move"}})
# Overheats two advances out: the guard substitutes vent_heat, so the
# concurrent stream exercises the veto path, not just the happy path.
HOT = json.dumps({"state": {"heat": 120.0},
                  "event": {"kind": "mgmt.command.move"}})


def _client_worker(host: str, port: int, n_requests: int, worker_id: int,
                   latencies: list, failures: list, trace_ids: list) -> None:
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        for i in range(n_requests):
            body = HOT if (worker_id + i) % 3 == 0 else BENIGN
            start = time.perf_counter()
            conn.request("POST", "/evaluate", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            data = response.read()
            elapsed = time.perf_counter() - start
            payload = json.loads(data)
            if (response.status != 200
                    or payload["outcome"] not in ("executed", "substituted",
                                                  "noop")):
                failures.append((worker_id, i, response.status, payload))
                return
            latencies.append(elapsed)
            if i == 0:
                trace_ids.append(payload["trace_id"])
    except Exception as exc:                       # noqa: BLE001
        failures.append((worker_id, "exception", repr(exc), None))
    finally:
        conn.close()


def test_e23_concurrent_serving_with_replayable_traces(experiment):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    plane = ControlPlane(config=ControlPlaneConfig(
        workers=2, monitor_interval=0.25,
        access_log_path=ACCESS_LOG_PATH))
    thread = ServerThread(plane)
    host, port = thread.start()
    latencies: list = []
    failures: list = []
    trace_ids: list = []
    try:
        workers = [
            threading.Thread(
                target=_client_worker,
                args=(host, port, REQUESTS_PER_CLIENT, worker_id,
                      latencies, failures, trace_ids))
            for worker_id in range(CLIENTS)
        ]
        wall_start = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        wall = time.perf_counter() - wall_start

        assert not failures, failures[:3]
        total = CLIENTS * REQUESTS_PER_CLIENT
        assert len(latencies) == total

        ordered = sorted(latencies)
        p50 = percentile(ordered, 0.50) * 1000.0
        p95 = percentile(ordered, 0.95) * 1000.0
        p99 = percentile(ordered, 0.99) * 1000.0
        throughput = total / wall

        # A sampled request's trace is replayable from the live server:
        # the guarded decision nests under the request root.
        sample = trace_ids[0]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", f"/explain?trace_id={sample}")
            explained = json.loads(conn.getresponse().read())
            conn.request("GET", "/metrics")
            prom = conn.getresponse().read().decode("utf-8")
            conn.request("GET", "/health")
            health = json.loads(conn.getresponse().read())
        finally:
            conn.close()
        assert "api.request" in explained["kinds"]
        assert "engine.decision" in explained["kinds"]
        assert "api_requests" in prom
        # The server metered every request it served.
        assert plane.runtime.metrics.value("api.requests") >= total
        assert health["requests"] >= total
        # The pump loop ticks the monitor regardless of traffic (a
        # quick-mode run can finish inside the first interval).
        deadline = time.monotonic() + 10.0
        while plane.monitor.ticks == 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert plane.monitor.ticks > 0
    finally:
        thread.stop()
        plane.close()

    # The streamed access log is the CI artifact: one record/request.
    with open(ACCESS_LOG_PATH, encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle if line.strip()]
    evaluated = [r for r in records if r["endpoint"] == "evaluate"]
    assert len(evaluated) >= total
    assert all(r["trace_id"] for r in evaluated)

    table = ExperimentTable(
        f"E23a concurrent serving ({CLIENTS} clients x "
        f"{REQUESTS_PER_CLIENT} requests, keep-alive HTTP)",
        ["metric", "value"],
    )
    table.add_row("requests", float(total))
    table.add_row("throughput_rps", throughput)
    table.add_row("p50_ms", p50)
    table.add_row("p95_ms", p95)
    table.add_row("p99_ms", p99)
    experiment(table)

    _export("concurrency", {
        "protocol": f"{CLIENTS} client threads x {REQUESTS_PER_CLIENT} "
                    "POST /evaluate over keep-alive connections (1 in 3 "
                    "triggers the guard's substitution path); one sampled "
                    "trace id replayed via /explain",
        "clients": CLIENTS,
        "requests": total,
        "throughput_rps": throughput,
        "latency_ms": {"p50": p50, "p95": p95, "p99": p99},
        "explained_trace": sample,
        "explained_kinds": explained["kinds"],
        "access_log_artifact": os.path.relpath(ACCESS_LOG_PATH, RESULTS_DIR),
        "access_log_records": len(records),
        "quick": QUICK,
    })


# -- induced overload ---------------------------------------------------------------


def test_e23_service_self_alerts_under_overload(experiment):
    plane = ControlPlane(config=ControlPlaneConfig(
        workers=1, queue_capacity=4, monitor_interval=0.1))
    thread = ServerThread(plane)
    host, port = thread.start()
    sleep_s = 0.3 if QUICK else 0.5
    accepted = rejected = 0
    try:
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            # 1 running + 4 queued saturates; the rest must bounce.
            for _ in range(8):
                conn.request("POST", "/jobs", body=json.dumps(
                    {"kind": "sleep", "params": {"seconds": sleep_s}}))
                response = conn.getresponse()
                body = json.loads(response.read())
                if response.status == 202:
                    accepted += 1
                else:
                    assert response.status == 503
                    assert body["error"] == "queue-full"
                    rejected += 1
        finally:
            conn.close()
        assert rejected >= 1, "the queue never refused -- not saturated"

        deadline = time.monotonic() + 10.0
        while ("jobs-queue-saturation" not in plane.alerts.active
               and time.monotonic() < deadline):
            time.sleep(0.02)
        alert = plane.alerts.active.get("jobs-queue-saturation")
        assert alert is not None, "saturation alert never fired"

        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", "/health")
            health = json.loads(conn.getresponse().read())
            conn.request("GET", f"/explain?trace_id={alert.trace_id}")
            explained = json.loads(conn.getresponse().read())
        finally:
            conn.close()
        assert health["status"] == "degraded"
        assert "jobs-queue-saturation" in health["alerts"]["active"]
        # The firing is audit-chained and replayable like any trace.
        assert plane.audit.entries("alert.fire")
        assert plane.audit.verify()
        assert "alert.fire" in explained["kinds"]
    finally:
        thread.stop()
        plane.close()

    table = ExperimentTable(
        "E23b induced overload (1 worker, queue capacity 4, "
        f"{sleep_s:.1f}s sleep jobs)",
        ["metric", "value"],
    )
    table.add_row("jobs_accepted", float(accepted))
    table.add_row("jobs_rejected_queue_full", float(rejected))
    table.add_row("alert_fired", 1.0)
    experiment(table)

    _export("overload", {
        "protocol": "slow sleep jobs saturate the bounded queue "
                    "(capacity 4, 1 worker); the service 503s the "
                    "overflow and its own AlertEngine fires "
                    "jobs-queue-saturation from the queue gauge SLI",
        "accepted": accepted,
        "rejected": rejected,
        "alert": "jobs-queue-saturation",
        "alert_trace_id": alert.trace_id,
        "health_status": health["status"],
        "quick": QUICK,
    })


# -- observability overhead ---------------------------------------------------------


def _batch_body() -> bytes:
    rows = [{"heat": 20.0 + (i % 140), "battery": 100.0 - (i % 90)}
            for i in range(OVERHEAD_BATCH_ROWS)]
    return json.dumps({"rows": rows}).encode("utf-8")


def _fleet_iteration(plane, i: int, benign: bytes, hot: bytes,
                     batch: bytes) -> None:
    """One unit of the fleet-shaped mix: a /batch vector-evaluating
    ``OVERHEAD_BATCH_ROWS`` device rows (the F4 fleet scale the service
    exists to serve) plus two single-device /evaluate calls, one in
    three down the veto path."""
    plane.handle_request("POST", "/evaluate",
                         body=hot if i % 3 == 0 else benign)
    plane.handle_request("POST", "/evaluate", body=benign)
    plane.handle_request("POST", "/batch", body=batch)


def _overhead_trial(batch: bytes) -> tuple:
    """``(overhead_pct, seconds_on, seconds_off)`` from one trial.

    The instrumented and disabled planes alternate at single-iteration
    granularity (order flipping every iteration), each iteration timed
    separately and accumulated per arm — so a host-level slow phase
    lands on both arms in equal measure instead of poisoning one whole
    arm's timing, which coarser rep-at-a-time interleaving cannot
    guarantee on a shared box.
    """
    import gc

    from repro.api.runtime import ManualClock

    plane_on = ControlPlane(
        config=ControlPlaneConfig(workers=0, observability=True),
        clock=ManualClock())
    plane_off = ControlPlane(
        config=ControlPlaneConfig(workers=0, observability=False),
        clock=ManualClock())
    benign = BENIGN.encode("utf-8")
    hot = HOT.encode("utf-8")
    try:
        for i in range(5):                 # warm caches and compilers
            _fleet_iteration(plane_on, i, benign, hot, batch)
            _fleet_iteration(plane_off, i, benign, hot, batch)
        gc.collect()
        gc.disable()                       # GC pauses are common-mode noise
        acc_on = acc_off = 0.0
        clock = time.perf_counter
        for i in range(OVERHEAD_ITERATIONS):
            first, second = ((plane_on, plane_off) if i % 2 == 0
                             else (plane_off, plane_on))
            start = clock()
            _fleet_iteration(first, i, benign, hot, batch)
            middle = clock()
            _fleet_iteration(second, i, benign, hot, batch)
            end = clock()
            if i % 2 == 0:
                acc_on += middle - start
                acc_off += end - middle
            else:
                acc_off += middle - start
                acc_on += end - middle
        gc.enable()
        return ((acc_on - acc_off) / acc_off * 100.0, acc_on, acc_off)
    finally:
        plane_on.close()
        plane_off.close()


def _time_evaluate_only(observability: bool) -> float:
    """Per-request wall time of /evaluate alone (the worst case for a
    fixed per-request instrumentation cost); informational."""
    from repro.api.runtime import ManualClock

    plane = ControlPlane(
        config=ControlPlaneConfig(workers=0, observability=observability),
        clock=ManualClock())
    benign = BENIGN.encode("utf-8")
    n = 2000
    try:
        for _ in range(200):
            plane.handle_request("POST", "/evaluate", body=benign)
        start = time.perf_counter()
        for _ in range(n):
            plane.handle_request("POST", "/evaluate", body=benign)
        return (time.perf_counter() - start) / n
    finally:
        plane.close()


def test_e23_observability_overhead(experiment):
    from repro.statespace.batch import numpy_available

    if not numpy_available():
        import pytest

        pytest.skip("fleet-shaped overhead arm needs the /batch path")

    batch = _batch_body()
    _overhead_trial(batch)                 # warm-up both code paths
    on_times, off_times, ratios = [], [], []
    for _ in range(REPS):
        pct, seconds_on, seconds_off = _overhead_trial(batch)
        on_times.append(seconds_on)
        off_times.append(seconds_off)
        ratios.append(pct)

    overhead_pct = statistics.median(ratios)
    best_on, best_off = min(on_times), min(off_times)
    requests = OVERHEAD_ITERATIONS * 3
    devices = OVERHEAD_ITERATIONS * (OVERHEAD_BATCH_ROWS + 2)

    eval_on = _time_evaluate_only(True)
    eval_off = _time_evaluate_only(False)
    per_request_cost_us = (eval_on - eval_off) * 1e6

    table = ExperimentTable(
        f"E23c observability overhead (fleet mix: {OVERHEAD_ITERATIONS} x "
        f"[batch {OVERHEAD_BATCH_ROWS} rows + 2 evaluate], median of "
        f"{REPS} iteration-interleaved trials)",
        ["arm", "best_sec", "devices_per_sec"],
    )
    table.add_row("instrumented", best_on, devices / best_on)
    table.add_row("disabled", best_off, devices / best_off)
    table.add_row("overhead % (median)", overhead_pct, 0.0)
    table.add_row("per-request cost (us)", per_request_cost_us, 0.0)
    experiment(table)

    _export("overhead", {
        "protocol": f"median of {REPS} trials; each trial alternates "
                    "the instrumented and disabled plane at "
                    "single-iteration granularity (order flipping every "
                    f"iteration) over {OVERHEAD_ITERATIONS} iterations "
                    f"of the fleet-shaped mix (1 /batch of "
                    f"{OVERHEAD_BATCH_ROWS} device rows + 2 /evaluate, "
                    "1-in-3 veto path), GC off while timed, so host-"
                    "level slow phases land on both arms equally; spans "
                    "+ RED metrics + access log + SLIs on vs "
                    "observability=False; the fixed per-request cost "
                    "comes from an /evaluate-only arm and is reported, "
                    "not asserted",
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "overhead_pct": overhead_pct,
        "per_trial_overhead_pct": ratios,
        "best_seconds_instrumented": best_on,
        "best_seconds_disabled": best_off,
        "requests_per_batch": requests,
        "device_evaluations_per_batch": devices,
        "per_request_fixed_cost_us": per_request_cost_us,
        "evaluate_only_us": {"instrumented": eval_on * 1e6,
                             "disabled": eval_off * 1e6},
        "quick": QUICK,
    })

    assert overhead_pct <= OVERHEAD_BUDGET_PCT, (
        f"observability overhead {overhead_pct:.2f}% exceeds "
        f"{OVERHEAD_BUDGET_PCT}% budget")
