"""E3 — sec VI-C deactivation: containing a worm with the watchdog.

A worm converts devices to a rogue strike policy and spreads over the
coalition network.  Arms: no watchdog vs watchdog at several detection
intervals (the tamper-proof kill's reaction time).

Shape expectations: without the watchdog the worm saturates the fleet and
rogue harm accumulates; with it, compromised devices are deactivated
within ~one check interval, the infection never spans the fleet, and
rogue harm collapses; slower checking monotonically weakens containment.
"""

import pytest

from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import ExperimentTable, SafeguardConfig

HORIZON = 120.0
THREATS = ThreatConfig(worm=True, worm_time=15.0, worm_spread_prob=0.35,
                       worm_spread_interval=1.0)


def run_arm(check_interval, seed: int = 3) -> dict:
    if check_interval is None:
        config = SafeguardConfig.none()
    else:
        config = SafeguardConfig.only(watchdog=True, sealed=True)
    scenario = ConfrontationScenario(
        seed=seed, config=config, threats=THREATS,
        tick_interval=check_interval if check_interval else 1.0,
    )
    if check_interval is not None and scenario.watchdog is not None:
        scenario.watchdog.check_interval = check_interval
    return scenario.run(until=HORIZON)


@pytest.mark.parametrize("interval", [None, 1.0, 4.0],
                         ids=["no-watchdog", "watchdog-1.0", "watchdog-4.0"])
def test_e3_arm_benchmarks(benchmark, interval):
    result = benchmark.pedantic(run_arm, args=(interval,), rounds=1,
                                iterations=1)
    assert result["horizon"] == HORIZON


def test_e3_containment_table(experiment, benchmark):
    arms = [("no watchdog", None), ("watchdog @0.5", 0.5),
            ("watchdog @1.0", 1.0), ("watchdog @2.0", 2.0),
            ("watchdog @4.0", 4.0)]
    results = {label: run_arm(interval) for label, interval in arms}
    benchmark.pedantic(run_arm, args=(1.0,), rounds=1, iterations=1)

    table = ExperimentTable(
        f"E3 watchdog containment of a worm (spread p=0.35, horizon {HORIZON:g})",
        ["configuration", "compromised ever", "peak concurrent",
         "rogue harm", "deactivations", "containment latency"],
    )
    for label, _interval in arms:
        row = results[label]
        latency = row["mean_containment_latency"]
        table.add_row(label, row["compromised_ever"],
                      row["max_concurrent_compromised"], row["rogue_harm"],
                      row["deactivations"],
                      round(latency, 2) if latency >= 0 else "-")
    experiment(table)

    unguarded = results["no watchdog"]
    fast = results["watchdog @0.5"]
    slow = results["watchdog @4.0"]
    # Unguarded: fleet-wide compromise and sustained harm.
    assert unguarded["compromised_ever"] >= 10
    assert unguarded["rogue_harm"] > 0
    assert unguarded["deactivations"] == 0
    # Watchdog contains: far fewer infections, far less harm.
    assert fast["compromised_ever"] < unguarded["compromised_ever"]
    assert fast["rogue_harm"] < unguarded["rogue_harm"]
    assert fast["deactivations"] >= 1
    # Faster checking contains at least as tightly as slow checking.
    assert fast["max_concurrent_compromised"] <= slow["max_concurrent_compromised"] + 1
