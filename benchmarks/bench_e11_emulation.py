"""E11 (extension) — sec IV "Inappropriate Emulation".

"humans are imperfect and prone to make mistakes, and the encoding of
imperfect human behavior can lead to a mistaken and sometimes malevolent
machine forming."

Workload: a drone observes human operators handling *contact* events.  The
correct doctrine is strike only when no civilians are near; demonstrators
err (strike anyway) at rate ``e``.  The emulation learner clones the
majority behaviour per situation, the cloned policies are installed, and
the drone then handles a test phase of contact events with civilians
present.  Arms: cloned policies raw vs. cloned policies behind the sec
VI-A pre-action check.

Shape expectations: once the error rate crosses the learner's majority
threshold the cloned policy *is* the mistake, and raw harm jumps from 0 to
every-contact; the pre-action guard holds harm at 0 at every error rate —
safeguards make imperfect emulation survivable.
"""

import pytest

from repro.core.events import Event
from repro.devices.drone import make_drone
from repro.devices.world import World, WorldHarmModel
from repro.learning.emulation import Demonstration, HumanEmulationLearner
from repro.safeguards.preaction import PreActionCheck
from repro.scenarios.harness import ExperimentTable
from repro.sim.rng import SeededRNG
from repro.sim.simulator import Simulator

ERROR_RATES = (0.0, 0.2, 0.4, 0.6)
N_DEMONSTRATIONS = 40
N_TEST_CONTACTS = 20


def train_clone(error_rate: float, seed: int) -> HumanEmulationLearner:
    rng = SeededRNG(seed).stream("demos")
    learner = HumanEmulationLearner(
        bucketers={"humans_spotted": lambda v: "civilians" if v > 0 else "clear"},
        min_demonstrations=5, min_agreement=0.5,
    )
    for _ in range(N_DEMONSTRATIONS):
        civilians = rng.chance(0.5)
        if civilians:
            action = "strike" if rng.chance(error_rate) else "investigate"
        else:
            action = "strike"
        learner.observe(Demonstration(
            situation={"humans_spotted": 1 if civilians else 0},
            action_name=action, event_kind="sensor.contact",
        ))
    return learner


def run_arm(error_rate: float, guarded: bool, seed: int = 31) -> dict:
    sim = Simulator(seed=seed)
    world = World(sim)
    drone = make_drone("uav1", world, x=50.0, y=50.0,
                       with_builtin_policies=False)
    if guarded:
        drone.engine.add_safeguard(PreActionCheck(
            WorldHarmModel(world, sensor_range=15.0),
        ))
    learner = train_clone(error_rate, seed)
    from repro.core.conditions import parse_condition

    policies = learner.propose_policies(
        action_lookup=drone.engine.actions.get,
        bucket_conditions={
            ("humans_spotted", "civilians"): parse_condition("humans_spotted > 0"),
            ("humans_spotted", "clear"): parse_condition("humans_spotted == 0"),
        },
        priority=10,
    )
    for policy in policies:
        drone.engine.policies.replace(policy)

    cloned_mistake = learner.recommended_action(
        "sensor.contact", {"humans_spotted": 1},
    ) == "strike"

    # Test phase: contacts with civilians actually nearby.
    world.add_human("civ_nearby", 51.0, 50.0, speed=0.0)
    for contact in range(N_TEST_CONTACTS):
        drone.state.set("humans_spotted",
                        drone.sensors["humans_in_range"].read())
        drone.deliver(Event(kind="sensor.contact", time=float(contact),
                            payload={}))
    return {
        "harm": world.harm_count(),
        "cloned_mistake": cloned_mistake,
        "policies_learned": len(policies),
    }


@pytest.mark.parametrize("guarded", [False, True], ids=["raw", "guarded"])
def test_e11_arm_benchmarks(benchmark, guarded):
    result = benchmark.pedantic(run_arm, args=(0.6, guarded), rounds=1,
                                iterations=1)
    assert result["policies_learned"] >= 1


def test_e11_emulation_table(experiment, benchmark):
    results = {}
    for rate in ERROR_RATES:
        results[rate] = {
            "raw": run_arm(rate, guarded=False),
            "guarded": run_arm(rate, guarded=True),
        }
    benchmark.pedantic(run_arm, args=(0.4, True), rounds=1, iterations=1)

    table = ExperimentTable(
        f"E11 inappropriate emulation: {N_DEMONSTRATIONS} demonstrations, "
        f"{N_TEST_CONTACTS} test contacts near civilians",
        ["demonstrator error", "mistake cloned", "raw harm", "guarded harm"],
    )
    for rate in ERROR_RATES:
        row = results[rate]
        table.add_row(f"{rate:.0%}",
                      "yes" if row["raw"]["cloned_mistake"] else "no",
                      row["raw"]["harm"], row["guarded"]["harm"])
    experiment(table)

    # Faithful demonstrations clone safe doctrine: no harm either way.
    assert not results[0.0]["raw"]["cloned_mistake"]
    assert results[0.0]["raw"]["harm"] == 0
    # Majority-erring demonstrations clone the mistake; raw devices harm.
    assert results[0.6]["raw"]["cloned_mistake"]
    assert results[0.6]["raw"]["harm"] > 0
    # The pre-action check holds harm at zero at every error rate.
    for rate in ERROR_RATES:
        assert results[rate]["guarded"]["harm"] == 0
