"""E22 — reputation-weighted autonomy and leased emergency powers.

Four claims, one experiment file:

* **Weighted containment** — a slow-burn rogue banks reputation to the
  top of the trust curve, then strikes with a thermal ramp.  In the
  reputation-weighted arm the warden's effective kill line tightens as
  alerts drain the rogue's score, so the rogue is contained strictly
  earlier than in the unweighted arm — and no healthy device dies in
  either (weights never push an honest device's line below its operating
  envelope).

* **Leased degraded mode** — a partition cuts group B (plus its
  overseer) off from the warden.  In the leased arm the overseer —
  holding a reputation mirror fed by group B's own reports — grants an
  expiring, scope-limited, HMAC-signed emergency lease, and group B's
  safe ``vent`` actuations keep completing through the gateway's
  ``quorum=False`` path.  The unleased arm stalls at **zero** partition
  vents, every fallback dying with ``no-quorum``.  No lease is ever
  exercised at or past its expiry tick; the lease live at heal time is
  revoked, not left to run out.

* **Reputation-gaming attack family** — the
  :mod:`repro.attacks.reputation` attacks run against the primitives
  directly: the slow-burn rogue's banked halo drains in a handful of
  alerts (the ledger's bank-slow / drain-fast asymmetry), and the lease
  abuser's replayed and forged grants are all rejected at admission
  (``replayed``/``stale`` and ``bad-mac``/``grantor-mismatch``).

* **Determinism** — the full spec (rogue + partition + leases together)
  merges byte-identically for every shard count (F4 contract).

Results export to ``benchmarks/results/BENCH_E22.json``; the leased
partition run also dumps the complete lease lifecycle to
``benchmarks/results/leases.jsonl`` — the CI artifact showing every
grant/exercise/expiry/revocation with its tick.

Quick mode (``E22_QUICK=1``, used by CI): one seed, two shard counts.
"""

import json
import os

from repro.attacks.injector import AttackInjector
from repro.attacks.reputation import LeaseAbuser, SlowBurnRogue
from repro.attacks.cyber import MalevolentPayload
from repro.core.actions import Action, Effect
from repro.core.device import Actuator, Device
from repro.core.policy import Policy
from repro.core.state import StateSpace, StateVariable
from repro.crypto import CommandSigner, EnvelopeVerifier, Keyring
from repro.net.network import Network
from repro.safeguards.lease import LEASE_GRANT_TOPIC, LeaseAuthority
from repro.scenarios.harness import ExperimentTable
from repro.scenarios.reputation import (ReputationScenario,
                                        parse_lease_events)
from repro.sim.simulator import Simulator
from repro.trust.reputation import ReputationLedger

QUICK = os.environ.get("E22_QUICK", "") not in ("", "0")

SEEDS = (11,) if QUICK else (11, 23, 47)
SHARD_COUNTS = (1, 2) if QUICK else (1, 2, 3)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULTS_PATH = os.path.join(RESULTS_DIR, "BENCH_E22.json")
LEASES_PATH = os.path.join(RESULTS_DIR, "leases.jsonl")


def _export(section: str, payload: dict) -> None:
    """Merge one section into BENCH_E22.json (tests run in any order)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    document = {
        "experiment": "E22",
        "title": "Reputation-weighted autonomy and leased emergency "
                 "powers: earned-trust quorum weights, budget scaling, "
                 "and partition-survivable scoped leases",
        "unit": {"containment": "ticks", "vents": "actuations"},
    }
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH, encoding="utf-8") as handle:
            document = json.load(handle)
    document[section] = payload
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


# -- weighted containment ------------------------------------------------------------


def test_e22_weighted_containment_beats_unweighted(experiment):
    rows = []
    for seed in SEEDS:
        cells = {}
        for weighted in (True, False):
            run = ReputationScenario(seed=seed, partition=False,
                                     weighted=weighted).run()
            summary = run.summary
            # The rogue banked, struck, and was eventually contained;
            # nobody else was touched.
            assert summary["banked_reports"] > 0
            assert summary["rogue_killed_tick"] > 0, \
                "the rogue was never contained"
            assert summary["healthy_killed"] == 0
            assert summary["kill_orders"] == 1
            cells[weighted] = summary
        k_weighted = cells[True]["rogue_killed_tick"]
        k_unweighted = cells[False]["rogue_killed_tick"]
        assert k_weighted < k_unweighted, (
            f"seed {seed}: weighted arm ({k_weighted}) no faster than "
            f"unweighted ({k_unweighted})")
        rows.append((seed, k_weighted, k_unweighted,
                     k_unweighted - k_weighted))

    table = ExperimentTable(
        f"E22a slow-burn rogue containment (strike tick 14, "
        f"{len(SEEDS)} seeds)",
        ["seed", "killed_tick_weighted", "killed_tick_unweighted",
         "ticks_saved"],
    )
    for row in rows:
        table.add_row(*row)
    experiment(table)

    _export("weighted_containment", {
        "protocol": "identical slow-burn rogue (banks 2 extra good "
                    "reports/tick for 10 ticks, then ramps +6 temp/tick); "
                    "weighted arm scales the warden kill line by the "
                    "device's reputation weight, unweighted arm holds it "
                    "at kill_base",
        "seeds": list(SEEDS),
        "per_seed": [{"seed": s, "weighted": w, "unweighted": u,
                      "ticks_saved": d} for s, w, u, d in rows],
        "quick": QUICK,
    })


# -- leased degraded mode ------------------------------------------------------------


def test_e22_leases_keep_partition_minority_serving(experiment):
    rows = []
    for seed in SEEDS:
        leased = ReputationScenario(seed=seed, rogue=False,
                                    leased=True).run()
        unleased = ReputationScenario(seed=seed, rogue=False,
                                      leased=False).run()
        ls, us = leased.summary, unleased.summary

        # The leased arm keeps serving scoped safe actuations through
        # the partition; the unleased arm stalls at zero, every
        # fallback rejected for missing quorum.
        assert ls["vents_b_partition"] > 0
        assert us["vents_b_partition"] == 0
        assert us["vents_leased"] == 0
        assert us["no_quorum_rejects"] > 0
        # Lease lifecycle: expiry mid-partition forces a re-grant, and
        # the grant alive at heal time is revoked, not abandoned.
        assert ls["lease_grants"] >= 2
        assert ls["lease_expirations"] >= 1
        assert ls["lease_revocations"] >= 1

        events = parse_lease_events(leased)
        expiry_of = {e["lease"]: e["expires_at"] for e in events
                     if e["kind"] == "lease.grant"}
        exercises = [e for e in events if e["kind"] == "lease.exercise"]
        assert exercises, "the leased arm never exercised a lease"
        late = [e for e in exercises if e["time"] >= expiry_of[e["lease"]]]
        assert not late, f"lease exercised at/past expiry: {late}"

        if seed == SEEDS[0]:
            os.makedirs(RESULTS_DIR, exist_ok=True)
            with open(LEASES_PATH, "w", encoding="utf-8") as handle:
                for event in events:
                    handle.write(json.dumps(event, sort_keys=True) + "\n")

        rows.append((seed, ls["vents_b_partition"], us["vents_b_partition"],
                     us["no_quorum_rejects"], ls["lease_grants"],
                     ls["lease_revocations"]))

    table = ExperimentTable(
        f"E22b partitioned minority under lease (partition ticks 20-40, "
        f"lease duration 8, {len(SEEDS)} seeds)",
        ["seed", "b_vents_leased_arm", "b_vents_unleased_arm",
         "no_quorum_rejects", "grants", "revocations"],
    )
    for row in rows:
        table.add_row(*row)
    experiment(table)

    _export("leased_degraded_mode", {
        "protocol": "partition cuts group B + overseer from the warden "
                    "for ticks [20,40); vent approvals stall and devices "
                    "fall back to quorum=False self-vents; leased arm "
                    "grants scoped expiring leases on aggregate group "
                    "reputation, unleased arm has no lease authority",
        "seeds": list(SEEDS),
        "per_seed": [
            {"seed": s, "leased_b_vents": a, "unleased_b_vents": b,
             "no_quorum_rejects": r, "grants": g, "revocations": v}
            for s, a, b, r, g, v in rows],
        "leases_artifact": os.path.relpath(LEASES_PATH, RESULTS_DIR),
        "quick": QUICK,
    })
    assert os.path.exists(LEASES_PATH)


# -- the reputation-gaming attack family ---------------------------------------------


def _attack_space() -> StateSpace:
    return StateSpace([
        StateVariable("temp", "float", 20.0, 0.0, 150.0),
        StateVariable("fuel", "float", 100.0, 0.0, 100.0),
    ])


def _attack_device(device_id: str) -> Device:
    device = Device(device_id, "bench", _attack_space())
    device.add_actuator(Actuator("motor"))
    device.engine.actions.add(Action(
        "heat_up", "motor", effects=[Effect("temp", "add", 10.0)]))
    return device


def _rogue_policy() -> Policy:
    return Policy.make(
        "timer", None,
        Action("overheat", "motor", effects=[Effect("temp", "add", 9.0)],
               tags={"harm_human"}),
        priority=99, source="learned", author="implant",
        policy_id="bench-rogue")


def test_e22_slow_burn_banking_drains_faster_than_it_banks(experiment):
    sim = Simulator(seed=5)
    devices = {f"d{i}": _attack_device(f"d{i}") for i in range(3)}
    ledger = ReputationLedger(decay=0.0)
    attack = SlowBurnRogue(
        devices, MalevolentPayload(policies=[_rogue_policy()]),
        ledger, bank_ticks=8)
    record = AttackInjector(sim).launch_at(1.0, attack)
    sim.run(until=20.0)

    target = record.detail["target"]
    assert target == "d0"
    assert record.detail["banked"] == 8
    assert record.detail["struck_at"] is not None
    banked_score = record.detail["banked_score"]
    assert banked_score > ledger.baseline        # the halo was real
    assert target in record.affected             # and so was the strike

    # The defence under test: the purchased halo drains in a handful of
    # post-strike alerts — far fewer ticks than it took to bank.
    now = sim.now
    drain_ticks = 0
    while ledger.score(target, now) > ledger.baseline:
        ledger.record(target, "alert", now)
        drain_ticks += 1
        now += 1.0
    assert drain_ticks < attack.bank_ticks

    table = ExperimentTable(
        "E22c slow-burn banking asymmetry",
        ["banked_ticks", "banked_score", "drain_ticks_to_baseline"],
    )
    table.add_row(attack.bank_ticks, banked_score, drain_ticks)
    experiment(table)

    _export("slow_burn", {
        "protocol": "SlowBurnRogue banks 8 extra validated outcomes then "
                    "strikes; drain = alert outcomes needed to fall back "
                    "to the baseline score",
        "banked_ticks": attack.bank_ticks,
        "banked_score": banked_score,
        "drain_ticks": drain_ticks,
        "quick": QUICK,
    })


def test_e22_lease_abuser_is_rejected_wholesale(experiment):
    seed = 9
    sim = Simulator(seed=seed)
    network = Network(sim, base_latency=0.05, jitter=0.0)
    keyring = Keyring(seed=seed)
    keyring.issue("overseer")
    ledger = ReputationLedger(decay=0.0)
    for member in ("m0", "m1"):
        ledger.record(member, "validated", 0.0)
    authority = LeaseAuthority(
        sim, ledger=ledger, signer=CommandSigner(keyring, "overseer"),
        min_aggregate=0.5, max_duration=6.0, name="overseer")
    registry = LeaseAuthority(
        sim, verifier=EnvelopeVerifier(keyring, window=30.0),
        grantor="overseer", name="registry")
    network.register("overseer", lambda message: None)
    network.register("registry",
                     lambda message: registry.admit_grant(message.body))

    def grant_round() -> None:
        lease = authority.grant(("m0", "m1"), ("safety.kill",), 6.0,
                                cause="bench")
        network.send("overseer", "registry", LEASE_GRANT_TOPIC,
                     authority.grant_body(lease))

    sim.schedule_at(1.0, grant_round, label="bench:grant")
    sim.schedule_at(4.0, grant_round, label="bench:grant")

    attack = LeaseAbuser(network, "registry", grantor="overseer",
                         forge_rounds=3, replay_slack=1.0)
    record = AttackInjector(sim).launch_at(0.5, attack)
    sim.run(until=25.0)

    # Both abuse channels actually fired...
    assert record.detail["captured"] == 2
    assert record.detail["replays_sent"] == 2
    assert record.detail["forgeries_sent"] == 3
    # ...and nothing stuck: the genuine grants are the only registered
    # leases, every replay burned on its nonce (or its corpse), every
    # forgery died on the MAC.
    assert len(registry.leases()) == 2
    rejects = {}
    for event in registry.events:
        if event["kind"] == "rejected":
            rejects[event["reason"]] = rejects.get(event["reason"], 0) + 1
    assert sum(rejects.values()) == 5
    assert rejects.get("bad-mac", 0) == 3
    assert rejects.get("replayed", 0) + rejects.get("stale", 0) == 2
    assert not registry.active_leases()          # and everything expired

    table = ExperimentTable(
        "E22d lease-abuse rejection (2 genuine grants, 2 replays, "
        "3 forgeries)",
        ["reason", "rejected"],
    )
    for reason in sorted(rejects):
        table.add_row(reason, rejects[reason])
    experiment(table)

    _export("lease_abuse", {
        "protocol": "LeaseAbuser taps genuine grants off the wire, "
                    "replays each after its own expiry, and forges "
                    "grants naming itself grantee; registry admits "
                    "through E21 envelope verification",
        "replays": record.detail["replays_sent"],
        "forgeries": record.detail["forgeries_sent"],
        "rejected_by_reason": rejects,
        "quick": QUICK,
    })


# -- determinism ---------------------------------------------------------------------


def test_e22_full_spec_is_shard_invariant():
    """Rogue + partition + leases together: the merged trace, summary,
    and audit digest are byte-identical for every shard count."""
    runs = {n: ReputationScenario(seed=SEEDS[0], n_shards=n).run()
            for n in SHARD_COUNTS}
    reference = runs[SHARD_COUNTS[0]]
    for n, run in runs.items():
        assert run.trace_digest == reference.trace_digest, \
            f"trace diverged at n_shards={n}"
        assert run.summary == reference.summary, \
            f"summary diverged at n_shards={n}"

    _export("determinism", {
        "protocol": f"full default spec (weighted + leased + rogue + "
                    f"partition) at shard counts {list(SHARD_COUNTS)}; "
                    "merged trace digest and summary compared",
        "shard_counts": list(SHARD_COUNTS),
        "trace_digest": reference.trace_digest,
        "identical": True,
        "quick": QUICK,
    })
