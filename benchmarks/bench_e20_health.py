"""E20 — fleet health monitor: closed loops that earn their keep.

Three claims, one experiment file:

* **Adaptive quarantine, transient storms** — with no threat active, a
  high-loss link storm dead-letters safety reports and the fixed
  ``quarantine_after=3`` tether self-quarantines healthy devices (every
  one a false positive by construction).  The health monitor's
  ``link.degraded`` alert — streaming RTT EWMA over the same reliable
  channel — relaxes the threshold while the storm lasts and restores it
  after, producing *strictly fewer* false self-quarantines.

* **Adaptive quarantine, true partition** — a worm-compromised drone cut
  off by a real partition never acks, so its retries never touch the
  fleet RTT estimators: the alert stays quiet, the threshold stays at
  base, and the rogue's lifetime is *no worse* than under the fixed
  tether.  The loop relaxes only on evidence of fleet-wide degradation,
  never on one device's silence.

* **Sized compaction** — under worm-driven audit pressure, the
  ``store.pressure`` alert triggers size-based checkpoints that bound
  the journal footprint; the time-driven cadence lets it balloon
  between snapshots.  Same SLI (``store.journal_bytes``) in both arms.

Plus the budget: the whole monitor stack (estimators, alert engine,
closed loops) costs <= 5% wall clock on the full-threat confrontation.

Results export to ``benchmarks/results/BENCH_E20.json``; the adaptive
storm run also writes a telemetry bundle (``metrics.prom``,
``alerts.jsonl``, ...) to ``benchmarks/results/health_bundle/`` — the
CI artifact.

Quick mode (``E20_QUICK=1``, used by CI): one storm seed, fewer timing
repetitions.
"""

import json
import os
import time

from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import ExperimentTable, SafeguardConfig
from repro.sim.faults import FaultPlan, LinkDegradation, NetworkPartition
from repro.telemetry.health import CompactionController

QUICK = os.environ.get("E20_QUICK", "") not in ("", "0")

STORM_SEEDS = (5,) if QUICK else (5, 11, 23)
REPS = 3 if QUICK else 7
OVERHEAD_HORIZON = 150.0
OVERHEAD_BUDGET_PCT = 5.0

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULTS_PATH = os.path.join(RESULTS_DIR, "BENCH_E20.json")
BUNDLE_DIR = os.path.join(RESULTS_DIR, "health_bundle")


def _export(section: str, payload: dict) -> None:
    """Merge one section into BENCH_E20.json (tests run in any order)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    document = {
        "experiment": "E20",
        "title": "Fleet health monitor: adaptive quarantine, sized "
                 "compaction, and monitor overhead",
        "unit": {"quarantines": "devices", "journal_bytes": "bytes",
                 "overhead": "percent wall clock"},
    }
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH, encoding="utf-8") as handle:
            document = json.load(handle)
    document[section] = payload
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


# -- arm builders -------------------------------------------------------------------


def storm_scenario(seed: int, adaptive: bool) -> ConfrontationScenario:
    """Healthy fleet, ugly network: a 35s loss storm, no threat at all.

    Every self-quarantine in this arm is a false positive by
    construction — there is nothing to contain.
    """
    plan = FaultPlan([LinkDegradation(at=5.0, until=40.0,
                                      loss_rate=0.65, latency_factor=2.0)])
    return ConfrontationScenario(
        seed=seed, config=SafeguardConfig.full(), threats=ThreatConfig.none(),
        safety_transport="reliable", quarantine_after=3,
        durability="journal", fault_plan=plan,
        health=True, adaptive_quarantine=adaptive, quarantine_relaxed=8,
    )


def partition_scenario(seed: int, adaptive: bool,
                       fault_plan=None) -> ConfrontationScenario:
    """The E17/E19-style true incident: worm at t=20, rogue drone cut off."""
    return ConfrontationScenario(
        seed=seed,
        config=SafeguardConfig.only(watchdog=True, preaction=True,
                                    statespace=True, sealed=True),
        threats=ThreatConfig(worm=True, worm_time=20.0,
                             worm_initial_targets=3),
        safety_transport="reliable", quarantine_after=3,
        durability="journal", fault_plan=fault_plan,
        health=True, adaptive_quarantine=adaptive, quarantine_relaxed=8,
    )


def compaction_scenario(policy: str) -> ConfrontationScenario:
    """Worm-driven audit pressure; only the compaction trigger differs."""
    return ConfrontationScenario(
        seed=7, config=SafeguardConfig.full(), threats=ThreatConfig(),
        safety_transport="reliable", durability="journal+snapshot",
        snapshot_interval=45.0, health=True,
        compaction_policy=policy, compaction_bytes=4096,
    )


def overhead_scenario(health: bool) -> ConfrontationScenario:
    """The timing workload: full defense, all threats, monitor on/off."""
    return ConfrontationScenario(
        seed=3, config=SafeguardConfig.full(), threats=ThreatConfig.all(),
        safety_transport="reliable", durability="journal",
        health=health, adaptive_quarantine=health,
    )


# -- adaptive quarantine: transient storms ------------------------------------------


def test_e20_adaptive_quarantine_under_transient_storms(experiment):
    rows = []
    fixed_total = adaptive_total = 0
    for seed in STORM_SEEDS:
        fixed = storm_scenario(seed, adaptive=False).run(until=80.0)
        scenario = storm_scenario(seed, adaptive=True)
        bundle = BUNDLE_DIR if seed == STORM_SEEDS[0] else None
        adaptive = scenario.run(until=80.0, telemetry_dir=bundle)
        assert fixed["compromised_ever"] == adaptive["compromised_ever"] == 0
        assert adaptive["alerts_fired"] >= 1, "storm never detected"
        assert adaptive["quarantine_adjustments"] >= 2, "relax+restore missing"
        assert all(link.quarantine_after == 3
                   for link in scenario.overseer_links.values()), \
            "threshold not restored after the storm"
        fixed_total += fixed["quarantines"]
        adaptive_total += adaptive["quarantines"]
        rows.append((seed, fixed["quarantines"], adaptive["quarantines"],
                     adaptive["alerts_fired"]))

    table = ExperimentTable(
        f"E20a adaptive quarantine under transient loss storms "
        f"(loss 0.65 for t=5..40, no threat, {len(STORM_SEEDS)} seeds, "
        f"horizon 80)",
        ["seed", "false_quarantines_fixed", "false_quarantines_adaptive",
         "alerts_fired"],
    )
    for row in rows:
        table.add_row(*row)
    table.add_row("TOTAL", fixed_total, adaptive_total, 0)
    experiment(table)

    _export("transient_storms", {
        "protocol": "LinkDegradation loss 0.65 for t=5..40 with "
                    "ThreatConfig.none(): every self-quarantine is a false "
                    "positive; fixed quarantine_after=3 vs link.degraded-"
                    "driven relax to 8",
        "seeds": list(STORM_SEEDS),
        "false_quarantines_fixed": fixed_total,
        "false_quarantines_adaptive": adaptive_total,
        "per_seed": [{"seed": s, "fixed": f, "adaptive": a,
                      "alerts_fired": al} for s, f, a, al in rows],
        "bundle_dir": os.path.relpath(BUNDLE_DIR, RESULTS_DIR),
        "quick": QUICK,
    })

    assert fixed_total >= 1, "storm produced no false quarantines to prevent"
    assert adaptive_total < fixed_total, (
        f"adaptive arm must produce strictly fewer false self-quarantines "
        f"({adaptive_total} vs {fixed_total})")
    assert os.path.exists(os.path.join(BUNDLE_DIR, "alerts.jsonl"))


# -- adaptive quarantine: true partition --------------------------------------------


def test_e20_adaptive_is_no_worse_under_true_partition(experiment):
    # Probe run learns which devices the worm hits, so the real runs can
    # partition a compromised drone (same recipe as E19a).
    probe = partition_scenario(seed=11, adaptive=False)
    drone = next(target for target in probe.worm.initial_targets
                 if "drone" in target)
    plan = FaultPlan([NetworkPartition(at=20.5, heal_at=120.0,
                                       groups=((drone,),))])

    fixed = partition_scenario(11, adaptive=False, fault_plan=plan) \
        .run(until=80.0)
    scenario = partition_scenario(11, adaptive=True, fault_plan=plan)
    adaptive = scenario.run(until=80.0)

    table = ExperimentTable(
        f"E20b true partition ({drone} cut off at t=20.5, worm at t=20, "
        f"horizon 80)",
        ["arm", "mean_rogue_lifetime", "quarantines", "alerts_fired",
         "threshold_adjustments"],
    )
    table.add_row("fixed q=3", fixed["mean_rogue_lifetime"],
                  fixed["quarantines"], fixed["alerts_fired"], 0)
    table.add_row("adaptive", adaptive["mean_rogue_lifetime"],
                  adaptive["quarantines"], adaptive["alerts_fired"],
                  adaptive["quarantine_adjustments"])
    experiment(table)

    _export("true_partition", {
        "protocol": f"worm at t=20 compromises {probe.worm.initial_targets}; "
                    f"{drone} partitioned at t=20.5: its retries never ack, "
                    "so fleet RTT estimators stay calm and the threshold "
                    "stays at base",
        "partitioned": drone,
        "rogue_lifetime_fixed": fixed["mean_rogue_lifetime"],
        "rogue_lifetime_adaptive": adaptive["mean_rogue_lifetime"],
        "quarantines_fixed": fixed["quarantines"],
        "quarantines_adaptive": adaptive["quarantines"],
        "link_degraded_fired": scenario.alerts.firings("link.degraded") != [],
    })

    # The fail-closed path still fires under adaptive, and the rogue does
    # not outlive its fixed-threshold containment.
    assert adaptive["quarantines"] >= 1
    assert adaptive["mean_rogue_lifetime"] <= \
        fixed["mean_rogue_lifetime"] + 1e-9, (
            "adaptive quarantine let the partitioned rogue live longer")
    # One device's silence is not fleet degradation: no threshold change.
    assert not scenario.alerts.firings("link.degraded")
    assert adaptive["quarantine_adjustments"] == 0


# -- sized compaction ---------------------------------------------------------------


def test_e20_sized_compaction_bounds_journals(experiment):
    arms = {}
    for policy in ("time", "size"):
        scenario = compaction_scenario(policy)
        summary = scenario.run(until=90.0)
        arms[policy] = {
            "scenario": scenario,
            "summary": summary,
            "peak": scenario.monitor.peak(CompactionController.SLI),
            "final": sum(scenario.storage.size(j.name)
                         for j in scenario.audit_journals.values()),
        }

    time_arm, size_arm = arms["time"], arms["size"]
    budget = 4096
    fleet = len(size_arm["scenario"].audit_journals)
    bound = 3 * budget  # per-journal bound the closed loop should hold

    table = ExperimentTable(
        f"E20c compaction policy under worm audit pressure "
        f"(budget {budget}B/journal, {fleet} journals, snapshot cadence "
        f"45s, horizon 90)",
        ["arm", "peak_fleet_bytes", "final_fleet_bytes",
         "sized_compactions"],
    )
    for name in ("time", "size"):
        table.add_row(name, arms[name]["peak"], arms[name]["final"],
                      arms[name]["summary"]["compactions_sized"])
    experiment(table)

    _export("compaction", {
        "protocol": "worm-driven audit pressure; both arms publish the "
                    "same store.journal_bytes SLI; time arm checkpoints "
                    "every 45s, size arm checkpoints any journal over "
                    f"{budget}B while store.pressure is firing",
        "budget_bytes_per_journal": budget,
        "journals": fleet,
        "peak_time": time_arm["peak"],
        "peak_size": size_arm["peak"],
        "final_time": time_arm["final"],
        "final_size": size_arm["final"],
        "sized_compactions": size_arm["summary"]["compactions_sized"],
    })

    assert size_arm["summary"]["compactions_sized"] > 0
    assert size_arm["peak"] < time_arm["peak"], (
        "size-triggered compaction must bound the fleet journal footprint "
        "below the time-driven cadence's peak")
    for journal in size_arm["scenario"].audit_journals.values():
        assert size_arm["scenario"].storage.size(journal.name) < bound
    # The time-driven cadence demonstrably fails to hold that bound.
    assert any(t > bound for t in [time_arm["peak"]])


# -- monitor overhead ---------------------------------------------------------------


def _time_run(health: bool) -> tuple:
    scenario = overhead_scenario(health)
    start = time.perf_counter()
    scenario.run(until=OVERHEAD_HORIZON)
    elapsed = time.perf_counter() - start
    return elapsed, scenario.sim.events_processed


def test_e20_monitor_overhead(experiment):
    _time_run(True)                        # warm-up both code paths
    _time_run(False)
    on_times, off_times = [], []
    events = 0
    for _ in range(REPS):                  # interleaved: drift cancels
        elapsed, events = _time_run(True)
        on_times.append(elapsed)
        elapsed, _ = _time_run(False)
        off_times.append(elapsed)

    best_on, best_off = min(on_times), min(off_times)
    overhead_pct = (best_on - best_off) / best_off * 100.0

    table = ExperimentTable(
        f"E20d monitor overhead (full defense, all threats, horizon "
        f"{OVERHEAD_HORIZON:.0f}, best-of-{REPS} interleaved)",
        ["arm", "best_sec", "events_per_sec"],
    )
    table.add_row("health on", best_on, events / best_on)
    table.add_row("health off", best_off, events / best_off)
    table.add_row("overhead %", overhead_pct, 0.0)
    experiment(table)

    _export("overhead", {
        "protocol": f"best-of-{REPS} interleaved runs of the full-defense "
                    f"all-threats confrontation to t={OVERHEAD_HORIZON:.0f}; "
                    "health stack (SLIs + alert engine + closed loops) on "
                    "vs off back-to-back so machine drift cancels",
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "overhead_pct": overhead_pct,
        "best_seconds_on": best_on,
        "best_seconds_off": best_off,
        "events_processed": events,
        "quick": QUICK,
    })

    assert overhead_pct <= OVERHEAD_BUDGET_PCT, (
        f"monitor overhead {overhead_pct:.2f}% exceeds "
        f"{OVERHEAD_BUDGET_PCT}% budget")
