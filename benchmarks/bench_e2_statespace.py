"""E2 — sec VI-B state-space checks and the forced-choice dilemma.

The paper's worked example: "electronic components having no alternative
but to run at maximum capacity to prevent loss of life but risking a fire
at the same time", resolved by break-glass rules + a state preference
ontology + risk estimation.

The workload lives in :class:`repro.scenarios.escort.EscortScenario`:
every ``emergency_period`` ticks a life-threatening emergency requires an
overdrive; failing to overdrive harms a human; full overdrive lands in the
"fire" category and partial overdrive in the less-bad "property damage"
category.

Shape expectations: the unguarded baseline saves every human by repeatedly
catching fire; the plain VI-B guard keeps the device pristine and loses
every human; the paper's combined mechanism saves every human, never
reaches "fire" (the ontology picks "property damage"), and every bypass is
break-glass-granted and audits clean.
"""

import pytest

from repro.scenarios.escort import ARMS, EscortScenario
from repro.scenarios.harness import ExperimentTable

TICKS = 240
EMERGENCY_PERIOD = 12


def run_arm(arm: str) -> dict:
    return EscortScenario(arm, ticks=TICKS,
                          emergency_period=EMERGENCY_PERIOD).run()


@pytest.mark.parametrize("arm", list(ARMS))
def test_e2_arm_benchmarks(benchmark, arm):
    result = benchmark.pedantic(run_arm, args=(arm,), rounds=1, iterations=1)
    assert result["humans_harmed"] >= 0


def test_e2_dilemma_table(experiment, benchmark):
    results = {arm: run_arm(arm) for arm in ARMS}
    benchmark.pedantic(run_arm, args=("baseline",), rounds=1, iterations=1)

    table = ExperimentTable(
        f"E2 state-space checks under forced dilemmas "
        f"({TICKS // EMERGENCY_PERIOD} emergencies in {TICKS} ticks)",
        ["configuration", "humans harmed", "bad entries", "fire",
         "property dmg", "grants", "audit violations"],
    )
    for arm in ARMS:
        row = results[arm]
        table.add_row(arm, row["humans_harmed"], row["bad_entries"],
                      row["fire_entries"], row["property_damage_entries"],
                      row["grants"], row["audit_violations"])
    experiment(table)

    baseline, guard, combined = (results["baseline"], results["statespace"],
                                 results["combined"])
    # Baseline saves humans by burning itself (full overdrive -> fire).
    assert baseline["humans_harmed"] == 0
    assert baseline["fire_entries"] > 0
    # Plain VI-B guard keeps the device pristine but loses the humans.
    assert guard["bad_entries"] == 0
    assert guard["humans_harmed"] > 0
    # The combined mechanism saves every human, never reaches "fire"
    # (least-bad = property damage), and audits clean.
    assert combined["humans_harmed"] == 0
    assert combined["fire_entries"] == 0
    assert combined["property_damage_entries"] > 0
    assert combined["grants"] > 0
    assert combined["audit_violations"] == 0
