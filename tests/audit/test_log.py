"""Unit + property tests for the tamper-evident audit log."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.audit.log import AuditLog
from repro.errors import AuditError


def test_append_and_verify():
    log = AuditLog()
    log.append(1.0, "breakglass.granted", "dev1", {"rule": "evac"})
    log.append(2.0, "breakglass.used", "dev1", {"grant_id": 1})
    assert len(log) == 2
    assert log.verify()


def test_chain_links_prev_hashes():
    log = AuditLog()
    first = log.append(1.0, "a", "s")
    second = log.append(2.0, "b", "s")
    assert second.prev_hash == first.entry_hash
    assert first.prev_hash == "0" * 64


def test_content_tamper_detected():
    log = AuditLog()
    log.append(1.0, "a", "s", {"value": 1})
    log.append(2.0, "b", "s")
    tampered = dataclasses.replace(log._entries[0],
                                   detail={"value": 999})
    log._entries[0] = tampered
    with pytest.raises(AuditError):
        log.verify()


def test_deletion_tamper_detected():
    log = AuditLog()
    for time in range(3):
        log.append(float(time), "k", "s")
    del log._entries[1]
    with pytest.raises(AuditError):
        log.verify()


def test_reorder_tamper_detected():
    log = AuditLog()
    for time in range(3):
        log.append(float(time), "k", "s", {"n": time})
    log._entries[0], log._entries[1] = log._entries[1], log._entries[0]
    with pytest.raises(AuditError):
        log.verify()


def test_entries_filtering():
    log = AuditLog()
    log.append(1.0, "breakglass.granted", "dev1")
    log.append(2.0, "breakglass.used", "dev2")
    log.append(3.0, "governance.review", "dev1")
    assert len(log.entries("breakglass")) == 2
    assert len(log.entries("breakglass.used")) == 1
    assert len(log.entries(subject="dev1")) == 2


def test_sink_adapts_kind_detail_interface():
    log = AuditLog()
    sink = log.sink()
    sink("breakglass.granted", {"device": "dev1", "time": 4.0, "rule": "evac"})
    entry = log.last()
    assert entry.kind == "breakglass.granted"
    assert entry.subject == "dev1"
    assert entry.time == 4.0
    assert log.verify()


def test_head_hash_changes_per_append():
    log = AuditLog()
    genesis = log.head_hash()
    log.append(1.0, "k", "s")
    first = log.head_hash()
    log.append(2.0, "k", "s")
    assert genesis != first != log.head_hash()


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e6),
                          st.text(min_size=1, max_size=10),
                          st.text(max_size=10)),
                min_size=1, max_size=30))
def test_any_honest_log_verifies(entries):
    log = AuditLog()
    for time, kind, subject in entries:
        log.append(time, kind, subject)
    assert log.verify()


@given(st.integers(min_value=0, max_value=9))
def test_any_single_field_tamper_detected(position):
    log = AuditLog()
    for time in range(10):
        log.append(float(time), "kind", "subject", {"n": time})
    tampered = dataclasses.replace(log._entries[position], time=999.0)
    log._entries[position] = tampered
    with pytest.raises(AuditError):
        log.verify()
