"""Unit tests for the break-glass and compliance auditors."""

from repro.audit.auditor import BreakGlassAuditor, ComplianceAuditor, Finding
from repro.audit.log import AuditLog
from repro.core.obligations import Obligation, ObligationManager, ObligationOntology
from repro.core.actions import Action
from repro.types import ActionOutcome


class FakeDecision:
    def __init__(self, outcome, policy_id="p"):
        self.outcome = outcome
        self.policy_id = policy_id


class TestBreakGlassAuditor:
    def grant(self, log, device="dev1", justification="emergency", grant_id=1,
              time=1.0):
        log.append(time, "breakglass.granted", device, {
            "device": device, "grant_id": grant_id,
            "justification": justification, "time": time,
        })

    def test_justification_reuse_flagged(self):
        log = AuditLog()
        for index in range(5):
            self.grant(log, justification="same words", grant_id=index,
                       time=float(index))
        findings = BreakGlassAuditor(max_same_justification=3).audit(log)
        assert any(finding.kind == "justification_reuse" for finding in findings)

    def test_distinct_justifications_clean(self):
        log = AuditLog()
        for index in range(5):
            self.grant(log, justification=f"reason {index}", grant_id=index,
                       time=float(index))
        assert BreakGlassAuditor().audit(log) == []

    def test_denial_storm_flagged(self):
        log = AuditLog()
        for index in range(3):
            log.append(float(index), "breakglass.denied", "dev1",
                       {"device": "dev1", "time": float(index)})
        findings = BreakGlassAuditor(denial_storm_threshold=3).audit(log)
        assert any(finding.kind == "denial_storm" for finding in findings)

    def test_use_outside_emergency_is_violation(self):
        log = AuditLog()
        self.grant(log, time=1.0)
        log.append(8.0, "breakglass.used", "dev1",
                   {"device": "dev1", "grant_id": 1, "time": 8.0})
        findings = BreakGlassAuditor().audit(
            log, emergency_truth={"dev1": [(0.0, 5.0)]},
        )
        violations = [finding for finding in findings
                      if finding.kind == "use_outside_emergency"]
        assert len(violations) == 1
        assert violations[0].severity == "violation"

    def test_use_inside_emergency_clean(self):
        log = AuditLog()
        self.grant(log, time=1.0)
        log.append(3.0, "breakglass.used", "dev1",
                   {"device": "dev1", "grant_id": 1, "time": 3.0})
        findings = BreakGlassAuditor().audit(
            log, emergency_truth={"dev1": [(0.0, 5.0)]},
        )
        assert findings == []


class TestComplianceAuditor:
    def test_high_veto_rate_flagged(self):
        decisions = ([FakeDecision(ActionOutcome.VETOED)] * 8
                     + [FakeDecision(ActionOutcome.EXECUTED)] * 4)
        findings = ComplianceAuditor().audit_decisions("dev1", decisions)
        assert len(findings) == 1
        assert findings[0].kind == "high_veto_rate"

    def test_low_veto_rate_clean(self):
        decisions = ([FakeDecision(ActionOutcome.VETOED)] * 2
                     + [FakeDecision(ActionOutcome.EXECUTED)] * 10)
        assert ComplianceAuditor().audit_decisions("dev1", decisions) == []

    def test_small_sample_not_flagged(self):
        decisions = [FakeDecision(ActionOutcome.VETOED)] * 5
        assert ComplianceAuditor().audit_decisions("dev1", decisions) == []

    def test_obligation_violations_reported(self):
        ontology = ObligationOntology()
        ontology.declare_hazard("digging")
        ontology.attach("digging", Obligation(
            "warn", Action("post", "poster"), deadline=1.0,
        ))
        manager = ObligationManager(ontology, executor=lambda action: True)
        manager.on_action_executed(
            Action("dig", "digger", tags={"digging"}), time=0.0,
        )
        manager.expire(time=5.0)
        findings = ComplianceAuditor().audit_obligations("dev1", manager)
        assert len(findings) == 1
        assert findings[0].severity == "violation"

    def test_summarize(self):
        findings = [
            Finding("warning", "k", "s", "m"),
            Finding("violation", "k", "s", "m"),
            Finding("violation", "k", "s", "m"),
        ]
        summary = ComplianceAuditor.summarize(findings)
        assert summary == {"info": 0, "warning": 1, "violation": 2}
