"""Crash/recovery tests for the journal-backed audit log."""

import json
import struct
import zlib

import pytest

from repro.audit.log import GAP_KIND, AuditLog
from repro.errors import AuditError
from repro.store import Journal, StableStorage

HEADER = struct.Struct(">II")


def journaled_log(flush_every=1):
    storage = StableStorage()
    return storage, AuditLog(journal=Journal(storage, "d0.audit",
                                             flush_every=flush_every))


def crash_and_recover(log):
    accounting = log.crash_volatile()
    return accounting, log.recover()


def test_fully_flushed_log_recovers_whole_and_gapless():
    storage, log = journaled_log()
    for time in range(5):
        log.append(float(time), "decision", "d0", {"n": time})
    head = log.head_hash()
    accounting, recovery = crash_and_recover(log)
    assert accounting == {"lost": 0, "kind": "audit", "journaled": True}
    assert recovery == {"replayed": 5, "lost": 0, "gap": False}
    assert len(log) == 5
    assert log.head_hash() == head                 # bit-for-bit the same chain
    assert log.verify()
    assert log.gap_entries() == []


def test_unflushed_tail_is_lost_and_admitted_by_a_gap_entry():
    storage, log = journaled_log(flush_every=3)
    for time in range(5):                          # 3 flushed, 2 buffered
        log.append(float(time), "decision", "d0")
    assert log.durable_entries() == 3
    accounting, recovery = crash_and_recover(log)
    assert accounting["lost"] == 2
    assert recovery == {"replayed": 3, "lost": 2, "gap": True}
    assert log.verify()
    (gap,) = log.gap_entries()
    assert gap.kind == GAP_KIND
    assert gap.detail["lost_entries"] == 2
    assert gap.detail["torn_tail"] is False
    # The chain *resumes from the recovered head*: the gap entry links to
    # the last surviving hash, and later appends link through the gap.
    assert gap.prev_hash == log._entries[2].entry_hash
    entry = log.append(9.0, "decision", "d0")
    assert entry.prev_hash == gap.entry_hash
    assert log.verify()


def test_torn_journal_tail_recovers_prefix_with_gap():
    storage, log = journaled_log()
    for time in range(4):
        log.append(float(time), "decision", "d0")
    storage.corrupt_tail("d0.audit", drop_bytes=5)     # tears the last frame
    accounting, recovery = crash_and_recover(log)
    assert recovery["replayed"] == 3
    assert recovery["gap"] is True
    (gap,) = log.gap_entries()
    assert gap.detail["torn_tail"] is True
    assert log.verify()


def test_appends_while_crashed_are_dropped():
    storage, log = journaled_log()
    log.append(0.0, "decision", "d0")
    log.crash_volatile()
    assert log.append(1.0, "ghost", "d0") is None      # process is down
    assert log.checkpoint() is None                    # ditto snapshots
    log.recover()
    assert [entry.kind for entry in log.entries()] == ["decision"]
    assert log.verify()


def test_checkpoint_compacts_and_recovery_replays_snapshot_plus_tail():
    storage, log = journaled_log()
    for time in range(4):
        log.append(float(time), "decision", "d0")
    assert log.checkpoint() == 4
    log.append(4.0, "decision", "d0")
    accounting, recovery = crash_and_recover(log)
    assert recovery == {"replayed": 5, "lost": 0, "gap": False}
    assert log.verify()
    assert len(log) == 5


def test_tampered_journal_with_recomputed_crc_breaks_the_hash_chain():
    """A deliberate edit can refresh the CRC so the *journal* replays it
    happily — but the recovered chain's hashes no longer connect, and
    recovery raises instead of resuming a forged history."""
    storage, log = journaled_log()
    log.append(0.0, "decision", "d0", {"value": 1})
    log.append(1.0, "decision", "d0", {"value": 2})

    blob = storage.read("d0.audit")
    length, _crc = HEADER.unpack_from(blob, 0)
    body = json.loads(blob[HEADER.size:HEADER.size + length].decode("utf-8"))
    body["detail"]["value"] = 999                      # the forgery
    forged = json.dumps(body, sort_keys=True,
                        separators=(",", ":")).encode("utf-8")
    storage.write("d0.audit",
                  HEADER.pack(len(forged), zlib.crc32(forged)) + forged
                  + blob[HEADER.size + length:])

    log.crash_volatile()
    with pytest.raises(AuditError):
        log.recover()


def test_mid_chain_edit_still_detected_after_recovery():
    storage, log = journaled_log()
    for time in range(4):
        log.append(float(time), "decision", "d0", {"n": time})
    crash_and_recover(log)
    assert log.verify()
    import dataclasses
    log._entries[1] = dataclasses.replace(log._entries[1], detail={"n": 99})
    with pytest.raises(AuditError):
        log.verify()


def test_journal_less_log_loses_everything_but_reports_it():
    log = AuditLog()
    for time in range(3):
        log.append(float(time), "decision", "d0")
    accounting, recovery = crash_and_recover(log)
    assert accounting == {"lost": 3, "kind": "audit", "journaled": False}
    assert recovery == {"replayed": 0, "lost": 3, "gap": True}
    (gap,) = log.gap_entries()
    assert gap.detail["lost_entries"] == 3
    assert gap.detail["resumed_from"] == "0" * 64      # back to genesis
    assert log.verify()


def test_durable_entries_tracks_flush_state():
    storage, log = journaled_log(flush_every=2)
    assert log.durable_entries() == 0
    log.append(0.0, "a", "d0")
    assert log.durable_entries() == 0                  # still buffered
    log.append(1.0, "b", "d0")
    assert log.durable_entries() == 2                  # auto-flush hit
    assert AuditLog().durable_entries() == 0
