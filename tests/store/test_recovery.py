"""Tests for the DurabilityManager crash/restart orchestration."""

from repro.audit.log import AuditLog
from repro.sim.simulator import Simulator
from repro.store import DurabilityManager, Journal, StableStorage


class FakeComponent:
    """Duck-typed durable component with scripted accounting."""

    def __init__(self, lost=0, replayed=0, kind="fake", gap=False):
        self._lost = lost
        self._replayed = replayed
        self._kind = kind
        self._gap = gap
        self.crashes = 0
        self.recoveries = 0

    def crash_volatile(self):
        self.crashes += 1
        return {"lost": self._lost, "kind": self._kind, "journaled": False}

    def recover(self):
        self.recoveries += 1
        return {"replayed": self._replayed, "gap": self._gap}


def test_crash_and_restart_drive_every_registered_component():
    sim = Simulator(seed=0)
    manager = DurabilityManager(sim)
    first = FakeComponent(lost=2, replayed=5)
    second = FakeComponent(lost=0, replayed=3, gap=True)
    manager.register("d0", "a", first)
    manager.register("d0", "b", second)
    manager.register("d1", "c", FakeComponent())

    losses = manager.crash("d0")
    assert losses == {"a": 2, "b": 0}
    assert first.crashes == 1 and second.crashes == 1
    assert sim.metrics.value("store.crash_wipes") == 1

    replays = manager.restart("d0")
    assert replays["a"]["replayed"] == 5
    assert sim.metrics.value("store.recoveries") == 1
    assert sim.metrics.value("store.recovered_records") == 8
    assert sim.metrics.value("store.recovery_gaps") == 1
    assert sim.metrics.histogram("store.recovery_seconds").count == 1
    (event,) = sim.trace.query("store.recover")
    assert event.subject == "d0"
    assert event.detail["components"] == {"a": 5, "b": 3}
    # d1 untouched throughout.
    assert manager.components("d1") == ["c"]


def test_unregistered_device_crash_is_a_quiet_noop():
    sim = Simulator(seed=0)
    manager = DurabilityManager(sim)
    assert manager.crash("ghost") == {}
    assert manager.restart("ghost") == {}
    assert sim.metrics.value("store.recoveries") == 0


def test_silent_audit_loss_is_now_reported():
    """The satellite bugfix: a crash that destroys unjournaled audit
    entries must emit a metric and a trace record, not vanish."""
    sim = Simulator(seed=0)
    manager = DurabilityManager(sim)
    audit = AuditLog()                          # journal-less: all volatile
    for time in range(4):
        audit.append(float(time), "decision", "d0")
    manager.register("d0", "audit", audit)

    manager.crash("d0")
    assert sim.metrics.value("audit.entries_lost") == 4
    (event,) = sim.trace.query("audit.loss")
    assert event.subject == "d0"
    assert event.detail["lost"] == 4
    assert event.detail["journaled"] is False

    # A journal-backed log under the same crash reports nothing lost.
    sim2 = Simulator(seed=0)
    manager2 = DurabilityManager(sim2)
    journaled = AuditLog(journal=Journal(manager2.storage, "d0.audit"))
    for time in range(4):
        journaled.append(float(time), "decision", "d0")
    manager2.register("d0", "audit", journaled)
    manager2.crash("d0")
    assert sim2.metrics.value("audit.entries_lost") == 0
    assert sim2.trace.query("audit.loss") == []


def test_supervised_kill_counts_as_a_crash():
    sim = Simulator(seed=0, supervision="kill-device")
    manager = DurabilityManager(sim)
    audit = AuditLog()
    audit.append(0.0, "decision", "d0")
    manager.register("d0", "audit", audit)
    manager.attach_supervisor(sim.supervisor)
    sim.supervisor.register_kill_hook("d0", lambda reason: None)

    def boom():
        raise RuntimeError("handler died")

    sim.schedule_at(1.0, boom, label="d0:tick")
    sim.run(until=2.0)
    assert sim.metrics.value("audit.entries_lost") == 1
    assert len(audit) == 0                      # RAM wiped by the kill


def test_manager_owns_a_storage_by_default_or_shares_one():
    sim = Simulator(seed=0)
    shared = StableStorage()
    assert DurabilityManager(sim).storage is not None
    assert DurabilityManager(sim, shared).storage is shared
