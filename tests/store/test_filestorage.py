"""Directory-backed stable storage: the journal contract on real disk."""

from __future__ import annotations

import os

import pytest

from repro.errors import StorageError
from repro.store import FileStorage, Journal


@pytest.fixture
def storage(tmp_path):
    return FileStorage(str(tmp_path / "blobs"))


class TestBlobContract:
    def test_append_read_roundtrip(self, storage):
        storage.append("a", b"one")
        storage.append("a", b"two")
        assert storage.read("a") == b"onetwo"
        assert storage.size("a") == 6
        assert storage.names() == ["a"]
        assert storage.read("missing") == b""
        assert not storage.exists("missing")

    def test_write_replaces_whole_blob(self, storage):
        storage.write("a", b"first")
        storage.write("a", b"second!")
        assert storage.read("a") == b"second!"
        assert not os.path.exists(
            os.path.join(storage.dirpath, "a.tmp"))

    def test_counters_track_appends_and_bytes(self, storage):
        storage.append("a", b"12345")
        storage.write("b", b"123")
        assert storage.appends == 2
        assert storage.bytes_written == 8

    def test_truncate_bounds(self, storage):
        storage.write("a", b"abcdef")
        storage.truncate("a", 2)
        assert storage.read("a") == b"ab"
        with pytest.raises(StorageError):
            storage.truncate("a", 5)
        with pytest.raises(StorageError):
            storage.truncate("missing", 0)

    def test_delete_and_names_prefix(self, storage):
        storage.write("wh.log", b"x")
        storage.write("wh.snap", b"y")
        storage.write("other", b"z")
        assert storage.names("wh.") == ["wh.log", "wh.snap"]
        storage.delete("wh.log")
        assert storage.names("wh.") == ["wh.snap"]
        storage.delete("missing")            # no-op, no raise

    @pytest.mark.parametrize("bad", ["", ".", "..", "a/b", "a\\b", "a\x00b"])
    def test_illegal_names_rejected(self, storage, bad):
        with pytest.raises(StorageError):
            storage.read(bad)

    def test_corrupt_tail_drop_and_flip_on_disk(self, storage):
        storage.write("a", bytes([0xFF] * 8))
        assert storage.corrupt_tail("a", drop_bytes=3) == {
            "dropped": 3, "flipped": None}
        assert storage.size("a") == 5
        damage = storage.corrupt_tail("a", flip_bit=0)
        assert damage["flipped"] == 4
        assert storage.read("a")[-1] == 0xFE
        assert storage.corrupt_tail("missing", drop_bytes=9) == {
            "dropped": 0, "flipped": None}
        assert storage.corrupt_tail("a", drop_bytes=99)["dropped"] == 5


class TestPersistence:
    def test_blobs_survive_a_new_instance(self, tmp_path):
        first = FileStorage(str(tmp_path / "s"))
        first.append("a", b"hello")
        second = FileStorage(str(tmp_path / "s"))
        assert second.read("a") == b"hello"
        assert second.names() == ["a"]


class TestJournalOverFiles:
    """The CRC-framed journal's crash story holds on real files."""

    def test_append_replay_across_processes(self, tmp_path):
        storage = FileStorage(str(tmp_path / "j"))
        journal = Journal(storage, "d0.audit")
        for n in range(5):
            journal.append({"n": n})
        # "New process": fresh storage + journal over the same directory.
        reopened = Journal(FileStorage(str(tmp_path / "j")), "d0.audit")
        records = reopened.replay()
        assert [record.payload["n"] for record in records] == list(range(5))

    def test_torn_tail_truncated_on_recovery(self, tmp_path):
        storage = FileStorage(str(tmp_path / "j"))
        journal = Journal(storage, "d0.audit")
        for n in range(4):
            journal.append({"n": n})
        storage.corrupt_tail("d0.audit", drop_bytes=5)      # tear last frame
        torn_size = storage.size("d0.audit")
        fresh = FileStorage(str(tmp_path / "j"))
        # Opening over the torn blob recovers (and truncates) immediately.
        reopened = Journal(fresh, "d0.audit")
        _snapshot, records, report = reopened.recover()
        assert [record.payload["n"] for record in records] == [0, 1, 2]
        assert not report.truncated                 # already clean by now
        assert fresh.size("d0.audit") < torn_size   # tail cut on open
        # Appends after recovery replay cleanly with no sequence gap.
        reopened.append({"n": 99})
        replayed = Journal(FileStorage(str(tmp_path / "j")),
                           "d0.audit").replay()
        assert [record.payload["n"] for record in replayed] == [0, 1, 2, 99]

    def test_snapshot_compaction_survives_reopen(self, tmp_path):
        storage = FileStorage(str(tmp_path / "j"))
        journal = Journal(storage, "d0.audit")
        for n in range(6):
            journal.append({"n": n})
        journal.snapshot({"upto": 6}, 6)
        journal.append({"n": 6})
        snapshot, records, _report = Journal(
            FileStorage(str(tmp_path / "j")), "d0.audit").recover()
        assert snapshot["state"] == {"upto": 6}
        assert [record.payload["n"] for record in records] == [6]
