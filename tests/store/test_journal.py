"""Unit + property tests for stable storage and the write-ahead journal."""

import json
import struct
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.store import Journal, SNAPSHOT_SUFFIX, StableStorage

HEADER = struct.Struct(">II")


def frames(storage: StableStorage, name: str) -> list[dict]:
    """Hand-decode every frame in a blob (test-side ground truth)."""
    blob = storage.read(name)
    out, offset = [], 0
    while offset + HEADER.size <= len(blob):
        length, crc = HEADER.unpack_from(blob, offset)
        body = blob[offset + HEADER.size:offset + HEADER.size + length]
        assert zlib.crc32(body) == crc
        out.append(json.loads(body.decode("utf-8")))
        offset += HEADER.size + length
    assert offset == len(blob)
    return out


# -- stable storage ---------------------------------------------------------------


def test_storage_append_read_roundtrip():
    storage = StableStorage()
    storage.append("a", b"one")
    storage.append("a", b"two")
    assert storage.read("a") == b"onetwo"
    assert storage.size("a") == 6
    assert storage.names() == ["a"]
    assert storage.read("missing") == b""
    assert not storage.exists("missing")


def test_storage_truncate_bounds():
    storage = StableStorage()
    storage.write("a", b"abcdef")
    storage.truncate("a", 2)
    assert storage.read("a") == b"ab"
    with pytest.raises(StorageError):
        storage.truncate("a", 5)
    with pytest.raises(StorageError):
        storage.truncate("missing", 0)


def test_storage_corrupt_tail_drop_and_flip():
    storage = StableStorage()
    storage.write("a", bytes([0xFF] * 8))
    assert storage.corrupt_tail("a", drop_bytes=3) == {
        "dropped": 3, "flipped": None}
    assert storage.size("a") == 5
    damage = storage.corrupt_tail("a", flip_bit=0)
    assert damage["flipped"] == 4                  # last byte, bit 0
    assert storage.read("a")[-1] == 0xFE
    # Damage clamps instead of raising on tiny/missing blobs.
    assert storage.corrupt_tail("missing", drop_bytes=9) == {
        "dropped": 0, "flipped": None}
    assert storage.corrupt_tail("a", drop_bytes=99)["dropped"] == 5


# -- journal framing and replay ---------------------------------------------------


def test_append_replay_roundtrip():
    storage = StableStorage()
    journal = Journal(storage, "d0.audit")
    for n in range(3):
        assert journal.append({"n": n}) == n + 1
    records = Journal(storage, "d0.audit").replay()
    assert [record.seq for record in records] == [1, 2, 3]
    assert [record.payload for record in records] == [{"n": n}
                                                      for n in range(3)]


def test_flush_every_batches_and_crash_drops_the_buffer():
    storage = StableStorage()
    journal = Journal(storage, "d0.audit", flush_every=3)
    journal.append({"n": 0})
    journal.append({"n": 1})
    assert journal.unflushed == 2 and journal.flushed_records == 0
    assert journal.durable_records == 0
    assert journal.drop_volatile() == 2            # the crash eats both
    assert journal.replay() == []
    journal.append({"n": 2})
    journal.append({"n": 3})
    journal.append({"n": 4})                       # third append auto-flushes
    assert journal.unflushed == 0 and journal.flushed_records == 3


def test_torn_tail_is_truncated_not_trusted():
    storage = StableStorage()
    journal = Journal(storage, "d0.audit")
    for n in range(4):
        journal.append({"n": n})
    intact = storage.size("d0.audit")
    storage.corrupt_tail("d0.audit", drop_bytes=5)
    _snapshot, records, report = journal.recover()
    assert [record.payload["n"] for record in records] == [0, 1, 2]
    assert report.truncated and report.torn_bytes > 0
    assert not report.corrupt_frame                # torn, not rotted
    # The damaged tail was cut off the blob: a later append lands clean.
    assert storage.size("d0.audit") < intact
    assert frames(storage, "d0.audit") == [{"seq": n + 1, "n": n}
                                           for n in range(3)]


def test_bit_flip_is_caught_by_crc():
    storage = StableStorage()
    journal = Journal(storage, "d0.audit")
    for n in range(3):
        journal.append({"n": n})
    storage.corrupt_tail("d0.audit", flip_bit=3)   # inside the last payload
    _snapshot, records, report = journal.recover()
    assert [record.payload["n"] for record in records] == [0, 1]
    assert report.corrupt_frame and report.truncated


def test_append_after_torn_recovery_leaves_no_sequence_gap():
    storage = StableStorage()
    journal = Journal(storage, "d0.audit")
    for n in range(4):
        journal.append({"n": n})
    storage.corrupt_tail("d0.audit", drop_bytes=5)     # kills seq 4
    journal.recover()
    assert journal.append({"n": 99}) == 4              # realigned, not 5
    records, report = journal._scan()
    assert [record.seq for record in records] == [1, 2, 3, 4]
    assert not report.truncated and not report.corrupt_frame


def test_front_damage_cannot_resequence_later_appends_as_a_suffix():
    """A live journal anchors recovery at the blob's known first frame:
    when damage erases the *front* of the run, a frame appended later at
    the in-memory sequence must not replay as a bogus suffix of history
    (regression: hypothesis found ops=[append, flush, torn-wipe, append]
    recovering [2] where the prefix-exact answer is [])."""
    storage = StableStorage()
    journal = Journal(storage, "d0.audit")
    journal.append({"n": 0})
    storage.corrupt_tail("d0.audit", drop_bytes=storage.size("d0.audit"))
    journal.append({"n": 1})                           # lands with seq 2
    records, report = Journal(storage, "d0.audit").recover()[1:]
    # Cold open: the orphan frame starting at 2 is a *visible* gap.
    assert [record.seq for record in records] == [2]
    # Warm recovery on the journal that wrote the blob: seq 1 is gone, so
    # the orphan seq-2 frame is distrusted, not replayed as a suffix.
    records, report = journal.recover()[1:]
    assert records == []
    assert report.corrupt_frame
    # And the journal realigned: the next append restarts the run.
    assert journal.append({"n": 2}) == 1
    assert [record.seq for record in journal._scan()[0]] == [1]


def test_snapshot_compacts_and_recovery_resumes_from_it():
    storage = StableStorage()
    journal = Journal(storage, "d0.audit")
    for n in range(5):
        journal.append({"n": n})
    journal.snapshot({"upto": 5})
    assert journal.snapshot_seq == 5
    assert storage.read("d0.audit") == b""             # fully compacted
    journal.append({"n": 5})
    snapshot, records, report = Journal(storage, "d0.audit").recover()
    assert snapshot["state"] == {"upto": 5}
    assert report.snapshot_seq == 5
    assert [record.seq for record in records] == [6]
    # The next sequence continues after the snapshot + tail.
    resumed = Journal(storage, "d0.audit")
    assert resumed.append({"n": 6}) == 7
    assert resumed.durable_records == 7


def test_damaged_snapshot_is_discarded_not_trusted():
    storage = StableStorage()
    journal = Journal(storage, "d0.audit")
    journal.append({"n": 0})
    journal.snapshot({"upto": 1})
    journal.append({"n": 1})
    storage.corrupt_tail("d0.audit" + SNAPSHOT_SUFFIX, flip_bit=9)
    snapshot, records, report = Journal(storage, "d0.audit").recover()
    assert snapshot is None
    assert not storage.exists("d0.audit" + SNAPSHOT_SUFFIX)
    # Only the post-snapshot tail remains replayable: the compaction
    # already dropped seq 1 from the journal, so the loss is visible as
    # a sequence starting past 1 — never a silently wrong chain.
    assert [record.seq for record in records] == [2]


def test_tampered_frame_with_recomputed_crc_passes_the_journal():
    """The CRC catches *accidents*; a deliberate edit that recomputes the
    CRC replays cleanly — catching that is the hash chain's job (see
    tests/audit/test_log_durability.py)."""
    storage = StableStorage()
    journal = Journal(storage, "d0.audit")
    journal.append({"n": 0})
    journal.append({"n": 1})
    tampered = [dict(frame) for frame in frames(storage, "d0.audit")]
    tampered[0]["n"] = 999
    storage.write("d0.audit", b"".join(
        HEADER.pack(len(body), zlib.crc32(body)) + body
        for body in (json.dumps(frame, sort_keys=True,
                                separators=(",", ":")).encode("utf-8")
                     for frame in tampered)))
    _snapshot, records, report = Journal(storage, "d0.audit").recover()
    assert [record.payload["n"] for record in records] == [999, 1]
    assert not report.truncated and not report.corrupt_frame


def test_flush_every_validation():
    with pytest.raises(StorageError):
        Journal(StableStorage(), "d0.audit", flush_every=0)


# -- randomized crash/restart property --------------------------------------------


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("append")),
        st.tuples(st.just("flush")),
        st.tuples(st.just("crash")),
        st.tuples(st.just("torn"), st.integers(min_value=1, max_value=40)),
        st.tuples(st.just("flip"), st.integers(min_value=0, max_value=127)),
    ),
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=OPS, flush_every=st.integers(min_value=1, max_value=4))
def test_recovery_is_prefix_exact(ops, flush_every):
    """Whatever the interleaving of appends, flushes, crashes, torn tails
    and bit flips: recovery yields an *exact prefix* of what was appended
    — never reordered, never corrupted-but-accepted, never resequenced —
    and with no storage damage it yields everything flushed."""
    storage = StableStorage()
    journal = Journal(storage, "d0.audit", flush_every=flush_every)
    appended: list[int] = []
    damaged = False
    counter = 0
    for op in ops:
        if op[0] == "append":
            counter += 1
            journal.append({"n": counter})
            appended.append(counter)
        elif op[0] == "flush":
            journal.flush()
        elif op[0] == "crash":
            journal.drop_volatile()
            flushed_at_crash = journal.flushed_records
            _snapshot, records, _report = journal.recover()
            got = [record.payload["n"] for record in records]
            assert got == appended[:len(got)]          # prefix-exact
            if not damaged:
                assert len(got) == flushed_at_crash    # nothing durable lost
            appended = got                             # survivors define history
            counter = len(got)
        elif op[0] == "torn":
            if storage.size("d0.audit"):
                storage.corrupt_tail("d0.audit", drop_bytes=op[1])
                damaged = True
        elif op[0] == "flip":
            if storage.size("d0.audit"):
                storage.corrupt_tail("d0.audit", flip_bit=op[1])
                damaged = True
    journal.drop_volatile()
    records = journal.replay()
    got = [record.payload["n"] for record in records]
    assert got == appended[:len(got)]
