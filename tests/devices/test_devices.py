"""Unit tests for concrete devices: drones, mules, mechanic, operators,
coalitions, and the sim binding."""

import pytest

from repro.core.events import Event
from repro.devices.base import bind_device
from repro.devices.coalition import Coalition, Organization
from repro.devices.drone import builtin_drone_policies, make_drone
from repro.devices.human import HumanOperator
from repro.devices.mechanic import MechanicDevice
from repro.devices.mule import make_mule
from repro.devices.world import World
from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.safeguards.deactivation import Watchdog
from repro.safeguards.tamper import attest_device, attest_fleet
from repro.sim.simulator import Simulator
from repro.statespace.classifier import ThresholdBand, ThresholdClassifier
from repro.types import DeviceStatus, HarmKind


def build_env(seed=1):
    sim = Simulator(seed=seed)
    world = World(sim)
    network = Network(sim, base_latency=0.01, jitter=0.0)
    return sim, world, network


class TestDrone:
    def test_strike_harms_nearby_humans(self):
        sim, world, _net = build_env()
        world.add_human("h1", 10.0, 10.0)
        drone = make_drone("uav1", world, x=10.0, y=10.0)
        drone.command("strike", {"target_x": 10.0, "target_y": 10.0})
        assert world.harm_count(HarmKind.DIRECT) == 1

    def test_patrol_burns_fuel_and_heats(self):
        sim, world, net = build_env()
        drone = make_drone("uav1", world, x=50.0, y=50.0)
        bound = bind_device(drone, sim, net)
        bound.every(1.0)
        sim.run(until=5.5)
        assert drone.state.get("fuel") < 100.0
        assert drone.state.get("temp") > 20.0
        assert drone.state.get("x") != 50.0 or drone.state.get("y") != 50.0

    def test_thermal_policy_prevents_runaway(self):
        sim, world, net = build_env()
        drone = make_drone("uav1", world)
        drone.state.set("temp", 85.0)
        bound = bind_device(drone, sim, net)
        bound.every(1.0)
        sim.run(until=3.0)
        assert drone.state.get("temp") < 85.0   # cool_down policy fired

    def test_low_fuel_returns_to_base(self):
        sim, world, _net = build_env()
        drone = make_drone("uav1", world)
        drone.state.set("fuel", 15.0)
        decision = drone.deliver(Event.timer("tick", time=1.0))
        assert decision.executed == "return_to_base"

    def test_humans_in_range_sensor(self):
        sim, world, _net = build_env()
        world.add_human("h1", 12.0, 10.0)
        drone = make_drone("uav1", world, x=10.0, y=10.0, sensor_range=15.0)
        assert drone.sensors["humans_in_range"].read() == 1


class TestMule:
    def test_dig_creates_hazard_and_obligation(self):
        sim, world, net = build_env()
        mule = make_mule("m1", world, x=30.0, y=30.0)
        bind_device(mule, sim, net)
        mule.command("dig")
        assert len(world.hazards) == 1
        assert mule.engine.obligations.open_count() == 1
        sim.run(until=3.0)   # obligation pump posts warnings
        assert world.open_hazards() == []
        assert len(mule.engine.obligations.discharged) == 1

    def test_mule_without_obligations_leaves_hazards(self):
        sim, world, net = build_env()
        mule = make_mule("m1", world, with_obligations=False)
        bind_device(mule, sim, net)
        mule.command("dig")
        sim.run(until=10.0)
        assert len(world.open_hazards()) == 1

    def test_dispatch_message_triggers_intercept(self):
        sim, world, net = build_env()
        world.add_convoy(30.0, 30.0, target_x=90.0, target_y=90.0, speed=0.5)
        mule = make_mule("m1", world)
        bind_device(mule, sim, net)
        decision = mule.receive_message("dispatch", {"x": 10.0}, source="uav1")
        assert decision.executed == "intercept"
        assert mule.state.get("mode") == "intercept"

    def test_pursuit_captures_convoy(self):
        sim, world, net = build_env()
        convoy = world.add_convoy(30.0, 0.0, target_x=30.0, target_y=100.0,
                                  speed=0.5)
        mule = make_mule("m1", world, x=30.0, y=20.0, speed=4.0)
        bound = bind_device(mule, sim, net)
        bound.every(1.0)
        mule.receive_message("dispatch", {}, source="uav1")
        sim.run(until=30.0)
        assert convoy.intercepted_by == "m1"
        assert not convoy.escaped
        assert mule.state.get("mode") == "idle"   # stood down after capture

    def test_unpursued_convoy_escapes(self):
        sim, world, _net = build_env()
        convoy = world.add_convoy(10.0, 0.0, target_x=10.0, target_y=50.0,
                                  speed=2.0)
        sim.run(until=40.0)
        assert convoy.escaped
        assert world.convoys_escaped() == 1
        assert world.active_convoys() == []


class TestMechanic:
    def classifier(self):
        return ThresholdClassifier([
            ThresholdBand("temp", safe_high=80.0, hard_high=100.0),
        ])

    def test_repairs_deactivated_device(self):
        sim, world, _net = build_env()
        drone = make_drone("uav1", world, x=5.0, y=5.0)
        drone.state.set("temp", 120.0)
        drone.deactivate("watchdog: bad_state")
        devices = {"uav1": drone}
        mechanic = MechanicDevice(
            "fix1", sim, devices,
            baseline_policies=lambda device: builtin_drone_policies(
                device.engine.actions),
            repair_interval=2.0,
        )
        sim.run(until=3.0)
        assert drone.status == DeviceStatus.ACTIVE
        assert drone.state.get("temp") == 20.0   # reset to default
        assert drone.state.get("x") == 5.0       # position preserved
        assert mechanic.repairs[0][1] == "uav1"

    def test_repair_restores_policies_and_reattests(self):
        from repro.attacks.cyber import MalevolentPayload, compromise_device
        from repro.core.policy import Policy
        from repro.core.actions import Action

        sim, world, _net = build_env()
        drone = make_drone("uav1", world)
        devices = {"uav1": drone}
        baseline = attest_fleet(devices.values())
        watchdog = Watchdog(sim, devices, self.classifier(),
                            check_interval=1.0, attestation_baseline=baseline)
        mechanic = MechanicDevice(
            "fix1", sim, devices,
            baseline_policies=lambda device: builtin_drone_policies(
                device.engine.actions),
            repair_interval=3.0, watchdog=watchdog,
        )
        compromise_device(drone, MalevolentPayload(
            policies=[Policy.make("timer", None, Action("rogue", "motor"),
                                  policy_id="rogue")],
            strip_safeguards=False,
        ), time=0.0)
        sim.run(until=10.0)
        # Watchdog killed it (attestation), mechanic repaired it, and the
        # repaired configuration attests clean again.
        assert drone.status == DeviceStatus.ACTIVE
        assert "rogue" not in drone.engine.policies
        assert watchdog.attestation_baseline["uav1"] == attest_device(drone)

    def test_capacity_limits_repairs_per_sweep(self):
        sim, world, _net = build_env()
        devices = {}
        for index in range(3):
            drone = make_drone(f"uav{index}", world)
            drone.deactivate("test")
            devices[drone.device_id] = drone
        MechanicDevice("fix1", sim, devices,
                       baseline_policies=lambda device: builtin_drone_policies(
                           device.engine.actions),
                       repair_interval=10.0, repair_capacity=1)
        sim.run(until=11.0)
        active = [d for d in devices.values() if d.status == DeviceStatus.ACTIVE]
        assert len(active) == 1


class TestHumanOperator:
    def test_command_routing(self):
        sim, world, _net = build_env()
        operator = HumanOperator("op1", sim)
        drone = make_drone("uav1", world)
        operator.assign(drone)
        decision = operator.command("uav1", "return")
        assert decision.executed == "return_to_base"
        assert operator.command("ghost", "return") is None
        assert operator.commands_issued == 1

    def test_command_all(self):
        sim, world, _net = build_env()
        operator = HumanOperator("op1", sim)
        for index in range(3):
            operator.assign(make_drone(f"uav{index}", world))
        assert operator.command_all("return") == 3

    def test_cross_validation_rate_limit(self):
        sim, world, _net = build_env()
        operator = HumanOperator("op1", sim, review_capacity_per_unit=2.0)
        assert operator.cross_validate("ok?") is True
        assert operator.cross_validate("ok?") is True
        assert operator.cross_validate("ok?") is None   # over capacity
        assert operator.reviews_deferred == 1

    def test_capacity_validation(self):
        sim = Simulator(seed=1)
        with pytest.raises(ConfigurationError):
            HumanOperator("op1", sim, review_capacity_per_unit=0.0)


class TestCoalition:
    def test_enroll_stamps_organization(self):
        _sim, world, _net = build_env()
        org = Organization("us")
        drone = make_drone("uav1", world, organization="wrong")
        org.enroll(drone)
        assert drone.organization == "us"
        assert org.device_ids() == ["uav1"]

    def test_coalition_queries(self):
        _sim, world, _net = build_env()
        us, uk = Organization("us"), Organization("uk")
        us.enroll(make_drone("us-uav", world))
        uk.enroll(make_mule("uk-mule", world))
        coalition = Coalition("joint", [us, uk])
        assert len(coalition) == 2
        assert coalition.organization_of("us-uav") == "us"
        assert coalition.organization_of("ghost") is None
        assert coalition.organizations_spanned(["us-uav", "uk-mule"]) == {"us", "uk"}
        assert len(coalition.devices_of_type("drone")) == 1

    def test_duplicate_org_rejected(self):
        coalition = Coalition("joint", [Organization("us")])
        with pytest.raises(ConfigurationError):
            coalition.add(Organization("us"))


class TestSimDeviceBinding:
    def test_messages_route_to_device_events(self):
        sim, world, net = build_env()
        drone = make_drone("uav1", world)
        mule = make_mule("m1", world)
        bind_device(drone, sim, net)
        bind_device(mule, sim, net)
        world.add_convoy(50.0, 50.0, target_x=90.0, target_y=90.0, speed=0.1)
        drone.send_message("m1", "dispatch", {"x": 1.0})
        sim.run(until=1.0)
        assert sim.metrics.value("net.delivered") == 1
        # Mule's builtin policy acted on the dispatch and began pursuit.
        assert mule.state.get("mode") == "intercept"

    def test_clock_follows_simulator(self):
        sim, world, net = build_env()
        drone = make_drone("uav1", world)
        bind_device(drone, sim, net)
        sim.run(until=5.0)
        assert drone.clock() == 5.0

    def test_shutdown_unregisters(self):
        sim, world, net = build_env()
        drone = make_drone("uav1", world)
        bound = bind_device(drone, sim, net)
        bound.shutdown()
        assert "uav1" not in net.addresses()
