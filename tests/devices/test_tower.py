"""Unit tests for sensor towers and threat assessment."""

import pytest

from repro.devices.tower import ThreatAssessmentService, make_tower
from repro.devices.world import World
from repro.errors import ConfigurationError
from repro.sim.simulator import Simulator
from repro.statespace.breakglass import BreakGlassController, BreakGlassRule


def build(n_towers=5, hostiles=3, seed=19):
    sim = Simulator(seed=seed)
    world = World(sim)
    # Hostiles clustered near the center, towers ringed around it.
    for index in range(hostiles):
        world.add_human(f"hostile{index}", 50.0 + index, 50.0,
                        friendly=False, speed=0.0)
    world.add_human("friendly", 52.0, 52.0, friendly=True, speed=0.0)
    towers = {}
    for index in range(n_towers):
        tower = make_tower(f"tower{index}", world,
                           x=40.0 + 5.0 * index, y=45.0, coverage=40.0,
                           noise_sigma=0.2)
        towers[tower.device_id] = tower
    return sim, world, towers


class TestTower:
    def test_counts_only_hostiles(self):
        _sim, _world, towers = build(n_towers=1, hostiles=3)
        reading = towers["tower0"].sensors["threat"].read()
        assert reading == pytest.approx(3.0, abs=1.0)

    def test_offline_tower_reads_zero(self):
        _sim, _world, towers = build(n_towers=1)
        towers["tower0"].state.set("online", False)
        assert towers["tower0"].sensors["threat"].read() == 0.0

    def test_out_of_coverage_reads_zero(self):
        sim = Simulator(seed=3)
        world = World(sim)
        world.add_human("hostile", 90.0, 90.0, friendly=False, speed=0.0)
        tower = make_tower("t", world, x=0.0, y=0.0, coverage=10.0,
                           noise_sigma=0.0)
        assert tower.sensors["threat"].read() == 0.0


class TestThreatAssessment:
    def test_fused_estimate_near_truth(self):
        sim, _world, towers = build(hostiles=4)
        service = ThreatAssessmentService(sim, towers, interval=1.0)
        sim.run(until=10.0)
        assert service.estimate == pytest.approx(4.0, abs=1.0)
        assert service.rounds == 10

    def test_colluding_towers_outweighted_and_distrusted(self):
        sim, _world, towers = build(n_towers=7, hostiles=2)
        # Two towers are hijacked to scream maximum threat.
        for victim in ("tower0", "tower1"):
            towers[victim].sensors["threat"].override(500.0)  # frozen lie
        service = ThreatAssessmentService(sim, towers, interval=1.0)
        sim.run(until=15.0)
        assert service.estimate == pytest.approx(2.0, abs=1.0)
        assert set(service.suspected_towers()) == {"tower0", "tower1"}
        for victim in ("tower0", "tower1"):
            assert service.ledger.trust(victim) < 0.2

    def test_deactivated_towers_excluded(self):
        sim, _world, towers = build(n_towers=3)
        towers["tower0"].deactivate("maintenance")
        service = ThreatAssessmentService(sim, towers, interval=1.0)
        readings = service.readings()
        assert len(readings) == 2

    def test_requires_towers(self):
        sim = Simulator(seed=1)
        with pytest.raises(ConfigurationError):
            ThreatAssessmentService(sim, {})

    def test_context_verifier_feeds_breakglass(self):
        sim, world, towers = build(hostiles=6)
        service = ThreatAssessmentService(sim, towers, interval=1.0)
        controller = BreakGlassController(
            context_verifier=service.context_verifier(),
        )
        controller.register_rule(BreakGlassRule.make(
            "engage", "threat_level > 4", {"statespace"},
        ))
        grant = controller.request("uav1", "engage", "hostiles massing", 0.0)
        assert grant is not None
        # Remove the hostiles: the verified context no longer qualifies.
        for human_id in list(world.humans):
            if not world.humans[human_id].friendly:
                world.humans[human_id].alive = False
        assert controller.request("uav1", "engage", "again", 1.0) is None
