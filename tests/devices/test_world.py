"""Unit tests for the physical world model."""

import pytest

from repro.core.actions import Action
from repro.devices.world import World, WorldHarmModel
from repro.devices.drone import make_drone
from repro.devices.mule import make_mule
from repro.errors import ConfigurationError
from repro.sim.simulator import Simulator
from repro.types import HarmKind


def build(seed=1, **kwargs):
    sim = Simulator(seed=seed)
    return sim, World(sim, **kwargs)


class TestWorldBasics:
    def test_dimension_validation(self):
        sim = Simulator(seed=1)
        with pytest.raises(ConfigurationError):
            World(sim, width=0.0)

    def test_humans_clamped_to_field(self):
        _sim, world = build(width=10.0, height=10.0)
        human = world.add_human("h1", 50.0, -5.0)
        assert human.x == 10.0
        assert human.y == 0.0

    def test_duplicate_human_rejected(self):
        _sim, world = build()
        world.add_human("h1", 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            world.add_human("h1", 2.0, 2.0)

    def test_scatter_is_deterministic_per_seed(self):
        _sim1, world1 = build(seed=9)
        _sim2, world2 = build(seed=9)
        humans1 = world1.scatter_humans(5)
        humans2 = world2.scatter_humans(5)
        assert [(h.x, h.y) for h in humans1] == [(h.x, h.y) for h in humans2]

    def test_humans_near_radius_and_friendly_filter(self):
        _sim, world = build()
        world.add_human("near", 10.0, 10.0)
        world.add_human("far", 90.0, 90.0)
        world.add_human("foe", 11.0, 11.0, friendly=False)
        near = world.humans_near(10.0, 10.0, 5.0)
        assert {human.human_id for human in near} == {"near", "foe"}
        friendly = world.humans_near(10.0, 10.0, 5.0, friendly_only=True)
        assert {human.human_id for human in friendly} == {"near"}

    def test_humans_walk_over_time(self):
        sim, world = build()
        human = world.add_human("h1", 50.0, 50.0, speed=2.0)
        start = (human.x, human.y)
        sim.run(until=10.0)
        assert (human.x, human.y) != start


class TestHarm:
    def test_direct_harm_recorded(self):
        _sim, world = build()
        world.add_human("h1", 10.0, 10.0)
        harmed = world.harm_humans_near(10.0, 10.0, 5.0, cause="strike",
                                        device_id="uav1")
        assert harmed == 1
        assert world.harm_count() == 1
        assert world.harm_count(HarmKind.DIRECT) == 1
        assert world.humans["h1"].injured

    def test_unknown_human_ignored(self):
        _sim, world = build()
        assert world.harm_human("ghost", HarmKind.DIRECT, "x", "d") is None

    def test_hazard_harms_wanderer_once(self):
        sim, world = build()
        world.add_human("h1", 50.0, 50.0, speed=1.0)
        world.add_hazard("hole", 50.0, 50.0, radius=30.0, created_by="mule1")
        sim.run(until=20.0)
        assert world.harm_count(HarmKind.INDIRECT) == 1   # only once per human

    def test_mitigated_hazard_is_harmless(self):
        sim, world = build()
        world.add_human("h1", 50.0, 50.0)
        hazard = world.add_hazard("hole", 50.0, 50.0, radius=30.0,
                                  created_by="mule1")
        world.mitigate_hazard(hazard.hazard_id)
        sim.run(until=20.0)
        assert world.harm_count() == 0
        assert world.open_hazards() == []

    def test_mitigate_hazards_by_device(self):
        _sim, world = build()
        world.add_hazard("hole", 1.0, 1.0, 2.0, created_by="mule1")
        world.add_hazard("hole", 5.0, 5.0, 2.0, created_by="mule1")
        world.add_hazard("hole", 9.0, 9.0, 2.0, created_by="other")
        assert world.mitigate_hazards_by("mule1") == 2
        assert len(world.open_hazards()) == 1

    def test_remove_hazard(self):
        _sim, world = build()
        hazard = world.add_hazard("hole", 1.0, 1.0, 2.0, created_by="m")
        assert world.remove_hazard(hazard.hazard_id)
        assert not world.remove_hazard(999)
        assert world.open_hazards() == []

    def test_harm_metrics(self):
        sim, world = build()
        world.add_human("h1", 10.0, 10.0)
        world.harm_humans_near(10.0, 10.0, 5.0, cause="x", device_id="d")
        assert sim.metrics.value("world.harm") == 1
        assert sim.metrics.value("world.harm.direct") == 1


class TestWorldHarmModel:
    def test_direct_harm_predicted_within_sensor_range(self):
        sim, world = build()
        world.add_human("h1", 12.0, 10.0)
        drone = make_drone("uav1", world, x=10.0, y=10.0)
        model = WorldHarmModel(world, sensor_range=15.0, effect_radius=5.0)
        strike = Action("strike", "weapon", tags={"kinetic"})
        assert model.predict_direct_harm(drone, strike, 0.0) is not None

    def test_harm_beyond_sensor_range_invisible(self):
        """The paper's limitation: the model only anticipates humans it can
        currently sense."""
        sim, world = build()
        world.add_human("h1", 14.0, 10.0)   # inside blast 5? no: 4 away... make 4 away
        drone = make_drone("uav1", world, x=10.0, y=10.0)
        model = WorldHarmModel(world, sensor_range=2.0, effect_radius=5.0)
        strike = Action("strike", "weapon", tags={"kinetic"})
        # Human is 4m away: inside the blast radius but outside the 2m
        # sensor range, so the (limited) model predicts no harm.
        assert model.predict_direct_harm(drone, strike, 0.0) is None

    def test_untagged_action_never_direct_harm(self):
        sim, world = build()
        world.add_human("h1", 10.0, 10.0)
        drone = make_drone("uav1", world, x=10.0, y=10.0)
        model = WorldHarmModel(world)
        assert model.predict_direct_harm(drone, Action("patrol", "motor"),
                                         0.0) is None

    def test_hazard_prediction_by_tag(self):
        sim, world = build()
        mule = make_mule("m1", world)
        model = WorldHarmModel(world)
        dig = Action("dig", "digger", tags={"digging"})
        assert model.predict_hazard(mule, dig, 0.0) is not None
        assert model.predict_hazard(mule, Action("move", "motor"), 0.0) is None
