"""Unit tests for provenance and the trust ledger."""

import pytest

from repro.errors import ConfigurationError
from repro.trust.provenance import ProvenanceRecord, TrustLedger


class TestProvenanceRecord:
    def test_extended_appends_step(self):
        record = ProvenanceRecord("sensor1", "temp", 42.0, 1.0)
        extended = record.extended("aggregated").extended("sanitized")
        assert extended.chain == ("aggregated", "sanitized")
        assert record.chain == ()
        assert extended.source == "sensor1"

    def test_unique_ids(self):
        a = ProvenanceRecord("s", "k", 1, 0.0)
        b = ProvenanceRecord("s", "k", 1, 0.0)
        assert a.record_id != b.record_id


class TestTrustLedger:
    def test_initial_trust_default(self):
        ledger = TrustLedger(initial_trust=0.5)
        assert ledger.trust("never_seen") == 0.5

    def test_observe_moves_toward_agreement(self):
        ledger = TrustLedger(initial_trust=0.5, smoothing=0.5)
        ledger.observe("good", 1.0)
        assert ledger.trust("good") == pytest.approx(0.75)
        ledger.observe("bad", 0.0)
        assert ledger.trust("bad") == pytest.approx(0.25)

    def test_repeated_disagreement_drives_to_floor(self):
        ledger = TrustLedger(smoothing=0.5, distrust_floor=0.05)
        for _ in range(20):
            ledger.observe("liar", 0.0)
        assert ledger.trust("liar") < 0.05
        assert ledger.distrusted_sources() == ["liar"]

    def test_observe_weights_rescales_to_top(self):
        ledger = TrustLedger(initial_trust=0.5, smoothing=1.0)
        ledger.observe_weights({"a": 0.5, "b": 0.5, "c": 0.0})
        assert ledger.trust("a") == 1.0
        assert ledger.trust("c") == 0.0

    def test_trusted_sources_threshold(self):
        ledger = TrustLedger(smoothing=1.0)
        ledger.observe("a", 1.0)
        ledger.observe("b", 0.2)
        assert ledger.trusted_sources(minimum=0.5) == ["a"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrustLedger(initial_trust=1.5)
        with pytest.raises(ConfigurationError):
            TrustLedger(smoothing=0.0)
        with pytest.raises(ConfigurationError):
            TrustLedger().observe("s", 2.0)

    def test_observation_count_and_snapshot(self):
        ledger = TrustLedger()
        ledger.observe("a", 1.0)
        ledger.observe("a", 1.0)
        assert ledger.observation_count("a") == 2
        assert ledger.observation_count("unknown") == 0
        assert "a" in ledger.snapshot()

    def test_empty_weights_noop(self):
        ledger = TrustLedger()
        ledger.observe_weights({})
        ledger.observe_weights({"a": 0.0})
        assert ledger.observation_count("a") == 0
