"""ReputationLedger and ReputationAdjuster (E22)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.simulator import Simulator
from repro.store import Journal, StableStorage
from repro.telemetry.health import KnobArbiter, quarantine_knob
from repro.trust import (BANDS, OUTCOME_WEIGHTS, ReputationAdjuster,
                         ReputationLedger, TrustLedger)


# -- scores ------------------------------------------------------------------------


def test_unknown_device_reads_baseline_and_is_not_known():
    ledger = ReputationLedger()
    assert ledger.score("ghost", 5.0) == ledger.baseline
    assert ledger.known() == []
    assert ledger.mean(5.0) is None and ledger.minimum(5.0) is None


def test_outcome_deltas_are_exact_and_clamped():
    ledger = ReputationLedger(decay=0.0)
    assert ledger.record("d0", "validated", 0.0) == pytest.approx(0.52)
    assert ledger.record("d0", "alert", 1.0) == pytest.approx(0.44)
    # Repeated containment clamps at zero, never below.
    for tick in range(2, 6):
        ledger.record("d0", "quarantine", float(tick))
    assert ledger.score("d0", 6.0) == 0.0
    # And sustained good behaviour clamps at one.
    for tick in range(6, 70):
        ledger.record("d0", "validated", float(tick))
    assert ledger.score("d0", 70.0) == 1.0
    assert ledger.outcomes["validated"] == 65


def test_unknown_outcome_raises_and_scale_multiplies():
    ledger = ReputationLedger(decay=0.0)
    with pytest.raises(ConfigurationError):
        ledger.record("d0", "meltdown", 0.0)
    ledger.record("d0", "alert", 0.0, scale=2.0)
    assert ledger.score("d0", 0.0) == pytest.approx(
        0.5 + 2.0 * OUTCOME_WEIGHTS["alert"])


def test_decay_pulls_scores_back_toward_baseline():
    ledger = ReputationLedger(decay=0.5)
    ledger.record("d0", "quarantine", 0.0)                 # 0.25
    assert ledger.score("d0", 1.0) == pytest.approx(0.375)  # halfway home
    assert ledger.score("d0", 2.0) == pytest.approx(0.4375)
    assert ledger.score("d0", 40.0) == pytest.approx(0.5, abs=1e-6)
    # decay=0 is a frozen grudge.
    frozen = ReputationLedger(decay=0.0)
    frozen.record("d0", "quarantine", 0.0)
    assert frozen.score("d0", 1000.0) == 0.25


def test_weight_is_full_above_knee_linear_below_and_floored():
    ledger = ReputationLedger(decay=0.0)
    assert ledger.weight("ghost", 0.0) == pytest.approx(0.5 / 0.6)
    for _ in range(5):
        ledger.record("good", "validated", 0.0)            # 0.60
    assert ledger.weight("good", 0.0) == 1.0
    ledger.record("meh", "alert", 0.0)                     # 0.42
    assert ledger.weight("meh", 0.0) == pytest.approx(0.42 / 0.6)
    ledger.record("bad", "quarantine", 0.0)
    ledger.record("bad", "quarantine", 1.0)                # 0.0
    assert ledger.weight("bad", 1.0) == ledger.min_weight  # never zero


def test_bands_and_fleet_views():
    ledger = ReputationLedger(decay=0.0)
    for _ in range(5):
        ledger.record("t", "validated", 0.0)               # 0.60 trusted
    ledger.record("p", "alert", 0.0)                       # 0.42 probation
    ledger.record("s", "quarantine", 0.0)                  # 0.25 suspect
    assert ledger.band("t", 0.0) == "trusted"
    assert ledger.band("p", 0.0) == "probation"
    assert ledger.band("s", 0.0) == "suspect"
    assert ledger.band("ghost", 0.0) == "probation"        # baseline sits mid
    assert ledger.in_band("suspect", 0.0) == ["s"]
    with pytest.raises(ConfigurationError):
        ledger.in_band("banished", 0.0)
    assert set(BANDS) == {"trusted", "probation", "suspect"}
    assert ledger.known() == ["p", "s", "t"]
    assert ledger.aggregate(("t", "s"), 0.0) == pytest.approx(0.85)
    assert ledger.minimum(0.0) == 0.25
    assert ledger.mean(0.0) == pytest.approx((0.6 + 0.42 + 0.25) / 3)
    assert ledger.snapshot(0.0) == {
        "p": pytest.approx(0.42), "s": 0.25, "t": pytest.approx(0.6)}


def test_outcomes_mirror_into_trust_ledger_as_provenance():
    trust = TrustLedger()
    ledger = ReputationLedger(decay=0.0, trust_ledger=trust)
    before = trust.trust("d0")
    ledger.record("d0", "validated", 1.0)
    ledger.record("d0", "veto", 2.0)
    # Shared record shape: same ProvenanceRecord trail as sensor trust.
    kinds = [(r.source, r.kind, r.chain) for r in ledger.provenance]
    assert kinds == [("d0", "device.validated", ("reputation",)),
                     ("d0", "device.veto", ("reputation",))]
    assert trust.trust("d0") != before                     # outcomes moved it


def test_ctor_validation():
    for kwargs in ({"baseline": 1.5}, {"decay": 1.0}, {"min_weight": 0.0},
                   {"full_weight_at": 0.0}, {"probation_at": 0.9}):
        with pytest.raises(ConfigurationError):
            ReputationLedger(**kwargs)


# -- durability (E18) --------------------------------------------------------------


def test_journal_recovery_reproduces_scores_bit_identically():
    storage = StableStorage()
    ledger = ReputationLedger(decay=0.1, journal=Journal(storage, "rep"))
    ledger.record("d0", "validated", 1.0)
    ledger.record("d1", "quarantine", 2.5)
    ledger.record("d0", "alert", 4.0)
    probe = 9.0
    before = ledger.snapshot(probe)

    accounting = ledger.crash_volatile()
    assert accounting == {"lost": 2, "kind": "reputation", "journaled": True}
    assert ledger.score("d0", probe) == ledger.baseline    # amnesia...

    assert ledger.recover() == {"replayed": 3}
    assert ledger.snapshot(probe) == before                # ...bit-identical
    assert ledger.outcomes == {"validated": 1, "quarantine": 1, "alert": 1}


# -- the adjuster ------------------------------------------------------------------


def test_adjuster_tightens_suspects_and_releases_on_recovery():
    sim = Simulator(seed=1)
    arbiter = KnobArbiter(sim)
    applied = {}
    arbiter.register(quarantine_knob("d0"), 4,
                     lambda value: applied.__setitem__("d0", value))
    ledger = ReputationLedger(decay=0.0)
    adjuster = ReputationAdjuster(sim, ledger, arbiter, interval=1.0)
    adjuster.add_rule(quarantine_knob,
                      suspect=lambda base: max(1, base - 2))
    assert applied["d0"] == 4                              # base applied

    ledger.record("d0", "quarantine", 0.0)                 # 0.25 -> suspect
    sim.run(until=1.5)
    assert applied["d0"] == 2
    assert arbiter.winner(quarantine_knob("d0")) == "reputation"

    for _ in range(10):                                    # climb to probation
        ledger.record("d0", "validated", sim.now)
    sim.run(until=3.5)
    # No probation rule: the claim is withdrawn and the base returns.
    assert applied["d0"] == 4
    assert arbiter.winner(quarantine_knob("d0")) is None


def test_adjuster_skips_unregistered_knobs():
    sim = Simulator(seed=2)
    arbiter = KnobArbiter(sim)
    ledger = ReputationLedger(decay=0.0)
    adjuster = ReputationAdjuster(sim, ledger, arbiter, interval=1.0)
    adjuster.add_rule(quarantine_knob, suspect=lambda base: 1)
    ledger.record("d9", "quarantine", 0.0)
    sim.run(until=2.0)                                     # no knob, no crash
    assert sim.metrics.value("health.knob_adjustments") in (None, 0)
