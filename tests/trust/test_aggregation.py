"""Unit + property tests for robust sensor aggregation (ref [13])."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.trust.aggregation import (
    IterativeFilteringAggregator,
    SensorReading,
    mean_aggregate,
    median_aggregate,
    trimmed_mean_aggregate,
)


def readings(values, prefix="s"):
    return [SensorReading(source=f"{prefix}{i}", value=float(v))
            for i, v in enumerate(values)]


def collusion_scenario(truth=50.0, honest=7, colluders=3, false_value=500.0):
    """Honest sources report near truth; colluders report a common lie."""
    honest_readings = readings([truth + delta for delta in
                                [-1.0, -0.5, -0.2, 0.0, 0.2, 0.5, 1.0][:honest]],
                               prefix="honest")
    collusion = readings([false_value] * colluders, prefix="evil")
    return honest_readings + collusion


class TestBaselines:
    def test_mean_is_dragged_by_collusion(self):
        result = mean_aggregate(collusion_scenario())
        assert result > 100.0   # badly dragged

    def test_median_resists_minority(self):
        result = median_aggregate(collusion_scenario())
        assert abs(result - 50.0) < 5.0

    def test_trimmed_mean(self):
        result = trimmed_mean_aggregate(collusion_scenario(), trim_fraction=0.3)
        assert abs(result - 50.0) < 5.0

    def test_trim_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            trimmed_mean_aggregate(readings([1, 2]), trim_fraction=0.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_aggregate([])


class TestIterativeFiltering:
    def test_defeats_collusion(self):
        aggregator = IterativeFilteringAggregator()
        estimate = aggregator.aggregate(collusion_scenario())
        assert abs(estimate - 50.0) < 2.0

    def test_colluders_get_low_weight(self):
        aggregator = IterativeFilteringAggregator()
        aggregator.aggregate(collusion_scenario())
        suspects = aggregator.suspected_sources()
        assert suspects == ["evil0", "evil1", "evil2"]

    def test_weights_normalized(self):
        aggregator = IterativeFilteringAggregator()
        aggregator.aggregate(collusion_scenario())
        assert sum(aggregator.last_weights.values()) == pytest.approx(1.0)

    def test_single_reading(self):
        aggregator = IterativeFilteringAggregator()
        assert aggregator.aggregate(readings([42.0])) == 42.0

    def test_identical_readings_converge_immediately(self):
        aggregator = IterativeFilteringAggregator()
        assert aggregator.aggregate(readings([5.0, 5.0, 5.0])) == 5.0
        assert aggregator.last_iterations_used <= 2

    def test_initial_weights_bias(self):
        aggregator = IterativeFilteringAggregator(iterations=1)
        data = readings([0.0, 100.0])
        unbiased = aggregator.aggregate(data)
        biased = aggregator.aggregate(
            data, initial_weights={"s0": 1000.0, "s1": 0.001},
        )
        assert biased < unbiased

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IterativeFilteringAggregator(iterations=0)
        with pytest.raises(ConfigurationError):
            IterativeFilteringAggregator(epsilon=0.0)

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                    max_size=30))
    def test_estimate_within_data_range(self, values):
        aggregator = IterativeFilteringAggregator()
        estimate = aggregator.aggregate(readings(values))
        assert min(values) - 1e-9 <= estimate <= max(values) + 1e-9

    @given(st.floats(min_value=-50, max_value=50),
           st.integers(min_value=3, max_value=9))
    def test_majority_cluster_wins(self, truth, honest_count):
        """With > 2/3 honest sources, the estimate lands near the truth."""
        data = (readings([truth] * honest_count, prefix="h")
                + readings([truth + 1000.0], prefix="liar"))
        aggregator = IterativeFilteringAggregator()
        estimate = aggregator.aggregate(data)
        assert abs(estimate - truth) < 10.0
