"""Unit tests for the state preference ontology (sec VI-B, ref [14])."""

import pytest

from repro.errors import ConfigurationError
from repro.statespace.preferences import (
    StatePreferenceOntology,
    default_military_ontology,
)


def test_prefer_and_transitivity():
    ontology = StatePreferenceOntology()
    for label in ("a", "b", "c"):
        ontology.add_category(label)
    ontology.prefer("a", "b")
    ontology.prefer("b", "c")
    assert ontology.is_preferred("a", "b")
    assert ontology.is_preferred("a", "c")    # transitive
    assert not ontology.is_preferred("c", "a")
    assert ontology.comparable("a", "c")


def test_cycle_rejected():
    ontology = StatePreferenceOntology()
    ontology.add_category("a")
    ontology.add_category("b")
    ontology.prefer("a", "b")
    with pytest.raises(ConfigurationError):
        ontology.prefer("b", "a")
    # The failed edge must not have corrupted the graph.
    assert ontology.is_preferred("a", "b")


def test_self_preference_rejected():
    ontology = StatePreferenceOntology()
    ontology.add_category("a")
    with pytest.raises(ConfigurationError):
        ontology.prefer("a", "a")


def test_severity_rank_layers():
    ontology = default_military_ontology()
    rank = ontology.severity_rank()
    assert rank["nominal"] < rank["fire"] < rank["human_life_loss"]


def test_least_bad_picks_papers_example():
    """The paper: between loss of human life and starting a fire, the
    device must pick the fire."""
    ontology = default_military_ontology()
    fire_state = {"label": "fire"}
    death_state = {"label": "human_life_loss"}
    chosen = ontology.least_bad([death_state, fire_state],
                                labeler=lambda vector: vector["label"])
    assert chosen is fire_state


def test_least_bad_unknown_label_is_worst():
    ontology = default_military_ontology()
    known = {"label": "fire"}
    unknown = {"label": "mystery_meltdown"}
    chosen = ontology.least_bad([unknown, known],
                                labeler=lambda vector: vector["label"])
    assert chosen is known


def test_least_bad_tie_break_by_risk():
    ontology = default_military_ontology()
    first = {"label": "fire", "risk": 0.9}
    second = {"label": "fire", "risk": 0.2}
    chosen = ontology.least_bad(
        [first, second],
        labeler=lambda vector: vector["label"],
        tie_break=lambda vector: vector["risk"],
    )
    assert chosen is second


def test_least_bad_deterministic_without_tiebreak():
    ontology = default_military_ontology()
    first = {"label": "fire", "id": 1}
    second = {"label": "fire", "id": 2}
    assert ontology.least_bad(
        [first, second], labeler=lambda vector: vector["label"],
    ) is first


def test_least_bad_requires_candidates():
    with pytest.raises(ConfigurationError):
        default_military_ontology().least_bad([], labeler=lambda vector: "x")


def test_order_labels():
    ontology = default_military_ontology()
    ordered = ontology.order_labels(["human_injury", "nominal", "fire"])
    assert ordered == ["nominal", "fire", "human_injury"]


def test_incomparable_disconnected_categories():
    ontology = StatePreferenceOntology()
    ontology.add_category("x")
    ontology.add_category("y")
    assert not ontology.is_preferred("x", "y")
    assert not ontology.comparable("x", "y")
