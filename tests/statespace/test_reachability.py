"""Unit tests for bounded reachability analysis (sec V anticipation)."""

from repro.core.actions import Action, Effect
from repro.statespace.classifier import BoxClassifier, BoxRegion
from repro.statespace.reachability import ReachabilityAnalyzer
from repro.types import Safeness


def classifier(bad_at=30.0):
    return BoxClassifier(
        good=[BoxRegion.make("good", x=(0, bad_at - 10))],
        bad=[BoxRegion.make("bad", x=(bad_at, None))],
        decay_scale=5.0,
    )


def step(amount, name=None):
    return Action(name or f"step{amount:+g}", "m",
                  effects=[Effect("x", "add", float(amount))])


def test_depth_one_successors():
    analyzer = ReachabilityAnalyzer([step(5), step(-5)], classifier())
    root = analyzer.explore({"x": 10.0}, depth=1)
    assert len(root.children) == 2
    values = sorted(child.vector["x"] for child in root.children)
    assert values == [5.0, 15.0]


def test_bad_paths_found_at_depth():
    analyzer = ReachabilityAnalyzer([step(10)], classifier(bad_at=30.0))
    paths = analyzer.bad_paths({"x": 0.0}, depth=5)
    # 0 -> 10 -> 20 -> 30 (bad): three steps.
    assert paths == [("step+10", "step+10", "step+10")]


def test_exploration_stops_at_bad_states():
    analyzer = ReachabilityAnalyzer([step(50)], classifier(bad_at=30.0))
    root = analyzer.explore({"x": 0.0}, depth=3)
    bad_child = root.children[0]
    assert bad_child.classification == Safeness.BAD
    assert bad_child.children == []   # not expanded past bad


def test_safe_actions_filters_doomed_branches():
    analyzer = ReachabilityAnalyzer([step(25), step(-5)], classifier(bad_at=30.0))
    # From x=10: +25 -> 35 (bad); -5 -> 5 (good).
    assert analyzer.safe_actions({"x": 10.0}, depth=1) == ["step-5"]


def test_safe_actions_deeper_lookahead():
    """+10 is safe at depth 1 from x=10 (lands at 20), but at depth 2 the
    cumulative path 10->20->30 reaches the bad region -- the sec VI-B
    'cumulative effects' case.  A descending action stays safe because
    exploration also considers its +10 continuation from a lower x."""
    analyzer = ReachabilityAnalyzer([step(10), step(-20)], classifier(bad_at=30.0))
    depth1 = analyzer.safe_actions({"x": 10.0}, depth=1)
    assert "step+10" in depth1
    depth2 = analyzer.safe_actions({"x": 10.0}, depth=2)
    assert "step+10" not in depth2


def test_min_steps_to_bad():
    analyzer = ReachabilityAnalyzer([step(10), step(30)], classifier(bad_at=30.0))
    assert analyzer.min_steps_to_bad({"x": 0.0}, depth=4) == 1
    safe_analyzer = ReachabilityAnalyzer([step(-10)], classifier(bad_at=30.0))
    assert safe_analyzer.min_steps_to_bad({"x": 0.0}, depth=4) is None


def test_state_dedup_terminates_on_cycles():
    analyzer = ReachabilityAnalyzer([step(5), step(-5)], classifier(bad_at=1000.0))
    root = analyzer.explore({"x": 0.0}, depth=50)
    # Without dedup this would blow up exponentially; with it, the state
    # count is linear in depth.
    count = [0]

    def walk(node):
        count[0] += 1
        for child in node.children:
            walk(child)

    walk(root)
    assert count[0] <= 102


def test_max_states_bound():
    actions = [step(i + 1, name=f"a{i}") for i in range(10)]
    analyzer = ReachabilityAnalyzer(actions, classifier(bad_at=10**9),
                                    max_states=50)
    root = analyzer.explore({"x": 0.0}, depth=10)
    count = [0]

    def walk(node):
        count[0] += 1
        for child in node.children:
            walk(child)

    walk(root)
    assert count[0] <= 51


def test_noop_effect_actions_skipped():
    scale_noop = Action("noop_scale", "m", effects=[Effect("x", "scale", 1.0)])
    analyzer = ReachabilityAnalyzer([scale_noop], classifier())
    root = analyzer.explore({"x": 10.0}, depth=2)
    assert root.children == []
