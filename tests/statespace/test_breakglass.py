"""Unit tests for break-glass rules (sec VI-B, ref [12])."""

import pytest

from repro.errors import BreakGlassError
from repro.statespace.breakglass import BreakGlassController, BreakGlassRule


def make_controller(context=None, audit=None):
    context = context if context is not None else {"threat_level": 5}
    controller = BreakGlassController(
        context_verifier=lambda device_id: dict(context),
        audit_sink=audit,
    )
    controller.register_rule(BreakGlassRule.make(
        "evac", "threat_level > 3", {"statespace"},
        max_duration=10.0, max_uses=2,
    ))
    return controller


def test_grant_when_emergency_verified():
    controller = make_controller()
    grant = controller.request("dev1", "evac", "humans at risk", time=0.0)
    assert grant is not None
    assert grant.active(5.0)
    assert not grant.active(11.0)   # expired


def test_denied_when_context_contradicts():
    controller = make_controller(context={"threat_level": 0})
    assert controller.request("dev1", "evac", "claimed emergency", 0.0) is None


def test_unknown_rule_and_empty_justification():
    controller = make_controller()
    with pytest.raises(BreakGlassError):
        controller.request("dev1", "nope", "x", 0.0)
    with pytest.raises(BreakGlassError):
        controller.request("dev1", "evac", "   ", 0.0)


def test_bypass_consumes_uses():
    controller = make_controller()
    controller.request("dev1", "evac", "emergency", time=0.0)
    assert controller.is_bypassed("dev1", "statespace", 1.0)
    assert controller.is_bypassed("dev1", "statespace", 2.0)
    # max_uses=2 exhausted
    assert not controller.is_bypassed("dev1", "statespace", 3.0)


def test_bypass_scoped_to_safeguard_and_device():
    controller = make_controller()
    controller.request("dev1", "evac", "emergency", time=0.0)
    assert not controller.is_bypassed("dev1", "preaction", 1.0)
    assert not controller.is_bypassed("dev2", "statespace", 1.0)


def test_revoke_stops_bypass():
    controller = make_controller()
    grant = controller.request("dev1", "evac", "emergency", time=0.0)
    assert controller.revoke(grant.grant_id, 1.0, "audit finding")
    assert not controller.is_bypassed("dev1", "statespace", 2.0)
    assert not controller.revoke(grant.grant_id, 2.0, "again")


def test_audit_sink_sees_lifecycle():
    events = []
    controller = make_controller(audit=lambda kind, detail: events.append(kind))
    controller.request("dev1", "evac", "emergency", time=0.0)
    controller.is_bypassed("dev1", "statespace", 1.0)
    kinds = set(events)
    assert "breakglass.granted" in kinds
    assert "breakglass.used" in kinds


def test_denial_is_audited():
    events = []
    controller = make_controller(context={"threat_level": 0},
                                 audit=lambda kind, detail: events.append(kind))
    controller.request("dev1", "evac", "fake", time=0.0)
    assert events == ["breakglass.denied"]


def test_rule_validation():
    with pytest.raises(BreakGlassError):
        BreakGlassRule.make("r", "true", {"x"}, max_duration=0.0)
    with pytest.raises(BreakGlassError):
        BreakGlassRule.make("r", "true", {"x"}, max_uses=0)


def test_duplicate_rule_rejected():
    controller = make_controller()
    with pytest.raises(BreakGlassError):
        controller.register_rule(BreakGlassRule.make(
            "evac", "true", {"statespace"},
        ))


def test_grants_for_device():
    controller = make_controller()
    controller.request("dev1", "evac", "one", 0.0)
    controller.request("dev2", "evac", "two", 0.0)
    assert len(controller.grants_for("dev1")) == 1
    assert len(controller.all_grants()) == 2
