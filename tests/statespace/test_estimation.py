"""Unit tests for noisy state inference (sec V, ref [10])."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import SeededRNG
from repro.statespace.estimation import (
    NoisyChannel,
    StateEstimator,
    estimated_state_reader,
)


def rng():
    return SeededRNG(seed=77).stream("estimation")


class TestNoisyChannel:
    def test_observation_is_noisy_but_unbiased(self):
        channel = NoisyChannel(rng(), noise_sigma=2.0)
        truth = {"temp": 50.0, "fuel": 80.0}
        observations = [channel.observe(truth) for _ in range(200)]
        mean_temp = sum(obs["temp"] for obs in observations) / 200
        assert mean_temp == pytest.approx(50.0, abs=0.5)
        assert any(abs(obs["temp"] - 50.0) > 0.5 for obs in observations)

    def test_dropout_omits_variables(self):
        channel = NoisyChannel(rng(), noise_sigma=0.0, dropout=0.5)
        observations = [channel.observe({"temp": 50.0}) for _ in range(100)]
        missing = sum(1 for obs in observations if "temp" not in obs)
        assert 20 < missing < 80

    def test_non_numeric_excluded(self):
        channel = NoisyChannel(rng())
        observation = channel.observe({"temp": 1.0, "mode": "x", "armed": True})
        assert set(observation) == {"temp"}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NoisyChannel(rng(), noise_sigma=-1.0)
        with pytest.raises(ConfigurationError):
            NoisyChannel(rng(), dropout=1.0)


class TestStateEstimator:
    def test_converges_to_truth(self):
        channel = NoisyChannel(rng(), noise_sigma=1.0)
        estimator = StateEstimator(alpha=0.3)
        truth = {"temp": 60.0}
        for _ in range(50):
            estimator.update(channel.observe(truth))
        assert estimator.get("temp") == pytest.approx(60.0, abs=2.0)
        assert estimator.confidence("temp") > 0.2

    def test_tracks_a_moving_value(self):
        channel = NoisyChannel(rng(), noise_sigma=0.5)
        estimator = StateEstimator(alpha=0.4)
        for step in range(60):
            estimator.update(channel.observe({"temp": 20.0 + step}))
        assert estimator.get("temp") == pytest.approx(79.0, abs=5.0)

    def test_outlier_rejection(self):
        estimator = StateEstimator(alpha=0.3, outlier_sigmas=4.0)
        for _ in range(20):
            estimator.update({"temp": 50.0})
        estimator.update({"temp": 5000.0})
        assert estimator.rejected == 1
        assert estimator.get("temp") == pytest.approx(50.0, abs=1.0)

    def test_confidence_zero_before_min_observations(self):
        estimator = StateEstimator(min_observations=5)
        estimator.update({"temp": 1.0})
        assert estimator.confidence("temp") == 0.0
        assert estimator.confidence("never_seen") == 0.0
        assert not estimator.converged(["temp"])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StateEstimator(alpha=0.0)


class TestWatchdogIntegration:
    def test_watchdog_works_through_noisy_reader(self):
        from repro.safeguards.deactivation import Watchdog
        from repro.sim.simulator import Simulator
        from repro.statespace.classifier import ThresholdBand, ThresholdClassifier
        from repro.types import DeviceStatus
        from tests.conftest import make_test_device

        sim = Simulator(seed=5)
        device = make_test_device("noisy1")
        devices = {"noisy1": device}
        channel = NoisyChannel(sim.rng.stream("channel"), noise_sigma=1.0)
        estimator = StateEstimator(alpha=0.4)
        watchdog = Watchdog(
            sim, devices,
            ThresholdClassifier([ThresholdBand("temp", safe_high=80.0,
                                               hard_high=100.0)]),
            check_interval=1.0,
            state_readers={"noisy1": estimated_state_reader(device, channel,
                                                            estimator)},
        )
        sim.run(until=10.0)   # healthy warm-up: no false positive
        assert device.status == DeviceStatus.ACTIVE
        device.state.set("temp", 130.0)
        sim.run(until=25.0)   # estimator converges onto the bad value
        assert device.status == DeviceStatus.DEACTIVATED
        assert watchdog.deactivations("bad_state")
