"""Unit + property tests for safeness classifiers (Fig 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.statespace.classifier import (
    BoxClassifier,
    BoxRegion,
    CompositeClassifier,
    FunctionClassifier,
    ThresholdBand,
    ThresholdClassifier,
)
from repro.types import Safeness


class TestBoxRegion:
    def test_contains(self):
        region = BoxRegion.make("hot", temp=(90, None), fuel=(None, 50))
        assert region.contains({"temp": 95.0, "fuel": 10.0})
        assert not region.contains({"temp": 80.0, "fuel": 10.0})
        assert not region.contains({"temp": 95.0, "fuel": 60.0})

    def test_missing_variable_not_contained(self):
        region = BoxRegion.make("hot", temp=(90, None))
        assert not region.contains({"fuel": 5.0})

    def test_margin_zero_inside(self):
        region = BoxRegion.make("band", temp=(10, 20))
        assert region.margin({"temp": 15.0}) == 0.0
        assert region.margin({"temp": 25.0}) == 5.0
        assert region.margin({"temp": 4.0}) == 6.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            BoxRegion.make("bad", temp=(10, 5))


class TestBoxClassifier:
    def make(self):
        # Figure 3: a central good box surrounded by bad regions.
        return BoxClassifier(
            good=[BoxRegion.make("good", x=(20, 80), y=(20, 80))],
            bad=[BoxRegion.make("bad_hi_x", x=(95, None)),
                 BoxRegion.make("bad_lo_x", x=(None, 5))],
            decay_scale=10.0,
        )

    def test_three_way_classification(self):
        classifier = self.make()
        assert classifier.classify({"x": 50.0, "y": 50.0}) == Safeness.GOOD
        assert classifier.classify({"x": 99.0, "y": 50.0}) == Safeness.BAD
        assert classifier.classify({"x": 94.0, "y": 50.0}) == Safeness.BAD or \
            classifier.classify({"x": 94.0, "y": 50.0}) == Safeness.NEUTRAL

    def test_safeness_zero_in_bad(self):
        classifier = self.make()
        assert classifier.safeness({"x": 100.0, "y": 0.0}) == 0.0

    def test_safeness_grows_away_from_bad(self):
        classifier = self.make()
        near = classifier.safeness({"x": 90.0, "y": 50.0})
        far = classifier.safeness({"x": 50.0, "y": 50.0})
        assert far > near

    def test_good_region_pins_to_good(self):
        classifier = self.make()
        assert classifier.is_good({"x": 25.0, "y": 50.0})

    def test_prefer_partial_order(self):
        classifier = self.make()
        safe = {"x": 50.0, "y": 50.0}
        risky = {"x": 90.0, "y": 50.0}
        assert classifier.prefer(safe, risky) == 1
        assert classifier.prefer(risky, safe) == -1
        assert classifier.prefer(safe, dict(safe)) == 0

    def test_no_bad_regions_defaults(self):
        classifier = BoxClassifier(
            good=[BoxRegion.make("g", x=(0, 10))], bad=[],
        )
        assert classifier.safeness({"x": 5.0}) == 1.0
        assert classifier.safeness({"x": 50.0}) == 0.5

    @given(st.floats(min_value=0, max_value=200),
           st.floats(min_value=0, max_value=200))
    def test_safeness_always_in_unit_interval(self, x, y):
        classifier = self.make()
        assert 0.0 <= classifier.safeness({"x": x, "y": y}) <= 1.0


class TestThresholdClassifier:
    def make(self):
        return ThresholdClassifier([
            ThresholdBand("temp", safe_high=80.0, hard_high=100.0),
            ThresholdBand("fuel", safe_low=10.0, hard_low=0.0),
        ])

    def test_inside_safe_band_is_good(self):
        assert self.make().classify({"temp": 50.0, "fuel": 50.0}) == Safeness.GOOD

    def test_beyond_hard_limit_is_bad(self):
        classifier = self.make()
        assert classifier.classify({"temp": 101.0, "fuel": 50.0}) == Safeness.BAD
        assert classifier.classify({"temp": 50.0, "fuel": 0.0}) == Safeness.BAD

    def test_soft_zone_is_linear(self):
        classifier = self.make()
        assert classifier.safeness({"temp": 90.0, "fuel": 50.0}) == pytest.approx(0.5)

    def test_weakest_variable_dominates(self):
        classifier = self.make()
        assert classifier.safeness({"temp": 90.0, "fuel": 5.0}) == pytest.approx(0.5)
        assert classifier.safeness({"temp": 90.0, "fuel": 2.0}) == pytest.approx(0.2)

    def test_missing_variable_scores_zero(self):
        assert self.make().safeness({"temp": 50.0}) == 0.0

    def test_requires_bands(self):
        with pytest.raises(ConfigurationError):
            ThresholdClassifier([])

    @given(st.floats(min_value=0, max_value=150),
           st.floats(min_value=0, max_value=100))
    def test_monotone_in_temperature(self, temp, fuel):
        """Higher temp can never be safer (fuel fixed) — the sec VII
        derivative-sign property the utility function relies on."""
        classifier = self.make()
        lower = classifier.safeness({"temp": temp, "fuel": fuel})
        higher = classifier.safeness({"temp": temp + 5.0, "fuel": fuel})
        assert higher <= lower + 1e-12


class TestFunctionAndComposite:
    def test_function_classifier_clips(self):
        classifier = FunctionClassifier(lambda vector: vector["x"] * 10.0)
        assert classifier.safeness({"x": 5.0}) == 1.0
        assert classifier.safeness({"x": -5.0}) == 0.0

    def test_composite_takes_min(self):
        always_good = FunctionClassifier(lambda vector: 1.0)
        always_bad = FunctionClassifier(lambda vector: 0.0)
        composite = CompositeClassifier([always_good, always_bad])
        assert composite.classify({}) == Safeness.BAD

    def test_composite_requires_children(self):
        with pytest.raises(ConfigurationError):
            CompositeClassifier([])

    def test_threshold_ordering_validated(self):
        with pytest.raises(ConfigurationError):
            FunctionClassifier(lambda vector: 1.0, bad_below=0.9, good_above=0.1)
