"""Unit tests for risk estimation (sec VI-B)."""

import pytest

from repro.errors import ConfigurationError
from repro.statespace.risk import (
    RiskEstimator,
    RiskFactor,
    humans_nearby_factor,
    irreversibility_factor,
    variable_excess_factor,
)


def test_empty_estimator_is_zero_risk():
    assert RiskEstimator().estimate({"x": 1.0}) == 0.0


def test_weighted_mean_of_factors():
    estimator = RiskEstimator([
        RiskFactor("always", lambda v, c: 1.0, weight=1.0),
        RiskFactor("never", lambda v, c: 0.0, weight=3.0),
    ])
    assert estimator.estimate({}) == pytest.approx(0.25)


def test_scores_clipped_to_unit_interval():
    estimator = RiskEstimator([RiskFactor("wild", lambda v, c: 5.0)])
    assert estimator.estimate({}) == 1.0
    estimator = RiskEstimator([RiskFactor("negative", lambda v, c: -5.0)])
    assert estimator.estimate({}) == 0.0


def test_negative_weight_rejected():
    with pytest.raises(ConfigurationError):
        RiskFactor("bad", lambda v, c: 0.0, weight=-1.0)


def test_breakdown_names_factors():
    estimator = RiskEstimator([
        RiskFactor("a", lambda v, c: 0.2),
        RiskFactor("b", lambda v, c: 0.8),
    ])
    breakdown = estimator.breakdown({})
    assert breakdown == {"a": 0.2, "b": 0.8}


def test_rank_states_lowest_first_and_stable():
    estimator = RiskEstimator([
        RiskFactor("x", lambda vector, c: vector["x"]),
    ])
    ranked = estimator.rank_states([{"x": 0.9}, {"x": 0.1}, {"x": 0.1}])
    assert [vector["x"] for _risk, vector in ranked] == [0.1, 0.1, 0.9]
    assert ranked[0][0] == pytest.approx(0.1)


def test_humans_nearby_factor_saturates():
    factor = humans_nearby_factor(saturation=3)
    assert factor.score({}, {"humans_within_radius": 0}) == 0.0
    assert factor.score({}, {"humans_within_radius": 3}) == 1.0
    assert factor.score({}, {"humans_within_radius": 30}) == 1.0


def test_variable_excess_factor_linear():
    factor = variable_excess_factor("temp", 80.0, 100.0)
    assert factor.score({"temp": 70.0}, {}) == 0.0
    assert factor.score({"temp": 90.0}, {}) == pytest.approx(0.5)
    assert factor.score({"temp": 150.0}, {}) == 1.0
    assert factor.score({"mode": "x"}, {}) == 0.0


def test_variable_excess_requires_ordered_limits():
    with pytest.raises(ConfigurationError):
        variable_excess_factor("temp", 100.0, 80.0)


def test_irreversibility_factor_reads_context():
    factor = irreversibility_factor()
    assert factor.score({}, {"action_irreversible": True}) == 1.0
    assert factor.score({}, {}) == 0.0


def test_context_passed_through():
    estimator = RiskEstimator([humans_nearby_factor(saturation=2)])
    low = estimator.estimate({}, {"humans_within_radius": 0})
    high = estimator.estimate({}, {"humans_within_radius": 2})
    assert high > low
