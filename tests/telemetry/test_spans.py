"""Tracer unit behaviour: ids, parenting, capacity, lazy roots, export."""

from __future__ import annotations

import pytest

from repro.sim.simulator import Simulator
from repro.telemetry.spans import Span, SpanContext, Tracer


class TestSpanContext:
    def test_round_trips_through_dict(self):
        context = SpanContext("t1", "s2", "s1")
        assert SpanContext.from_dict(context.to_dict()) == context

    def test_equality_and_hash(self):
        a = SpanContext("t1", "s1", None)
        b = SpanContext("t1", "s1", None)
        assert a == b and hash(a) == hash(b)
        assert a != SpanContext("t1", "s2", None)


class TestTracerMinting:
    def test_ids_are_deterministic_counters(self):
        tracer = Tracer()
        first = tracer.start_trace("a", "dev", 0.0)
        second = tracer.start_trace("b", "dev", 1.0)
        assert first.context.trace_id == "t1"
        assert second.context.trace_id == "t2"
        assert first.context.span_id == "s1"
        assert second.context.span_id == "s2"
        # A fresh tracer mints the identical sequence — replay-exact.
        again = Tracer()
        assert again.start_trace("a", "dev", 0.0).context.trace_id == "t1"

    def test_child_inherits_trace_and_points_at_parent(self):
        tracer = Tracer()
        root = tracer.start_trace("root", "dev", 0.0)
        child = tracer.start_span("child", "dev", 1.0, parent=root.context)
        assert child.context.trace_id == root.context.trace_id
        assert child.context.parent_id == root.context.span_id

    def test_orphan_span_roots_its_own_trace(self):
        tracer = Tracer()
        span = tracer.start_span("lonely", "dev", 0.0)
        assert span.context.parent_id is None
        assert span.context.trace_id == "t1"

    def test_default_parent_is_active_context(self):
        tracer = Tracer()
        root = tracer.start_trace("root", "dev", 0.0)
        tracer.activate(root.context)
        child = tracer.start_span("child", "dev", 1.0)
        assert child.context.parent_id == root.context.span_id

    def test_disabled_tracer_mints_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.start_trace("a", "dev", 0.0) is None
        assert tracer.start_span("b", "dev", 0.0) is None
        assert tracer.active_context() is None
        assert tracer.spans == []

    def test_clock_supplies_default_time(self):
        tracer = Tracer(clock=lambda: 42.5)
        assert tracer.start_trace("a", "dev").time == 42.5
        assert tracer.start_trace("a", "dev", time=1.0).time == 1.0


class TestCapacity:
    def test_capacity_cap_drops_but_listeners_still_fire(self):
        seen = []
        tracer = Tracer(capacity=2)
        tracer.subscribe(seen.append)
        for index in range(5):
            tracer.start_trace("tick", "dev", float(index))
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3
        assert len(seen) == 5          # the flight recorder sees everything
        assert tracer.stats()["dropped"] == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        Tracer(capacity=None)          # unbounded is allowed

    def test_clear_resets_retention_not_counters(self):
        tracer = Tracer(capacity=1)
        tracer.start_trace("a", "dev", 0.0)
        tracer.start_trace("b", "dev", 1.0)
        tracer.clear()
        assert tracer.spans == [] and tracer.dropped == 0
        # Id counters keep going: cleared history never recycles ids.
        assert tracer.start_trace("c", "dev", 2.0).context.trace_id == "t3"


class TestActivation:
    def test_activate_returns_previous_for_restore(self):
        tracer = Tracer()
        first = tracer.start_trace("a", "dev", 0.0).context
        second = tracer.start_trace("b", "dev", 0.0).context
        assert tracer.activate(first) is None
        assert tracer.activate(second) is first
        assert tracer.activate(None) is second
        assert tracer.current is None

    def test_pending_root_materializes_on_demand(self):
        tracer = Tracer()
        tracer.pending_root = ("dev1:heartbeat", 7.0)
        assert tracer.spans == []                  # lazy: nothing allocated yet
        context = tracer.active_context()
        assert context is not None
        (root,) = tracer.spans
        assert root.name == "task.heartbeat"
        assert root.subject == "dev1"
        assert root.time == 7.0
        assert tracer.pending_root is None
        # Repeated calls reuse the materialized context.
        assert tracer.active_context() is context

    def test_pending_root_without_owner_prefix(self):
        tracer = Tracer()
        tracer.pending_root = ("sweep", 1.0)
        tracer.active_context()
        (root,) = tracer.spans
        assert root.name == "task.sweep"
        assert root.subject == "sweep"


class TestQueriesAndExport:
    def _populated(self) -> Tracer:
        tracer = Tracer()
        root = tracer.start_trace("root", "dev", 0.0)
        tracer.start_span("child", "dev", 1.0, parent=root.context, extra=3)
        tracer.start_trace("other", "dev2", 2.0)
        return tracer

    def test_trace_and_trace_ids(self):
        tracer = self._populated()
        assert tracer.trace_ids() == ["t1", "t2"]
        assert [span.name for span in tracer.trace("t1")] == ["root", "child"]

    def test_stats(self):
        stats = self._populated().stats()
        assert stats == {"spans": 3, "dropped": 0, "traces": 2,
                         "enabled": True}

    def test_export_and_load_jsonl(self, tmp_path):
        tracer = self._populated()
        path = str(tmp_path / "spans.jsonl")
        assert tracer.export_jsonl(path) == 3
        loaded = Tracer.load_jsonl(path)
        assert [span.to_dict() for span in loaded.spans] == [
            span.to_dict() for span in tracer.spans
        ]

    def test_span_round_trips_through_dict(self):
        span = Span(SpanContext("t1", "s2", "s1"), "n", "subj", 3.0, {"k": 1})
        assert Span.from_dict(span.to_dict()).to_dict() == span.to_dict()


class TestSimulatorPropagation:
    def test_schedule_captures_and_run_loop_restores_context(self):
        sim = Simulator(seed=0)
        seen = []

        def inner():
            seen.append(sim.telemetry.current)

        def outer():
            root = sim.telemetry.start_trace("root", "dev", sim.now)
            sim.telemetry.activate(root.context)
            sim.schedule(1.0, inner)       # captures the active context

        sim.schedule(0.0, outer)
        sim.schedule(5.0, inner)           # scheduled outside any context
        sim.run(until=10.0)
        assert seen[0] is not None and seen[0].trace_id == "t1"
        assert seen[1] is None             # no leakage across events
        assert sim.telemetry.current is None

    def test_periodic_tick_with_no_traceable_work_leaves_no_span(self):
        sim = Simulator(seed=0)
        sim.every(1.0, lambda: None, label="dev1:idle")
        sim.run(until=5.0)
        assert sim.telemetry.spans == []

    def test_periodic_tick_materializes_root_when_work_joins(self):
        sim = Simulator(seed=0)

        def work():
            sim.telemetry.start_span("work", "dev1", sim.now)

        sim.every(2.0, work, label="dev1:patrol")
        sim.run(until=5.0)
        roots = [s for s in sim.telemetry.spans if s.name == "task.patrol"]
        works = [s for s in sim.telemetry.spans if s.name == "work"]
        assert len(roots) == len(works) == 2       # fires at t=2, 4
        trace_ids = {root.context.trace_id for root in roots}
        assert len(trace_ids) == 2                 # one trace per tick
        for root, child in zip(roots, works):
            assert child.context.trace_id == root.context.trace_id
            assert child.context.parent_id == root.context.span_id

    def test_spans_disabled_simulator(self):
        sim = Simulator(seed=0, spans_enabled=False)

        def work():
            sim.telemetry.start_span("work", "dev1", sim.now)

        sim.every(1.0, work, label="dev1:patrol")
        sim.run(until=3.0)
        assert sim.telemetry.spans == []
        assert sim.telemetry.stats()["enabled"] is False
