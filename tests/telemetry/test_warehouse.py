"""The E24 telemetry warehouse: store, queries, ingest, and the sentinel."""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.warehouse import (
    RunKey,
    RunRecord,
    SCHEMA_VERSION,
    Warehouse,
    classify_metric,
    compare_runs,
    flatten_numeric,
    ingest_bench,
    ingest_bundle,
    ingest_results_dir,
    ingest_run_dict,
    match_where,
    update_trajectory,
)
from repro.telemetry.warehouse.sentinel import load_trajectory


def record(experiment="e", arm="full", seed=1, metrics=None, quick=False,
           git_rev="rev0", tag="", kind="matrix") -> RunRecord:
    return RunRecord(
        key=RunKey(experiment=experiment, arm=arm, seed=seed,
                   git_rev=git_rev),
        kind=kind, metrics=dict(metrics or {"m": 1.0}),
        context={"quick": quick}, source="test", tag=tag)


# -- records -----------------------------------------------------------------------


class TestRunRecord:
    def test_payload_round_trip(self):
        original = record(metrics={"a.b": 2.0}, quick=True)
        rebuilt = RunRecord.from_payload(original.to_payload())
        assert rebuilt == original
        assert rebuilt.digest() == original.digest()
        assert rebuilt.schema == SCHEMA_VERSION

    def test_digest_changes_with_content_and_identity(self):
        base = record()
        assert record().digest() == base.digest()
        assert record(metrics={"m": 2.0}).digest() != base.digest()
        assert record(seed=2).digest() != base.digest()
        assert record(tag="baseline").digest() != base.digest()
        assert record(git_rev="rev1").digest() != base.digest()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            record(kind="mystery")

    def test_flatten_numeric_shapes(self):
        flat = flatten_numeric({
            "a": {"b": 1, "c": [2.0, 3.0]},
            "flag": True,                    # bools are facts, not metrics
            "nan": float("nan"),             # no comparable signal
            "name": "text",
        })
        assert flat == {"a.b": 1.0, "a.c.0": 2.0, "a.c.1": 3.0}


# -- the store ---------------------------------------------------------------------


class TestWarehouseStore:
    def test_ingest_and_reopen(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        assert warehouse.ingest(record(seed=1))
        assert warehouse.ingest(record(seed=2))
        assert len(warehouse) == 2
        reopened = Warehouse(str(tmp_path / "wh"))
        assert len(reopened) == 2
        assert {run.key.seed for run in reopened.runs()} == {1, 2}

    def test_reingest_is_noop_within_and_across_processes(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        assert warehouse.ingest(record())
        assert not warehouse.ingest(record())            # same content
        assert len(warehouse) == 1
        reopened = Warehouse(str(tmp_path / "wh"))
        assert not reopened.ingest(record())             # rebuilt index
        assert len(reopened) == 1

    def test_torn_ingest_recovers_to_last_good_record(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        for seed in range(4):
            warehouse.ingest(record(seed=seed))
        warehouse.storage.corrupt_tail("warehouse", drop_bytes=7)
        survivor = Warehouse(str(tmp_path / "wh"))
        assert len(survivor) == 3
        assert [run.key.seed for run in survivor.runs()] == [0, 1, 2]
        # The torn record can simply be ingested again afterwards.
        assert survivor.ingest(record(seed=3))
        assert len(Warehouse(str(tmp_path / "wh"))) == 4

    def test_bit_rot_stops_at_last_good_frame(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        for seed in range(3):
            warehouse.ingest(record(seed=seed))
        size = warehouse.storage.size("warehouse")
        warehouse.storage.corrupt_tail("warehouse",
                                       flip_bit=(size // 2) * 8)
        survivor = Warehouse(str(tmp_path / "wh"))
        assert len(survivor) < 3
        seeds = [run.key.seed for run in survivor.runs()]
        assert seeds == sorted(seeds)           # an exact prefix survived

    def test_compaction_keeps_every_record(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"), compact_every=4)
        for seed in range(10):
            warehouse.ingest(record(seed=seed))
        assert warehouse.journal.snapshot_seq is not None
        assert warehouse.journal.flushed_records < 10
        reopened = Warehouse(str(tmp_path / "wh"))
        assert len(reopened) == 10
        assert not reopened.ingest(record(seed=5))       # still dedupes

    def test_batched_flush_mode(self, tmp_path):
        """``flush_every > 1`` (campaign-sweep ingest) buffers frames;
        ``flush()`` is the durability point."""
        warehouse = Warehouse(str(tmp_path / "wh"), flush_every=64)
        for seed in range(5):
            warehouse.ingest(record(seed=seed))
        assert len(warehouse) == 5                       # visible at once
        assert warehouse.journal.unflushed == 5          # but not durable
        assert warehouse.flush() == 5
        assert warehouse.journal.unflushed == 0
        assert len(Warehouse(str(tmp_path / "wh"))) == 5

    def test_stats_reports_store_health(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        warehouse.ingest(record(experiment="e10"))
        warehouse.ingest(record(experiment="e23", kind="bench", arm="bench"))
        stats = warehouse.stats()
        assert stats["records"] == 2
        assert stats["experiments"] == ["e10", "e23"]
        assert stats["kinds"] == ["bench", "matrix"]
        assert stats["bytes_on_disk"] > 0
        assert stats["recovery"]["corrupt_frame"] is False

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),                 # seed
            st.dictionaries(
                st.sampled_from(["m.a", "m.b", "throughput_rps"]),
                st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                max_size=3)),
        max_size=8))
    def test_property_reingest_never_grows_the_store(self, tmp_path_factory,
                                                     runs):
        """Idempotency: ingesting any batch twice == ingesting it once."""
        base = tmp_path_factory.mktemp("wh-prop")
        warehouse = Warehouse(str(base / "wh"))
        for seed, metrics in runs:
            warehouse.ingest(record(seed=seed, metrics=metrics or {"m": 0.0}))
        once = len(warehouse)
        for seed, metrics in runs:
            assert not warehouse.ingest(
                record(seed=seed, metrics=metrics or {"m": 0.0}))
        assert len(warehouse) == once
        assert len(Warehouse(str(base / "wh"))) == once


# -- queries -----------------------------------------------------------------------


@pytest.fixture
def populated(tmp_path):
    warehouse = Warehouse(str(tmp_path / "wh"))
    for arm, base in (("baseline", 100.0), ("full", 80.0)):
        for seed in (1, 2, 3):
            warehouse.ingest(record(
                arm=arm, seed=seed,
                metrics={"throughput_rps": base + seed,
                         "healthy_killed": 0.0}))
    return warehouse


class TestQueries:
    def test_select_and_values(self, populated):
        rows = populated.select("throughput_rps", where={"arm": "full"})
        assert len(rows) == 3
        assert all(run.key.arm == "full" for run, _value in rows)
        assert sorted(populated.values("throughput_rps",
                                       where={"arm": "full"})) == [
            81.0, 82.0, 83.0]

    def test_percentile_interpolates(self, populated):
        assert populated.percentile(
            "throughput_rps", 0.5, where={"arm": "baseline"}) == 102.0
        result = populated.percentile(
            "throughput_rps", [0.0, 0.5, 1.0], where={"arm": "baseline"})
        assert result == {0.0: 101.0, 0.5: 102.0, 1.0: 103.0}
        assert populated.percentile("missing.metric", 0.5) is None

    def test_group_by_arm(self, populated):
        groups = populated.group("throughput_rps", by="arm")
        assert set(groups) == {"baseline", "full"}
        assert groups["full"]["count"] == 3
        assert groups["full"]["p50"] == 82.0
        assert groups["baseline"]["mean"] == 102.0

    def test_where_filters_and_predicates(self, populated):
        assert len(populated.runs({"seed": [1, 2]})) == 4
        assert len(populated.runs({"seed": lambda s: s > 2})) == 2
        assert len(populated.runs(
            lambda run: run.key.arm == "baseline")) == 3

    def test_unknown_where_field_raises(self, populated):
        with pytest.raises(ValueError):
            populated.runs({"tyop": 1})
        with pytest.raises(ValueError):
            populated.group("throughput_rps", by="tyop")

    def test_metrics_known(self, populated):
        assert populated.metrics_known() == [
            "healthy_killed", "throughput_rps"]


# -- the regression sentinel -------------------------------------------------------


def trials(metrics_per_seed, arm="full", quick=False, tag=""):
    return [record(arm=arm, seed=seed, metrics=metrics, quick=quick,
                   tag=tag)
            for seed, metrics in enumerate(metrics_per_seed)]


class TestSentinel:
    def test_families(self):
        assert classify_metric("summary.skynet_rate").family == "defense"
        assert classify_metric("healthy_killed").family == "defense"
        assert classify_metric("overhead_pct").family == "overhead"
        assert classify_metric("eval.throughput_rps").family == "throughput"
        assert classify_metric("latency.p99_ms").family == "latency"
        other = classify_metric("run.horizon")
        assert (other.family, other.gated) == ("other", False)

    def test_identical_pair_reports_no_regression(self):
        metrics = [{"throughput_rps": 1000.0, "healthy_killed": 0.0,
                    "overhead_pct": 3.0} for _ in range(3)]
        report = compare_runs(trials(metrics), trials(metrics))
        assert report.ok
        assert report.regressions == []
        assert {delta.verdict for delta in report.deltas} == {"ok"}
        assert report.comparable

    def test_synthetic_20pct_throughput_regression_flagged(self):
        baseline = trials([{"throughput_rps": 1000.0 + seed}
                           for seed in range(3)])
        candidate = trials([{"throughput_rps": 800.0 + seed}
                            for seed in range(3)])
        report = compare_runs(baseline, candidate)
        assert not report.ok
        (delta,) = report.regressions
        assert delta.metric == "throughput_rps"
        assert delta.family == "throughput"
        assert delta.relative_pct == pytest.approx(-20.0, abs=0.5)

    def test_throughput_noise_within_band_is_ok(self):
        baseline = trials([{"throughput_rps": 1000.0}] * 3)
        candidate = trials([{"throughput_rps": 950.0}] * 3)   # -5% < 10%
        assert compare_runs(baseline, candidate).ok

    def test_healthy_killed_increase_is_a_regression(self):
        baseline = trials([{"healthy_killed": 0.0}] * 3)
        candidate = trials([{"healthy_killed": 1.0}] * 3)
        report = compare_runs(baseline, candidate)
        (delta,) = report.regressions
        assert delta.metric == "healthy_killed"
        assert delta.family == "defense"

    def test_median_of_trials_shields_one_outlier(self):
        baseline = trials([{"throughput_rps": 1000.0}] * 3)
        candidate = trials([{"throughput_rps": 990.0},
                            {"throughput_rps": 1010.0},
                            {"throughput_rps": 400.0}])   # one bad trial
        assert compare_runs(baseline, candidate).ok

    def test_improvement_detected(self):
        baseline = trials([{"throughput_rps": 1000.0}] * 2)
        candidate = trials([{"throughput_rps": 1300.0}] * 2)
        report = compare_runs(baseline, candidate)
        (delta,) = report.improvements
        assert delta.metric == "throughput_rps"

    def test_wallclock_families_informational_across_protocols(self):
        baseline = trials([{"throughput_rps": 1000.0}] * 2, quick=False)
        candidate = trials([{"throughput_rps": 500.0}] * 2, quick=True)
        report = compare_runs(baseline, candidate)
        assert not report.comparable
        assert report.ok
        (delta,) = [d for d in report.deltas
                    if d.metric == "throughput_rps"]
        assert delta.verdict == "informational"

    def test_defense_zero_to_nonzero_gates_even_across_protocols(self):
        baseline = trials([{"healthy_killed": 0.0}] * 2, quick=False)
        candidate = trials([{"healthy_killed": 2.0}] * 2, quick=True)
        report = compare_runs(baseline, candidate)
        assert not report.ok
        assert report.regressions[0].metric == "healthy_killed"

    def test_defense_magnitude_shift_across_protocols_informational(self):
        baseline = trials([{"compromised_ever": 3.0}] * 2, quick=False)
        candidate = trials([{"compromised_ever": 5.0}] * 2, quick=True)
        report = compare_runs(baseline, candidate)
        assert report.ok
        (delta,) = report.deltas
        assert delta.verdict == "informational"

    def test_one_sided_metric_is_missing_not_judged(self):
        report = compare_runs(trials([{"a_rps": 1.0}]),
                              trials([{"b_rps": 1.0}]))
        assert {delta.verdict for delta in report.deltas} == {"missing"}
        assert report.ok

    def test_report_serializes_and_renders(self):
        report = compare_runs(trials([{"throughput_rps": 1000.0}]),
                              trials([{"throughput_rps": 700.0}]))
        doc = report.to_dict()
        assert doc["ok"] is False
        assert doc["regressions"][0]["metric"] == "throughput_rps"
        text = report.render()
        assert "REGRESSIONS" in text
        assert "throughput_rps" in text


class TestTrajectory:
    def test_update_writes_one_point_per_revision(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        for seed in (1, 2, 3):
            warehouse.ingest(record(
                experiment="e10", seed=seed,
                metrics={"throughput_rps": 100.0 + seed,
                         "run.horizon": 120.0}))
        path = str(tmp_path / "TRAJECTORY.json")
        document = update_trajectory(warehouse, path, git_rev="abc123")
        assert len(document["points"]) == 1
        point = document["points"][0]
        assert point["git_rev"] == "abc123"
        assert point["experiments"]["e10"]["throughput_rps"] == 102.0
        # Ungated families stay out of the longitudinal record.
        assert "run.horizon" not in point["experiments"]["e10"]
        assert load_trajectory(path) == document

    def test_same_revision_replaces_new_revision_appends(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        warehouse.ingest(record(metrics={"throughput_rps": 1.0}))
        path = str(tmp_path / "TRAJECTORY.json")
        update_trajectory(warehouse, path, git_rev="rev-a")
        update_trajectory(warehouse, path, git_rev="rev-a")
        assert len(load_trajectory(path)["points"]) == 1
        update_trajectory(warehouse, path, git_rev="rev-b")
        assert [point["git_rev"]
                for point in load_trajectory(path)["points"]] == [
            "rev-a", "rev-b"]

    def test_corrupt_trajectory_starts_fresh(self, tmp_path):
        path = str(tmp_path / "TRAJECTORY.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert load_trajectory(path)["points"] == []


# -- artifact ingestion ------------------------------------------------------------


def _bundle_dir(tmp_path, seed=3) -> str:
    from repro.sim.simulator import Simulator
    from repro.telemetry.exposition import write_bundle

    sim = Simulator(seed=seed)
    sim.metrics.counter("work.done")

    def work():
        sim.record("work.tick", "d")
        sim.metrics.counter("work.done").inc()

    sim.every(1.0, work, label="d:work")
    sim.run(until=5.0)
    directory = str(tmp_path / f"bundle{seed}")
    write_bundle(sim, directory, experiment="unit", arm="full", seed=seed)
    return directory


class TestIngest:
    def test_bundle_identity_comes_from_manifest(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        rec = ingest_bundle(warehouse, _bundle_dir(tmp_path))
        assert rec.key == RunKey("unit", "full", 3, "unknown")
        assert rec.metrics["work_done"] == 5.0          # parsed from .prom
        assert rec.metrics["streams.events"] > 0
        assert rec.metrics["run.horizon"] == 5.0
        assert rec.context["bundle_schema"] == 1

    def test_bundle_reingest_is_noop(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        directory = _bundle_dir(tmp_path)
        ingest_bundle(warehouse, directory)
        ingest_bundle(warehouse, directory)
        assert len(warehouse) == 1

    def test_forward_schema_refused(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        directory = _bundle_dir(tmp_path)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        manifest["bundle_schema"] = 999
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError):
            ingest_bundle(warehouse, directory)

    def test_bench_document_flattens_and_reads_quick(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        path = str(tmp_path / "BENCH_E99.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"title": "unit bench",
                       "eval": {"throughput_rps": 123.0, "quick": True},
                       "other": {"overhead_pct": 2.0}}, handle)
        rec = ingest_bench(warehouse, path)
        assert rec.key.experiment == "E99"
        assert rec.metrics["eval.throughput_rps"] == 123.0
        assert rec.context["quick"] is True
        assert rec.quick()

    def test_run_dict_cell(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        rec = ingest_run_dict(warehouse, {"healthy_killed": 0,
                                          "nested": {"x": 2}},
                              experiment="e10", arm="full", seed=7)
        assert rec.key.seed == 7
        assert rec.metrics == {"healthy_killed": 0.0, "nested.x": 2.0}

    def test_results_dir_sweep(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        results = tmp_path / "results"
        results.mkdir()
        _bundle_dir(results, seed=1)
        _bundle_dir(results, seed=2)
        with open(results / "BENCH_E1.json", "w", encoding="utf-8") as fh:
            json.dump({"a": {"throughput_rps": 1.0}}, fh)
        with open(results / "BENCH_BAD.json", "w", encoding="utf-8") as fh:
            fh.write("[1, 2]")                        # not an object
        counts = ingest_results_dir(warehouse, str(results))
        assert counts["bench"] == 1
        assert counts["bundles"] == 2
        assert len(counts["skipped"]) == 1
        assert len(warehouse) == 3

    def test_match_where_on_ingested_records(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        rec = ingest_run_dict(warehouse, {"m": 1}, experiment="e10",
                              arm="full", seed=7, tag="baseline")
        assert match_where(rec, {"experiment": "e10", "tag": "baseline"})
        assert not match_where(rec, {"arm": "none"})
