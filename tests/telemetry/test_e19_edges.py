"""E19 edge cases the health layer leans on (E20 satellite).

The fleet monitor hands trace ids to operators (every alert carries
one); those ids get pasted into ``explain()`` and flight-recorder reads
hours later, possibly against a tracer that has since dropped spans or a
storage that has since restarted.  These edges must degrade gracefully.
"""

from __future__ import annotations

from repro.sim.simulator import Simulator
from repro.store.stable import StableStorage
from repro.telemetry import FlightRecorder, explain
from repro.telemetry.spans import Tracer


class TestExplainUnknownAndPartialTraces:
    def test_unknown_trace_id_yields_empty_explanation(self):
        tracer = Tracer()
        tracer.start_trace("attack.worm", "worm", 0.0)
        explanation = explain(tracer, "t999")
        assert len(explanation) == 0
        assert explanation.roots() == []
        assert explanation.kinds() == [] and explanation.subjects() == []
        assert not explanation.has_stage("attack")

    def test_unknown_trace_id_still_renders(self):
        explanation = explain(Tracer(), "t42")
        text = explanation.render()
        assert "t42" in text and "0 span(s)" in text

    def test_partial_trace_after_capacity_drop_is_still_explainable(self):
        # Capacity 3 keeps the oldest spans: the tail of the 5-span chain
        # is gone when explain() runs, leaving a partial trace.
        tracer = Tracer(capacity=3)
        root = tracer.start_trace("attack.worm", "worm", 0.0)
        cursor = root
        for index in range(4):
            cursor = tracer.start_span(f"hop.{index}", f"dev{index}",
                                       float(index + 1),
                                       parent=cursor.context)
        explanation = explain(tracer, root.context.trace_id)
        assert len(explanation) == 3
        # The surviving prefix is still one connected path from the root,
        # and the dropped stages are queryably absent (not errors).
        leaf = explanation.stage("hop.1")[0]
        assert [span.name for span in explanation.path_to(leaf)] == [
            "attack.worm", "hop.0", "hop.1"]
        assert explanation.stage("hop.3") == []
        assert not explanation.has_stage("hop.3")

    def test_partial_trace_render_does_not_crash(self):
        tracer = Tracer(capacity=2)
        root = tracer.start_trace("attack.worm", "worm", 0.0)
        child = tracer.start_span("a", "dev", 1.0, parent=root.context)
        tracer.start_span("b", "dev", 2.0, parent=child.context)
        text = explain(tracer, root.context.trace_id).render()
        assert "attack.worm" in text and "@dev" in text


class TestFlightRecorderWrapAround:
    def test_wraparound_keeps_newest_entries_in_order(self):
        sim = Simulator(seed=0)
        recorder = FlightRecorder(sim, StableStorage(), per_device=4)
        for index in range(10):
            sim.record("step", "dev", index=index)
        ring = recorder.recent("dev")
        assert len(ring) == 4
        assert [entry["detail"]["index"] for entry in ring] == [6, 7, 8, 9]

    def test_dump_after_wraparound_persists_exactly_the_ring(self):
        sim = Simulator(seed=0)
        storage = StableStorage()
        recorder = FlightRecorder(sim, storage, per_device=3)
        for index in range(8):
            sim.record("step", "dev", index=index)
        assert recorder.dump("dev", reason="test") == 3
        (dump,) = FlightRecorder.load(storage, "dev")
        assert [entry["detail"]["index"] for entry in dump["entries"]] == [
            5, 6, 7]

    def test_mixed_span_and_event_wraparound(self):
        sim = Simulator(seed=0)
        recorder = FlightRecorder(sim, StableStorage(), per_device=2)
        sim.telemetry.start_trace("task.tick", "dev", 0.0)
        sim.record("step", "dev", index=0)
        sim.record("step", "dev", index=1)
        kinds = [entry["record"] for entry in recorder.recent("dev")]
        assert kinds == ["trace", "trace"]  # the span wrapped off


class TestFlightDumpAfterRestart:
    def test_dump_readable_through_fresh_storage_session(self):
        # The dump is written pre-crash; the reader constructs everything
        # anew over the same stable storage — the post-restart auditor.
        sim = Simulator(seed=0)
        storage = StableStorage()
        recorder = FlightRecorder(sim, storage, per_device=8)
        sim.record("overheat", "dev", temp=91.0)
        recorder.dump("dev", reason="crash")
        dumps = FlightRecorder.load(storage, "dev")
        assert len(dumps) == 1
        assert dumps[0]["reason"] == "crash"
        assert dumps[0]["entries"][0]["detail"] == {"temp": 91.0}

    def test_post_restart_dump_appends_after_pre_crash_dump(self):
        sim = Simulator(seed=0)
        storage = StableStorage()
        recorder = FlightRecorder(sim, storage, per_device=8)
        sim.record("overheat", "dev", temp=91.0)
        recorder.dump("dev", reason="crash")
        # "Restart": a brand-new simulator and recorder over the same
        # storage; its dump must append after the pre-crash one, and both
        # must replay in order.
        sim2 = Simulator(seed=1)
        recorder2 = FlightRecorder(sim2, storage, per_device=8)
        sim2.record("recovered", "dev", ok=True)
        recorder2.dump("dev", reason="quarantine")
        dumps = FlightRecorder.load(storage, "dev")
        assert [dump["reason"] for dump in dumps] == ["crash", "quarantine"]
        assert "dev" in FlightRecorder.dumped_devices(storage)

    def test_empty_ring_dump_is_a_readable_statement_of_silence(self):
        sim = Simulator(seed=0)
        storage = StableStorage()
        recorder = FlightRecorder(sim, storage, per_device=4)
        assert recorder.dump("ghost", reason="crash") == 0
        (dump,) = FlightRecorder.load(storage, "ghost")
        assert dump["entries"] == []
