"""Prometheus text rendering, metrics JSONL, and the run bundle."""

from __future__ import annotations

import json
import os

import pytest

from repro.sim.metrics import MetricsRegistry
from repro.sim.simulator import Simulator
from repro.telemetry.exposition import (
    BUNDLE_SCHEMA,
    flatten_families,
    metrics_jsonl,
    parse_prometheus_text,
    prometheus_text,
    sanitize_metric_name,
    write_bundle,
)


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("net.sent") == "net_sent"
        assert sanitize_metric_name("flight.dumps") == "flight_dumps"

    def test_colons_and_underscores_survive(self):
        assert sanitize_metric_name("ns:val_x") == "ns:val_x"

    def test_leading_digit_gets_prefixed(self):
        assert sanitize_metric_name("3rd.rail") == "_3rd_rail"
        assert sanitize_metric_name("") == "_"


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("net.sent").inc(3)
        registry.gauge("queue.depth").set(2.5)
        text = prometheus_text(registry)
        assert "# TYPE net_sent counter\nnet_sent 3.0\n" in text
        assert "# TYPE queue_depth gauge\nqueue_depth 2.5\n" in text

    def test_histogram_renders_as_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("rtt")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        text = prometheus_text(registry)
        assert "# TYPE rtt summary" in text
        assert 'rtt{quantile="0.5"}' in text
        assert 'rtt{quantile="0.95"}' in text
        assert 'rtt{quantile="0.99"}' in text
        assert "rtt_sum 10.0" in text
        assert "rtt_count 4" in text

    def test_timeseries_renders_last_peak_count(self):
        registry = MetricsRegistry()
        series = registry.timeseries("compromised")
        series.record(0.0, 1.0)
        series.record(5.0, 3.0)
        series.record(9.0, 2.0)
        text = prometheus_text(registry)
        assert "compromised_last 2.0" in text
        assert "compromised_peak 3.0" in text
        assert "compromised_count 3.0" in text

    def test_empty_timeseries_exposes_nan_last(self):
        registry = MetricsRegistry()
        registry.timeseries("quiet")
        text = prometheus_text(registry)
        assert "quiet_last NaN" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_output_order_is_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("b.two").inc()
        registry.counter("a.one").inc()
        text = prometheus_text(registry)
        assert text.index("a_one") < text.index("b_two")
        assert prometheus_text(registry) == text


def _parse_exposition(text: str) -> dict:
    """A small Prometheus text-format parser for roundtrip checks.

    Returns ``{family: {"help": n, "type": n, "kind": str,
    "samples": [(name, labels, value)], "first_sample_line": int,
    "header_lines": [int]}}``.  Sample lines are attributed to their
    family by stripping the ``_sum``/``_count`` summary suffixes.
    """
    families: dict = {}

    def family_of(sample_name: str, kinds: dict) -> str:
        if sample_name in kinds:
            return sample_name
        for suffix in ("_sum", "_count"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if kinds.get(base) == "summary":
                    return base
        return sample_name

    kinds: dict = {}
    for lineno, line in enumerate(text.splitlines()):
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            marker, family, rest = line[2:].split(" ", 2)
            entry = families.setdefault(
                family, {"help": 0, "type": 0, "kind": None, "samples": [],
                         "first_sample_line": None, "header_lines": []})
            entry[marker.lower()] += 1
            entry["header_lines"].append(lineno)
            if marker == "TYPE":
                entry["kind"] = rest
                kinds[family] = rest
        elif line.startswith("#") or not line.strip():
            continue
        else:
            name_and_labels, _, value = line.rpartition(" ")
            name, _, labels = name_and_labels.partition("{")
            fam = family_of(name, kinds)
            entry = families.setdefault(
                fam, {"help": 0, "type": 0, "kind": None, "samples": [],
                      "first_sample_line": None, "header_lines": []})
            entry["samples"].append((name, labels.rstrip("}"), float(value)))
            if entry["first_sample_line"] is None:
                entry["first_sample_line"] = lineno
    return families


class TestHeaderDedupe:
    def test_every_family_has_exactly_one_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("net.sent").inc(3)
        registry.gauge("queue.depth").set(2.5)
        registry.histogram("rtt").observe(1.0)
        registry.timeseries("compromised").record(0.0, 1.0)
        families = _parse_exposition(prometheus_text(registry))
        assert families
        for name, entry in families.items():
            assert entry["help"] == 1, name
            assert entry["type"] == 1, name
            assert entry["samples"], name
            assert max(entry["header_lines"]) < entry["first_sample_line"]

    def test_colliding_sanitized_names_share_one_header(self):
        # "api.latency" and "api_latency" sanitize to the same family:
        # the first declares it, the second only contributes samples.
        registry = MetricsRegistry()
        registry.counter("api.latency").inc(1)
        registry.counter("api_latency").inc(2)
        text = prometheus_text(registry)
        assert text.count("# TYPE api_latency counter") == 1
        assert text.count("# HELP api_latency") == 1
        families = _parse_exposition(text)
        assert len(families["api_latency"]["samples"]) == 2

    def test_nan_quantiles_still_live_under_a_headered_family(self):
        registry = MetricsRegistry()
        registry.histogram("idle.latency")          # no observations
        text = prometheus_text(registry)
        families = _parse_exposition(text)
        entry = families["idle_latency"]
        assert (entry["help"], entry["type"], entry["kind"]) == (
            1, 1, "summary")
        quantiles = [s for s in entry["samples"] if "quantile" in s[1]]
        assert len(quantiles) == 3
        for _name, _labels, value in quantiles:
            assert value != value                   # NaN parses as NaN
        assert max(entry["header_lines"]) < entry["first_sample_line"]

    def test_help_carries_the_source_registry_name(self):
        registry = MetricsRegistry()
        registry.counter("net.sent").inc()
        assert "# HELP net_sent net.sent" in prometheus_text(registry)


class TestMetricsJsonl:
    def test_one_line_per_metric_with_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("net.sent").inc(2)
        registry.gauge("depth").set(1.0)
        path = str(tmp_path / "metrics.jsonl")
        assert metrics_jsonl(registry, path) == 2
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8") if line.strip()]
        by_name = {line["name"]: line for line in lines}
        assert by_name["net.sent"]["value"] == 2.0
        assert by_name["net.sent"]["type"] == "counter"
        assert by_name["depth"]["type"] == "gauge"


class TestBundle:
    def _busy_sim(self) -> Simulator:
        sim = Simulator(seed=3)
        sim.metrics.counter("work.done")

        def work():
            sim.telemetry.start_span("work", "dev1", sim.now)
            sim.record("work.tick", "dev1")
            sim.metrics.counter("work.done").inc()

        sim.every(1.0, work, label="dev1:work")
        sim.run(until=5.0)
        return sim

    def test_bundle_writes_all_files_and_manifest(self, tmp_path):
        sim = self._busy_sim()
        directory = str(tmp_path / "bundle")
        manifest = write_bundle(sim, directory,
                                extra_manifest={"scenario": "unit"})
        for filename in manifest["files"]:
            assert os.path.exists(os.path.join(directory, filename)), filename
        assert manifest["scenario"] == "unit"
        assert manifest["sim_time"] == 5.0
        assert manifest["spans"]["spans"] > 0
        assert manifest["trace_events"] > 0
        assert manifest["metrics"] >= 1

    def test_manifest_on_disk_matches_return_value(self, tmp_path):
        sim = self._busy_sim()
        directory = str(tmp_path / "bundle")
        manifest = write_bundle(sim, directory)
        with open(os.path.join(directory, "manifest.json"),
                  encoding="utf-8") as handle:
            on_disk = json.load(handle)
        assert on_disk == json.loads(json.dumps(manifest, default=str))

    def test_spans_jsonl_round_trips(self, tmp_path):
        from repro.telemetry.spans import Tracer

        sim = self._busy_sim()
        directory = str(tmp_path / "bundle")
        write_bundle(sim, directory)
        loaded = Tracer.load_jsonl(os.path.join(directory, "spans.jsonl"))
        assert len(loaded.spans) == len(sim.telemetry.spans)

    def test_bundle_leaves_no_tmp_files(self, tmp_path):
        sim = self._busy_sim()
        directory = str(tmp_path / "bundle")
        write_bundle(sim, directory)
        leftovers = [name for name in os.listdir(directory)
                     if name.endswith(".tmp")]
        assert leftovers == []

    def test_crashed_dump_preserves_previous_bundle(self, tmp_path):
        # First dump succeeds; a second dump that dies mid-generation
        # must leave every first-dump artifact intact and untorn.
        sim = self._busy_sim()
        directory = str(tmp_path / "bundle")
        write_bundle(sim, directory)
        before = {}
        for name in os.listdir(directory):
            with open(os.path.join(directory, name), encoding="utf-8") as fh:
                before[name] = fh.read()

        class Exploding:
            def snapshot(self):
                raise RuntimeError("disk fell off")

        sim.metrics.counter("work.done").inc(999)       # would change output
        sim.metrics._metrics["boom"] = Exploding()
        try:
            with pytest.raises(RuntimeError):
                write_bundle(sim, directory)
        finally:
            del sim.metrics._metrics["boom"]
        # metrics.jsonl generation raised -> old file byte-identical,
        # and no torn temp file left behind.
        with open(os.path.join(directory, "metrics.jsonl"),
                  encoding="utf-8") as fh:
            assert fh.read() == before["metrics.jsonl"]
        assert not os.path.exists(
            os.path.join(directory, "metrics.jsonl.tmp"))
        # Files the crashed dump never reached are the previous ones.
        for name in ("spans.jsonl", "events.jsonl", "manifest.json"):
            with open(os.path.join(directory, name),
                      encoding="utf-8") as fh:
                assert fh.read() == before[name], name

    def test_metrics_jsonl_failure_keeps_old_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("ok").inc()
        path = str(tmp_path / "metrics.jsonl")
        metrics_jsonl(registry, path)
        with open(path, encoding="utf-8") as fh:
            original = fh.read()

        class Exploding:
            def snapshot(self):
                raise RuntimeError("torn write")

        registry._metrics["boom"] = Exploding()
        with pytest.raises(RuntimeError):
            metrics_jsonl(registry, path)
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == original
        assert not os.path.exists(path + ".tmp")

    def test_scenario_export_telemetry(self, tmp_path):
        from repro.scenarios.confrontation import (
            ConfrontationScenario, ThreatConfig)
        from repro.scenarios.harness import SafeguardConfig

        scenario = ConfrontationScenario(
            seed=5,
            config=SafeguardConfig.only(watchdog=True, sealed=True),
            threats=ThreatConfig(worm=True, worm_time=5.0,
                                 worm_initial_targets=1),
            durability="journal",
        )
        directory = str(tmp_path / "run")
        scenario.run(until=15.0, telemetry_dir=directory)
        with open(os.path.join(directory, "manifest.json"),
                  encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["scenario"] == "confrontation"
        assert manifest["durability"] == "journal"
        prom = open(os.path.join(directory, "metrics.prom"),
                    encoding="utf-8").read()
        # The E18 storage-pressure gauges ride along in the exposition.
        assert "store_appends" in prom
        assert "store_bytes_written" in prom


# -- the exposition parser (E24): prometheus_text's inverse -------------------------


class TestParsePrometheusText:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("net.sent").inc(3)
        registry.gauge("queue.depth").set(2.5)
        histogram = registry.histogram("rtt")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        series = registry.timeseries("compromised")
        series.record(0.0, 1.0)
        series.record(5.0, 3.0)
        return registry

    def test_round_trip_families_and_types(self):
        families = parse_prometheus_text(prometheus_text(self._registry()))
        assert families["net_sent"]["type"] == "counter"
        assert families["queue_depth"]["type"] == "gauge"
        assert families["rtt"]["type"] == "summary"
        assert "_errors" not in families

    def test_round_trip_values(self):
        families = parse_prometheus_text(prometheus_text(self._registry()))
        (sample,) = families["net_sent"]["samples"]
        assert sample == {"name": "net_sent", "labels": {}, "value": 3.0}
        samples = {(sample["name"],
                    tuple(sorted(sample["labels"].items()))): sample["value"]
                   for sample in families["rtt"]["samples"]}
        assert samples[("rtt_sum", ())] == 10.0
        assert samples[("rtt_count", ())] == 4.0
        assert samples[("rtt", (("quantile", "0.5"),))] == 2.5

    def test_sum_count_attach_to_their_summary_family(self):
        families = parse_prometheus_text(prometheus_text(self._registry()))
        assert "rtt_sum" not in families
        assert "rtt_count" not in families
        names = {sample["name"] for sample in families["rtt"]["samples"]}
        assert names == {"rtt", "rtt_sum", "rtt_count"}

    def test_label_escapes_round_trip(self):
        text = ('# TYPE weird summary\n'
                'weird{quantile="0.5",note="a\\"b\\\\c\\nd"} 1.0\n')
        families = parse_prometheus_text(text)
        (sample,) = families["weird"]["samples"]
        assert sample["labels"]["note"] == 'a"b\\c\nd'

    def test_bad_lines_collected_not_fatal(self):
        text = ("# TYPE good counter\n"
                "good 1.0\n"
                "this is not a sample line at all {\n"
                "also_good 2.0\n")
        families = parse_prometheus_text(text)
        assert families["good"]["samples"][0]["value"] == 1.0
        assert families["also_good"]["samples"][0]["value"] == 2.0
        assert len(families["_errors"]) == 1

    def test_empty_and_comment_only_input(self):
        assert parse_prometheus_text("") == {}
        assert parse_prometheus_text("# just a comment\n\n") == {}

    def test_flatten_families_drops_nan_and_labels_quantiles(self):
        flat = flatten_families(
            parse_prometheus_text(prometheus_text(self._registry())))
        assert flat["net_sent"] == 3.0
        assert flat["queue_depth"] == 2.5
        assert flat["rtt.quantile=0.5"] == 2.5
        assert flat["rtt_sum"] == 10.0
        assert flat["compromised_peak"] == 3.0
        assert all(value == value for value in flat.values())

    def test_flatten_skips_empty_histogram_nans(self):
        registry = MetricsRegistry()
        registry.histogram("idle")                  # quantiles are NaN
        flat = flatten_families(
            parse_prometheus_text(prometheus_text(registry)))
        assert "idle.quantile=0.5" not in flat
        assert flat["idle_count"] == 0.0


class TestSelfDescribingManifest:
    def test_identity_block_always_present(self, tmp_path):
        sim = Simulator(seed=1)
        sim.metrics.counter("x").inc()
        manifest = write_bundle(sim, str(tmp_path / "b"),
                                experiment="e24", arm="full", seed=7)
        assert manifest["bundle_schema"] == BUNDLE_SCHEMA
        assert manifest["experiment"] == "e24"
        assert manifest["arm"] == "full"
        assert manifest["seed"] == 7
        assert manifest["horizon"] == sim.now

    def test_unknown_identity_stamps_none_not_absent(self, tmp_path):
        sim = Simulator(seed=1)
        manifest = write_bundle(sim, str(tmp_path / "b"))
        assert manifest["bundle_schema"] == BUNDLE_SCHEMA
        assert manifest["experiment"] is None
        assert manifest["arm"] is None
        assert manifest["seed"] is None

    def test_explicit_horizon_overrides_clock(self, tmp_path):
        sim = Simulator(seed=1)
        sim.run(until=4.0)
        manifest = write_bundle(sim, str(tmp_path / "b"), horizon=120.0)
        assert manifest["horizon"] == 120.0
