"""Prometheus text rendering, metrics JSONL, and the run bundle."""

from __future__ import annotations

import json
import os

from repro.sim.metrics import MetricsRegistry
from repro.sim.simulator import Simulator
from repro.telemetry.exposition import (
    metrics_jsonl,
    prometheus_text,
    sanitize_metric_name,
    write_bundle,
)


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("net.sent") == "net_sent"
        assert sanitize_metric_name("flight.dumps") == "flight_dumps"

    def test_colons_and_underscores_survive(self):
        assert sanitize_metric_name("ns:val_x") == "ns:val_x"

    def test_leading_digit_gets_prefixed(self):
        assert sanitize_metric_name("3rd.rail") == "_3rd_rail"
        assert sanitize_metric_name("") == "_"


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("net.sent").inc(3)
        registry.gauge("queue.depth").set(2.5)
        text = prometheus_text(registry)
        assert "# TYPE net_sent counter\nnet_sent 3.0\n" in text
        assert "# TYPE queue_depth gauge\nqueue_depth 2.5\n" in text

    def test_histogram_renders_as_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("rtt")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        text = prometheus_text(registry)
        assert "# TYPE rtt summary" in text
        assert 'rtt{quantile="0.5"}' in text
        assert 'rtt{quantile="0.95"}' in text
        assert 'rtt{quantile="0.99"}' in text
        assert "rtt_sum 10.0" in text
        assert "rtt_count 4" in text

    def test_timeseries_renders_last_peak_count(self):
        registry = MetricsRegistry()
        series = registry.timeseries("compromised")
        series.record(0.0, 1.0)
        series.record(5.0, 3.0)
        series.record(9.0, 2.0)
        text = prometheus_text(registry)
        assert "compromised_last 2.0" in text
        assert "compromised_peak 3.0" in text
        assert "compromised_count 3.0" in text

    def test_empty_timeseries_exposes_nan_last(self):
        registry = MetricsRegistry()
        registry.timeseries("quiet")
        text = prometheus_text(registry)
        assert "quiet_last NaN" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_output_order_is_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("b.two").inc()
        registry.counter("a.one").inc()
        text = prometheus_text(registry)
        assert text.index("a_one") < text.index("b_two")
        assert prometheus_text(registry) == text


class TestMetricsJsonl:
    def test_one_line_per_metric_with_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("net.sent").inc(2)
        registry.gauge("depth").set(1.0)
        path = str(tmp_path / "metrics.jsonl")
        assert metrics_jsonl(registry, path) == 2
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8") if line.strip()]
        by_name = {line["name"]: line for line in lines}
        assert by_name["net.sent"]["value"] == 2.0
        assert by_name["net.sent"]["type"] == "counter"
        assert by_name["depth"]["type"] == "gauge"


class TestBundle:
    def _busy_sim(self) -> Simulator:
        sim = Simulator(seed=3)
        sim.metrics.counter("work.done")

        def work():
            sim.telemetry.start_span("work", "dev1", sim.now)
            sim.record("work.tick", "dev1")
            sim.metrics.counter("work.done").inc()

        sim.every(1.0, work, label="dev1:work")
        sim.run(until=5.0)
        return sim

    def test_bundle_writes_all_files_and_manifest(self, tmp_path):
        sim = self._busy_sim()
        directory = str(tmp_path / "bundle")
        manifest = write_bundle(sim, directory,
                                extra_manifest={"scenario": "unit"})
        for filename in manifest["files"]:
            assert os.path.exists(os.path.join(directory, filename)), filename
        assert manifest["scenario"] == "unit"
        assert manifest["sim_time"] == 5.0
        assert manifest["spans"]["spans"] > 0
        assert manifest["trace_events"] > 0
        assert manifest["metrics"] >= 1

    def test_manifest_on_disk_matches_return_value(self, tmp_path):
        sim = self._busy_sim()
        directory = str(tmp_path / "bundle")
        manifest = write_bundle(sim, directory)
        with open(os.path.join(directory, "manifest.json"),
                  encoding="utf-8") as handle:
            on_disk = json.load(handle)
        assert on_disk == json.loads(json.dumps(manifest, default=str))

    def test_spans_jsonl_round_trips(self, tmp_path):
        from repro.telemetry.spans import Tracer

        sim = self._busy_sim()
        directory = str(tmp_path / "bundle")
        write_bundle(sim, directory)
        loaded = Tracer.load_jsonl(os.path.join(directory, "spans.jsonl"))
        assert len(loaded.spans) == len(sim.telemetry.spans)

    def test_scenario_export_telemetry(self, tmp_path):
        from repro.scenarios.confrontation import (
            ConfrontationScenario, ThreatConfig)
        from repro.scenarios.harness import SafeguardConfig

        scenario = ConfrontationScenario(
            seed=5,
            config=SafeguardConfig.only(watchdog=True, sealed=True),
            threats=ThreatConfig(worm=True, worm_time=5.0,
                                 worm_initial_targets=1),
            durability="journal",
        )
        directory = str(tmp_path / "run")
        scenario.run(until=15.0, telemetry_dir=directory)
        with open(os.path.join(directory, "manifest.json"),
                  encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["scenario"] == "confrontation"
        assert manifest["durability"] == "journal"
        prom = open(os.path.join(directory, "metrics.prom"),
                    encoding="utf-8").read()
        # The E18 storage-pressure gauges ride along in the exposition.
        assert "store_appends" in prom
        assert "store_bytes_written" in prom
