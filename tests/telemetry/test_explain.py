"""Explanation trees — synthetic and the E17-style end-to-end chain."""

from __future__ import annotations

import pytest

from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import SafeguardConfig
from repro.sim.faults import FaultPlan, NetworkPartition
from repro.sim.simulator import Simulator
from repro.telemetry import Explanation, explain
from repro.telemetry.spans import Tracer


def _tree() -> Tracer:
    """root -> (a -> a1, b) plus a second unrelated trace."""
    tracer = Tracer()
    root = tracer.start_trace("attack.worm", "worm", 0.0)
    a = tracer.start_span("attack.compromise", "dev1", 1.0, parent=root.context)
    tracer.start_span("policy.inject", "dev1", 1.0, parent=a.context)
    tracer.start_span("safeguard.veto", "dev2", 2.0, parent=root.context)
    tracer.start_trace("task.tick", "dev3", 3.0)
    return tracer


class TestExplanation:
    def test_collects_only_the_requested_trace(self):
        explanation = explain(_tree(), "t1")
        assert len(explanation) == 4
        assert all(span.context.trace_id == "t1"
                   for span in explanation.spans)

    def test_tree_shape(self):
        explanation = explain(_tree(), "t1")
        (root,) = explanation.roots()
        assert root.name == "attack.worm"
        children = explanation.children_of(root)
        assert [span.name for span in children] == [
            "attack.compromise", "safeguard.veto"]
        grandchildren = explanation.children_of(children[0])
        assert [span.name for span in grandchildren] == ["policy.inject"]

    def test_kinds_and_subjects_in_causal_order(self):
        explanation = explain(_tree(), "t1")
        assert explanation.kinds() == [
            "attack.worm", "attack.compromise", "policy.inject",
            "safeguard.veto"]
        assert explanation.subjects() == ["worm", "dev1", "dev2"]

    def test_stage_matches_exact_and_dotted_prefix(self):
        explanation = explain(_tree(), "t1")
        assert len(explanation.stage("attack")) == 2
        assert len(explanation.stage("attack.compromise")) == 1
        assert explanation.stage("atta") == []     # no partial-word matches
        assert explanation.has_stage("safeguard.veto")
        assert not explanation.has_stage("watchdog")

    def test_path_to_walks_back_to_the_root(self):
        explanation = explain(_tree(), "t1")
        leaf = explanation.stage("policy.inject")[0]
        assert [span.name for span in explanation.path_to(leaf)] == [
            "attack.worm", "attack.compromise", "policy.inject"]

    def test_orphans_reroot_instead_of_vanishing(self):
        tracer = _tree()
        spans = tracer.trace("t1")
        # Drop the true root, as the capacity cap might.
        survivors = [span for span in spans if span.name != "attack.worm"]
        explanation = Explanation("t1", survivors)
        assert len(explanation) == 3
        assert {span.name for span in explanation.roots()} == {
            "attack.compromise", "safeguard.veto"}

    def test_render_mentions_every_span(self):
        text = explain(_tree(), "t1").render()
        for name in ("attack.worm", "attack.compromise", "policy.inject",
                     "safeguard.veto"):
            assert name in text

    def test_chain_is_the_flat_dict_view(self):
        chain = explain(_tree(), "t1").chain()
        assert [entry["name"] for entry in chain] == [
            "attack.worm", "attack.compromise", "policy.inject",
            "safeguard.veto"]

    def test_resolves_tracer_from_simulator(self):
        sim = Simulator(seed=0)
        sim.telemetry.start_trace("a", "dev", 0.0)
        assert len(explain(sim, "t1")) == 1

    def test_unresolvable_source_raises(self):
        with pytest.raises(TypeError):
            explain(object(), "t1")


# -- the acceptance scenario: E17-style rogue takedown ------------------------------


def _build(seed: int, fault_plan=None) -> ConfrontationScenario:
    return ConfrontationScenario(
        seed=seed,
        config=SafeguardConfig.only(watchdog=True, preaction=True,
                                    statespace=True, sealed=True),
        threats=ThreatConfig(worm=True, worm_time=20.0,
                             worm_initial_targets=3),
        safety_transport="reliable",
        quarantine_after=3,
        durability="journal",
        fault_plan=fault_plan,
    )


def test_explain_reconstructs_rogue_takedown_across_devices():
    """The tentpole acceptance: one trace id, planted at attack injection,
    explains the whole E17-style incident — compromise, policy implant,
    vetoed rogue actions, safety telemetry hops, kill orders, and the
    partitioned straggler's fail-closed self-quarantine — across >= 3
    devices."""
    # Probe run: same seed, no faults — learn which devices the worm hits.
    probe = _build(seed=11)
    targets = probe.worm.initial_targets
    drone = next(target for target in targets if "drone" in target)

    # Real run: partition the compromised drone so kill orders dead-letter;
    # it keeps striking until the statespace guard vetoes the overheating,
    # and the overseer link fail-closes into self-quarantine.
    plan = FaultPlan([NetworkPartition(at=20.5, heal_at=120.0,
                                       groups=((drone,),))])
    scenario = _build(seed=11, fault_plan=plan)
    summary = scenario.run(until=60.0)
    assert summary["compromised_ever"] == 3
    assert summary["quarantines"] >= 1

    record = scenario.injector.records[0]
    trace_id = record.detail["trace_id"]
    explanation = explain(scenario, trace_id)

    # Every stage of the causal story is present under ONE trace id.
    for stage in ("attack.worm", "attack.compromise", "policy.inject",
                  "engine.decision", "safeguard.veto", "safety.report",
                  "net.send", "net.deliver", "watchdog.kill_order",
                  "watchdog.deactivate", "reliable.dead_letter",
                  "safeguard.quarantine"):
        assert explanation.has_stage(stage), f"missing stage {stage}"

    # The chain crosses devices: all three compromised devices appear as
    # subjects, plus the watchdog that answered.
    subjects = set(explanation.subjects())
    assert set(targets) <= subjects
    assert "watchdog" in subjects
    device_subjects = {subject for subject in subjects
                       if "." not in subject and subject != "worm"}
    assert len(device_subjects) >= 3

    # Causality, not just co-occurrence: the quarantine's path walks back
    # through the compromise to the attack root.
    quarantine = explanation.stage("safeguard.quarantine")[0]
    assert quarantine.subject == drone
    path_names = [span.name for span in explanation.path_to(quarantine)]
    assert path_names[0] == "attack.worm"
    assert "attack.compromise" in path_names

    # The veto chain names the guard and rides the same compromise branch.
    veto = explanation.stage("safeguard.veto")[0]
    assert veto.detail["safeguard"] == "statespace"
    assert veto.subject == drone
    assert [span.name for span in explanation.path_to(veto)][0] == "attack.worm"

    # Audit-journal appends made inside the traced decisions joined too.
    assert explanation.has_stage("store.append")


def test_rogue_takedown_trace_is_replay_deterministic():
    """Two runs, same seed: identical span names/subjects/ids in the
    attack trace (the determinism constraint of the spans design)."""
    def run():
        probe = _build(seed=11)
        drone = next(target for target in probe.worm.initial_targets
                     if "drone" in target)
        plan = FaultPlan([NetworkPartition(at=20.5, heal_at=120.0,
                                           groups=((drone,),))])
        scenario = _build(seed=11, fault_plan=plan)
        scenario.run(until=45.0)
        trace_id = scenario.injector.records[0].detail["trace_id"]
        return [span.to_dict() for span in explain(scenario, trace_id).spans]

    assert run() == run()
