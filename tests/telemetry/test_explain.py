"""Explanation trees — synthetic and the E17-style end-to-end chain."""

from __future__ import annotations

import pytest

from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import SafeguardConfig
from repro.sim.faults import FaultPlan, NetworkPartition
from repro.sim.simulator import Simulator
from repro.telemetry import Explanation, explain
from repro.telemetry.spans import Tracer


def _tree() -> Tracer:
    """root -> (a -> a1, b) plus a second unrelated trace."""
    tracer = Tracer()
    root = tracer.start_trace("attack.worm", "worm", 0.0)
    a = tracer.start_span("attack.compromise", "dev1", 1.0, parent=root.context)
    tracer.start_span("policy.inject", "dev1", 1.0, parent=a.context)
    tracer.start_span("safeguard.veto", "dev2", 2.0, parent=root.context)
    tracer.start_trace("task.tick", "dev3", 3.0)
    return tracer


class TestExplanation:
    def test_collects_only_the_requested_trace(self):
        explanation = explain(_tree(), "t1")
        assert len(explanation) == 4
        assert all(span.context.trace_id == "t1"
                   for span in explanation.spans)

    def test_tree_shape(self):
        explanation = explain(_tree(), "t1")
        (root,) = explanation.roots()
        assert root.name == "attack.worm"
        children = explanation.children_of(root)
        assert [span.name for span in children] == [
            "attack.compromise", "safeguard.veto"]
        grandchildren = explanation.children_of(children[0])
        assert [span.name for span in grandchildren] == ["policy.inject"]

    def test_kinds_and_subjects_in_causal_order(self):
        explanation = explain(_tree(), "t1")
        assert explanation.kinds() == [
            "attack.worm", "attack.compromise", "policy.inject",
            "safeguard.veto"]
        assert explanation.subjects() == ["worm", "dev1", "dev2"]

    def test_stage_matches_exact_and_dotted_prefix(self):
        explanation = explain(_tree(), "t1")
        assert len(explanation.stage("attack")) == 2
        assert len(explanation.stage("attack.compromise")) == 1
        assert explanation.stage("atta") == []     # no partial-word matches
        assert explanation.has_stage("safeguard.veto")
        assert not explanation.has_stage("watchdog")

    def test_path_to_walks_back_to_the_root(self):
        explanation = explain(_tree(), "t1")
        leaf = explanation.stage("policy.inject")[0]
        assert [span.name for span in explanation.path_to(leaf)] == [
            "attack.worm", "attack.compromise", "policy.inject"]

    def test_orphans_reroot_instead_of_vanishing(self):
        tracer = _tree()
        spans = tracer.trace("t1")
        # Drop the true root, as the capacity cap might.
        survivors = [span for span in spans if span.name != "attack.worm"]
        explanation = Explanation("t1", survivors)
        assert len(explanation) == 3
        assert {span.name for span in explanation.roots()} == {
            "attack.compromise", "safeguard.veto"}

    def test_render_mentions_every_span(self):
        text = explain(_tree(), "t1").render()
        for name in ("attack.worm", "attack.compromise", "policy.inject",
                     "safeguard.veto"):
            assert name in text

    def test_chain_is_the_flat_dict_view(self):
        chain = explain(_tree(), "t1").chain()
        assert [entry["name"] for entry in chain] == [
            "attack.worm", "attack.compromise", "policy.inject",
            "safeguard.veto"]

    def test_resolves_tracer_from_simulator(self):
        sim = Simulator(seed=0)
        sim.telemetry.start_trace("a", "dev", 0.0)
        assert len(explain(sim, "t1")) == 1

    def test_unresolvable_source_raises(self):
        with pytest.raises(TypeError):
            explain(object(), "t1")


# -- the acceptance scenario: E17-style rogue takedown ------------------------------


def _build(seed: int, fault_plan=None) -> ConfrontationScenario:
    return ConfrontationScenario(
        seed=seed,
        config=SafeguardConfig.only(watchdog=True, preaction=True,
                                    statespace=True, sealed=True),
        threats=ThreatConfig(worm=True, worm_time=20.0,
                             worm_initial_targets=3),
        safety_transport="reliable",
        quarantine_after=3,
        durability="journal",
        fault_plan=fault_plan,
    )


def test_explain_reconstructs_rogue_takedown_across_devices():
    """The tentpole acceptance: one trace id, planted at attack injection,
    explains the whole E17-style incident — compromise, policy implant,
    vetoed rogue actions, safety telemetry hops, kill orders, and the
    partitioned straggler's fail-closed self-quarantine — across >= 3
    devices."""
    # Probe run: same seed, no faults — learn which devices the worm hits.
    probe = _build(seed=11)
    targets = probe.worm.initial_targets
    drone = next(target for target in targets if "drone" in target)

    # Real run: partition the compromised drone so kill orders dead-letter;
    # it keeps striking until the statespace guard vetoes the overheating,
    # and the overseer link fail-closes into self-quarantine.
    plan = FaultPlan([NetworkPartition(at=20.5, heal_at=120.0,
                                       groups=((drone,),))])
    scenario = _build(seed=11, fault_plan=plan)
    summary = scenario.run(until=60.0)
    assert summary["compromised_ever"] == 3
    assert summary["quarantines"] >= 1

    record = scenario.injector.records[0]
    trace_id = record.detail["trace_id"]
    explanation = explain(scenario, trace_id)

    # Every stage of the causal story is present under ONE trace id.
    for stage in ("attack.worm", "attack.compromise", "policy.inject",
                  "engine.decision", "safeguard.veto", "safety.report",
                  "net.send", "net.deliver", "watchdog.kill_order",
                  "watchdog.deactivate", "reliable.dead_letter",
                  "safeguard.quarantine"):
        assert explanation.has_stage(stage), f"missing stage {stage}"

    # The chain crosses devices: all three compromised devices appear as
    # subjects, plus the watchdog that answered.
    subjects = set(explanation.subjects())
    assert set(targets) <= subjects
    assert "watchdog" in subjects
    device_subjects = {subject for subject in subjects
                       if "." not in subject and subject != "worm"}
    assert len(device_subjects) >= 3

    # Causality, not just co-occurrence: the quarantine's path walks back
    # through the compromise to the attack root.
    quarantine = explanation.stage("safeguard.quarantine")[0]
    assert quarantine.subject == drone
    path_names = [span.name for span in explanation.path_to(quarantine)]
    assert path_names[0] == "attack.worm"
    assert "attack.compromise" in path_names

    # The veto chain names the guard and rides the same compromise branch.
    veto = explanation.stage("safeguard.veto")[0]
    assert veto.detail["safeguard"] == "statespace"
    assert veto.subject == drone
    assert [span.name for span in explanation.path_to(veto)][0] == "attack.worm"

    # Audit-journal appends made inside the traced decisions joined too.
    assert explanation.has_stage("store.append")


def test_rogue_takedown_trace_is_replay_deterministic():
    """Two runs, same seed: identical span names/subjects/ids in the
    attack trace (the determinism constraint of the spans design)."""
    def run():
        probe = _build(seed=11)
        drone = next(target for target in probe.worm.initial_targets
                     if "drone" in target)
        plan = FaultPlan([NetworkPartition(at=20.5, heal_at=120.0,
                                           groups=((drone,),))])
        scenario = _build(seed=11, fault_plan=plan)
        scenario.run(until=45.0)
        trace_id = scenario.injector.records[0].detail["trace_id"]
        return [span.to_dict() for span in explain(scenario, trace_id).spans]

    assert run() == run()


class TestGatewayRejectPlusJournalAppend:
    """Direct unit coverage for a trace that spans an E21 gateway reject
    and a store journal append (previously only crossed in scenario
    benches): one root context, a forged command rejected under it, a
    valid command whose nonce-burn journals under it — ``explain`` must
    stitch all of it into a single causal tree."""

    def _incident(self):
        from repro.crypto import CommandSigner, EnvelopeVerifier, Keyring
        from repro.safeguards.gateway import ActuationGateway
        from repro.store import Journal, StableStorage

        sim = Simulator(seed=7)
        ring = Keyring(seed=7)
        signer = CommandSigner(ring, "watchdog")
        journal = Journal(StableStorage(), "gateway.authz",
                          tracer=sim.telemetry)
        gateway = ActuationGateway(sim, EnvelopeVerifier(ring),
                                   journal=journal)
        root = sim.telemetry.start_trace("incident.response", "overseer",
                                         sim.now)
        previous = sim.telemetry.activate(root.context)
        try:
            forged = signer.sign({"cause": "bad_state", "target": "d0"},
                                 tick=sim.now)
            forged["cause"] = "tampered"
            rejected = gateway.admit(forged, kind="safety.kill",
                                     target="d0")
            accepted = gateway.admit(
                signer.sign({"cause": "bad_state", "target": "d0"},
                            tick=sim.now),
                kind="safety.kill", target="d0")
        finally:
            sim.telemetry.activate(previous)
        return sim, root, rejected, accepted

    def test_one_trace_spans_reject_and_journal_append(self):
        sim, root, rejected, accepted = self._incident()
        assert (rejected.allowed, rejected.reason) == (False, "bad-mac")
        assert accepted.allowed
        explanation = explain(sim, root.context.trace_id)
        assert explanation.has_stage("safeguard.authz")
        assert explanation.has_stage("store.append")
        assert [span.name for span in explanation.roots()] == [
            "incident.response"]

    def test_reject_span_carries_reason_and_parents_on_root(self):
        sim, root, _, _ = self._incident()
        explanation = explain(sim, root.context.trace_id)
        reject = explanation.stage("safeguard.authz")[0]
        assert reject.detail["reason"] == "bad-mac"
        assert reject.subject == "d0"
        path = explanation.path_to(reject)
        assert [span.name for span in path] == ["incident.response",
                                                "safeguard.authz"]

    def test_journal_append_is_causally_under_the_root(self):
        sim, root, _, _ = self._incident()
        explanation = explain(sim, root.context.trace_id)
        append = explanation.stage("store.append")[0]
        assert append.subject == "gateway.authz"
        path = explanation.path_to(append)
        assert path[0].name == "incident.response"
        assert path[-1] is append

    def test_outside_any_context_neither_side_joins_a_trace(self):
        from repro.crypto import CommandSigner, EnvelopeVerifier, Keyring
        from repro.safeguards.gateway import ActuationGateway
        from repro.store import Journal, StableStorage

        sim = Simulator(seed=7)
        ring = Keyring(seed=7)
        signer = CommandSigner(ring, "watchdog")
        gateway = ActuationGateway(
            sim, EnvelopeVerifier(ring),
            journal=Journal(StableStorage(), "gateway.authz",
                            tracer=sim.telemetry))
        forged = signer.sign({"cause": "x", "target": "d0"}, tick=sim.now)
        forged["cause"] = "tampered"
        gateway.admit(forged, kind="safety.kill", target="d0")
        names = [span.name for span in sim.telemetry.spans]
        assert "safeguard.authz" not in names


class TestExplanationSerialization:
    """E24 satellite: Explanation round-trips through plain JSON, so a
    warehouse-stored incident renders the same tree the live tracer
    produced."""

    def test_to_dict_carries_chain_and_summaries(self):
        explanation = explain(_tree(), "t1")
        doc = explanation.to_dict()
        assert doc["trace_id"] == "t1"
        assert doc["kinds"] == explanation.kinds()
        assert doc["subjects"] == explanation.subjects()
        assert [span["name"] for span in doc["spans"]] == [
            span.name for span in explanation.spans]

    def test_round_trip_preserves_tree_and_render(self):
        import json

        original = explain(_tree(), "t1")
        # Through actual JSON text, not just dicts: what the warehouse
        # stores is what a reader loads.
        rebuilt = Explanation.from_dict(
            json.loads(json.dumps(original.to_dict())))
        assert rebuilt.to_dict() == original.to_dict()
        assert [span.name for span in rebuilt.roots()] == [
            span.name for span in original.roots()]
        leaf = rebuilt.stage("policy.inject")[0]
        assert [span.name for span in rebuilt.path_to(leaf)] == [
            "attack.worm", "attack.compromise", "policy.inject"]
        assert rebuilt.render() == original.render()

    def test_round_trip_of_orphaned_tree(self):
        tracer = _tree()
        survivors = [span for span in tracer.trace("t1")
                     if span.name != "attack.worm"]
        original = Explanation("t1", survivors)
        rebuilt = Explanation.from_dict(original.to_dict())
        assert {span.name for span in rebuilt.roots()} == {
            "attack.compromise", "safeguard.veto"}

    def test_empty_explanation_round_trips(self):
        rebuilt = Explanation.from_dict(
            Explanation("tX", []).to_dict())
        assert (rebuilt.trace_id, len(rebuilt)) == ("tX", 0)
