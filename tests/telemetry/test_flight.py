"""Flight recorder: ring buffers, crash dumps, and post-restart readback."""

from __future__ import annotations

import pytest

from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import SafeguardConfig
from repro.sim.faults import DeviceCrash, FaultPlan
from repro.sim.simulator import Simulator
from repro.store.stable import StableStorage
from repro.telemetry.flight import FlightRecorder


class TestRingBuffers:
    def _recorded(self, per_device: int = 4):
        sim = Simulator(seed=0)
        storage = StableStorage()
        flight = FlightRecorder(sim, storage, per_device=per_device)
        return sim, storage, flight

    def test_per_device_validation(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            FlightRecorder(sim, StableStorage(), per_device=0)

    def test_captures_both_spans_and_trace_events(self):
        sim, _storage, flight = self._recorded()
        sim.telemetry.start_trace("attack.worm", "dev1", 1.0)
        sim.record("engine.decision", "dev1", outcome="vetoed")
        entries = flight.recent("dev1")
        assert [entry["record"] for entry in entries] == ["span", "trace"]
        assert entries[0]["name"] == "attack.worm"
        assert entries[1]["kind"] == "engine.decision"

    def test_ring_is_bounded_per_device(self):
        sim, _storage, flight = self._recorded(per_device=3)
        for index in range(10):
            sim.record("tick", "dev1", index=index)
        entries = flight.recent("dev1")
        assert len(entries) == 3
        assert [entry["detail"]["index"] for entry in entries] == [7, 8, 9]

    def test_rings_are_per_subject(self):
        sim, _storage, flight = self._recorded(per_device=2)
        sim.record("a", "dev1")
        sim.record("b", "dev2")
        assert len(flight.recent("dev1")) == 1
        assert len(flight.recent("dev2")) == 1
        assert flight.recent("dev3") == []

    def test_dump_writes_durable_payload_and_counts(self):
        sim, storage, flight = self._recorded()
        sim.record("engine.decision", "dev1", outcome="executed")
        count = flight.dump("dev1", reason="quarantine")
        assert count == 1
        assert flight.dumps == 1
        assert sim.metrics.counter("flight.dumps").value == 1
        dumps = FlightRecorder.load(storage, "dev1")
        assert len(dumps) == 1
        assert dumps[0]["reason"] == "quarantine"
        assert dumps[0]["device_id"] == "dev1"
        assert len(dumps[0]["entries"]) == 1

    def test_repeated_dumps_append(self):
        sim, storage, flight = self._recorded()
        sim.record("a", "dev1")
        flight.dump("dev1", reason="first")
        sim.record("b", "dev1")
        flight.dump("dev1", reason="second")
        reasons = [dump["reason"]
                   for dump in FlightRecorder.load(storage, "dev1")]
        assert reasons == ["first", "second"]
        assert flight.last_dump("dev1")["reason"] == "second"

    def test_dumped_devices_lists_flight_blobs_only(self):
        sim, storage, flight = self._recorded()
        storage.append("dev9.audit", b"x")      # unrelated blob
        sim.record("a", "dev1")
        flight.dump("dev1", reason="crash")
        assert FlightRecorder.dumped_devices(storage) == ["dev1"]


class TestCrashSurvival:
    def _scenario(self, fault_plan=None) -> ConfrontationScenario:
        # No watchdog: the compromised victim must still be alive when the
        # injected crash lands (a killed device cannot crash again).
        return ConfrontationScenario(
            seed=7,
            config=SafeguardConfig.only(preaction=True, statespace=True,
                                        sealed=True),
            threats=ThreatConfig(worm=True, worm_time=10.0,
                                 worm_initial_targets=2),
            safety_transport="reliable",
            durability="journal",
            fault_plan=fault_plan,
        )

    def test_dump_survives_fault_injector_crash(self):
        """The acceptance: a compromised device crashes mid-incident; its
        flight ring reaches stable storage *before* the crash wipes
        volatile state, and is readable after the restart."""
        probe = self._scenario()
        victim = probe.worm.initial_targets[0]
        plan = FaultPlan([DeviceCrash(device_id=victim, at=12.0,
                                      restart_after=5.0)])
        scenario = self._scenario(fault_plan=plan)
        scenario.run(until=30.0)

        dumps = FlightRecorder.load(scenario.storage, victim)
        crash_dumps = [dump for dump in dumps if dump["reason"] == "crash"]
        assert crash_dumps, "crash produced no flight dump"
        dump = crash_dumps[0]
        assert dump["time"] == 12.0
        assert dump["entries"], "flight ring was empty at crash time"
        # The ring caught the rogue activity leading up to the crash.
        names = {entry.get("name") or entry.get("kind")
                 for entry in dump["entries"]}
        assert any("engine.decision" in name or "attack" in name
                   for name in names), names

        # Readable through a *fresh* recorder over the same storage — the
        # post-restart forensic read path.
        reread = FlightRecorder.load(scenario.storage, victim)
        assert reread == dumps
        assert victim in FlightRecorder.dumped_devices(scenario.storage)

    def test_quarantine_also_dumps(self):
        from repro.sim.faults import NetworkPartition

        probe = self._scenario()
        victim = probe.worm.initial_targets[0]
        plan = FaultPlan([NetworkPartition(at=10.5, heal_at=100.0,
                                           groups=((victim,),))])
        scenario = ConfrontationScenario(
            seed=7,
            config=SafeguardConfig.only(watchdog=True, preaction=True,
                                        statespace=True, sealed=True),
            threats=ThreatConfig(worm=True, worm_time=10.0,
                                 worm_initial_targets=2),
            safety_transport="reliable",
            quarantine_after=3,
            durability="journal",
            fault_plan=plan,
        )
        summary = scenario.run(until=60.0)
        assert summary["quarantines"] >= 1
        dumps = FlightRecorder.load(scenario.storage, victim)
        assert any(dump["reason"] == "quarantine" for dump in dumps)

    def test_no_flight_recorder_without_storage(self):
        scenario = ConfrontationScenario(
            seed=7, config=SafeguardConfig.only(watchdog=True, sealed=True))
        assert scenario.flight is None
