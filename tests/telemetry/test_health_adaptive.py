"""Closed-loop consumers: adaptive quarantine and sized compaction (E20)."""

import pytest

from repro.audit.log import AuditLog
from repro.sim.simulator import Simulator
from repro.store.journal import Journal
from repro.store.stable import StableStorage
from repro.telemetry.health import (AdaptiveQuarantine, AlertEngine,
                                    AlertRule, CompactionController,
                                    HealthMonitor)


class FakeLink:
    def __init__(self):
        self.quarantine_after = 0


def make_stack(rule):
    sim = Simulator(seed=0)
    monitor = HealthMonitor(sim, interval=1.0)
    engine = AlertEngine(sim, monitor)
    engine.add_rule(rule)
    return sim, monitor, engine


class TestAdaptiveQuarantine:
    def make(self, readings, base=3, relaxed=8):
        sim, monitor, engine = make_stack(AlertRule(
            name="link.degraded", condition="rtt > 0.45",
            clear_condition="rtt < 0.25"))
        feed = iter(readings)
        monitor.track_value("rtt", lambda _now: next(feed, readings[-1]))
        links = [FakeLink(), FakeLink()]
        adaptive = AdaptiveQuarantine(sim, engine, links,
                                      base=base, relaxed=relaxed)
        return sim, links, adaptive

    def test_links_start_at_base(self):
        _sim, links, _adaptive = self.make([0.1])
        assert all(link.quarantine_after == 3 for link in links)

    def test_storm_relaxes_every_link_then_restores(self):
        sim, links, _adaptive = self.make([0.9, 0.9, 0.9, 0.1, 0.1])
        sim.run(until=2.0)
        assert all(link.quarantine_after == 8 for link in links)
        assert sim.metrics.value("health.quarantine_after") == 8.0
        sim.run(until=6.0)
        assert all(link.quarantine_after == 3 for link in links)
        assert sim.metrics.value("health.quarantine_adjustments") == 2

    def test_unrelated_alert_leaves_threshold_alone(self):
        sim, monitor, engine = make_stack(AlertRule(
            name="queue.backlog", condition="depth > 10"))
        monitor.track_value("depth", lambda _now: 99.0)
        links = [FakeLink()]
        AdaptiveQuarantine(sim, engine, links, base=3, relaxed=8)
        sim.run(until=3.0)
        assert links[0].quarantine_after == 3

    def test_relaxed_may_never_undercut_base(self):
        sim, monitor, engine = make_stack(AlertRule(
            name="link.degraded", condition="rtt > 0.45"))
        with pytest.raises(ValueError):
            AdaptiveQuarantine(sim, engine, [FakeLink()], base=5, relaxed=2)


class TestCompactionController:
    def make(self, compact_bytes=600, flush_batch=None, alert_bytes=None):
        alert_bytes = compact_bytes if alert_bytes is None else alert_bytes
        sim, monitor, engine = make_stack(AlertRule(
            name="store.pressure",
            condition=f"{CompactionController.SLI} > {alert_bytes}",
            clear_condition=f"{CompactionController.SLI} < {alert_bytes // 2}"))
        storage = StableStorage()
        journal = Journal(storage, "dev.audit")
        audit = AuditLog(journal=journal)
        controller = CompactionController(sim, engine, monitor,
                                          compact_bytes=compact_bytes,
                                          flush_batch=flush_batch)
        controller.register("dev.audit", journal, audit.checkpoint)
        return sim, storage, journal, audit, controller

    def test_sli_publishes_registered_journal_bytes(self):
        sim, storage, _journal, audit, _controller = self.make()
        audit.append(0.0, "act", "dev", {"n": 1})
        sim.run(until=2.0)
        assert sim.metrics.value(
            "health." + CompactionController.SLI) == storage.size("dev.audit")

    def test_compacts_when_over_budget_under_pressure(self):
        sim, storage, _journal, audit, _controller = self.make(
            compact_bytes=600)
        sim.every(1.0, lambda: [audit.append(sim.now, "act", "dev", {"i": i})
                                for i in range(5)])
        sim.run(until=30.0)
        assert sim.metrics.value("store.compactions_sized") > 0
        # The blob stays near the budget instead of growing with time.
        assert storage.size("dev.audit") < 3 * 600
        # Nothing was lost to compaction: the full chain is recoverable.
        recovered = AuditLog(journal=Journal(storage, "dev.audit"))
        recovered.recover()
        assert len(recovered) == len(audit)

    def test_no_compaction_while_alert_quiet(self):
        sim, storage, _journal, audit, _controller = self.make(
            compact_bytes=10**6)
        sim.every(1.0, lambda: audit.append(sim.now, "act", "dev", {}))
        sim.run(until=10.0)
        assert sim.metrics.value("store.compactions_sized") == 0

    def test_flush_batching_engages_and_drains_on_resolve(self):
        # Alert threshold low, compaction budget unreachable: batching is
        # the only actuation, and we control resolve via checkpoint().
        sim, storage, journal, audit, _controller = self.make(
            compact_bytes=10**9, flush_batch=8, alert_bytes=5_000)
        while storage.size("dev.audit") <= 5_000:
            audit.append(sim.now, "pad", "dev", {"pad": "x" * 128})
        sim.run(until=3.0)
        assert journal.flush_every == 8     # batching engaged on fire
        audit.append(sim.now, "tail", "dev", {})
        assert journal.unflushed > 0        # appends now buffer
        audit.checkpoint()                  # compact below the clear line
        assert storage.size("dev.audit") < 2_500
        sim.run(until=8.0)
        assert journal.flush_every == 1     # restored on resolve
        assert journal.unflushed == 0       # buffered tail drained
