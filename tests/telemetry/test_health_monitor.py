"""HealthMonitor sampling, SLI shapes, and alert-engine behaviour (E20)."""

import pytest

from repro.sim.simulator import Simulator
from repro.telemetry.health import (AlertEngine, AlertRule, HealthMonitor)


def make_monitor(interval=1.0):
    sim = Simulator(seed=0)
    return sim, HealthMonitor(sim, interval=interval)


class TestHealthMonitor:
    def test_no_data_sli_is_absent_not_zero(self):
        sim, monitor = make_monitor()
        monitor.track_quantile("rtt_p95", "reliable.rtt", 0.95)
        sim.run(until=3.0)
        assert "rtt_p95" not in monitor.state
        assert sim.metrics.get("health.rtt_p95") is None

    def test_quantile_sli_publishes_gauge(self):
        sim, monitor = make_monitor()
        monitor.track_quantile("rtt_p95", "reliable.rtt", 0.95)
        histogram = sim.metrics.histogram("reliable.rtt")
        for v in (0.1, 0.2, 0.3):
            histogram.observe(v)
        sim.run(until=2.0)
        assert monitor.state["rtt_p95"] == pytest.approx(0.29)
        assert sim.metrics.value("health.rtt_p95") == pytest.approx(0.29)

    def test_rate_sli_from_counter(self):
        sim, monitor = make_monitor()
        monitor.track_rate("dl_rate", "reliable.dead_letter")
        counter = sim.metrics.counter("reliable.dead_letter")
        sim.every(1.0, lambda: counter.inc(4))
        sim.run(until=5.0)
        assert monitor.state["dl_rate"] == pytest.approx(4.0)

    def test_ratio_sli_is_windowed(self):
        sim, monitor = make_monitor()
        monitor.track_ratio("loss", "resends", "sent")
        resends = sim.metrics.counter("resends")
        sent = sim.metrics.counter("sent")

        def traffic():
            sent.inc(10)
            resends.inc(2)

        sim.every(1.0, traffic)
        sim.run(until=4.0)
        assert monitor.state["loss"] == pytest.approx(0.2)

    def test_ratio_with_idle_denominator_is_absent(self):
        sim, monitor = make_monitor()
        monitor.track_ratio("loss", "resends", "sent")
        sim.run(until=3.0)
        assert "loss" not in monitor.state

    def test_roc_sli_tracks_change_between_ticks(self):
        sim, monitor = make_monitor()
        values = iter([1.0, 1.0, 5.0, 5.0, 5.0])
        monitor.track_value("level", lambda _now: next(values, 5.0))
        assert monitor.derive_roc("level") == "level.roc"
        seen = []
        monitor.subscribe(lambda now, readings: seen.append(
            readings.get("level.roc")))
        sim.run(until=5.0)
        assert 4.0 in seen                  # the 1.0 -> 5.0 jump
        assert seen[-1] == 0.0              # steady afterwards

    def test_roc_of_unknown_sli_rejected(self):
        _sim, monitor = make_monitor()
        with pytest.raises(ValueError):
            monitor.derive_roc("nope")

    def test_duplicate_sli_rejected(self):
        _sim, monitor = make_monitor()
        monitor.track_value("x", lambda _now: 1.0)
        with pytest.raises(ValueError):
            monitor.track_value("x", lambda _now: 2.0)

    def test_peak_tracks_maximum_reading(self):
        sim, monitor = make_monitor()
        values = iter([1.0, 9.0, 3.0])
        monitor.track_value("depth", lambda _now: next(values, 3.0))
        sim.run(until=4.0)
        assert monitor.peak("depth") == 9.0
        assert monitor.peak("unknown") is None

    def test_stop_cancels_sampling(self):
        sim, monitor = make_monitor()
        monitor.track_value("x", lambda _now: 1.0)
        sim.run(until=2.0)
        ticks = monitor.ticks
        monitor.stop()
        sim.run(until=6.0)
        assert monitor.ticks == ticks


class TestAlertEngine:
    def make_engine(self, *rules, interval=1.0):
        sim, monitor = make_monitor(interval=interval)
        engine = AlertEngine(sim, monitor)
        for rule in rules:
            engine.add_rule(rule)
        return sim, monitor, engine

    def test_threshold_rule_fires_and_mints_span(self):
        sim, monitor, engine = self.make_engine(
            AlertRule(name="hot", condition="temp > 50", severity="critical"))
        monitor.track_value("temp", lambda _now: 80.0)
        sim.run(until=2.0)
        assert engine.is_active("hot")
        alert = engine.active["hot"]
        assert alert.reading == {"temp": 80.0}
        assert alert.trace_id is not None
        assert sim.metrics.value("alerts.fired") == 1
        assert sim.metrics.value("alerts.fired.critical") == 1
        assert sim.metrics.value("alerts.active") == 1
        spans = [s for s in sim.telemetry.spans if s.name == "alert.fire"]
        assert len(spans) == 1 and spans[0].subject == "hot"

    def test_sustained_for_ticks_dwell(self):
        sim, monitor, engine = self.make_engine(
            AlertRule(name="hot", condition="temp > 50", for_ticks=3))
        readings = iter([60.0, 60.0])       # only two hot ticks, then cool
        monitor.track_value("temp", lambda _now: next(readings, 10.0))
        sim.run(until=5.0)
        assert not engine.is_active("hot")
        assert engine.firings() == []

    def test_hysteresis_clear_condition_and_dwell(self):
        sim, monitor, engine = self.make_engine(AlertRule(
            name="hot", condition="temp > 50",
            clear_condition="temp < 30", clear_for_ticks=2))
        # Hot, then flapping at 40 (neither fire nor clear), then cool.
        readings = iter([60.0, 40.0, 40.0, 20.0, 20.0])
        monitor.track_value("temp", lambda _now: next(readings, 20.0))
        sim.run(until=3.0)
        assert engine.is_active("hot")      # 40 is not < 30: still active
        sim.run(until=6.0)
        assert not engine.is_active("hot")
        alert = engine.firings("hot")[0]
        assert alert.resolved_at is not None
        assert sim.metrics.value("alerts.resolved") == 1

    def test_default_clear_is_negated_condition(self):
        sim, monitor, engine = self.make_engine(
            AlertRule(name="hot", condition="temp > 50"))
        readings = iter([60.0, 10.0])
        monitor.track_value("temp", lambda _now: next(readings, 10.0))
        sim.run(until=3.0)
        assert not engine.is_active("hot")
        assert len(engine.firings("hot")) == 1

    def test_missing_sli_means_unknown_not_healthy_not_firing(self):
        sim, monitor, engine = self.make_engine(
            AlertRule(name="hot", condition="temp > 50", for_ticks=2))
        # temp never reports: the rule must neither fire nor crash.
        sim.run(until=4.0)
        assert not engine.is_active("hot")

    def test_missing_sli_does_not_resolve_active_alert(self):
        sim, monitor, engine = self.make_engine(
            AlertRule(name="hot", condition="temp > 50"))
        readings = iter([60.0])
        monitor.track_value("temp", lambda _now: next(readings, None))
        sim.run(until=4.0)
        assert engine.is_active("hot")      # silence is not recovery

    def test_dedup_one_firing_while_active(self):
        sim, monitor, engine = self.make_engine(
            AlertRule(name="hot", condition="temp > 50"))
        monitor.track_value("temp", lambda _now: 99.0)
        sim.run(until=10.0)
        assert len(engine.firings("hot")) == 1

    def test_listeners_and_refire_after_resolve(self):
        sim, monitor, engine = self.make_engine(
            AlertRule(name="hot", condition="temp > 50"))
        events = []
        engine.on_fire(lambda alert: events.append(("fire", sim.now)))
        engine.on_resolve(lambda alert: events.append(("resolve", sim.now)))
        readings = iter([60.0, 10.0, 60.0])
        monitor.track_value("temp", lambda _now: next(readings, 10.0))
        sim.run(until=5.0)
        kinds = [kind for kind, _t in events]
        assert kinds == ["fire", "resolve", "fire", "resolve"]
        assert len(engine.firings("hot")) == 2

    def test_duplicate_rule_rejected(self):
        _sim, _monitor, engine = self.make_engine(
            AlertRule(name="hot", condition="temp > 50"))
        with pytest.raises(ValueError):
            engine.add_rule(AlertRule(name="hot", condition="temp > 60"))

    def test_bad_severity_and_dwell_rejected(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", condition="a > 1", severity="panic")
        with pytest.raises(ValueError):
            AlertRule(name="x", condition="a > 1", for_ticks=0)

    def test_audit_chain_records_fire_and_resolve(self):
        from repro.audit.log import AuditLog

        sim, monitor = make_monitor()
        audit = AuditLog()
        engine = AlertEngine(sim, monitor, audit=audit)
        engine.add_rule(AlertRule(name="hot", condition="temp > 50"))
        readings = iter([60.0, 10.0])
        monitor.track_value("temp", lambda _now: next(readings, 10.0))
        sim.run(until=3.0)
        kinds = [entry.kind for entry in audit.entries()]
        assert kinds == ["alert.fire", "alert.resolve"]
        audit.verify()

    def test_export_jsonl_round_trips(self):
        import json

        sim, monitor, engine = self.make_engine(
            AlertRule(name="hot", condition="temp > 50"))
        readings = iter([60.0, 10.0])
        monitor.track_value("temp", lambda _now: next(readings, 10.0))
        sim.run(until=3.0)
        lines = engine.export_jsonl().strip().splitlines()
        assert len(lines) == 1
        row = json.loads(lines[0])
        assert row["rule"] == "hot" and row["severity"] == "warning"
        assert row["fired_at"] == 1.0 and row["resolved_at"] == 2.0
        assert row["reading"] == {"temp": 60.0}

    def test_rate_of_change_rule(self):
        sim, monitor, engine = self.make_engine(
            AlertRule(name="surge", condition="level.roc > 3.0"))
        readings = iter([1.0, 1.0, 10.0])
        monitor.track_value("level", lambda _now: next(readings, 10.0))
        monitor.derive_roc("level")
        sim.run(until=5.0)
        assert len(engine.firings("surge")) == 1
