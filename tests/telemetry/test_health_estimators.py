"""Streaming estimator correctness (E20)."""

import random

import pytest

from repro.telemetry.health.estimators import Ewma, P2Quantile, RateTracker


class TestEwma:
    def test_starts_unknown(self):
        assert Ewma().value is None

    def test_first_observation_is_the_level(self):
        ewma = Ewma(alpha=0.3)
        ewma.observe(4.0)
        assert ewma.value == 4.0

    def test_smooths_toward_new_level(self):
        ewma = Ewma(alpha=0.5)
        ewma.observe(0.0)
        ewma.observe(8.0)
        assert ewma.value == 4.0
        ewma.observe(8.0)
        assert ewma.value == 6.0

    def test_converges_to_constant_stream(self):
        ewma = Ewma(alpha=0.3)
        for _ in range(100):
            ewma.observe(2.5)
        assert ewma.value == pytest.approx(2.5)

    def test_rejects_bad_alpha_and_nan(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)
        with pytest.raises(ValueError):
            Ewma().observe(float("nan"))


class TestP2Quantile:
    def test_starts_unknown(self):
        assert P2Quantile(0.5).value is None

    def test_small_sample_is_exact(self):
        est = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            est.observe(v)
        assert est.value == 2.0

    def test_single_observation(self):
        est = P2Quantile(0.95)
        est.observe(7.0)
        assert est.value == 7.0

    def test_median_of_uniform_stream(self):
        rng = random.Random(7)
        est = P2Quantile(0.5)
        for _ in range(5000):
            est.observe(rng.uniform(0.0, 1.0))
        assert est.value == pytest.approx(0.5, abs=0.05)

    def test_p95_of_uniform_stream(self):
        rng = random.Random(11)
        est = P2Quantile(0.95)
        for _ in range(5000):
            est.observe(rng.uniform(0.0, 1.0))
        assert est.value == pytest.approx(0.95, abs=0.05)

    def test_tracks_bimodal_rtt_surge(self):
        # The SLI use case: RTTs near 0.15 normally, near 4.0 when acks
        # need retries.  The running p95 must land in the surge mode.
        rng = random.Random(3)
        est = P2Quantile(0.95)
        for _ in range(2000):
            est.observe(0.15 + rng.uniform(-0.02, 0.02))
        for _ in range(2000):
            est.observe(4.0 + rng.uniform(-0.5, 0.5))
        assert est.value > 3.0

    def test_memory_is_constant(self):
        est = P2Quantile(0.9)
        for i in range(10000):
            est.observe(float(i % 97))
        assert len(est._heights) == 5
        assert est.count == 10000

    def test_rejects_bad_quantile_and_nan(self):
        with pytest.raises(ValueError):
            P2Quantile(1.5)
        with pytest.raises(ValueError):
            P2Quantile(0.5).observe(float("nan"))


class TestRateTracker:
    def test_needs_two_samples(self):
        tracker = RateTracker()
        assert tracker.value is None
        assert tracker.sample(0.0, 10.0) is None

    def test_counter_delta_rate(self):
        tracker = RateTracker()
        tracker.sample(0.0, 10.0)
        assert tracker.sample(2.0, 16.0) == 3.0
        assert tracker.value == 3.0

    def test_idle_counter_rates_zero(self):
        tracker = RateTracker()
        tracker.sample(0.0, 5.0)
        tracker.sample(1.0, 5.0)
        assert tracker.value == 0.0

    def test_zero_dt_keeps_last_rate(self):
        tracker = RateTracker()
        tracker.sample(0.0, 0.0)
        tracker.sample(1.0, 4.0)
        assert tracker.sample(1.0, 9.0) == 4.0

    def test_smoothed_rate_uses_ewma(self):
        tracker = RateTracker(alpha=0.5)
        tracker.sample(0.0, 0.0)
        tracker.sample(1.0, 8.0)        # raw 8 -> ewma 8
        tracker.sample(2.0, 8.0)        # raw 0 -> ewma 4
        assert tracker.value == 4.0
