"""KnobArbiter: deterministic composition of safeguard-knob adjusters
(E22 satellite).  The pre-arbiter failure mode — two closed loops
overwriting the same knob in callback order — becomes a defined rule:
highest priority wins, ties go to the latest writer."""

from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.sim.simulator import Simulator
from repro.telemetry.health import (AdaptiveQuarantine, KnobArbiter,
                                    quarantine_knob)
from repro.trust import ReputationAdjuster, ReputationLedger


def make_arbiter():
    sim = Simulator(seed=3)
    arbiter = KnobArbiter(sim)
    applied = []
    arbiter.register("fuse", 3, applied.append)
    return sim, arbiter, applied


def test_registration_rules():
    sim, arbiter, applied = make_arbiter()
    assert applied == [3]                       # base applied immediately
    assert arbiter.has("fuse") and arbiter.base("fuse") == 3
    with pytest.raises(ConfigurationError):
        arbiter.register("fuse", 5, lambda v: None)
    arbiter.ensure("fuse", 5, lambda v: None)   # no-op, keeps the original
    assert arbiter.base("fuse") == 3
    with pytest.raises(ConfigurationError):
        arbiter.effective("unknown")
    with pytest.raises(ConfigurationError):
        arbiter.propose("unknown", "a", 1, 1)


def test_priority_wins_and_withdraw_falls_back():
    sim, arbiter, applied = make_arbiter()
    assert arbiter.propose("fuse", "storm", 10, 8) == 8
    assert arbiter.propose("fuse", "reputation", 20, 1) == 1
    assert arbiter.winner("fuse") == "reputation"
    # The lower-priority claim cannot shout over the higher one...
    assert arbiter.propose("fuse", "storm", 10, 9) == 1
    # ...but survives it: withdrawing the winner falls back, then base.
    assert arbiter.withdraw("fuse", "reputation") == 9
    assert arbiter.winner("fuse") == "storm"
    assert arbiter.withdraw("fuse", "storm") == 3
    assert arbiter.winner("fuse") is None
    assert applied == [3, 8, 1, 9, 3]
    assert arbiter.withdraw("fuse", "storm") == 3          # idempotent


def test_equal_priority_goes_to_the_latest_writer():
    sim, arbiter, applied = make_arbiter()
    arbiter.propose("fuse", "a", 10, 5)
    assert arbiter.propose("fuse", "b", 10, 6) == 6
    assert arbiter.winner("fuse") == "b"
    # Re-proposing an unchanged value is a no-op: no seq churn, so "a"
    # does not steal the tie back without actually changing its claim.
    assert arbiter.propose("fuse", "a", 10, 5) == 6
    assert arbiter.winner("fuse") == "b"
    # An actual new value from "a" is a later write and wins the tie.
    assert arbiter.propose("fuse", "a", 10, 4) == 4
    assert arbiter.winner("fuse") == "a"


def test_effective_changes_are_metered():
    sim, arbiter, applied = make_arbiter()
    arbiter.propose("fuse", "a", 10, 5)
    arbiter.propose("fuse", "a", 10, 5)         # no-op
    arbiter.propose("fuse", "b", 5, 5)          # loses: no change
    assert sim.metrics.value("health.knob_adjustments") == 1


class _FakeEngine:
    """Just the AlertEngine surface AdaptiveQuarantine subscribes to."""

    def __init__(self):
        self.fire_cbs, self.resolve_cbs = [], []

    def on_fire(self, cb):
        self.fire_cbs.append(cb)

    def on_resolve(self, cb):
        self.resolve_cbs.append(cb)


class _FakeLink:
    def __init__(self, device_id):
        self.device = SimpleNamespace(device_id=device_id)
        self.quarantine_after = 0


def test_adaptive_quarantine_and_reputation_adjuster_compose():
    """The E22 ordering fix, end to end with the real adjusters: a storm
    relaxation (priority 10) must not loosen a suspect device's fuse
    held tight by the reputation adjuster (priority 20) — regardless of
    which loop ran last."""
    sim = Simulator(seed=4)
    arbiter = KnobArbiter(sim)
    engine = _FakeEngine()
    links = [_FakeLink("d0"), _FakeLink("d1")]
    AdaptiveQuarantine(sim, engine, links, base=3, relaxed=8,
                       arbiter=arbiter)
    ledger = ReputationLedger(decay=0.0)
    adjuster = ReputationAdjuster(sim, ledger, arbiter, interval=1.0)
    adjuster.add_rule(quarantine_knob, suspect=lambda base: 1)

    ledger.record("d1", "quarantine", 0.0)      # d1 -> suspect
    sim.run(until=1.5)                          # adjuster tick
    assert (links[0].quarantine_after, links[1].quarantine_after) == (3, 1)

    alert = SimpleNamespace(rule=SimpleNamespace(name="link.degraded"))
    for cb in engine.fire_cbs:                  # storm: relax everyone
        cb(alert)
    assert links[0].quarantine_after == 8       # healthy device relaxes
    assert links[1].quarantine_after == 1       # suspect stays tight

    for cb in engine.resolve_cbs:               # storm over
        cb(alert)
    assert (links[0].quarantine_after, links[1].quarantine_after) == (3, 1)
