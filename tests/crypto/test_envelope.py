"""Unit + property tests for the E21 envelope layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (CommandSigner, EnvelopeVerifier, Keyring,
                          canonical_payload, compute_mac, envelope_payload,
                          payload_digest, signed_body)
from repro.errors import ConfigurationError


# -- keyring ---------------------------------------------------------------------

def test_keyring_is_seed_deterministic():
    a, b = Keyring(seed=7), Keyring(seed=7)
    assert a.issue("watchdog") == b.issue("watchdog")
    assert Keyring(seed=8).issue("watchdog") != a.issue("watchdog")


def test_keys_differ_per_issuer_and_per_keyring_name():
    ring = Keyring(seed=1)
    assert ring.issue("watchdog") != ring.issue("desk")
    assert Keyring(seed=1, name="other").issue("watchdog") != \
        Keyring(seed=1).issue("watchdog")


def test_steal_returns_key_without_authorizing():
    ring = Keyring(seed=3)
    issued = ring.issue("watchdog")
    assert ring.steal("watchdog") == issued
    assert ring.steal("nobody") != issued
    assert not ring.known("nobody")
    assert ring.key_for("nobody") is None


def test_revoke_deauthorizes():
    ring = Keyring(seed=0)
    ring.issue("watchdog")
    assert ring.revoke("watchdog")
    assert ring.key_for("watchdog") is None
    assert not ring.revoke("watchdog")


def test_empty_issuer_rejected():
    with pytest.raises(ConfigurationError):
        Keyring().derive("")


# -- sign / verify ----------------------------------------------------------------

def build(window=10.0, cache_size=4096):
    ring = Keyring(seed=5)
    signer = CommandSigner(ring, "watchdog")
    verifier = EnvelopeVerifier(ring, window=window, cache_size=cache_size)
    return ring, signer, verifier


def test_round_trip_verifies_and_consumes():
    _, signer, verifier = build()
    body = signer.sign({"cause": "bad_state", "target": "d0"}, tick=4.0)
    assert verifier.verify(body, now=4.5) == (True, "ok")
    assert verifier.consume(body, now=4.5) == (True, "ok")
    assert verifier.consume(body, now=4.6) == (False, "replayed")
    assert verifier.seen(body["_nonce"])


def test_rejection_reasons():
    ring, signer, verifier = build()
    assert verifier.verify({"cause": "x"}, now=0.0) == (False, "unsigned")

    rogue_key = ring.steal("rogue")            # never issued to the verifier
    body = signed_body(rogue_key, "rogue", {"cause": "x"}, "rogue:1", 0.0)
    assert verifier.verify(body, now=0.0) == (False, "unknown-issuer")

    body = signer.sign({"cause": "x", "target": "d0"}, tick=0.0)
    tampered = dict(body)
    tampered["cause"] = "y"
    assert verifier.verify(tampered, now=0.0) == (False, "bad-mac")

    stale = signer.sign({"cause": "x"}, tick=0.0)
    assert verifier.verify(stale, now=11.0) == (False, "stale")

    future = signer.sign({"cause": "x"}, tick=50.0)
    assert verifier.verify(future, now=0.0) == (False, "future")


def test_transport_retry_metadata_is_outside_the_mac():
    _, signer, verifier = build()
    body = signer.sign({"cause": "bad_state", "target": "d0"}, tick=1.0)
    retransmit = dict(body)
    retransmit["_rmid"] = 42          # what a ReliableChannel retry stamps on
    retransmit["_rfrom"] = "watchdog"
    assert verifier.verify(retransmit, now=1.1) == (True, "ok")
    assert envelope_payload(retransmit) == {"cause": "bad_state",
                                            "target": "d0"}


def test_signer_nonces_are_deterministic_and_distinct():
    _, signer, _ = build()
    a = signer.sign({"cause": "x"}, tick=0.0)
    b = signer.sign({"cause": "x"}, tick=0.0)
    assert a["_nonce"] == "watchdog:1" and b["_nonce"] == "watchdog:2"
    assert a["_mac"] != b["_mac"]
    assert signer.signed == 2


def test_eviction_raises_tick_floor_and_keeps_replays_out():
    _, signer, verifier = build(cache_size=2)
    first = signer.sign({"n": 1}, tick=1.0)
    verifier.consume(first, now=1.0)
    verifier.consume(signer.sign({"n": 2}, tick=2.0), now=2.0)
    verifier.consume(signer.sign({"n": 3}, tick=3.0), now=3.0)   # evicts #1
    assert verifier.evictions == 1
    assert verifier.floor == 1.0
    assert not verifier.seen(first["_nonce"])
    # The evicted envelope cannot sneak back in: its tick is at the floor.
    assert verifier.verify(first, now=3.0) == (False, "stale")


def test_forget_all_keeps_floor():
    _, signer, verifier = build(cache_size=1)
    verifier.consume(signer.sign({"n": 1}, tick=1.0), now=1.0)
    verifier.consume(signer.sign({"n": 2}, tick=2.0), now=2.0)
    assert verifier.forget_all() == 1
    assert verifier.cache_len() == 0
    assert verifier.floor == 1.0


def test_restore_burns_nonce_after_amnesia():
    _, signer, verifier = build()
    body = signer.sign({"n": 1}, tick=1.0)
    verifier.consume(body, now=1.0)
    verifier.forget_all()
    assert verifier.verify(body, now=1.5)[0]       # amnesia would re-accept
    verifier.restore(body["_nonce"], body["_tick"])
    assert verifier.verify(body, now=1.5) == (False, "replayed")


def test_payload_digest_is_canonical():
    assert payload_digest({"b": 1, "a": 2}) == payload_digest({"a": 2, "b": 1})
    assert payload_digest({"a": 2}) != payload_digest({"a": 3})
    assert canonical_payload({"b": 1, "a": 2}) == '{"a":2,"b":1}'


# -- properties (hypothesis) -------------------------------------------------------

_payloads = st.dictionaries(
    st.text(min_size=1, max_size=8).filter(lambda k: not k.startswith("_")),
    st.one_of(st.text(max_size=16), st.integers(-10**6, 10**6),
              st.booleans()),
    max_size=5,
)


@settings(max_examples=60, deadline=None)
@given(payload=_payloads, tick=st.floats(0.0, 1e6), seed=st.integers(0, 2**16))
def test_property_round_trip(payload, tick, seed):
    ring = Keyring(seed=seed)
    key = ring.issue("watchdog")
    body = signed_body(key, "watchdog", payload, "watchdog:1", tick)
    verifier = EnvelopeVerifier(ring, window=1e9)
    assert verifier.verify(body, now=tick) == (True, "ok")
    assert envelope_payload(body) == dict(payload)
    assert body["_mac"] == compute_mac(key, "watchdog", "watchdog:1",
                                       tick, payload)


@settings(max_examples=60, deadline=None)
@given(payload=_payloads, tick=st.floats(0.0, 1e6),
       field=st.sampled_from(["payload", "nonce", "tick", "issuer", "mac"]))
def test_property_any_mutation_breaks_the_mac(payload, tick, field):
    ring = Keyring(seed=9)
    ring.issue("watchdog")
    ring.issue("other")                      # authorized, but a different key
    key = ring.key_for("watchdog")
    body = signed_body(key, "watchdog", payload, "watchdog:1", tick)
    mutated = dict(body)
    if field == "payload":
        mutated["__extra"] = "x"             # grows the MAC'd payload
    elif field == "nonce":
        mutated["_nonce"] = "watchdog:2"
    elif field == "tick":
        mutated["_tick"] = tick + 1.0
    elif field == "issuer":
        mutated["_issuer"] = "other"
    else:
        flipped = "0" if body["_mac"][0] != "0" else "1"
        mutated["_mac"] = flipped + body["_mac"][1:]
    verifier = EnvelopeVerifier(ring, window=1e9)
    ok, reason = verifier.verify(mutated, now=tick)
    assert not ok
    assert reason == "bad-mac"


@settings(max_examples=40, deadline=None)
@given(n_extra=st.integers(1, 8))
def test_property_eviction_boundary_never_reopens_replay(n_extra):
    """The oldest-evicted nonce is always rejected inside the window."""
    ring = Keyring(seed=11)
    signer = CommandSigner(ring, "watchdog")
    verifier = EnvelopeVerifier(ring, window=1e9, cache_size=n_extra)
    first = signer.sign({"n": 0}, tick=0.0)
    verifier.consume(first, now=0.0)
    for i in range(n_extra):                 # overflow the cache by one
        verifier.consume(signer.sign({"n": i + 1}, tick=float(i + 1)),
                         now=float(i + 1))
    assert not verifier.seen(first["_nonce"])
    ok, reason = verifier.verify(first, now=float(n_extra))
    assert (ok, reason) == (False, "stale")
