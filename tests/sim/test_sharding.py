"""The sharded execution engine: partitioning, barriers, merge, timing.

The scenario-level byte-identity property lives in
``tests/scenarios/test_sharded_scenario.py``; here we pin down the
engine pieces it stands on — deterministic partitions, the barrier
schedule, routing order, the summary/trace/audit merges, and the
:class:`~repro.sim.profiling.BarrierTiming` satellite.
"""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.shardnet import ShardRouter, WireMessage, crc01, wire_sort_key
from repro.sim.metrics import MetricsRegistry
from repro.sim.profiling import BarrierTiming
from repro.sim.sharding import (
    ShardPlan,
    ShardResult,
    audit_chain_digest,
    barrier_schedule,
    cut_edges,
    merge_summaries,
    merge_trace,
    partition_crc,
    partition_graph,
    route_batches,
)
from repro.sim.simulator import Simulator


# -- partitioning --------------------------------------------------------------


def ring(n):
    names = [f"d{i:03d}" for i in range(n)]
    return names, [(names[i], names[(i + 1) % n]) for i in range(n)]


def test_partition_graph_is_deterministic_and_balanced():
    members, edges = ring(40)
    a = partition_graph(members, edges, 4)
    b = partition_graph(list(reversed(members)), list(reversed(edges)), 4)
    assert a == b                    # input order never matters
    sizes = [sum(1 for s in a.values() if s == k) for k in range(4)]
    assert all(size == 10 for size in sizes)


def test_partition_graph_beats_crc_on_community_topology():
    # Contiguous communities chained in a ring: BFS growth should cut far
    # fewer edges than hashing members uniformly.
    members, edges = ring(64)
    graph = partition_graph(members, edges, 4)
    crc = partition_crc(members, 4)
    assert cut_edges(graph, edges) < cut_edges(crc, edges)
    assert cut_edges(graph, edges) <= 8


def test_partition_crc_assigns_every_member_stably():
    members, _ = ring(20)
    a = partition_crc(members, 3, salt=7)
    assert set(a) == set(members)
    assert a == partition_crc(members, 3, salt=7)
    assert a != partition_crc(members, 3, salt=8)  # salt reshuffles


def test_shard_plan_pins_and_members():
    members, edges = ring(12)
    plan = ShardPlan.build(members + ["watchdog"], 3, edges=edges,
                           pins={"watchdog": 2})
    assert plan.shard_of("watchdog") == 2
    assert "watchdog" in plan.members_of(2)
    assert sum(plan.sizes()) == 13
    with pytest.raises(ConfigurationError):
        ShardPlan.build(members, 3, pins={"watchdog": 5})
    with pytest.raises(ConfigurationError):
        ShardPlan.build(members, 0)
    with pytest.raises(ConfigurationError):
        ShardPlan.build(members, 2, strategy="magic")


# -- barrier schedule and routing ----------------------------------------------


def test_barrier_schedule_covers_horizon_without_drift():
    assert barrier_schedule(48.0, 4.0) == [4.0 * (i + 1) for i in range(12)]
    assert barrier_schedule(10.0, 4.0) == [4.0, 8.0, 10.0]
    assert barrier_schedule(3.0, 4.0) == [3.0]
    with pytest.raises(ConfigurationError):
        barrier_schedule(0.0, 4.0)
    with pytest.raises(ConfigurationError):
        barrier_schedule(10.0, -1.0)


def wire(sender, recipient, deliver_at, seq):
    return WireMessage(sender, recipient, "t", {}, sent_at=0.0,
                       deliver_at=deliver_at, seq=seq)


def test_route_batches_orders_by_canonical_key_and_counts_unroutable():
    assignment = {"a": 0, "b": 1}
    outboxes = [
        [wire("x", "b", 5.0, 2), wire("x", "a", 3.0, 1)],
        [wire("y", "b", 5.0, 1), wire("y", "ghost", 1.0, 1)],
    ]
    batches, unroutable = route_batches(outboxes, assignment, 2)
    assert unroutable == 1
    assert [m.recipient for m in batches[0]] == ["a"]
    # deliver_at ties break by sender name then per-sender seq.
    assert [(m.sender, m.seq) for m in batches[1]] == [("x", 2), ("y", 1)]
    assert [wire_sort_key(m) for m in batches[1]] == sorted(
        wire_sort_key(m) for m in batches[1])


# -- the shard router ----------------------------------------------------------


def test_shard_router_latency_is_stateless_and_within_lookahead():
    # The same (sender, recipient, seq) must get the same latency in any
    # process, and every latency must stay inside [window, 2*window).
    sim_a, sim_b = Simulator(seed=5), Simulator(seed=5)
    ra = ShardRouter(sim_a, seed=5, window=4.0)
    rb = ShardRouter(sim_b, seed=5, window=4.0)
    # Interleave unrelated traffic on router A only: B's draws for dev-x
    # must match anyway (a shared RNG stream would diverge here).
    for i in range(5):
        ra.send("noise", "elsewhere", "t", {})
    a = [ra.send("dev-x", "dev-y", "t", {"i": i}) for i in range(10)]
    b = [rb.send("dev-x", "dev-y", "t", {"i": i}) for i in range(10)]
    assert [m.deliver_at for m in a] == [m.deliver_at for m in b]
    for m in a:
        assert 4.0 <= m.deliver_at - m.sent_at < 8.0


def test_shard_router_delivers_injected_batch_in_order(sim):
    router = ShardRouter(sim, seed=1, window=2.0)
    got = []
    router.register("dst", lambda message: got.append(message.body["i"]))
    batch = [WireMessage("s", "dst", "t", {"i": i}, 0.0, 2.0, i + 1)
             for i in range(4)]
    router.inject(sorted(batch, key=wire_sort_key))
    sim.run(until=3.0)
    assert got == [0, 1, 2, 3]
    assert sim.metrics.counter("net.shard.delivered").value == 4


def test_shard_router_validation_and_loss(sim):
    with pytest.raises(Exception):
        ShardRouter(sim, seed=0, window=0.0)
    with pytest.raises(Exception):
        ShardRouter(sim, seed=0, window=1.0, jitter_frac=1.0)
    lossy = ShardRouter(sim, seed=0, window=1.0, loss_rate=1.0)
    assert lossy.send("a", "b", "t", {}) is None
    assert lossy.pending() == 0
    assert sim.metrics.counter("net.shard.dropped").value == 1


def test_crc01_range_and_stability():
    values = [crc01(7, "lat", "a", "b", seq) for seq in range(50)]
    assert all(0.0 <= v < 1.0 for v in values)
    assert values == [crc01(7, "lat", "a", "b", seq) for seq in range(50)]
    assert len(set(values)) > 40      # well spread


# -- merges --------------------------------------------------------------------


def result(shard, trace=(), summary=None, audit=()):
    return ShardResult(shard_index=shard, trace=list(trace),
                       summary=dict(summary or {}), audit=list(audit))


def test_merge_trace_is_stable_per_subject():
    r0 = result(0, trace=[(1.0, "a", "a first"), (1.0, "a", "a second")])
    r1 = result(1, trace=[(1.0, "b", "b line"), (0.5, "z", "z early")])
    lines = merge_trace([r0, r1])
    # time first, then subject; equal (time, subject) keeps shard order.
    assert lines == ["z early", "a first", "a second", "b line"]


def test_merge_summaries_sums_numbers_and_dicts_checks_flags():
    merged = merge_summaries([
        {"killed": 2, "rejected": {"bad-mac": 1}, "signed": True},
        {"killed": 3, "rejected": {"bad-mac": 2, "replayed": 1},
         "signed": True},
    ])
    assert merged == {"killed": 5,
                      "rejected": {"bad-mac": 3, "replayed": 1},
                      "signed": True}
    with pytest.raises(SimulationError):
        merge_summaries([{"signed": True}, {"signed": False}])


def test_audit_chain_digest_is_order_insensitive_but_content_sensitive():
    a = audit_chain_digest([result(0, audit=["x", "y"]), result(1, audit=["z"])])
    b = audit_chain_digest([result(0, audit=["z"]), result(1, audit=["y", "x"])])
    c = audit_chain_digest([result(0, audit=["x", "y", "w"])])
    assert a == b
    assert a != c


# -- BarrierTiming (satellite) -------------------------------------------------


def test_barrier_timing_accounts_busy_vs_wait():
    timing = BarrierTiming(2)
    timing.add_window([0.10, 0.30], window_wall=0.32)
    timing.add_window([0.20, 0.20], window_wall=0.25)
    assert timing.windows == 2
    assert timing.busy_sec == [pytest.approx(0.30), pytest.approx(0.50)]
    assert timing.barrier_sec[0] == pytest.approx(0.27)
    assert timing.barrier_frac(0) == pytest.approx(0.27 / 0.57)
    assert timing.imbalance() == pytest.approx(0.50 / 0.40)
    with pytest.raises(ValueError):
        timing.add_window([0.1], window_wall=0.2)
    with pytest.raises(ValueError):
        BarrierTiming(0)


def test_barrier_timing_publishes_gauges_for_exposition():
    timing = BarrierTiming(2)
    timing.add_window([0.1, 0.2], window_wall=0.2)
    registry = MetricsRegistry()
    timing.publish(registry)
    assert registry.gauge("shard.0.busy_sec").value == pytest.approx(0.1)
    assert registry.gauge("shard.0.barrier_sec").value == pytest.approx(0.1)
    assert registry.gauge("shard.1.barrier_frac").value == pytest.approx(0.0)
    assert registry.gauge("shard.imbalance").value == pytest.approx(0.2 / 0.15)
    assert registry.gauge("shard.windows").value == 1
    report = timing.report()
    assert report["windows"] == 1
    assert len(report["shards"]) == 2
