"""Unit tests for the discrete-event simulator."""

import pytest

from repro.errors import SimulationError
from repro.sim.simulator import Simulator


def test_clock_advances_with_events(sim):
    times = []
    sim.schedule(5.0, lambda: times.append(sim.now))
    sim.schedule(2.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [2.0, 5.0]
    assert sim.now == 5.0


def test_run_until_stops_before_future_events(sim):
    fired = []
    sim.schedule(10.0, lambda: fired.append(True))
    end = sim.run(until=5.0)
    assert end == 5.0
    assert fired == []
    # The event survives and fires on a later run.
    sim.run()
    assert fired == [True]


def test_run_until_advances_clock_even_when_queue_drains(sim):
    sim.schedule(1.0, lambda: None)
    end = sim.run(until=100.0)
    assert end == 100.0
    assert sim.now == 100.0


def test_schedule_in_past_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_periodic_task_fires_and_cancels(sim):
    ticks = []
    task = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    task.cancel()
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_periodic_start_after_override(sim):
    ticks = []
    sim.every(2.0, lambda: ticks.append(sim.now), start_after=0.5)
    sim.run(until=5.0)
    assert ticks == [0.5, 2.5, 4.5]


def test_periodic_requires_positive_interval(sim):
    with pytest.raises(SimulationError):
        sim.every(0.0, lambda: None)


def test_stop_requested_mid_run(sim):
    fired = []

    def first():
        fired.append("first")
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, lambda: fired.append("second"))
    sim.run()
    assert fired == ["first"]


def test_max_events_bound(sim):
    fired = []
    for index in range(10):
        sim.schedule(float(index + 1), lambda i=index: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_cancel_scheduled_event(sim):
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(True))
    sim.cancel(handle)
    sim.run()
    assert fired == []
    assert len(sim.queue) == 0


def test_record_stamps_current_time(sim):
    sim.schedule(3.0, lambda: sim.record("test.kind", "subject", value=1))
    sim.run()
    events = sim.trace.query("test.kind")
    assert len(events) == 1
    assert events[0].time == 3.0
    assert events[0].detail == {"value": 1}


def test_no_reentrant_run(sim):
    def recurse():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, recurse)
    sim.run()
