"""Unit tests for the discrete-event simulator."""

import pytest

from repro.errors import SimulationError
from repro.sim.simulator import Simulator


def test_clock_advances_with_events(sim):
    times = []
    sim.schedule(5.0, lambda: times.append(sim.now))
    sim.schedule(2.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [2.0, 5.0]
    assert sim.now == 5.0


def test_run_until_stops_before_future_events(sim):
    fired = []
    sim.schedule(10.0, lambda: fired.append(True))
    end = sim.run(until=5.0)
    assert end == 5.0
    assert fired == []
    # The event survives and fires on a later run.
    sim.run()
    assert fired == [True]


def test_run_until_advances_clock_even_when_queue_drains(sim):
    sim.schedule(1.0, lambda: None)
    end = sim.run(until=100.0)
    assert end == 100.0
    assert sim.now == 100.0


def test_schedule_in_past_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_periodic_task_fires_and_cancels(sim):
    ticks = []
    task = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    task.cancel()
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_periodic_start_after_override(sim):
    ticks = []
    sim.every(2.0, lambda: ticks.append(sim.now), start_after=0.5)
    sim.run(until=5.0)
    assert ticks == [0.5, 2.5, 4.5]


def test_periodic_requires_positive_interval(sim):
    with pytest.raises(SimulationError):
        sim.every(0.0, lambda: None)


def test_stop_requested_mid_run(sim):
    fired = []

    def first():
        fired.append("first")
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, lambda: fired.append("second"))
    sim.run()
    assert fired == ["first"]


def test_max_events_bound(sim):
    fired = []
    for index in range(10):
        sim.schedule(float(index + 1), lambda i=index: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_cancel_scheduled_event(sim):
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(True))
    sim.cancel(handle)
    sim.run()
    assert fired == []
    assert len(sim.queue) == 0


def test_record_stamps_current_time(sim):
    sim.schedule(3.0, lambda: sim.record("test.kind", "subject", value=1))
    sim.run()
    events = sim.trace.query("test.kind")
    assert len(events) == 1
    assert events[0].time == 3.0
    assert events[0].detail == {"value": 1}


def test_no_reentrant_run(sim):
    def recurse():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, recurse)
    sim.run()


# -- PeriodicTask edge cases --------------------------------------------------------


def test_periodic_cancel_during_fire_stops_rescheduling(sim):
    fired = []

    def tick():
        fired.append(sim.now)
        if len(fired) == 2:
            task.cancel()               # a callback cancelling its own task

    task = sim.every(1.0, tick)
    sim.run(until=10.0)
    assert fired == [1.0, 2.0]
    assert task.fired == 2
    assert len(sim.queue) == 0          # no dangling reschedule left behind


def test_periodic_start_after_zero_fires_immediately(sim):
    fired = []
    sim.schedule(3.0, lambda: None)     # move the clock off zero first
    sim.run(until=3.0)
    sim.every(2.0, lambda: fired.append(sim.now), start_after=0.0)
    sim.run(until=8.0)
    assert fired == [3.0, 5.0, 7.0]     # first fire at the current time


def test_periodic_start_after_cancel_is_inert(sim):
    fired = []
    task = sim.every(1.0, lambda: fired.append(sim.now))
    sim.run(until=2.5)
    task.cancel()
    task.start(1.0)                     # restart after cancel: documented no-op
    sim.run(until=10.0)
    assert fired == [1.0, 2.0]
    assert len(sim.queue) == 0


def test_periodic_double_cancel_is_idempotent(sim):
    task = sim.every(1.0, lambda: None)
    task.cancel()
    task.cancel()
    sim.run(until=5.0)
    assert task.fired == 0
    assert len(sim.queue) == 0


# -- Supervisor kill-hook ordering --------------------------------------------------


def test_kill_hook_fires_once_at_threshold_in_order():
    sim = Simulator(seed=0, supervision="kill-device", kill_threshold=2)
    log = []

    def boom(tag):
        log.append(("boom", sim.now, tag))
        raise RuntimeError(tag)

    sim.supervisor.register_kill_hook(
        "dev", lambda reason: log.append(("kill", sim.now, reason)))
    for at, tag in ((1.0, "first"), (2.0, "second"), (3.0, "third")):
        sim.schedule(at, boom, tag, label=f"dev:task-{tag}")
    sim.run(until=10.0)

    kills = [entry for entry in log if entry[0] == "kill"]
    assert len(kills) == 1                       # once, despite a third crash
    assert kills[0][1] == 2.0                    # exactly at the threshold crash
    assert "2 crash(es)" in kills[0][2]
    # The hook ran *after* the threshold crash was recorded, so its reason
    # reflects the full count, and later crashes still isolate cleanly.
    assert log.index(("boom", 2.0, "second")) < log.index(kills[0])
    assert sim.supervisor.crash_counts["dev"] == 3
    assert sim.metrics.value("sim.crashes") == 3
    assert sim.metrics.value("sim.crash_kills") == 1


def test_kill_hook_crash_recording_precedes_hook_side_effects():
    # The crash that trips the threshold must be visible in the trace
    # before the kill record: audits reconstruct "crash then kill".
    sim = Simulator(seed=0, supervision="kill-device", kill_threshold=1)
    sim.supervisor.register_kill_hook("dev", lambda reason: None)
    sim.schedule(1.0, lambda: (_ for _ in ()).throw(RuntimeError("x")),
                 label="dev:glitch")
    sim.run(until=5.0)
    kinds = [event.kind for event in sim.trace.query()]
    assert kinds.index("sim.crash") < kinds.index("sim.crash_kill")


def test_kill_hooks_are_per_owner():
    sim = Simulator(seed=0, supervision="kill-device", kill_threshold=1)
    killed = []
    for owner in ("a", "b"):
        sim.supervisor.register_kill_hook(
            owner, lambda reason, owner=owner: killed.append(owner))

    def boom():
        raise RuntimeError("x")

    sim.schedule(1.0, boom, label="a:task")
    sim.schedule(2.0, boom, label="b:task")
    sim.schedule(3.0, boom, label="a:task")      # a already killed: no re-fire
    sim.run(until=10.0)
    assert killed == ["a", "b"]


# -- profiling hook -----------------------------------------------------------------


def test_profiler_attributes_time_per_label(sim):
    from repro.sim.profiling import profile_run

    sim.schedule(1.0, lambda: sum(range(200)), label="dev:fast")
    sim.schedule(2.0, lambda: sum(range(5000)), label="dev:slow")
    sim.schedule(3.0, lambda: None, label="dev:fast")
    with profile_run(sim) as profiler:
        sim.run(until=10.0)
    assert sim.profiler is None                  # restored on exit
    assert profiler.events == 3
    assert profiler.per_label["dev:fast"][0] == 2
    assert profiler.per_label["dev:slow"][0] == 1
    assert profiler.busy_time > 0 and profiler.wall_time >= profiler.busy_time
    report = profiler.report()
    assert report["events"] == 3
    assert {row["label"] for row in report["top_labels"]} == {"dev:fast", "dev:slow"}
    assert profiler.events_per_sec() > 0
    assert "ev/s" in profiler.format_report()


def test_profiler_accounts_crashing_callbacks():
    from repro.sim.profiling import profile_run

    sim = Simulator(seed=0, supervision="isolate")

    def boom():
        raise RuntimeError("x")

    sim.schedule(1.0, boom, label="dev:boom")
    with profile_run(sim) as profiler:
        sim.run(until=5.0)
    assert profiler.per_label["dev:boom"][0] == 1   # timed despite the crash
