"""Unit tests for metric primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g", initial=5.0)
        gauge.add(-2.0)
        assert gauge.value == 3.0
        gauge.set(10.0)
        assert gauge.value == 10.0


class TestHistogram:
    def test_basic_stats(self):
        histogram = Histogram("h")
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == 2.5
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.quantile(0.5) == 2.5

    def test_quantile_bounds(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Histogram("h").observe(float("nan"))

    def test_empty_histogram_quantile_is_none_not_zero(self):
        # A silent 0.0 would make an empty RTT histogram look perfectly
        # healthy to SLI consumers; "no data" must stay distinguishable.
        histogram = Histogram("h")
        assert histogram.mean == 0.0
        assert histogram.quantile(0.9) is None
        assert histogram.snapshot()["p95"] is None
        histogram.observe(3.0)
        assert histogram.quantile(0.9) == 3.0

    def test_quantile_rejects_negative(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)

    def test_single_observation_answers_every_quantile(self):
        histogram = Histogram("h")
        histogram.observe(7.0)
        assert histogram.quantile(0.0) == 7.0
        assert histogram.quantile(0.5) == 7.0
        assert histogram.quantile(1.0) == 7.0

    def test_extreme_quantiles_hit_min_and_max(self):
        histogram = Histogram("h")
        for value in (5.0, 1.0, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 5.0

    def test_interpolation_between_adjacent_samples(self):
        histogram = Histogram("h")
        histogram.observe(0.0)
        histogram.observe(10.0)
        assert histogram.quantile(0.25) == 2.5
        assert histogram.quantile(0.5) == 5.0

    def test_duplicate_values_do_not_interpolate_drift(self):
        histogram = Histogram("h")
        for value in (2.0, 2.0, 2.0, 8.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 2.0
        assert histogram.quantile(1.0) == 8.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=100))
    def test_quantiles_are_monotone(self, values):
        histogram = Histogram("h")
        for value in values:
            histogram.observe(value)
        quantiles = [histogram.quantile(q / 10) for q in range(11)]
        for lower, higher in zip(quantiles, quantiles[1:]):
            assert higher >= lower - 1e-9
        assert quantiles[0] == histogram.min
        assert quantiles[-1] == histogram.max


class TestTimeSeries:
    def test_records_in_order(self):
        series = TimeSeries("ts")
        series.record(0.0, 1.0)
        series.record(1.0, 3.0)
        assert series.last() == 3.0
        assert series.peak() == 3.0
        with pytest.raises(ValueError):
            series.record(0.5, 2.0)

    def test_time_above_step_interpolation(self):
        series = TimeSeries("ts")
        series.record(0.0, 5.0)   # above until t=2
        series.record(2.0, 1.0)   # below until t=3
        series.record(3.0, 10.0)  # above but no following sample
        assert series.time_above(4.0) == 2.0


class TestRegistry:
    def test_get_or_create_caches(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_snapshot_and_value(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("level").set(7.0)
        snapshot = registry.snapshot()
        assert snapshot["hits"]["value"] == 3
        assert registry.value("level") == 7.0
        assert registry.value("missing", default=-1.0) == -1.0
