"""Unit tests for the trace recorder."""

from repro.sim.tracing import TraceEvent, TraceRecorder


def test_record_and_query_by_kind_prefix():
    recorder = TraceRecorder()
    recorder.record(1.0, "action.executed", "dev1", action="patrol")
    recorder.record(2.0, "action.vetoed", "dev1")
    recorder.record(3.0, "net.dropped", "dev2")
    assert recorder.count("action") == 2
    assert recorder.count("action.executed") == 1
    assert recorder.count("net") == 1
    # Prefix matching is dotted, not substring.
    assert recorder.count("act") == 0


def test_query_by_subject_and_time_window():
    recorder = TraceRecorder()
    for time in range(5):
        recorder.record(float(time), "tick", "dev1")
    events = recorder.query("tick", subject="dev1", since=1.0, until=3.0)
    assert [event.time for event in events] == [1.0, 2.0, 3.0]
    assert recorder.query("tick", subject="other") == []


def test_capacity_drops_and_counts():
    recorder = TraceRecorder(capacity=2)
    for time in range(5):
        recorder.record(float(time), "tick", "dev")
    assert len(recorder.events) == 2
    assert recorder.dropped == 3


def test_listener_sees_every_event_even_when_dropped():
    recorder = TraceRecorder(capacity=1)
    seen = []
    recorder.subscribe(seen.append)
    recorder.record(0.0, "a", "s")
    recorder.record(1.0, "b", "s")
    assert len(seen) == 2


def test_matches_helper():
    event = TraceEvent(0.0, "safeguard.veto.preaction", "dev")
    assert event.matches("safeguard")
    assert event.matches("safeguard.veto")
    assert not event.matches("safe")


def test_subjects_and_clear():
    recorder = TraceRecorder()
    recorder.record(0.0, "k", "a")
    recorder.record(0.0, "k", "b")
    assert recorder.subjects() == {"a", "b"}
    recorder.clear()
    assert recorder.events == []
    assert recorder.dropped == 0


# -- perf modes: disabled and sampled recording -------------------------------------


def test_disabled_recorder_keeps_nothing_and_skips_listeners():
    from repro.sim.tracing import TraceRecorder

    seen = []
    recorder = TraceRecorder(enabled=False)
    recorder.subscribe(seen.append)
    assert recorder.record(1.0, "a.b", "s") is None
    assert recorder.events == [] and seen == []
    assert recorder.dropped == 1


def test_sampled_recorder_keeps_first_of_each_stride():
    from repro.sim.tracing import TraceRecorder

    recorder = TraceRecorder(sample_every=3)
    for index in range(7):
        recorder.record(float(index), "tick", "s", index=index)
    kept = [event.detail["index"] for event in recorder.events]
    assert kept == [0, 3, 6]                     # deterministic stride, no RNG
    assert recorder.dropped == 4


def test_sample_every_validation():
    import pytest

    from repro.sim.tracing import TraceRecorder

    with pytest.raises(ValueError):
        TraceRecorder(sample_every=0)


def test_simulator_trace_options_flow_through():
    from repro.sim.simulator import Simulator

    sim = Simulator(seed=0, trace_enabled=False)
    sim.record("x", "y")
    assert sim.trace.events == []
    sim = Simulator(seed=0, trace_sample_every=2)
    for _ in range(4):
        sim.record("x", "y")
    assert len(sim.trace.events) == 2


# -- drop accounting: every dropped event names its cause ---------------------------


def test_drop_causes_are_counted_separately():
    disabled = TraceRecorder(enabled=False)
    disabled.record(0.0, "k", "s")
    assert disabled.dropped_disabled == 1
    assert disabled.dropped_sampled == 0
    assert disabled.dropped_capacity == 0
    assert disabled.dropped == 1

    sampled = TraceRecorder(sample_every=2)
    for index in range(4):
        sampled.record(float(index), "k", "s")
    assert sampled.dropped_sampled == 2
    assert sampled.dropped_disabled == 0
    assert sampled.dropped == 2

    capped = TraceRecorder(capacity=1)
    capped.record(0.0, "k", "s")
    capped.record(1.0, "k", "s")
    assert capped.dropped_capacity == 1
    assert capped.dropped == 1


def test_dropped_is_a_read_only_total():
    import pytest

    recorder = TraceRecorder(enabled=False)
    recorder.record(0.0, "k", "s")
    with pytest.raises(AttributeError):
        recorder.dropped = 0


def test_stats_snapshot_breaks_out_causes():
    recorder = TraceRecorder(capacity=1, sample_every=2)
    for index in range(5):
        recorder.record(float(index), "k", "s")
    stats = recorder.stats()
    assert stats["events"] == 1
    assert stats["dropped_sampled"] == 2           # indices 1 and 3
    assert stats["dropped_capacity"] == 2          # indices 2 and 4
    assert stats["dropped_disabled"] == 0
    assert stats["dropped"] == 4
    assert stats["enabled"] is True
    assert stats["sample_every"] == 2


def test_clear_resets_every_drop_counter():
    recorder = TraceRecorder(enabled=False)
    recorder.record(0.0, "k", "s")
    recorder.clear()
    assert recorder.dropped == 0
    assert recorder.stats()["dropped_disabled"] == 0
