"""Profiler envelope accounting, reuse across runs, and report formats."""

from __future__ import annotations

import pytest

from repro.sim.profiling import Profiler, profile_run
from repro.sim.simulator import Simulator


def _ticking_sim() -> Simulator:
    sim = Simulator(seed=0)
    sim.every(1.0, lambda: None, label="dev1:tick")
    return sim


class TestProfiler:
    def test_add_accumulates_per_label(self):
        profiler = Profiler()
        profiler.add("a", 0.25)
        profiler.add("a", 0.25)
        profiler.add("b", 1.0)
        assert profiler.events == 3
        assert profiler.busy_time == 1.5
        assert profiler.per_label["a"] == [2, 0.5]

    def test_double_start_raises(self):
        profiler = Profiler()
        profiler.start()
        with pytest.raises(RuntimeError):
            profiler.start()
        profiler.stop()
        profiler.start()               # legal again after stop()
        profiler.stop()

    def test_stop_without_start_is_harmless(self):
        profiler = Profiler()
        profiler.stop()
        assert profiler.wall_time == 0.0

    def test_events_per_sec_zero_without_envelope(self):
        profiler = Profiler()
        profiler.add("a", 0.1)
        assert profiler.events_per_sec() == 0.0

    def test_top_labels_ordered_by_cost_then_name(self):
        profiler = Profiler()
        profiler.add("cheap", 0.1)
        profiler.add("dear", 1.0)
        profiler.add("also-dear", 1.0)
        rows = profiler.top_labels()
        assert [row[0] for row in rows] == ["also-dear", "dear", "cheap"]

    def test_format_report_mentions_labels_and_rate(self):
        profiler = Profiler()
        profiler.add("dev1:tick", 0.5)
        profiler.add("", 0.1)
        profiler.start()
        profiler.stop()
        text = profiler.format_report()
        assert "events: 2" in text
        assert "dev1:tick" in text
        assert "<unlabelled>" in text
        assert "ev/s" in text


class TestProfileRun:
    def test_fresh_profiler_per_invocation_by_default(self):
        sim = _ticking_sim()
        with profile_run(sim) as first:
            sim.run(until=3.0)
        with profile_run(sim) as second:
            sim.run(until=6.0)
        assert first is not second
        assert first.events == 3           # fires at t=1,2,3
        assert second.events == 3          # fires at t=4,5,6

    def test_reusing_a_profiler_accumulates_across_invocations(self):
        """Regression: passing the same profiler to several profile_run
        calls must *sum* envelopes, not silently discard the open one."""
        sim = _ticking_sim()
        profiler = Profiler()
        with profile_run(sim, profiler) as handle:
            sim.run(until=3.0)
        wall_after_first = profiler.wall_time
        assert handle is profiler
        assert wall_after_first > 0.0
        with profile_run(sim, profiler):
            sim.run(until=6.0)
        assert profiler.events == 6        # 3 + 3, both runs accounted
        assert profiler.wall_time > wall_after_first
        assert profiler.per_label["dev1:tick"][0] == 6

    def test_overlapping_envelopes_on_one_profiler_raise(self):
        sim = _ticking_sim()
        profiler = Profiler()
        with profile_run(sim, profiler):
            with pytest.raises(RuntimeError):
                with profile_run(sim, profiler):
                    pass  # pragma: no cover

    def test_previous_profiler_restored_on_exit(self):
        sim = _ticking_sim()
        assert sim.profiler is None
        with profile_run(sim):
            assert sim.profiler is not None
        assert sim.profiler is None

    def test_disabled_hook_fast_path_records_nothing(self):
        sim = _ticking_sim()
        sim.run(until=5.0)                 # no profiler attached
        assert sim.profiler is None
        with profile_run(sim) as profiler:
            pass                           # attached but nothing ran
        assert profiler.events == 0
        assert profiler.busy_time == 0.0

    def test_report_dict_shape(self):
        sim = _ticking_sim()
        with profile_run(sim) as profiler:
            sim.run(until=2.0)
        report = profiler.report(limit=1)
        assert report["events"] == 2       # fires at t=1, 2
        assert len(report["top_labels"]) == 1
        assert report["top_labels"][0]["label"] == "dev1:tick"
        assert report["events_per_sec"] > 0.0
