"""Unit tests for the chaos harness: supervision, livelock guard,
fault plans/injection, and determinism under faults (E17)."""

import json

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.network import Network
from repro.sim.faults import (
    CRASH_REASON,
    ClockSkew,
    DeviceCrash,
    FaultInjector,
    FaultPlan,
    HandlerGlitch,
    InjectedFault,
    LinkDegradation,
    NetworkPartition,
)
from repro.sim.simulator import SUPERVISION_POLICIES, Simulator
from repro.types import DeviceStatus

from tests.conftest import make_test_device


# -- supervision policies ----------------------------------------------------------


def boom():
    raise RuntimeError("boom")


def test_propagate_policy_reraises_by_default():
    sim = Simulator(seed=1)
    sim.schedule(1.0, boom, label="d1:tick")
    with pytest.raises(RuntimeError):
        sim.run()


def test_isolate_policy_contains_crashes_and_counts_them():
    sim = Simulator(seed=1, supervision="isolate")
    fired = []
    sim.schedule(1.0, boom, label="d1:tick")
    sim.schedule(2.0, boom, label="d1:tick")
    sim.schedule(3.0, lambda: fired.append(sim.now), label="d2:tick")
    sim.run()
    assert fired == [3.0]                       # the fleet survived
    assert sim.supervisor.crash_counts == {"d1": 2}
    assert sim.metrics.value("sim.crashes") == 2
    assert sim.trace.count("sim.crash") == 2


def test_kill_device_policy_invokes_hook_at_threshold():
    sim = Simulator(seed=1, supervision="kill-device", kill_threshold=2)
    device = make_test_device("d1")
    sim.supervisor.register_kill_hook("d1", device.deactivate)
    sim.schedule(1.0, boom, label="d1:tick")
    sim.schedule(2.0, boom, label="d1:tick")
    sim.schedule(3.0, boom, label="d1:tick")    # past threshold: no double kill
    sim.run()
    assert device.status == DeviceStatus.DEACTIVATED
    assert "supervisor" in device.deactivation_reason
    assert sim.metrics.value("sim.crash_kills") == 1


def test_unlabelled_crashes_fall_under_anonymous_owner():
    sim = Simulator(seed=1, supervision="isolate")
    sim.schedule(1.0, boom)
    sim.run()
    assert sim.supervisor.crash_counts == {"<anonymous>": 1}


def test_unknown_supervision_policy_rejected():
    with pytest.raises(SimulationError):
        Simulator(supervision="restart")
    assert "propagate" in SUPERVISION_POLICIES


# -- livelock guard ----------------------------------------------------------------


def test_livelock_guard_raises_with_offending_labels():
    sim = Simulator(seed=1, livelock_threshold=50)

    def respawn():
        sim.schedule(0.0, respawn, label="d7:spin")

    sim.schedule(1.0, respawn, label="d7:spin")
    with pytest.raises(SimulationError, match="livelock.*d7:spin"):
        sim.run()


def test_livelock_guard_resets_when_time_advances():
    sim = Simulator(seed=1, livelock_threshold=5)
    for _ in range(3):        # 3 zero-delay events per tick stays legal
        sim.every(1.0, lambda: None, label="d1:tick")
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_livelock_guard_disabled_with_none():
    sim = Simulator(seed=1, livelock_threshold=None)
    count = [0]

    def respawn():
        count[0] += 1
        if count[0] < 500:    # would trip the default guard's intent
            sim.schedule(0.0, respawn, label="spin")

    sim.schedule(1.0, respawn, label="spin")
    sim.run()
    assert count[0] == 500

    with pytest.raises(SimulationError):
        Simulator(livelock_threshold=0)


# -- fault plans -------------------------------------------------------------------


def test_fault_plan_validates_specs():
    with pytest.raises(ConfigurationError):
        FaultPlan(faults=("not a fault",))
    plan = FaultPlan(faults=(DeviceCrash("d1", at=5.0),))
    assert len(plan) == 1
    assert plan.describe()[0]["fault"] == "DeviceCrash"


def test_random_plan_is_deterministic_in_seed():
    ids = [f"d{i}" for i in range(8)]
    plan_a = FaultPlan.random(seed=9, device_ids=ids, horizon=100.0,
                              intensity=0.7)
    plan_b = FaultPlan.random(seed=9, device_ids=ids, horizon=100.0,
                              intensity=0.7)
    plan_c = FaultPlan.random(seed=10, device_ids=ids, horizon=100.0,
                              intensity=0.7)
    assert plan_a.describe() == plan_b.describe()
    assert plan_a.describe() != plan_c.describe()
    assert len(plan_a) > 0
    with pytest.raises(ConfigurationError):
        FaultPlan.random(seed=1, device_ids=ids, horizon=100.0, intensity=1.5)


def test_zero_intensity_plan_is_empty():
    assert len(FaultPlan.random(seed=1, device_ids=["d1"], horizon=10.0,
                                intensity=0.0)) == 0
    assert len(FaultPlan.none()) == 0


# -- the injector ------------------------------------------------------------------


def build_fleet(n=2, supervision="isolate"):
    sim = Simulator(seed=4, supervision=supervision)
    network = Network(sim, base_latency=0.1, jitter=0.0)
    devices = {f"d{i}": make_test_device(f"d{i}") for i in range(n)}
    for device_id in devices:
        network.register(device_id, lambda message: None)
    return sim, network, devices


def test_crash_and_restart_cycle():
    sim, network, devices = build_fleet()
    injector = FaultInjector(sim, devices, network=network)
    injector.apply(FaultPlan(faults=(
        DeviceCrash("d0", at=5.0, restart_after=3.0),
    )))
    sim.run(until=6.0)
    assert devices["d0"].status == DeviceStatus.DEACTIVATED
    assert devices["d0"].deactivation_reason == CRASH_REASON
    assert network.is_suspended("d0")
    sim.run(until=10.0)
    assert devices["d0"].status == DeviceStatus.ACTIVE
    assert not network.is_suspended("d0")
    assert injector.crashes == 1 and injector.restarts == 1


def test_restart_never_undoes_a_watchdog_kill():
    sim, network, devices = build_fleet()
    injector = FaultInjector(sim, devices, network=network)
    injector.apply(FaultPlan(faults=(
        DeviceCrash("d0", at=5.0, restart_after=3.0),
    )))
    sim.run(until=6.0)
    # Between crash and scheduled restart, the watchdog (here: by hand)
    # re-kills the device for cause; the fault layer must not revive it.
    devices["d0"].reactivate()
    devices["d0"].deactivate("watchdog: attestation")
    sim.run(until=10.0)
    assert devices["d0"].status == DeviceStatus.DEACTIVATED
    assert devices["d0"].deactivation_reason == "watchdog: attestation"


def test_glitch_raises_under_propagate_and_is_contained_under_isolate():
    sim, network, devices = build_fleet(supervision="propagate")
    FaultInjector(sim, devices, network=network).apply(FaultPlan(faults=(
        HandlerGlitch("d0", at=2.0, message="zap"),
    )))
    with pytest.raises(InjectedFault):
        sim.run()

    sim, network, devices = build_fleet(supervision="isolate")
    FaultInjector(sim, devices, network=network).apply(FaultPlan(faults=(
        HandlerGlitch("d0", at=2.0, message="zap"),
    )))
    sim.run(until=5.0)
    assert sim.supervisor.crash_counts == {"d0": 1}


def test_link_degradation_window_restores_base_parameters():
    sim, network, devices = build_fleet()
    FaultInjector(sim, devices, network=network).apply(FaultPlan(faults=(
        LinkDegradation(at=2.0, until=6.0, loss_rate=0.9, latency_factor=3.0),
    )))
    sim.run(until=3.0)
    assert network.loss_rate == 0.9
    assert network.base_latency == pytest.approx(0.3)
    sim.run(until=7.0)
    assert network.loss_rate == 0.0
    assert network.base_latency == pytest.approx(0.1)


def test_partition_blocks_cross_group_delivery_then_heals():
    sim, network, devices = build_fleet(n=3)
    received = []
    network.replace_handler("d1", lambda message: received.append(sim.now))
    FaultInjector(sim, devices, network=network).apply(FaultPlan(faults=(
        NetworkPartition(at=2.0, heal_at=8.0, groups=(("d0",),)),
    )))
    sim.schedule(3.0, lambda: network.send("d0", "d1", "ping", {}))
    sim.schedule(9.0, lambda: network.send("d0", "d1", "ping", {}))
    sim.run(until=12.0)
    assert len(received) == 1 and received[0] > 9.0
    assert sim.metrics.value("net.unreachable") == 1


def test_clock_skew_offsets_device_clock_only():
    sim, network, devices = build_fleet()
    FaultInjector(sim, devices, network=network).apply(FaultPlan(faults=(
        ClockSkew("d0", at=2.0, offset=-1.5),
    )))
    baseline = devices["d1"].clock()
    sim.run(until=5.0)
    assert devices["d0"].clock() == pytest.approx(sim.now - 1.5)
    assert devices["d1"].clock() == baseline    # others untouched


def test_link_faults_without_network_rejected():
    sim = Simulator(seed=1)
    injector = FaultInjector(sim, {})
    with pytest.raises(ConfigurationError):
        injector.apply(FaultPlan(faults=(
            LinkDegradation(at=1.0, until=2.0),
        )))


# -- determinism under faults (the satellite property) ------------------------------


def run_chaos_scenario(seed: int, plan_seed: int) -> tuple:
    """A small end-to-end run; returns (trace bytes, metrics bytes)."""
    from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
    from repro.scenarios.harness import SafeguardConfig

    ids = [f"{org}-{kind}{i}" for org in ("us", "uk")
           for kind, count in (("drone", 4), ("mule", 2))
           for i in range(count)]
    plan = FaultPlan.random(seed=plan_seed, device_ids=ids, horizon=60.0,
                            intensity=0.7)
    scenario = ConfrontationScenario(
        seed=seed, config=SafeguardConfig.only(watchdog=True),
        threats=ThreatConfig(worm=True, worm_time=10.0),
        supervision="isolate", safety_transport="reliable", fault_plan=plan,
    )
    scenario.run(until=60.0)
    trace = "\n".join(
        f"{event.time!r} {event.kind} {event.subject} "
        f"{json.dumps(event.detail, sort_keys=True, default=repr)}"
        for event in scenario.sim.trace.query()
    ).encode()
    metrics = json.dumps(scenario.sim.metrics.snapshot(), sort_keys=True,
                         default=repr).encode()
    return trace, metrics


def test_same_seed_and_plan_replay_byte_identically():
    trace_a, metrics_a = run_chaos_scenario(seed=11, plan_seed=21)
    trace_b, metrics_b = run_chaos_scenario(seed=11, plan_seed=21)
    assert trace_a == trace_b
    assert metrics_a == metrics_b
    assert len(trace_a) > 0


def test_different_seeds_diverge():
    trace_a, _ = run_chaos_scenario(seed=11, plan_seed=21)
    trace_c, _ = run_chaos_scenario(seed=12, plan_seed=21)
    trace_d, _ = run_chaos_scenario(seed=11, plan_seed=22)
    assert trace_a != trace_c      # different scenario seed
    assert trace_a != trace_d      # different fault-plan seed


# -- journal corruption faults -----------------------------------------------------


def test_random_plan_can_include_journal_corruption():
    from repro.sim.faults import JournalCorruption

    ids = [f"d{i}" for i in range(8)]
    plan = FaultPlan.random(seed=9, device_ids=ids, horizon=100.0,
                            intensity=0.9, corruption_fraction=1.0)
    corruptions = [f for f in plan.faults
                   if isinstance(f, JournalCorruption)]
    assert corruptions
    for fault in corruptions:
        assert fault.device_id in ids
        assert 0.0 < fault.at < 100.0
        # Exactly one damage mode per spec: torn tail or a bit flip.
        assert (fault.drop_bytes > 0) != (fault.flip_bit is not None)
    # The default stays corruption-free (historical plans unchanged).
    default = FaultPlan.random(seed=9, device_ids=ids, horizon=100.0,
                               intensity=0.9)
    assert not any(isinstance(f, JournalCorruption) for f in default.faults)


def test_corruption_draws_leave_existing_faults_byte_identical():
    """The corruption block draws *after* every historical draw, so
    turning it on cannot shift the crashes/glitches/partitions a seed
    produces — E17 arms with and without it suffer the same storm."""
    from repro.sim.faults import JournalCorruption

    ids = [f"d{i}" for i in range(8)]
    without = FaultPlan.random(seed=9, device_ids=ids, horizon=100.0,
                               intensity=0.9)
    with_corruption = FaultPlan.random(seed=9, device_ids=ids, horizon=100.0,
                                       intensity=0.9, corruption_fraction=0.5)
    kept = [entry for entry in with_corruption.describe()
            if entry["fault"] != "JournalCorruption"]
    assert kept == without.describe()
    assert len(with_corruption) > len(without)


def test_journal_corruption_without_durability_rejected():
    from repro.sim.faults import JournalCorruption

    sim = Simulator(seed=1)
    injector = FaultInjector(sim, {})
    with pytest.raises(ConfigurationError):
        injector.apply(FaultPlan(faults=(
            JournalCorruption("d0", at=1.0, drop_bytes=4),
        )))


def test_journal_corruption_damages_only_the_victims_blobs():
    from repro.sim.faults import JournalCorruption
    from repro.store import DurabilityManager, Journal

    sim, network, devices = build_fleet()
    durability = DurabilityManager(sim)
    for device_id in devices:
        journal = Journal(durability.storage, f"{device_id}.audit")
        for n in range(4):
            journal.append({"n": n})
    intact = {device_id: durability.storage.read(f"{device_id}.audit")
              for device_id in devices}
    injector = FaultInjector(sim, devices, network=network,
                             durability=durability)
    injector.apply(FaultPlan(faults=(
        JournalCorruption("d0", at=1.0, drop_bytes=5),
    )))
    sim.run(until=2.0)
    assert durability.storage.read("d0.audit") == intact["d0"][:-5]
    assert durability.storage.read("d1.audit") == intact["d1"]
    assert sim.metrics.value("faults.journal_corruptions") == 1
    (event,) = sim.trace.query("fault.journal_corrupt")
    assert event.subject == "d0"
    assert event.detail["blobs"] == ["d0.audit"]
