"""Unit tests for the simulation event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.event_queue import EventQueue


def test_pop_orders_by_time():
    queue = EventQueue()
    fired = []
    queue.push(3.0, fired.append, ("c",))
    queue.push(1.0, fired.append, ("a",))
    queue.push(2.0, fired.append, ("b",))
    while (event := queue.pop()) is not None:
        event.callback(*event.args)
    assert fired == ["a", "b", "c"]


def test_same_time_orders_by_priority_then_insertion():
    queue = EventQueue()
    order = []
    queue.push(1.0, order.append, ("low-first",), priority=1)
    queue.push(1.0, order.append, ("high",), priority=0)
    queue.push(1.0, order.append, ("low-second",), priority=1)
    while (event := queue.pop()) is not None:
        event.callback(*event.args)
    assert order == ["high", "low-first", "low-second"]


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    keep = queue.push(1.0, lambda: None, label="keep")
    drop = queue.push(0.5, lambda: None, label="drop")
    drop.cancel()
    queue.note_cancelled()
    assert len(queue) == 1
    assert queue.pop() is keep
    assert queue.pop() is None


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(0.5, lambda: None)
    queue.push(2.0, lambda: None)
    first.cancel()
    queue.note_cancelled()
    assert queue.peek_time() == 2.0


def test_len_tracks_live_events():
    queue = EventQueue()
    assert len(queue) == 0
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    queue.pop()
    assert len(queue) == 1


def test_rejects_nan_and_inf_times():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.push(float("nan"), lambda: None)
    with pytest.raises(SimulationError):
        queue.push(float("inf"), lambda: None)


def test_clear_empties_queue():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert queue.pop() is None


def test_pop_until_respects_horizon_and_drains_cancelled():
    queue = EventQueue()
    early = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    late = queue.push(5.0, lambda: None)
    early.cancel()
    # The cancelled head is drained; 2.0 is within the horizon.
    event = queue.pop_until(3.0)
    assert event is not None and event.time == 2.0
    # 5.0 is beyond the horizon: None, but the event stays queued.
    assert queue.pop_until(3.0) is None
    assert len(queue) == 1
    assert queue.pop_until(10.0) is late


def test_live_count_invariant_under_interleaved_operations():
    """The satellite accounting fix: ``len(queue)`` must equal the number
    of live (un-popped, un-cancelled) events through *any* interleaving of
    push / cancel / double-cancel / peek / pop — the historical drift came
    from cancel paths that bypassed the queue's bookkeeping and from
    peeks compacting cancelled heads after the count was adjusted."""
    import random

    rng = random.Random(1234)
    queue = EventQueue()
    handles = []
    live = set()
    for step in range(2000):
        op = rng.random()
        if op < 0.45 or not handles:
            handle = queue.push(rng.uniform(0.0, 100.0), lambda: None)
            handles.append(handle)
            live.add(id(handle))
        elif op < 0.70:
            victim = rng.choice(handles)
            victim.cancel()
            live.discard(id(victim))
            if rng.random() < 0.3:
                victim.cancel()                  # double-cancel is a no-op
        elif op < 0.85:
            queue.peek_time()                    # compacts cancelled heads
        else:
            popped = queue.pop()
            if popped is not None:
                assert not popped.cancelled
                live.discard(id(popped))
        assert len(queue) == len(live), f"drift at step {step}"
    # Drain: exactly the live events come out, then the queue is empty.
    drained = 0
    while queue.pop() is not None:
        drained += 1
    assert drained == len(live)
    assert len(queue) == 0


def test_cancel_after_pop_does_not_corrupt_count():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.pop() is first
    first.cancel()                               # popped: cancel is inert
    assert len(queue) == 1
    assert queue.peek_time() == 2.0


def test_clear_cancels_outstanding_handles():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None)
    queue.clear()
    assert handle.cancelled
    assert len(queue) == 0
    handle.cancel()                              # idempotent after clear
    assert len(queue) == 0
