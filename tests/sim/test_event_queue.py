"""Unit tests for the simulation event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.event_queue import EventQueue


def test_pop_orders_by_time():
    queue = EventQueue()
    fired = []
    queue.push(3.0, fired.append, ("c",))
    queue.push(1.0, fired.append, ("a",))
    queue.push(2.0, fired.append, ("b",))
    while (event := queue.pop()) is not None:
        event.callback(*event.args)
    assert fired == ["a", "b", "c"]


def test_same_time_orders_by_priority_then_insertion():
    queue = EventQueue()
    order = []
    queue.push(1.0, order.append, ("low-first",), priority=1)
    queue.push(1.0, order.append, ("high",), priority=0)
    queue.push(1.0, order.append, ("low-second",), priority=1)
    while (event := queue.pop()) is not None:
        event.callback(*event.args)
    assert order == ["high", "low-first", "low-second"]


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    keep = queue.push(1.0, lambda: None, label="keep")
    drop = queue.push(0.5, lambda: None, label="drop")
    drop.cancel()
    queue.note_cancelled()
    assert len(queue) == 1
    assert queue.pop() is keep
    assert queue.pop() is None


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(0.5, lambda: None)
    queue.push(2.0, lambda: None)
    first.cancel()
    queue.note_cancelled()
    assert queue.peek_time() == 2.0


def test_len_tracks_live_events():
    queue = EventQueue()
    assert len(queue) == 0
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    queue.pop()
    assert len(queue) == 1


def test_rejects_nan_and_inf_times():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.push(float("nan"), lambda: None)
    with pytest.raises(SimulationError):
        queue.push(float("inf"), lambda: None)


def test_clear_empties_queue():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert queue.pop() is None
