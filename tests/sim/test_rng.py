"""Unit tests for seeded RNG substreams."""

from hypothesis import given, strategies as st

from repro.sim.rng import SeededRNG


def test_same_seed_same_draws():
    a = SeededRNG(seed=7)
    b = SeededRNG(seed=7)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = SeededRNG(seed=7)
    b = SeededRNG(seed=8)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_substreams_are_independent_of_sibling_consumption():
    """Consuming one substream must not perturb another — the property the
    E10 ablations rely on (toggling a safeguard must not shift attacks)."""
    root_a = SeededRNG(seed=1)
    root_b = SeededRNG(seed=1)
    # In A, drain an unrelated stream first.
    unrelated = root_a.stream("safeguards")
    for _ in range(100):
        unrelated.random()
    attacks_a = [root_a.stream("attacks").random() for _ in range(10)]
    attacks_b = [root_b.stream("attacks").random() for _ in range(10)]
    assert attacks_a == attacks_b


def test_stream_is_cached():
    root = SeededRNG(seed=3)
    assert root.stream("x") is root.stream("x")


def test_chance_extremes():
    rng = SeededRNG(seed=5)
    assert not rng.chance(0.0)
    assert rng.chance(1.0)
    assert not rng.chance(-0.5)
    assert rng.chance(1.5)


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_substream_determinism_property(seed, name):
    a = SeededRNG(seed).stream(name)
    b = SeededRNG(seed).stream(name)
    assert a.random() == b.random()


def test_uniform_and_randint_within_bounds():
    rng = SeededRNG(seed=11)
    for _ in range(100):
        value = rng.uniform(2.0, 5.0)
        assert 2.0 <= value <= 5.0
        integer = rng.randint(1, 6)
        assert 1 <= integer <= 6


def test_sample_and_choice():
    rng = SeededRNG(seed=13)
    population = list(range(20))
    sample = rng.sample(population, 5)
    assert len(sample) == 5
    assert len(set(sample)) == 5
    assert rng.choice(population) in population


def test_weighted_choice_respects_zero_weight():
    rng = SeededRNG(seed=17)
    picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
    assert picks == {"a"}
