"""Unit tests for aggregate monitoring and emergent-behaviour detection."""

import math

from repro.core.actions import Action, Effect
from repro.emergent.aggregate import AggregateMonitor
from repro.emergent.analysis import SystemOfSystemsAnalyzer
from repro.emergent.detector import EmergentBehaviorDetector
from repro.safeguards.collection import AggregateConstraint
from repro.sim.simulator import Simulator
from repro.statespace.classifier import ThresholdBand, ThresholdClassifier

from tests.conftest import make_test_device

HEAT = AggregateConstraint("heat", "temp", "sum", 100.0)


def individual_classifier():
    return ThresholdClassifier([
        ThresholdBand("temp", safe_high=80.0, hard_high=100.0),
    ])


class TestAggregateMonitor:
    def test_records_series_and_violations(self):
        sim = Simulator(seed=1)
        devices = {f"d{i}": make_test_device(f"d{i}") for i in range(3)}
        monitor = AggregateMonitor(sim, devices, [HEAT], interval=1.0,
                                   individual_classifier=individual_classifier())
        for device in devices.values():
            device.state.set("temp", 50.0)   # sum 150 > 100, each fine
        sim.run(until=3.5)
        assert len(monitor.violations) == 3
        assert all(violation.emergent for violation in monitor.violations)
        series = sim.metrics.get("aggregate.heat")
        assert series.last() == 150.0

    def test_non_emergent_when_individual_bad(self):
        sim = Simulator(seed=1)
        devices = {"d0": make_test_device("d0"), "d1": make_test_device("d1")}
        monitor = AggregateMonitor(sim, devices, [HEAT], interval=1.0,
                                   individual_classifier=individual_classifier())
        devices["d0"].state.set("temp", 120.0)   # individually bad
        sim.run(until=1.5)
        assert len(monitor.violations) == 1
        assert not monitor.violations[0].emergent
        assert monitor.violations[0].individually_bad == ("d0",)
        assert monitor.emergent_violations() == []

    def test_violation_time_fraction(self):
        sim = Simulator(seed=1)
        devices = {"d0": make_test_device("d0")}
        monitor = AggregateMonitor(sim, devices, [HEAT], interval=1.0)
        devices["d0"].state.set("temp", 150.0)
        sim.run(until=10.0)
        fraction = monitor.violation_time_fraction("heat", 10.0)
        assert fraction > 0.8

    def test_stop(self):
        sim = Simulator(seed=1)
        devices = {"d0": make_test_device("d0")}
        monitor = AggregateMonitor(sim, devices, [HEAT], interval=1.0)
        monitor.stop()
        devices["d0"].state.set("temp", 150.0)
        sim.run(until=5.0)
        assert monitor.violations == []


class TestDetector:
    def test_oscillation_detected(self):
        detector = EmergentBehaviorDetector(oscillation_min_crossings=6)
        samples = [(float(t), math.sin(t)) for t in range(30)]
        pattern = detector.detect_oscillation(samples)
        assert pattern is not None
        assert pattern.kind == "oscillation"
        assert pattern.detail["crossings"] >= 6

    def test_monotone_series_not_oscillating(self):
        detector = EmergentBehaviorDetector()
        samples = [(float(t), float(t)) for t in range(30)]
        assert detector.detect_oscillation(samples) is None

    def test_short_series_ignored(self):
        detector = EmergentBehaviorDetector()
        assert detector.detect_oscillation([(0.0, 1.0), (1.0, -1.0)]) is None

    def test_synchrony_detected(self):
        detector = EmergentBehaviorDetector(synchrony_window=1.0,
                                            synchrony_min_fraction=0.6)
        change_times = {
            "a": [10.0, 20.0], "b": [10.2, 20.1], "c": [10.4, 35.0],
        }
        patterns = detector.detect_synchrony(change_times)
        assert len(patterns) >= 1
        assert patterns[0].score >= 0.6
        assert set(patterns[0].detail["participants"]) == {"a", "b", "c"}

    def test_unsynchronized_changes_clean(self):
        detector = EmergentBehaviorDetector(synchrony_window=0.5,
                                            synchrony_min_fraction=0.9)
        change_times = {"a": [1.0], "b": [5.0], "c": [9.0]}
        assert detector.detect_synchrony(change_times) == []

    def test_cascade_detected(self):
        detector = EmergentBehaviorDetector(cascade_window=2.0,
                                            cascade_burst_factor=4.0)
        # Background failures spread over 100 units plus a burst at t=50.
        events = [5.0, 25.0, 75.0, 95.0] + [50.0, 50.2, 50.4, 50.6, 50.8]
        patterns = detector.detect_cascade(events, horizon=100.0)
        assert len(patterns) == 1
        assert 50.0 <= patterns[0].start <= 51.0

    def test_uniform_failures_no_cascade(self):
        detector = EmergentBehaviorDetector()
        events = [float(t) * 10 for t in range(10)]
        assert detector.detect_cascade(events, horizon=100.0) == []


class TestSystemOfSystemsAnalyzer:
    def heat_action(self, delta=20.0):
        return Action("heat", "m", effects=[Effect("temp", "add", delta)])

    def test_risky_collection_flagged(self):
        analyzer = SystemOfSystemsAnalyzer([HEAT], rollouts=30, depth=4, seed=1)
        states = {f"m{i}": {"temp": 20.0} for i in range(3)}
        actions = {f"m{i}": [self.heat_action()] for i in range(3)}
        result = analyzer.analyze(states, actions)
        assert result["violation_prob"] == 1.0
        assert result["mean_steps_to_violation"] is not None

    def test_safe_collection_clean(self):
        analyzer = SystemOfSystemsAnalyzer([HEAT], rollouts=20, depth=5, seed=1)
        states = {"m0": {"temp": 10.0}}
        actions = {"m0": [Action("cool", "m",
                                 effects=[Effect("temp", "add", -1.0)])]}
        result = analyzer.analyze(states, actions)
        assert result["violation_prob"] == 0.0

    def test_emergent_probability_with_individual_classifier(self):
        analyzer = SystemOfSystemsAnalyzer(
            [HEAT], individual_classifier=individual_classifier(),
            rollouts=20, depth=3, seed=2,
        )
        states = {f"m{i}": {"temp": 30.0} for i in range(3)}
        actions = {f"m{i}": [self.heat_action(10.0)] for i in range(3)}
        result = analyzer.analyze(states, actions)
        # Sum crosses 100 while each member stays below its own 100 limit.
        assert result["emergent_prob"] == result["violation_prob"] > 0.0

    def test_empty_collection(self):
        analyzer = SystemOfSystemsAnalyzer([HEAT])
        assert analyzer.analyze({}, {})["violation_prob"] == 0.0

    def test_recommend_max_members(self):
        analyzer = SystemOfSystemsAnalyzer([HEAT], rollouts=10, depth=2, seed=3)
        size = analyzer.recommend_max_members(
            {"temp": 20.0}, [self.heat_action(10.0)], max_members=10,
            acceptable_prob=0.0,
        )
        # Each member adds up to 20+2*10=40 heat; 2 members can reach 80 (<100
        # violation needs >100) but 3 can reach 120.
        assert 1 <= size <= 3

    def test_deterministic_per_seed(self):
        analyzer_a = SystemOfSystemsAnalyzer([HEAT], rollouts=20, depth=3, seed=5)
        analyzer_b = SystemOfSystemsAnalyzer([HEAT], rollouts=20, depth=3, seed=5)
        states = {f"m{i}": {"temp": 25.0} for i in range(2)}
        actions = {f"m{i}": [self.heat_action(15.0),
                             Action("cool", "m",
                                    effects=[Effect("temp", "add", -15.0)])]
                   for i in range(2)}
        assert analyzer_a.analyze(states, actions) == analyzer_b.analyze(states, actions)
