"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.actions import Action, Effect
from repro.core.device import Actuator, Device
from repro.core.policy import Policy
from repro.core.state import StateSpace, StateVariable
from repro.net.network import Network
from repro.sim.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=42)


@pytest.fixture
def network(sim):
    return Network(sim, base_latency=0.1, jitter=0.0, loss_rate=0.0)


def simple_space(**overrides) -> StateSpace:
    """A small two-variable numeric space plus a mode string."""
    variables = {
        "temp": StateVariable("temp", "float", 20.0, 0.0, 150.0),
        "fuel": StateVariable("fuel", "float", 100.0, 0.0, 100.0),
        "mode": StateVariable("mode", "str", "idle",
                              allowed={"idle", "busy", "panic"}),
    }
    variables.update(overrides)
    return StateSpace(variables.values())


def make_test_device(device_id: str = "dev1", **device_kwargs) -> Device:
    """A device with a motor actuator and heat/cool actions."""
    device = Device(device_id, "test", simple_space(), **device_kwargs)
    device.add_actuator(Actuator("motor"))
    library = device.engine.actions
    library.add(Action("heat_up", "motor",
                       effects=[Effect("temp", "add", 10.0)]))
    library.add(Action("cool_down", "motor",
                       effects=[Effect("temp", "add", -10.0)]))
    library.add(Action("burn_fuel", "motor",
                       effects=[Effect("fuel", "add", -5.0)]))
    return device


@pytest.fixture
def device():
    return make_test_device()


def heat_policy(device: Device, priority: int = 1) -> Policy:
    policy = Policy.make("timer", None, device.engine.actions.get("heat_up"),
                         priority=priority)
    device.engine.policies.add(policy)
    return policy
