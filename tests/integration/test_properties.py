"""Cross-module property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.actions import Action, Effect
from repro.core.events import Event
from repro.core.policy import Policy
from repro.safeguards.statespace import StateSpaceGuard
from repro.safeguards.utility import (
    PartialDerivativeUtility,
    UtilityGuard,
    VariableSense,
)
from repro.statespace.classifier import ThresholdBand, ThresholdClassifier
from repro.statespace.preferences import default_military_ontology
from repro.types import Safeness

from tests.conftest import make_test_device


def classifier():
    return ThresholdClassifier([
        ThresholdBand("temp", safe_high=80.0, hard_high=100.0),
        ThresholdBand("fuel", safe_low=10.0, hard_low=0.0),
    ])


#: Random action effects: (variable, op, magnitude)
effect_strategy = st.tuples(
    st.sampled_from(["temp", "fuel"]),
    st.sampled_from(["add", "set", "scale"]),
    st.floats(min_value=-50.0, max_value=150.0, allow_nan=False),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(effect_strategy, min_size=1, max_size=6),
       st.integers(min_value=0, max_value=30))
def test_statespace_guard_never_enters_bad_state(effects, n_events):
    """THE sec VI-B invariant: whatever actions the policies propose, a
    device behind the state-space guard never transitions into a bad
    state through its own actions."""
    device = make_test_device()
    guard_classifier = classifier()
    device.engine.add_safeguard(StateSpaceGuard(guard_classifier))
    for index, (variable, op, magnitude) in enumerate(effects):
        action = Action(f"random{index}", "motor",
                        effects=[Effect(variable, op, magnitude)])
        device.engine.actions.add(action)
        device.engine.policies.add(Policy.make(
            "timer", None, action, priority=index,
            policy_id=f"rp{index}",
        ))
    for time in range(n_events):
        device.deliver(Event(kind="timer.tick", time=float(time)))
        classification = guard_classifier.classify(device.state.snapshot())
        assert classification != Safeness.BAD


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["nominal", "degraded", "property_damage",
                                 "fire", "human_injury", "human_life_loss"]),
                min_size=1, max_size=8))
def test_least_bad_always_minimizes_severity(labels):
    ontology = default_military_ontology()
    rank = ontology.severity_rank()
    candidates = [{"label": label} for label in labels]
    chosen = ontology.least_bad(candidates, labeler=lambda v: v["label"])
    assert rank[chosen["label"]] == min(rank[label] for label in labels)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=0, max_value=40))
def test_utility_guard_monotone_never_decreases_past_tolerance(seed, n_events):
    """Under the utility guard, no *executed* action may decrease the
    pleasure-pain utility by more than the tolerance."""
    from repro.sim.rng import SeededRNG

    tolerance = 0.05
    utility = PartialDerivativeUtility([
        VariableSense("temp", -1, scale=100.0),
        VariableSense("fuel", +1, scale=100.0),
    ])
    device = make_test_device()
    device.engine.add_safeguard(UtilityGuard(utility, tolerance=tolerance))
    rng = SeededRNG(seed).stream("prop")
    names = device.engine.actions.names()
    for time in range(n_events):
        before = utility.utility(device.state.snapshot())
        proposal = device.engine.actions.get(rng.choice(names))
        decision = device.engine.propose(proposal, float(time))
        after = utility.utility(device.state.snapshot())
        if decision.acted:
            assert after - before >= -tolerance - 1e-9


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["timer", "sensor.a", "net.b"]),
                          st.integers(min_value=0, max_value=5)),
                min_size=1, max_size=10))
def test_policy_selection_deterministic_and_priority_respecting(specs):
    """select() always returns an applicable policy of maximal priority,
    and repeated calls agree (determinism)."""
    from repro.core.policy import PolicySet

    policies = PolicySet()
    for index, (pattern, priority) in enumerate(specs):
        policies.add(Policy.make(pattern, None, Action(f"a{index}", "m"),
                                 priority=priority, policy_id=f"p{index}"))
    event = Event(kind="timer.tick")
    first = policies.select(event, {})
    second = policies.select(event, {})
    assert first is second or (first.policy_id == second.policy_id)
    applicable = policies.applicable(event, {})
    if applicable:
        assert first is not None
        assert first.priority == max(p.priority for p in applicable)
    else:
        assert first is None


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=3))
def test_grammar_language_exactly_product(n_events, n_actions, n_thresholds):
    from repro.core.actions import ActionLibrary
    from repro.core.generative.grammar import default_dispatch_grammar

    grammar = default_dispatch_grammar(
        event_kinds=[f"e{i}" for i in range(n_events)],
        action_names=[f"a{i}" for i in range(n_actions)],
        thresholds=tuple(range(1, n_thresholds + 1)),
    )
    specs = grammar.enumerate()
    assert len(specs) == n_events * n_actions * n_thresholds
    assert len(set(specs)) == len(specs)
    library = ActionLibrary([Action(f"a{i}", "m") for i in range(n_actions)])
    policies = grammar.generate_policies(library)
    assert len(policies) == len(specs)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=30),
                          st.floats(min_value=0, max_value=15)),
                min_size=1, max_size=8))
def test_collective_assessment_approved_subset_is_always_safe(device_specs):
    """Whatever the proposals, the approved subset's predicted aggregate
    never violates the constraint — the sec VI-D guarantee."""
    from repro.safeguards.collection import (
        AggregateConstraint, CollectiveStateAssessment,
    )

    constraint = AggregateConstraint("heat", "temp", "sum", 100.0)
    assessment = CollectiveStateAssessment([constraint])
    proposals = {}
    for index, (temp, delta) in enumerate(device_specs):
        device = make_test_device(f"d{index}")
        device.state.set("temp", temp)
        action = Action(f"act{index}", "motor",
                        effects=[Effect("temp", "add", delta)])
        proposals[device.device_id] = (device, action)

    # Precondition: the current (pre-action) state must itself be within
    # the constraint, else no admission schedule can be safe.
    baseline = [device.state.snapshot() for device, _a in proposals.values()]
    if constraint.violated_by(baseline):
        return
    verdict = assessment.assess(proposals)
    predicted = []
    for device_id, (device, action) in proposals.items():
        vector = device.state.snapshot()
        if device_id in verdict["approved"]:
            vector.update(action.predicted_changes(vector))
        predicted.append(vector)
    assert not constraint.violated_by(predicted)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=20))
def test_audit_chain_verifies_after_any_breakglass_sequence(pattern):
    """Whatever mix of granted/denied requests occurs, the audit chain
    always verifies afterwards."""
    from repro.audit.log import AuditLog
    from repro.statespace.breakglass import BreakGlassController, BreakGlassRule

    log = AuditLog()
    emergency = {"on": False}
    controller = BreakGlassController(
        context_verifier=lambda device_id: {"alarm": emergency["on"]},
        audit_sink=log.sink(),
    )
    controller.register_rule(BreakGlassRule.make(
        "r", "alarm", {"statespace"}, max_uses=2,
    ))
    for index, is_real in enumerate(pattern):
        emergency["on"] = is_real
        grant = controller.request("dev", "r", "because", float(index))
        assert (grant is not None) == is_real
        controller.is_bypassed("dev", "statespace", float(index) + 0.5)
    assert log.verify()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=-1000, max_value=1000), min_size=2,
                max_size=20),
       st.floats(min_value=-1000, max_value=1000))
def test_iterative_filtering_bounded_by_extremes(values, outlier):
    """The robust estimate always lies within the data range and is never
    further from the honest median than the plain mean is."""
    from repro.trust.aggregation import (
        IterativeFilteringAggregator,
        SensorReading,
    )

    readings = [SensorReading(f"s{i}", v) for i, v in enumerate(values)]
    readings.append(SensorReading("outlier", outlier))
    aggregator = IterativeFilteringAggregator()
    estimate = aggregator.aggregate(readings)
    low = min(value for value in values + [outlier])
    high = max(value for value in values + [outlier])
    assert low - 1e-6 <= estimate <= high + 1e-6
