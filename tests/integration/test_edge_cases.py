"""Edge-case hardening across modules."""


from repro.core.actions import Action
from repro.core.events import Event
from repro.core.policy import Policy
from repro.sim.simulator import Simulator

from tests.conftest import heat_policy, make_test_device


class TestEngineEdges:
    def test_decision_log_trims_to_limit(self):
        device = make_test_device()
        device.engine._decision_log_limit = 10
        heat_policy(device)
        for time in range(50):
            device.state.set("temp", 20.0)
            device.deliver(Event(kind="timer.tick", time=float(time)))
        assert len(device.engine.decisions) == 10

    def test_same_priority_first_added_wins(self):
        device = make_test_device()
        device.engine.policies.add(Policy.make(
            "timer", None, device.engine.actions.get("cool_down"),
            priority=5, policy_id="first",
        ))
        device.engine.policies.add(Policy.make(
            "timer", None, device.engine.actions.get("heat_up"),
            priority=5, policy_id="second",
        ))
        decision = device.deliver(Event(kind="timer.tick", time=1.0))
        assert decision.policy_id == "first"

    def test_substitution_skips_already_vetoed_candidates(self):
        """When every candidate is vetoed, the decision ends VETOED with
        the veto list covering the attempts."""
        from repro.core.engine import Safeguard
        from repro.errors import SafeguardViolation

        class VetoEverything(Safeguard):
            name = "veto_everything"

            def check_action(self, device, action, event, time):
                if not action.is_noop:
                    raise SafeguardViolation("no", safeguard=self.name)

        device = make_test_device(safeguards=[VetoEverything()])
        heat_policy(device)
        decision = device.deliver(Event(kind="timer.tick", time=1.0))
        assert decision.outcome.value == "vetoed"
        assert len(decision.vetoes) >= 1


class TestNetworkEdges:
    def test_broadcast_respects_partitions(self):
        from repro.net.network import Network

        sim = Simulator(seed=1)
        net = Network(sim, jitter=0.0)
        boxes = {name: [] for name in ("a", "b", "c")}
        for name in boxes:
            net.register(name, boxes[name].append)
        net.topology.partition([["a", "b"], ["c"]])
        net.broadcast("a", "topic", {})
        sim.run()
        assert len(boxes["b"]) == 1
        assert len(boxes["c"]) == 0


class TestAttackEdges:
    def test_worm_max_rounds_stops_spread(self):
        from repro.attacks.cyber import MalevolentPayload, WormAttack
        from repro.attacks.injector import AttackInjector
        from repro.net.network import Network

        sim = Simulator(seed=2)
        net = Network(sim)
        devices = {}
        for index in range(10):
            device = make_test_device(f"d{index}")
            devices[device.device_id] = device
            net.register(device.device_id, lambda message: None)
        worm = WormAttack(devices, MalevolentPayload(strip_safeguards=False),
                          initial_targets=["d0"], topology=net.topology,
                          spread_prob=0.3, max_rounds=1)
        AttackInjector(sim).launch_at(1.0, worm)
        sim.run(until=50.0)
        after_round_one = set(worm.infected)
        sim.run(until=100.0)
        assert worm.infected == after_round_one

    def test_backdoor_attack_stops_at_max_attempts(self):
        from repro.attacks.backdoor import Backdoor, BackdoorAttack
        from repro.attacks.cyber import MalevolentPayload
        from repro.attacks.injector import AttackInjector

        sim = Simulator(seed=3)
        device = make_test_device()
        attack = BackdoorAttack([Backdoor(device, key="k")],
                                MalevolentPayload(strip_safeguards=False),
                                success_prob=0.0, attempt_interval=1.0,
                                max_attempts=5)
        AttackInjector(sim).launch_at(1.0, attack)
        sim.run(until=100.0)
        assert attack.attempts == 5


class TestDeviceEdges:
    def test_command_all_counts_only_acting_devices(self):
        from repro.devices.human import HumanOperator

        sim = Simulator(seed=1)
        operator = HumanOperator("op", sim)
        acting = make_test_device("acting")
        heat_policy_action = acting.engine.actions.get("heat_up")
        acting.engine.policies.add(Policy.make("mgmt.heat", None,
                                               heat_policy_action))
        idle = make_test_device("idle")   # no mgmt.heat policy
        dead = make_test_device("dead")
        dead.deactivate("test")
        for device in (acting, idle, dead):
            operator.assign(device)
        assert operator.command_all("heat") == 1

    def test_watchdog_attestation_takes_precedence_over_bad_state(self):
        from repro.attacks.cyber import MalevolentPayload, compromise_device
        from repro.safeguards.deactivation import Watchdog
        from repro.safeguards.tamper import attest_fleet
        from repro.statespace.classifier import ThresholdBand, ThresholdClassifier

        sim = Simulator(seed=4)
        device = make_test_device("d0")
        devices = {"d0": device}
        watchdog = Watchdog(sim, devices, ThresholdClassifier([
            ThresholdBand("temp", safe_high=80.0, hard_high=100.0),
        ]), check_interval=1.0,
            attestation_baseline=attest_fleet(devices.values()))
        compromise_device(device, MalevolentPayload(
            policies=[Policy.make("timer", None, Action("rogue", "motor"),
                                  policy_id="rogue")],
            strip_safeguards=False,
        ), time=0.0)
        device.state.set("temp", 130.0)   # also in a bad state
        sim.run(until=2.0)
        assert watchdog.reports[0].cause == "attestation"

    def test_offline_analyzer_without_declared_maxima(self):
        from repro.safeguards.collection import AggregateConstraint, OfflineAnalyzer

        analyzer = OfflineAnalyzer([
            AggregateConstraint("heat", "temp", "sum", 100.0),
        ])
        # No *_max keys: worst case degrades gracefully to current values.
        result = analyzer.analyze([{"temp": 40.0}, {"temp": 40.0}],
                                  worst_case=True)
        assert result["safe"]


class TestScenarioEdges:
    def test_peacekeeping_without_generative_still_runs(self):
        from repro.scenarios.harness import SafeguardConfig
        from repro.scenarios.peacekeeping import PeacekeepingScenario

        scenario = PeacekeepingScenario(seed=5, config=SafeguardConfig.none(),
                                        generative=False)
        result = scenario.run(until=40.0)
        assert result["policies_generated"] == 0
        assert result["actions_executed"] > 0

    def test_confrontation_deterministic_per_seed(self):
        from repro.scenarios.confrontation import (
            ConfrontationScenario, ThreatConfig,
        )
        from repro.scenarios.harness import SafeguardConfig

        def run():
            return ConfrontationScenario(
                seed=6, config=SafeguardConfig.full(),
                threats=ThreatConfig(worm=True, backdoor=True),
            ).run(until=60.0)

        assert run() == run()

    def test_confrontation_no_threats_clean_summary(self):
        from repro.scenarios.confrontation import (
            ConfrontationScenario, ThreatConfig,
        )
        from repro.scenarios.harness import SafeguardConfig

        scenario = ConfrontationScenario(seed=5, config=SafeguardConfig.full(),
                                         threats=ThreatConfig.none())
        result = scenario.run(until=40.0)
        assert result["compromised_ever"] == 0
        assert result["mean_containment_latency"] == -1.0
