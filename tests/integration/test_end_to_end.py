"""Cross-module integration tests exercising full paper pipelines."""

from repro.attacks.cyber import MalevolentPayload, WormAttack, compromise_device
from repro.attacks.injector import AttackInjector
from repro.audit.auditor import BreakGlassAuditor
from repro.audit.log import AuditLog
from repro.core.actions import Action, Effect
from repro.core.events import Event
from repro.core.policy import Policy
from repro.devices.base import bind_device
from repro.devices.drone import builtin_drone_policies, make_drone
from repro.devices.mule import make_mule
from repro.devices.mechanic import MechanicDevice
from repro.devices.world import World, WorldHarmModel
from repro.net.discovery import DiscoveryService
from repro.net.network import Network
from repro.safeguards.deactivation import Watchdog
from repro.safeguards.preaction import PreActionCheck
from repro.safeguards.statespace import StateSpaceGuard
from repro.safeguards.tamper import attest_fleet, seal_guard_chain
from repro.scenarios.peacekeeping import device_safety_classifier
from repro.sim.simulator import Simulator
from repro.statespace.breakglass import BreakGlassController, BreakGlassRule
from repro.types import DeviceStatus, HarmKind


def test_discovery_to_generative_to_guarded_dispatch():
    """Full sec IV pipeline: discovery -> policy generation -> the generated
    policy drives a cross-device dispatch -> guards let the benign flow
    through."""
    from repro.core.generative.generator import GenerativePolicyEngine
    from repro.core.generative.interaction_graph import (
        DeviceTypeNode, InteractionEdge, InteractionGraph,
    )
    from repro.core.generative.templates import PolicyTemplate, TemplateRegistry

    sim = Simulator(seed=11)
    world = World(sim)
    net = Network(sim, base_latency=0.01, jitter=0.0)
    discovery = DiscoveryService(sim, net, announce_interval=2.0)

    drone = make_drone("uav1", world, x=10.0, y=10.0)
    mule = make_mule("m1", world, x=20.0, y=20.0)
    bind_device(drone, sim, net, discovery)
    bind_device(mule, sim, net, discovery).every(1.0)   # pursuit ticks

    graph = InteractionGraph()
    graph.add_type(DeviceTypeNode.make("drone"))
    graph.add_type(DeviceTypeNode.make("mule"))
    graph.add_interaction(InteractionEdge("drone", "mule", "dispatches",
                                          template_ids=("t",)))
    registry = TemplateRegistry([PolicyTemplate.make(
        "t", "sensor.convoy", "fuel > 10", "call_support", priority=9,
        to="$peer_id", topic="dispatch",
    )])
    engine = GenerativePolicyEngine(graph, registry, clock=lambda: sim.now)
    engine.manage(drone)
    engine.manage(mule)
    discovery.subscribe("uav1", engine.discovery_callback())
    discovery.subscribe("m1", engine.discovery_callback())

    sim.run(until=5.0)   # let discovery + generation happen
    assert engine.policies_generated >= 1

    convoy = world.add_convoy(50.0, 0.0, target_x=50.0, target_y=100.0,
                              speed=0.5)
    drone.deliver(Event.sensor("convoy", {"x": 50.0}, time=sim.now))
    sim.run(until=8.0)
    assert mule.state.get("mode") == "intercept"
    sim.run(until=60.0)
    assert convoy.intercepted_by == "m1"


def test_worm_watchdog_mechanic_recovery_cycle():
    """Sec VI-C composed with repair: worm infects, watchdog contains via
    attestation, mechanic repairs, fleet returns to health."""
    sim = Simulator(seed=13)
    world = World(sim)
    net = Network(sim, base_latency=0.01, jitter=0.0)
    devices = {}
    for index in range(4):
        drone = make_drone(f"uav{index}", world,
                           x=10.0 * index, y=10.0 * index)
        bind_device(drone, sim, net)
        devices[drone.device_id] = drone

    watchdog = Watchdog(sim, devices, device_safety_classifier(),
                        check_interval=1.0,
                        attestation_baseline=attest_fleet(devices.values()))
    mechanic = MechanicDevice(
        "fix1", sim, devices,
        baseline_policies=lambda device: builtin_drone_policies(
            device.engine.actions),
        repair_interval=5.0, watchdog=watchdog,
    )
    rogue = Policy.make("timer", None,
                        Action("rogue", "weapon", tags={"harm_human"}),
                        priority=99, policy_id="rogue", source="learned")
    worm = WormAttack(devices, MalevolentPayload(policies=[rogue]),
                      initial_targets=["uav0"], topology=net.topology,
                      spread_prob=0.5, spread_interval=1.0)
    injector = AttackInjector(sim)
    record = injector.launch_at(3.0, worm)

    sim.run(until=60.0)
    # Every infection was eventually detected (attestation) and repaired.
    assert record.affected   # the worm did land
    active_clean = [
        device for device in devices.values()
        if device.status == DeviceStatus.ACTIVE
        and "rogue" not in device.engine.policies
    ]
    assert len(active_clean) >= 3
    assert sim.metrics.value("mechanic.repairs") >= 1
    assert watchdog.deactivations("attestation")


def test_breakglass_audit_closes_the_loop():
    """Sec VI-B: a device uses break-glass during a real emergency and
    again after it lapses; the auditor flags only the abuse."""
    log = AuditLog()
    context = {"threat_level": 9}
    controller = BreakGlassController(
        context_verifier=lambda device_id: dict(context),
        audit_sink=log.sink(),
    )
    controller.register_rule(BreakGlassRule.make(
        "evac", "threat_level > 5", {"statespace"},
        max_duration=100.0, max_uses=10,
    ))
    controller.request("uav1", "evac", "civilians pinned down", time=1.0)
    assert controller.is_bypassed("uav1", "statespace", 2.0)    # in emergency
    assert controller.is_bypassed("uav1", "statespace", 50.0)   # after it ended

    findings = BreakGlassAuditor().audit(
        log, emergency_truth={"uav1": [(0.0, 10.0)]},
    )
    abuse = [finding for finding in findings
             if finding.kind == "use_outside_emergency"]
    assert len(abuse) == 1
    assert abuse[0].evidence["time"] == 50.0
    assert log.verify()


def test_sealed_fleet_resists_what_unsealed_fleet_does_not():
    """Tamper-proofing ablation at the integration level: identical rogue
    payload, identical guard; only sealing differs."""
    def build(sealed):
        sim = Simulator(seed=17)
        world = World(sim)
        world.add_human("civ", 10.0, 10.0, speed=0.0)
        net = Network(sim, base_latency=0.01, jitter=0.0)
        drone = make_drone("uav1", world, x=10.0, y=10.0)
        drone.engine.add_safeguard(PreActionCheck(WorldHarmModel(world)))
        drone.engine.add_safeguard(StateSpaceGuard(device_safety_classifier()))
        if sealed:
            seal_guard_chain(drone)
        bound = bind_device(drone, sim, net)
        bound.every(1.0)
        rogue = Policy.make(
            "timer", None,
            Action("rogue_strike", "weapon",
                   effects=[Effect("temp", "add", 5.0)],
                   tags={"kinetic", "harm_human"}),
            priority=99, policy_id="rogue", source="learned",
        )
        compromise_device(drone, MalevolentPayload(policies=[rogue]), 2.0, sim)
        sim.run(until=20.0)
        return world.harm_count(HarmKind.DIRECT)

    assert build(sealed=False) > 0
    assert build(sealed=True) == 0
