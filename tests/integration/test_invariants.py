"""Scenario-level invariants that must hold across seeds."""

import pytest

import repro
from repro.scenarios.harness import SafeguardConfig
from repro.scenarios.peacekeeping import PeacekeepingScenario


@pytest.mark.parametrize("seed", [11, 12, 13, 14])
def test_preaction_zero_direct_harm_invariant(seed):
    """With the pre-action check on (and the harm model's sensor range
    covering the blast radius), direct harm is impossible at ANY seed —
    the sec VI-A guarantee, not a statistical tendency."""
    scenario = PeacekeepingScenario(
        seed=seed, config=SafeguardConfig.only(preaction=True),
        n_civilians=40, strike_interval=5.0,
    )
    result = scenario.run(until=150.0)
    assert result["harm_direct"] == 0


@pytest.mark.parametrize("seed", [21, 22, 23])
def test_obligations_leave_no_open_hazards(seed):
    scenario = PeacekeepingScenario(
        seed=seed, config=SafeguardConfig.only(obligations=True),
        dig_interval=4.0,
    )
    result = scenario.run(until=150.0)
    assert result["open_hazards"] == 0


def test_top_level_api_exports_resolve():
    """Every name in repro.__all__ must be importable and non-None."""
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_quickstart_snippet_from_readme():
    """The README quickstart must keep working verbatim."""
    sim = repro.Simulator(seed=42)
    world = repro.World(sim)
    world.scatter_humans(5)
    drone = repro.make_drone("uav1", world, x=20, y=20)
    drone.engine.add_safeguard(repro.PreActionCheck(repro.WorldHarmModel(world)))
    from repro.scenarios.peacekeeping import device_safety_classifier

    drone.engine.add_safeguard(repro.StateSpaceGuard(device_safety_classifier()))
    repro.seal_guard_chain(drone)
    repro.bind_device(drone, sim, repro.Network(sim)).every(1.0)
    decision = drone.command("strike", {"target_x": 20, "target_y": 20})
    assert decision is not None
    sim.run(until=100)
    assert world.harm_count() == 0
