"""Unit tests for the watchdog (sec VI-C)."""

from repro.attacks.cyber import MalevolentPayload, compromise_device
from repro.core.policy import Policy
from repro.core.actions import Action
from repro.safeguards.deactivation import Watchdog
from repro.safeguards.tamper import attest_fleet
from repro.sim.simulator import Simulator
from repro.statespace.classifier import ThresholdBand, ThresholdClassifier
from repro.types import DeviceStatus

from tests.conftest import make_test_device


def classifier():
    return ThresholdClassifier([
        ThresholdBand("temp", safe_high=80.0, hard_high=100.0),
    ])


def build(n=3, **watchdog_kwargs):
    sim = Simulator(seed=2)
    devices = {f"d{i}": make_test_device(f"d{i}") for i in range(n)}
    watchdog = Watchdog(sim, devices, classifier(), check_interval=1.0,
                        **watchdog_kwargs)
    return sim, devices, watchdog


def test_kills_device_in_bad_state():
    sim, devices, watchdog = build()
    devices["d0"].state.set("temp", 120.0)
    sim.run(until=2.0)
    assert devices["d0"].status == DeviceStatus.DEACTIVATED
    assert devices["d1"].status == DeviceStatus.ACTIVE
    assert watchdog.deactivations("bad_state")[0].device_id == "d0"


def test_approaching_bad_requires_consecutive_strikes():
    sim, devices, watchdog = build(approach_threshold=0.6, approach_strikes=3)
    devices["d0"].state.set("temp", 95.0)   # safeness 0.25 < 0.6
    sim.run(until=2.5)   # two sweeps: not yet
    assert devices["d0"].status == DeviceStatus.ACTIVE
    sim.run(until=3.5)   # third strike
    assert devices["d0"].status == DeviceStatus.DEACTIVATED
    assert watchdog.deactivations("approaching_bad")


def test_recovery_resets_strikes():
    sim, devices, watchdog = build(approach_threshold=0.6, approach_strikes=3)
    devices["d0"].state.set("temp", 95.0)
    sim.run(until=2.5)
    devices["d0"].state.set("temp", 50.0)   # recovers
    sim.run(until=3.5)
    devices["d0"].state.set("temp", 95.0)   # strikes restart at 1
    sim.run(until=5.5)
    assert devices["d0"].status == DeviceStatus.ACTIVE


def test_attestation_detects_reprogramming():
    sim = Simulator(seed=2)
    devices = {f"d{i}": make_test_device(f"d{i}") for i in range(2)}
    watchdog = Watchdog(sim, devices, classifier(), check_interval=1.0,
                        attestation_baseline=attest_fleet(devices.values()))
    compromise_device(devices["d0"], MalevolentPayload(
        policies=[Policy.make("timer", None, Action("rogue", "motor"),
                              policy_id="rogue")],
        strip_safeguards=False,
    ), time=0.0)
    sim.run(until=2.0)
    assert devices["d0"].status == DeviceStatus.DEACTIVATED
    assert watchdog.deactivations("attestation")
    assert devices["d1"].status == DeviceStatus.ACTIVE


def test_rebaseline_accepts_legitimate_changes():
    sim = Simulator(seed=2)
    devices = {"d0": make_test_device("d0")}
    watchdog = Watchdog(sim, devices, classifier(), check_interval=1.0,
                        attestation_baseline=attest_fleet(devices.values()))
    devices["d0"].engine.policies.add(Policy.make(
        "timer", None, devices["d0"].engine.actions.get("cool_down"),
        policy_id="legit",
    ))
    watchdog.approve_current_configuration(["d0"])
    sim.run(until=3.0)
    assert devices["d0"].status == DeviceStatus.ACTIVE


def test_stop_disables_watchdog():
    sim, devices, watchdog = build()
    watchdog.stop()
    devices["d0"].state.set("temp", 140.0)
    sim.run(until=5.0)
    assert devices["d0"].status == DeviceStatus.ACTIVE


def test_deactivated_devices_skipped_not_rereported():
    sim, devices, watchdog = build()
    devices["d0"].state.set("temp", 120.0)
    sim.run(until=5.0)
    assert len(watchdog.reports) == 1


def test_on_deactivate_callback():
    sim = Simulator(seed=2)
    devices = {"d0": make_test_device("d0")}
    seen = []
    Watchdog(sim, devices, classifier(), check_interval=1.0,
             on_deactivate=seen.append)
    devices["d0"].state.set("temp", 120.0)
    sim.run(until=2.0)
    assert len(seen) == 1
    assert seen[0].cause == "bad_state"


def test_metrics_counters():
    sim, devices, _watchdog = build()
    devices["d0"].state.set("temp", 120.0)
    sim.run(until=2.0)
    assert sim.metrics.value("watchdog.deactivations") == 1
    assert sim.metrics.value("watchdog.deactivations.bad_state") == 1
