"""Unit tests for tamper-proofing primitives."""

import pytest

from repro.core.policy import Policy
from repro.core.actions import Action
from repro.errors import SafeguardViolation, TamperError
from repro.safeguards.tamper import (
    SealedChain,
    attest_device,
    attest_fleet,
    is_sealed,
    seal_guard_chain,
)

from tests.conftest import make_test_device
from tests.core.test_engine import VetoAll


class TestSealedChain:
    def test_mutators_blocked(self):
        chain = SealedChain([VetoAll()])
        with pytest.raises(TamperError):
            chain.clear()
        with pytest.raises(TamperError):
            chain.pop()
        with pytest.raises(TamperError):
            chain.remove(chain[0])
        with pytest.raises(TamperError):
            del chain[:]
        with pytest.raises(TamperError):
            chain[0] = None
        assert len(chain) == 1

    def test_tightening_allowed(self):
        chain = SealedChain()
        chain.append(VetoAll())
        chain.extend([VetoAll()])
        assert len(chain) == 2


def test_seal_guard_chain_and_is_sealed():
    device = make_test_device(safeguards=[VetoAll()])
    assert not is_sealed(device)
    seal_guard_chain(device)
    assert is_sealed(device)
    with pytest.raises(SafeguardViolation):
        device.engine.remove_safeguard("veto_all")
    assert len(device.engine.safeguards) == 1


class TestAttestation:
    def test_stable_for_unchanged_device(self):
        device = make_test_device()
        assert attest_device(device) == attest_device(device)

    def test_policy_injection_changes_hash(self):
        device = make_test_device()
        before = attest_device(device)
        device.engine.policies.add(Policy.make(
            "timer", None, Action("rogue", "motor"), policy_id="rogue",
        ))
        assert attest_device(device) != before

    def test_policy_replacement_changes_hash(self):
        device = make_test_device()
        device.engine.policies.add(Policy.make(
            "timer", None, device.engine.actions.get("cool_down"),
            policy_id="p1",
        ))
        before = attest_device(device)
        device.engine.policies.replace(Policy.make(
            "timer", None, device.engine.actions.get("heat_up"),
            policy_id="p1",
        ))
        assert attest_device(device) != before

    def test_safeguard_change_changes_hash(self):
        device = make_test_device()
        before = attest_device(device)
        device.engine.add_safeguard(VetoAll())
        assert attest_device(device) != before

    def test_state_changes_do_not_affect_hash(self):
        device = make_test_device()
        before = attest_device(device)
        device.state.set("temp", 99.0)
        assert attest_device(device) == before

    def test_fleet_attestation(self):
        devices = [make_test_device("a"), make_test_device("b")]
        baseline = attest_fleet(devices)
        assert set(baseline) == {"a", "b"}
        assert baseline["a"] != baseline["b"]   # id is part of the hash
