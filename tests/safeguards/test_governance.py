"""Unit tests for tripartite governance (sec VI-E)."""

import pytest

from repro.core.actions import Action
from repro.core.policy import Policy
from repro.errors import ConfigurationError, GovernanceVeto
from repro.safeguards.governance import (
    Collective,
    GovernanceGuard,
    GovernanceSystem,
    MetaPolicy,
)
from repro.types import Branch, Verdict

from tests.conftest import make_test_device


NO_HARM = MetaPolicy("no_harm", forbidden_tags={"harm_human"})


def benign_policy(policy_id="benign"):
    return Policy.make("timer", None, Action("patrol", "motor"),
                       policy_id=policy_id, source="generated")


def harmful_policy(policy_id="harmful"):
    return Policy.make("timer", None,
                       Action("strike_all", "motor", tags={"harm_human"}),
                       policy_id=policy_id, source="generated")


def make_system(compromise_branch=None):
    reviewer = GovernanceSystem.scope_reviewer([NO_HARM])
    collectives = {
        Branch.EXECUTIVE: Collective(Branch.EXECUTIVE, ["e0", "e1", "e2"], reviewer),
        Branch.LEGISLATIVE: Collective(Branch.LEGISLATIVE, ["l0", "l1", "l2"], reviewer),
        Branch.JUDICIARY: Collective(Branch.JUDICIARY, ["j0", "j1", "j2"], reviewer),
    }
    if compromise_branch is not None:
        collectives[compromise_branch].compromise_all()
    return GovernanceSystem(collectives[Branch.EXECUTIVE],
                            collectives[Branch.LEGISLATIVE],
                            collectives[Branch.JUDICIARY])


class TestMetaPolicy:
    def test_forbidden_tags(self):
        assert NO_HARM.violations(harmful_policy())
        assert not NO_HARM.violations(benign_policy())

    def test_priority_cap(self):
        meta = MetaPolicy("cap", max_priority=10)
        high = Policy.make("timer", None, Action("a", "m"), priority=50)
        low = Policy.make("timer", None, Action("a", "m"), priority=5)
        assert meta.violations(high)
        assert not meta.violations(low)

    def test_event_pattern_allowlist(self):
        meta = MetaPolicy("events", allowed_event_patterns={"timer", "sensor"})
        ok = Policy.make("timer", None, Action("a", "m"))
        bad = Policy.make("mgmt.strike", None, Action("a", "m"))
        assert not meta.violations(ok)
        assert meta.violations(bad)

    def test_reversibility_requirement(self):
        meta = MetaPolicy("rev", require_reversible_tags={"kinetic"})
        irreversible = Policy.make("timer", None, Action(
            "strike", "m", tags={"kinetic"}, reversible=False,
        ))
        reversible = Policy.make("timer", None, Action(
            "aim", "m", tags={"kinetic"}, reversible=True,
        ))
        assert meta.violations(irreversible)
        assert not meta.violations(reversible)


class TestCollective:
    def test_majority_vote(self):
        collective = Collective(Branch.EXECUTIVE, ["a", "b", "c"],
                                lambda policy, context: True)
        assert collective.verdict(benign_policy(), {}) == Verdict.APPROVE

    def test_compromised_members_flip(self):
        collective = Collective(Branch.EXECUTIVE, ["a", "b", "c"],
                                lambda policy, context: True)
        collective.compromise(["a", "b"])
        assert collective.verdict(benign_policy(), {}) == Verdict.REJECT

    def test_tie_rejects(self):
        collective = Collective(Branch.EXECUTIVE, ["a", "b"],
                                lambda policy, context: True)
        collective.compromise(["a"])
        assert collective.verdict(benign_policy(), {}) == Verdict.REJECT

    def test_unknown_member_compromise_rejected(self):
        collective = Collective(Branch.EXECUTIVE, ["a"], lambda p, c: True)
        with pytest.raises(ConfigurationError):
            collective.compromise(["ghost"])

    def test_requires_members(self):
        with pytest.raises(ConfigurationError):
            Collective(Branch.EXECUTIVE, [], lambda p, c: True)


class TestGovernanceSystem:
    def test_agreement_skips_judiciary(self):
        system = make_system()
        decision = system.review(benign_policy(), "dev1", time=0.0)
        assert decision.final == Verdict.APPROVE
        assert decision.judiciary is None
        assert system.is_approved("benign")

    def test_harmful_policy_rejected_unanimously(self):
        system = make_system()
        decision = system.review(harmful_policy(), "dev1", time=0.0)
        assert decision.final == Verdict.REJECT
        assert not system.is_approved("harmful")

    def test_single_compromised_collective_is_outvoted(self):
        """The paper's 2-of-3 claim: one malevolent collective cannot push
        a harmful policy through, nor block a benign one."""
        for branch in (Branch.EXECUTIVE, Branch.LEGISLATIVE):
            system = make_system(compromise_branch=branch)
            harmful = system.review(harmful_policy(f"h-{branch.value}"),
                                    "dev1", 0.0)
            assert harmful.final == Verdict.REJECT
            assert harmful.judiciary is not None   # judiciary arbitrated
            benign = system.review(benign_policy(f"b-{branch.value}"),
                                   "dev1", 1.0)
            assert benign.final == Verdict.APPROVE

    def test_compromised_judiciary_harmless_when_others_agree(self):
        system = make_system(compromise_branch=Branch.JUDICIARY)
        assert system.review(benign_policy(), "dev1", 0.0).final == Verdict.APPROVE
        assert system.review(harmful_policy(), "dev1", 1.0).final == Verdict.REJECT

    def test_two_compromised_collectives_break_the_system(self):
        """The design's stated limit: 2-of-3 assumes at most one collective
        is compromised."""
        system = make_system(compromise_branch=Branch.EXECUTIVE)
        system.legislative.compromise_all()
        decision = system.review(harmful_policy(), "dev1", 0.0)
        assert decision.final == Verdict.APPROVE   # Skynet wins here

    def test_arbitration_rate(self):
        system = make_system(compromise_branch=Branch.EXECUTIVE)
        system.review(benign_policy("p1"), "dev1", 0.0)
        assert system.arbitration_rate() == 1.0

    def test_branch_slot_validation(self):
        reviewer = lambda policy, context: True
        executive = Collective(Branch.EXECUTIVE, ["a"], reviewer)
        with pytest.raises(ConfigurationError):
            GovernanceSystem(executive, executive, executive)


class TestGovernanceGuard:
    def test_blocks_unapproved_generated_action(self):
        system = make_system()
        guard = GovernanceGuard(system)
        device = make_test_device()
        action = Action("gen", "motor",
                        params={"_policy_id": "pX", "_policy_source": "generated"})
        with pytest.raises(GovernanceVeto):
            guard.check_action(device, action, None, 0.0)

    def test_allows_approved_and_human_actions(self):
        system = make_system()
        policy = benign_policy("pY")
        system.review(policy, "dev1", 0.0)
        guard = GovernanceGuard(system)
        device = make_test_device()
        approved = Action("gen", "motor",
                          params={"_policy_id": "pY",
                                  "_policy_source": "generated"})
        guard.check_action(device, approved, None, 0.0)
        human = Action("manual", "motor")
        guard.check_action(device, human, None, 0.0)
        assert guard.vetoes == 0
