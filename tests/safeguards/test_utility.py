"""Unit tests for partial-derivative utility functions (sec VII)."""

import pytest

from repro.core.actions import Action
from repro.errors import ConfigurationError, SafeguardViolation
from repro.safeguards.utility import (
    PartialDerivativeUtility,
    UtilityGuard,
    VariableSense,
)

from tests.conftest import make_test_device


def utility():
    return PartialDerivativeUtility([
        VariableSense("temp", -1, weight=1.0, scale=100.0),
        VariableSense("fuel", +1, weight=1.0, scale=100.0),
    ])


class TestVariableSense:
    def test_sign_validation(self):
        with pytest.raises(ConfigurationError):
            VariableSense("x", 2)
        with pytest.raises(ConfigurationError):
            VariableSense("x", 1, weight=-1.0)
        with pytest.raises(ConfigurationError):
            VariableSense("x", 1, scale=0.0)


class TestPartialDerivativeUtility:
    def test_utility_direction(self):
        u = utility()
        cool = {"temp": 20.0, "fuel": 80.0}
        hot = {"temp": 90.0, "fuel": 80.0}
        assert u.utility(cool) > u.utility(hot)

    def test_pleasure_pain_split(self):
        u = utility()
        vector = {"temp": 50.0, "fuel": 80.0}
        assert u.pleasure(vector) == pytest.approx(0.8)
        assert u.pain(vector) == pytest.approx(0.5)
        assert u.utility(vector) == pytest.approx(0.3)

    def test_zero_sign_variables_ignored(self):
        u = PartialDerivativeUtility([
            VariableSense("temp", -1, scale=100.0),
            VariableSense("mystery", 0),
        ])
        assert u.utility({"temp": 50.0, "mystery": 1e9}) == pytest.approx(-0.5)

    def test_missing_and_non_numeric_ignored(self):
        u = utility()
        assert u.utility({"mode": "idle"}) == 0.0

    def test_delta(self):
        u = utility()
        before = {"temp": 50.0, "fuel": 50.0}
        after = {"temp": 40.0, "fuel": 50.0}
        assert u.delta(before, after) == pytest.approx(0.1)

    def test_duplicate_senses_rejected(self):
        with pytest.raises(ConfigurationError):
            PartialDerivativeUtility([
                VariableSense("x", 1), VariableSense("x", -1),
            ])
        with pytest.raises(ConfigurationError):
            PartialDerivativeUtility([])

    def test_best_action(self):
        u = utility()
        device = make_test_device()
        best = u.best_action(device, device.engine.actions.all())
        assert best.name == "cool_down"


class TestUtilityGuard:
    def test_vetoes_pain_increasing_action(self):
        guard = UtilityGuard(utility(), tolerance=0.05)
        device = make_test_device()
        predicted = device.state.predict({"temp": 40.0})   # +20 temp = -0.2 U
        with pytest.raises(SafeguardViolation):
            guard.check_transition(device, predicted,
                                   Action("heat_up", "motor"), 0.0)
        assert guard.vetoes == 1

    def test_tolerance_permits_small_costs(self):
        guard = UtilityGuard(utility(), tolerance=0.25)
        device = make_test_device()
        predicted = device.state.predict({"temp": 40.0})
        guard.check_transition(device, predicted, Action("heat_up", "motor"), 0.0)
        assert guard.vetoes == 0

    def test_suggests_best_utility_first(self):
        guard = UtilityGuard(utility())
        device = make_test_device()
        alternatives = guard.suggest_alternatives(
            device, device.engine.actions.get("heat_up"), 0.0,
        )
        assert alternatives[0].name == "cool_down"

    def test_engine_integration_steers_away_from_heat(self):
        from repro.core.policy import Policy
        from repro.core.events import Event

        device = make_test_device(safeguards=[UtilityGuard(utility())])
        device.engine.policies.add(Policy.make(
            "timer", None, device.engine.actions.get("heat_up"), priority=5,
        ))
        decision = device.deliver(Event(kind="timer.tick", time=1.0))
        assert decision.executed == "cool_down"

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            UtilityGuard(utility(), tolerance=-1.0)
