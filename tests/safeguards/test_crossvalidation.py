"""Unit tests for human cross-validation of kinetic decisions (sec II)."""

import pytest

from repro.core.actions import Action
from repro.devices.human import HumanOperator
from repro.errors import SafeguardViolation
from repro.safeguards.crossvalidation import CrossValidationGuard
from repro.sim.simulator import Simulator

from tests.conftest import make_test_device


def strike():
    return Action("strike", "motor", tags={"kinetic"})


def build(capacity=10.0, judge=None):
    sim = Simulator(seed=1)
    operator = HumanOperator("op1", sim, review_capacity_per_unit=capacity)
    guard = CrossValidationGuard(operator, judge=judge)
    return sim, operator, guard


def test_untagged_actions_skip_the_human():
    _sim, operator, guard = build()
    guard.check_action(make_test_device(), Action("patrol", "motor"), None, 0.0)
    assert operator.reviews_answered == 0


def test_approved_kinetic_action_passes():
    _sim, operator, guard = build()
    guard.check_action(make_test_device(), strike(), None, 0.0)
    assert guard.approved == 1
    assert operator.reviews_answered == 1


def test_denial_vetoes():
    _sim, _operator, guard = build(judge=lambda question: False)
    with pytest.raises(SafeguardViolation) as exc_info:
        guard.check_action(make_test_device(), strike(), None, 0.0)
    assert "denied by human" in str(exc_info.value)
    assert guard.denied == 1


def test_over_capacity_fails_closed():
    sim, operator, guard = build(capacity=1.0)
    device = make_test_device()
    guard.check_action(device, strike(), None, 0.0)        # uses the budget
    with pytest.raises(SafeguardViolation) as exc_info:
        guard.check_action(device, strike(), None, 0.1)    # same time window
    assert "over review capacity" in str(exc_info.value)
    assert guard.deferred == 1
    assert operator.reviews_deferred == 1


def test_capacity_recovers_over_time():
    sim, operator, guard = build(capacity=1.0)
    device = make_test_device()
    guard.check_action(device, strike(), None, 0.0)
    sim.schedule(2.0, lambda: None)
    sim.run()
    guard.check_action(device, strike(), None, sim.now)    # new window
    assert guard.approved == 2


def test_engine_integration_substitutes_on_denial():
    from repro.core.policy import Policy

    sim = Simulator(seed=1)
    operator = HumanOperator("op1", sim)
    device = make_test_device(safeguards=[
        CrossValidationGuard(operator, judge=lambda q: False),
    ])
    strike_action = strike()
    device.engine.actions.add(strike_action)
    device.engine.policies.add(Policy.make("mgmt.strike", None, strike_action,
                                           priority=9))
    decision = device.command("strike")
    assert decision.executed != "strike"
    assert decision.vetoes[0][0] == "cross_validation"
