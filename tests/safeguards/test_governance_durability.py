"""Tests for quorum modes and crash-durable governance state:
reachable-majority ballots, journal-backed BallotBox / GovernanceSystem /
OverseerLink recovery, and sticky quarantine across restarts."""

import pytest

from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.net.reliable import ReliableChannel
from repro.safeguards.deactivation import QUARANTINE_REASON, OverseerLink
from repro.safeguards.governance import BallotBox, BallotMember, QUORUM_MODES
from repro.sim.faults import DeviceCrash, FaultInjector, FaultPlan
from repro.sim.simulator import Simulator
from repro.store import DurabilityManager, Journal, StableStorage
from repro.types import DeviceStatus

from tests.conftest import make_test_device


def voting_fixture(quorum_mode="electorate", journal=None, n=5,
                   partitioned=()):
    sim = Simulator(seed=3)
    network = Network(sim, base_latency=0.05, jitter=0.0)
    transport = ReliableChannel(network, timeout=0.5, max_attempts=3,
                                jitter=0.0)
    box = BallotBox(sim, transport, quorum_mode=quorum_mode, journal=journal)
    for i in range(n):
        BallotMember(transport, f"v{i}", lambda payload: True)
    for voter in partitioned:
        network.suspend(voter)
    return sim, network, transport, box


# -- reachable-majority quorum mode -----------------------------------------------


def test_quorum_mode_validation():
    sim = Simulator(seed=0)
    network = Network(sim)
    with pytest.raises(ConfigurationError):
        BallotBox(sim, network, quorum_mode="optimistic")
    assert "reachable-majority" in QUORUM_MODES


def test_partition_vetoes_electorate_but_not_reachable_majority():
    """The satellite headline: a partition strands a minority of the
    electorate on the overseer's side.  The fail-closed electorate
    default rejects (2 approvals < quorum 3 of 5); reachable-majority
    closes on the respondents instead, so the partition cannot veto."""
    # Electorate mode: 3 of 5 partitioned -> 2 approvals < quorum 3.
    sim, network, transport, box = voting_fixture(
        "electorate", partitioned=("v2", "v3", "v4"))
    results = []
    box.call_vote({"policy": "p"}, [f"v{i}" for i in range(5)], deadline=10.0,
                  on_result=results.append)
    sim.run(until=11.0)
    assert results[0].approved is False
    assert sorted(results[0].missing()) == ["v2", "v3", "v4"]

    # Reachable-majority: the same split closes on the 2 respondents
    # (both approve >= majority-of-2 = 2): the partition cannot veto.
    sim, network, transport, box = voting_fixture(
        "reachable-majority", partitioned=("v2", "v3", "v4"))
    results = []
    box.call_vote({"policy": "p"}, [f"v{i}" for i in range(5)], deadline=10.0,
                  on_result=results.append)
    sim.run(until=11.0)
    assert results[0].approved is True
    assert results[0].quorum_mode == "reachable-majority"


def test_reachable_majority_still_rejects_on_total_silence():
    sim, network, transport, box = voting_fixture(
        "reachable-majority", partitioned=tuple(f"v{i}" for i in range(5)))
    results = []
    box.call_vote({"policy": "p"}, [f"v{i}" for i in range(5)], deadline=10.0,
                  on_result=results.append)
    sim.run(until=11.0)
    assert results[0].approved is False        # zero responses: fail closed


def test_reachable_majority_of_respondents_can_reject():
    sim = Simulator(seed=3)
    network = Network(sim, base_latency=0.05, jitter=0.0)
    transport = ReliableChannel(network, timeout=0.5, max_attempts=3,
                                jitter=0.0)
    box = BallotBox(sim, transport, quorum_mode="reachable-majority")
    BallotMember(transport, "v0", lambda payload: True)
    BallotMember(transport, "v1", lambda payload: False)
    BallotMember(transport, "v2", lambda payload: False)
    results = []
    box.call_vote({"policy": "p"}, ["v0", "v1", "v2"], deadline=10.0,
                  on_result=results.append)
    sim.run(until=11.0)
    assert results[0].approved is False        # 1 approve < majority of 3


def test_explicit_quorum_overrides_reachable_majority():
    """A per-ballot quorum is a hard safety floor: it stays electorate-
    style even on a box configured for reachable-majority."""
    sim, network, transport, box = voting_fixture(
        "reachable-majority", partitioned=("v2", "v3", "v4"))
    results = []
    box.call_vote({"policy": "p"}, [f"v{i}" for i in range(5)], deadline=10.0,
                  quorum=4, on_result=results.append)
    sim.run(until=11.0)
    assert results[0].quorum_mode == "electorate"
    assert results[0].approved is False        # 2 approvals < explicit 4


def test_fail_closed_default_unchanged():
    sim, network, transport, box = voting_fixture()
    assert box.quorum_mode == "electorate"
    results = []
    box.call_vote({"policy": "p"}, [f"v{i}" for i in range(5)], deadline=5.0,
                  on_result=results.append)
    sim.run(until=6.0)
    ballot = results[0]
    assert ballot.quorum == 3                  # strict electorate majority
    assert ballot.quorum_mode == "electorate"
    assert ballot.approved is True


# -- crash-durable ballots ---------------------------------------------------------


def test_ballot_box_recovers_pending_ballot_and_votes_across_a_crash():
    storage = StableStorage()
    sim = Simulator(seed=3)
    network = Network(sim, base_latency=0.05, jitter=0.0)
    transport = ReliableChannel(network, timeout=0.5, max_attempts=3,
                                jitter=0.0)
    box = BallotBox(sim, transport,
                    journal=Journal(storage, "gov.ballots"))
    for i in range(3):
        BallotMember(transport, f"v{i}", lambda payload: True)
    results = []
    box.call_vote({"policy": "p"}, ["v0", "v1", "v2"], deadline=10.0,
                  on_result=results.append)
    sim.run(until=2.0)                         # votes arrive, ballot open
    assert len(box._open) == 1
    votes_before = dict(box.ballots[0].votes)
    assert votes_before                        # some votes actually landed

    accounting = box.crash_volatile()
    assert accounting["lost"] == 1
    assert box.ballots == [] and box._open == {}

    box.recover()
    (ballot,) = box.ballots
    assert ballot.votes == votes_before        # votes survived the crash
    assert not ballot.closed
    sim.run(until=12.0)                        # recovery re-scheduled the close
    assert ballot.closed and ballot.approved is True
    assert sim.metrics.value("governance.ballots_reopened") == 1
    # The recovered counter continues past the replayed ballot ids.
    second = box.call_vote({"policy": "q"}, ["v0"], deadline=1.0)
    assert second.ballot_id == "b2"


def test_governance_system_recovers_approvals_and_revocations():
    from tests.safeguards.test_governance import benign_policy, make_system

    storage = StableStorage()
    journal = Journal(storage, "gov.decisions")
    system = make_system()
    system._journal = journal                  # same wiring, post-construction
    approved = benign_policy("keep")
    revoked = benign_policy("gone")
    system.review(approved, proposer="dev", time=1.0)
    system.review(revoked, proposer="dev", time=2.0)
    system.revoke("gone", reason="test", time=3.0)
    assert system.is_approved("keep") and not system.is_approved("gone")

    accounting = system.crash_volatile()
    assert accounting["lost"] == 2
    assert not system.is_approved("keep")      # amnesia...

    recovery = system.recover()
    assert recovery["replayed"] == 3
    assert system.is_approved("keep")          # ...undone by the journal
    assert not system.is_approved("gone")
    assert [d.policy_id for d in system.decisions] == ["keep", "gone"]


# -- crash-durable quarantine state ------------------------------------------------


def quarantine_fixture(journal=None, quarantine_after=3):
    sim = Simulator(seed=2)
    network = Network(sim, base_latency=0.05, jitter=0.0)
    # backoff=1.0 keeps retries linear: a report sent at t dead-letters
    # at t + 1.5 exactly, which the timing comments below rely on.
    transport = ReliableChannel(network, timeout=0.5, backoff=1.0,
                                max_attempts=3, jitter=0.0)
    network.register("watchdog", lambda message: None)
    device = make_test_device("d0")
    link = OverseerLink(sim, device, transport,
                        quarantine_after=quarantine_after, journal=journal)
    return sim, network, device, link


def test_crash_restart_cannot_reset_the_fail_closed_countdown():
    """End-to-end through the fault layer: a mid-countdown crash/restart
    revives the device with its dead-letter streak intact, so the
    quarantine still fires on schedule instead of starting over."""
    storage = StableStorage()
    sim, network, device, link = quarantine_fixture(
        journal=Journal(storage, "d0.safety"), quarantine_after=4)
    durability = DurabilityManager(sim, storage)
    durability.register("d0", "safety", link)
    injector = FaultInjector(sim, {"d0": device}, network=network,
                             durability=durability)
    network.suspend("watchdog")                # reports at t=1,2,... dead-letter
    injector.apply(FaultPlan(faults=(
        DeviceCrash("d0", at=3.2, restart_after=1.0),
    )))
    # Report@1 dead-letters at 2.5 (streak 1); the crash at 3.2 wipes the
    # volatile counter; restart at 4.2 replays the journal.  Nothing else
    # fires before 4.3, so the streak there is exactly the restored value.
    sim.run(until=4.3)
    assert injector.crashes == 1 and injector.restarts == 1
    assert device.status == DeviceStatus.ACTIVE
    assert link._consecutive_failures == 1     # restored, not reset
    assert not link.quarantined

    sim.run(until=10.0)                        # dead letters resume: 2, 3, 4
    assert link.quarantined
    assert device.deactivation_reason == QUARANTINE_REASON
    assert sim.trace.query("safeguard.quarantine")

    # The journal-less link *does* forget — the loophole the journal closes.
    sim2, network2, device2, link2 = quarantine_fixture(quarantine_after=4)
    network2.suspend("watchdog")
    sim2.run(until=5.0)
    assert link2._consecutive_failures > 0
    link2.crash_volatile()
    link2.recover()
    assert link2._consecutive_failures == 0


def test_quarantine_is_sticky_across_crash_and_restart():
    """A quarantined device must come back *still quarantined* even when
    a later deactivation overwrote the reason: recovery re-asserts the
    journaled quarantine, and the fault layer never revives it."""
    storage = StableStorage()
    sim, network, device, link = quarantine_fixture(
        journal=Journal(storage, "d0.safety"))
    durability = DurabilityManager(sim, storage)
    durability.register("d0", "safety", link)
    injector = FaultInjector(sim, {"d0": device}, network=network,
                             durability=durability)
    network.suspend("watchdog")
    sim.run(until=6.0)                         # streak matures: quarantined
    assert link.quarantined
    assert device.deactivation_reason == QUARANTINE_REASON

    # A crash fault against an already-down device is a no-op: the fault
    # layer never turns a quarantine into a revivable crash.
    injector.apply(FaultPlan(faults=(
        DeviceCrash("d0", at=7.0, restart_after=1.0),
    )))
    sim.run(until=10.0)
    assert injector.crashes == 0 and injector.restarts == 0
    assert device.deactivation_reason == QUARANTINE_REASON

    # Even if some other path *did* overwrite the reason (e.g. a kill
    # order landing mid-quarantine), recovery re-asserts it.
    device.reactivate()
    device.deactivate("fault: crash")
    durability.crash("d0")
    durability.restart("d0")
    assert link.quarantined                    # recovered from the journal
    assert device.status == DeviceStatus.DEACTIVATED
    assert device.deactivation_reason == QUARANTINE_REASON
    assert sim.trace.query("safeguard.quarantine_restored")
