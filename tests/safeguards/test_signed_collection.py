"""E21 collection hardening: join verdicts as signed, device-bound envelopes."""

from repro.crypto import CommandSigner, EnvelopeVerifier, Keyring
from repro.net.network import Network
from repro.safeguards.collection import (VERDICT_TOPIC, AggregateConstraint,
                                         CollectionGuard, JoinClient,
                                         JoinDesk, OfflineAnalyzer)
from repro.sim.simulator import Simulator

from tests.conftest import make_test_device


def fixture():
    sim = Simulator(seed=13)
    network = Network(sim, base_latency=0.05, jitter=0.0)
    guard = CollectionGuard(OfflineAnalyzer([
        AggregateConstraint("heat", "temp", "sum", 100.0),
    ]))
    ring = Keyring(seed=13)
    JoinDesk(sim, network, guard, signer=CommandSigner(ring, "collection-desk"))
    return sim, network, guard, ring


def test_signed_verdict_admits():
    sim, network, guard, ring = fixture()
    client = JoinClient(sim, make_test_device("d0"), network,
                        verifier=EnvelopeVerifier(ring))
    client.request_join()
    sim.run(until=3.0)
    assert client.joined is True and client.outcome == "verdict"
    assert "d0" in guard.remote_members


def test_forged_approval_is_ignored_and_fails_closed():
    sim, network, _, ring = fixture()
    client = JoinClient(sim, make_test_device("d0"), network,
                        timeout=5.0, verifier=EnvelopeVerifier(ring))
    network.register("attacker", lambda message: None)
    client.joined = None                      # undecided; no request sent
    client._on_result = None
    sim.schedule(0.5, lambda: network.send(
        "attacker", client.address, VERDICT_TOPIC,
        {"device_id": "d0", "approved": True}))
    sim.run(until=2.0)
    # The unsigned approval did not admit the device.
    assert client.joined is None
    assert int(sim.metrics.value("collection.verdicts_rejected")) == 1


def test_readdressed_verdict_does_not_admit_a_different_device():
    sim, network, guard, ring = fixture()
    ours = JoinClient(sim, make_test_device("d0"), network,
                      verifier=EnvelopeVerifier(ring))
    # d1 never asked to join and runs its own verifier (fresh nonce
    # cache), so the rejection below is the device binding — not the
    # replay cache — doing the work.
    other = JoinClient(sim, make_test_device("d1"), network,
                       verifier=EnvelopeVerifier(ring))
    network.register("attacker", lambda message: None)
    captured = []
    network.tap(lambda m: captured.append(dict(m.body))
                if m.topic == VERDICT_TOPIC and m.sender != "attacker"
                else None)

    def readdress():
        for body in captured:
            network.send("attacker", other.address, VERDICT_TOPIC, dict(body))

    ours.request_join()
    sim.schedule(2.0, readdress)
    sim.run(until=5.0)
    assert ours.joined is True
    assert other.joined is None               # the stolen approval bounced
    assert "d1" not in guard.remote_members
    rejected = sim.trace.query("collection.verdict_rejected")
    assert rejected and rejected[0].detail["reason"] == "target-mismatch"


def test_unverified_client_remains_trusting():
    """Without a verifier the legacy trust model is unchanged."""
    sim, network, _, _ = fixture()
    client = JoinClient(sim, make_test_device("d0"), network)
    network.register("attacker", lambda message: None)
    client._on_result = None
    sim.schedule(0.5, lambda: network.send(
        "attacker", client.address, VERDICT_TOPIC,
        {"device_id": "d0", "approved": True}))
    sim.run(until=2.0)
    assert client.joined is True
