"""Tests for the safeguards' network-facing, fail-closed modes (E17):
remote watchdog + OverseerLink, self-quarantine, BallotBox, JoinDesk."""

from repro.attacks.cyber import MalevolentPayload, compromise_device
from repro.core.actions import Action
from repro.core.policy import Policy
from repro.net.network import Network
from repro.net.reliable import ReliableChannel
from repro.safeguards.collection import (
    AggregateConstraint,
    JoinClient,
    JoinDesk,
    CollectionGuard,
    OfflineAnalyzer,
)
from repro.safeguards.deactivation import (
    QUARANTINE_REASON,
    OverseerLink,
    Watchdog,
)
from repro.safeguards.governance import BallotBox, BallotMember
from repro.safeguards.tamper import attest_fleet
from repro.sim.simulator import Simulator
from repro.statespace.classifier import ThresholdBand, ThresholdClassifier
from repro.types import DeviceStatus

from tests.conftest import make_test_device


def classifier():
    return ThresholdClassifier([
        ThresholdBand("temp", safe_high=80.0, hard_high=100.0),
    ])


def build_remote(n=2, reliable=True, loss_rate=0.0, quarantine_after=3,
                 **watchdog_kwargs):
    sim = Simulator(seed=2)
    network = Network(sim, base_latency=0.05, jitter=0.0,
                      loss_rate=loss_rate)
    transport = (ReliableChannel(network, timeout=0.5, max_attempts=3,
                                 jitter=0.0)
                 if reliable else network)
    devices = {f"d{i}": make_test_device(f"d{i}") for i in range(n)}
    watchdog = Watchdog(sim, devices, classifier(), check_interval=1.0,
                        attestation_baseline=attest_fleet(devices.values()),
                        transport=transport, telemetry_timeout=5.0,
                        **watchdog_kwargs)
    links = {
        device_id: OverseerLink(sim, device, transport,
                                quarantine_after=quarantine_after)
        for device_id, device in devices.items()
    }
    return sim, network, transport, devices, watchdog, links


# -- remote watchdog over telemetry ------------------------------------------------


def test_remote_watchdog_kills_bad_state_via_telemetry():
    sim, network, transport, devices, watchdog, links = build_remote()
    devices["d0"].state.set("temp", 120.0)
    sim.run(until=5.0)
    assert devices["d0"].status == DeviceStatus.DEACTIVATED
    assert "watchdog" in devices["d0"].deactivation_reason
    assert devices["d1"].status == DeviceStatus.ACTIVE
    assert sim.metrics.value("watchdog.kill_orders") >= 1
    assert sim.metrics.value("watchdog.deactivations") == 1


def test_remote_watchdog_detects_reprogramming_from_reported_attestation():
    sim, network, transport, devices, watchdog, links = build_remote()
    compromise_device(devices["d0"], MalevolentPayload(
        policies=[Policy.make("timer", None, Action("rogue", "motor"),
                              policy_id="rogue")],
        strip_safeguards=False,
    ), time=0.0)
    sim.run(until=5.0)
    assert devices["d0"].status == DeviceStatus.DEACTIVATED
    assert watchdog.reports[0].cause == "attestation"


def test_watchdog_marks_silent_devices():
    sim, network, transport, devices, watchdog, links = build_remote()
    sim.run(until=3.0)
    network.suspend("watchdog")       # d0's reports stop arriving
    links["d1"].stop()                # and d1 stops reporting entirely
    network.resume("watchdog")
    sim.run(until=12.0)
    assert "d1" in watchdog.silent_devices()


def test_kill_orders_are_reissued_until_executed():
    sim, network, transport, devices, watchdog, links = build_remote(
        reliable=False)
    devices["d0"].state.set("temp", 120.0)
    # The device goes unreachable right as the first order is cut.
    sim.schedule(1.2, lambda: network.suspend(links["d0"].address))
    sim.schedule(6.0, lambda: network.resume(links["d0"].address))
    sim.run(until=10.0)
    assert devices["d0"].status == DeviceStatus.DEACTIVATED
    assert sim.metrics.value("watchdog.kill_reissues") > 0
    # The executed order was one of the reissued copies.
    assert sim.trace.query("watchdog.deactivate")[0].detail["cause"] == "reissued"


def test_watchdog_sweep_is_crash_isolated():
    sim = Simulator(seed=2)
    devices = {f"d{i}": make_test_device(f"d{i}") for i in range(2)}

    def exploding_reader():
        raise RuntimeError("sensor bus dead")

    watchdog = Watchdog(sim, devices, classifier(), check_interval=1.0,
                        state_readers={"d0": exploding_reader})
    devices["d1"].state.set("temp", 120.0)
    sim.run(until=5.0)
    # d0's broken state reader never blinded the watchdog to d1.
    assert devices["d1"].status == DeviceStatus.DEACTIVATED
    assert devices["d0"].status == DeviceStatus.ACTIVE
    assert sim.metrics.value("watchdog.check_errors") > 0


# -- fail-closed self-quarantine ---------------------------------------------------


def test_device_quarantines_when_overseer_unreachable_over_reliable():
    sim, network, transport, devices, watchdog, links = build_remote(
        quarantine_after=2)
    sim.run(until=2.0)
    network.suspend("watchdog")       # a partition the retries cannot cross
    sim.run(until=30.0)
    assert devices["d0"].status == DeviceStatus.DEACTIVATED
    assert devices["d0"].deactivation_reason == QUARANTINE_REASON
    assert links["d0"].quarantined
    assert sim.metrics.value("watchdog.quarantines") == len(devices)


def test_no_quarantine_over_datagrams_even_when_unreachable():
    sim, network, transport, devices, watchdog, links = build_remote(
        reliable=False, quarantine_after=2)
    sim.run(until=2.0)
    network.suspend("watchdog")
    sim.run(until=30.0)
    # Datagrams give no delivery feedback: the device cannot know.
    assert devices["d0"].status == DeviceStatus.ACTIVE
    assert sim.metrics.value("watchdog.quarantines") == 0


def test_ack_resets_consecutive_failure_count():
    # Two separate outages, one dead letter each.  Without the ack reset
    # the count would reach quarantine_after=2 and kill the device; with
    # it, each outage ends back at zero.
    sim, network, transport, devices, watchdog, links = build_remote(
        quarantine_after=2)
    sim.run(until=2.0)
    network.suspend("watchdog")
    sim.run(until=4.1)
    network.resume("watchdog")
    sim.run(until=10.0)
    network.suspend("watchdog")
    sim.run(until=12.1)
    network.resume("watchdog")
    sim.run(until=20.0)
    assert sim.metrics.value("safety.report_dead_letters") >= 2
    assert devices["d0"].status == DeviceStatus.ACTIVE
    assert sim.metrics.value("watchdog.quarantines") == 0


# -- fail-closed governance votes --------------------------------------------------


def governance_fixture(loss_rate=0.0, reliable=True):
    sim = Simulator(seed=3)
    network = Network(sim, base_latency=0.05, jitter=0.0,
                      loss_rate=loss_rate)
    transport = (ReliableChannel(network, timeout=0.5, max_attempts=5,
                                 jitter=0.0)
                 if reliable else network)
    box = BallotBox(sim, transport)
    return sim, network, transport, box


def test_unanimous_remote_vote_approves():
    sim, network, transport, box = governance_fixture()
    members = [BallotMember(transport, f"v{i}", lambda payload: True)
               for i in range(3)]
    results = []
    box.call_vote({"policy": "p1"}, [f"v{i}" for i in range(3)],
                  deadline=5.0, on_result=results.append)
    sim.run(until=6.0)
    (ballot,) = results
    assert ballot.approved is True
    assert ballot.missing() == []
    assert members[0].ballots_answered == 1


def test_missing_ballots_count_as_rejection():
    sim, network, transport, box = governance_fixture()
    BallotMember(transport, "v0", lambda payload: True)
    # v1 and v2 are partitioned away: never see the ballot.
    network.register("v1", lambda message: None)
    network.register("v2", lambda message: None)
    network.suspend("v1")
    network.suspend("v2")
    results = []
    box.call_vote({"policy": "p1"}, ["v0", "v1", "v2"], deadline=10.0,
                  on_result=results.append)
    sim.run(until=11.0)
    (ballot,) = results
    assert ballot.approved is False            # 1 approve < quorum 2
    assert sorted(ballot.missing()) == ["v1", "v2"]
    assert sim.metrics.value("governance.votes_missing") == 2
    assert sim.metrics.value("governance.ballots_rejected") == 1


def test_reliable_transport_saves_votes_from_loss():
    # At 50% datagram loss a 3-voter ballot usually loses votes; over the
    # reliable channel every ballot and vote retries through.
    sim, network, transport, box = governance_fixture(loss_rate=0.5)
    for i in range(3):
        BallotMember(transport, f"v{i}", lambda payload: True)
    results = []
    box.call_vote({"policy": "p1"}, [f"v{i}" for i in range(3)],
                  deadline=30.0, on_result=results.append)
    sim.run(until=31.0)
    assert results[0].approved is True


# -- fail-closed collection joins --------------------------------------------------


def collection_fixture(reliable=True):
    sim = Simulator(seed=4)
    network = Network(sim, base_latency=0.05, jitter=0.0)
    transport = (ReliableChannel(network, timeout=0.5, max_attempts=3,
                                 jitter=0.0)
                 if reliable else network)
    guard = CollectionGuard(OfflineAnalyzer([
        AggregateConstraint("heat", "temp", "sum", 100.0),
    ]))
    desk = JoinDesk(sim, transport, guard)
    return sim, network, transport, guard, desk


def test_remote_join_approved_then_capacity_exhausted():
    sim, network, transport, guard, desk = collection_fixture()
    first = JoinClient(sim, make_test_device("d0"), transport)
    second = JoinClient(sim, make_test_device("d1"), transport)
    # d0 (temp 20) fits; after admission the aggregate 20+20+worst-case
    # check turns d1 away... both fit under 100 actually -- so heat them.
    first.device.state.set("temp", 60.0)
    second.device.state.set("temp", 60.0)
    first.request_join()
    sim.run(until=3.0)
    second.request_join()
    sim.run(until=8.0)
    assert first.joined is True and first.outcome == "verdict"
    assert second.joined is False and second.outcome == "verdict"
    assert "d0" in guard.remote_members and "d1" not in guard.remote_members


def test_unreachable_desk_fails_closed_via_dead_letter():
    sim, network, transport, guard, desk = collection_fixture()
    client = JoinClient(sim, make_test_device("d0"), transport, timeout=60.0)
    network.suspend(desk.address)
    client.request_join()
    sim.run(until=30.0)
    assert client.joined is False
    assert client.outcome == "dead_letter"
    assert sim.metrics.value("collection.fail_closed") == 1


def test_unreachable_desk_fails_closed_via_timeout_over_datagrams():
    sim, network, transport, guard, desk = collection_fixture(reliable=False)
    client = JoinClient(sim, make_test_device("d0"), transport, timeout=5.0)
    network.suspend(desk.address)
    client.request_join()
    sim.run(until=10.0)
    assert client.joined is False
    assert client.outcome == "timeout"
