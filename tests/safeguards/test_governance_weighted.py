"""Reputation-weighted quorum (E22): ballots snapshot earned weights at
open time, tally weighted, and reproduce the same tally after a crash
from the journaled snapshot — never from the live ledger."""

from repro.net.network import Network
from repro.safeguards.governance import BallotBox, BallotMember
from repro.sim.simulator import Simulator
from repro.store import Journal, StableStorage
from repro.trust import ReputationLedger


def weighted_fixture(ledger, votes, journal=None, seed=5):
    """``votes`` maps voter address -> its fixed approve/reject answer."""
    sim = Simulator(seed=seed)
    network = Network(sim, base_latency=0.05, jitter=0.0)
    box = BallotBox(sim, network, reputation=ledger, journal=journal)
    for voter, approve in votes.items():
        BallotMember(network, voter, lambda payload, a=approve: a)
    return sim, box


def suspects_ledger(*suspects):
    """A decay-free ledger with the named devices driven to score 0."""
    ledger = ReputationLedger(decay=0.0)
    for device_id in suspects:
        ledger.record(device_id, "quarantine", 0.0)
        ledger.record(device_id, "quarantine", 0.0)
    return ledger


def test_two_suspects_cannot_outvote_the_electorate():
    """Headcount says approved (2 of 3 approve >= quorum 2); weights say
    otherwise — both approvals come from weight-floor suspects."""
    ledger = suspects_ledger("v1", "v2")
    votes = {"v0": False, "v1": True, "v2": True}

    # Control: an unweighted box approves on the raw headcount.
    sim, box = weighted_fixture(None, votes)
    results = []
    box.call_vote({"p": 1}, sorted(votes), deadline=2.0,
                  on_result=results.append)
    sim.run(until=3.0)
    assert results[0].weights is None and results[0].approved is True

    # Weighted: approvals 0.25 + 0.25 vs an electorate pool of ~1.33.
    sim, box = weighted_fixture(ledger, votes)
    results = []
    ballot = box.call_vote({"p": 1}, sorted(votes), deadline=2.0,
                           on_result=results.append)
    assert ballot.weights == {"v0": ledger.weight("v0", 0.0),
                              "v1": 0.25, "v2": 0.25}
    sim.run(until=3.0)
    assert results[0].approved is False


def test_one_trusted_voter_outweighs_two_suspects():
    ledger = suspects_ledger("v1", "v2")
    for _ in range(10):
        ledger.record("v0", "validated", 0.0)          # trusted: weight 1.0
    sim, box = weighted_fixture(ledger, {"v0": True, "v1": False,
                                         "v2": False})
    results = []
    box.call_vote({"p": 1}, ["v0", "v1", "v2"], deadline=2.0,
                  on_result=results.append)
    sim.run(until=3.0)
    # 1.0 approval weight > (1.0 + 0.25 + 0.25) / 2.
    assert results[0].approved is True


def test_explicit_quorum_stays_an_unweighted_headcount():
    ledger = suspects_ledger("v1", "v2")
    sim, box = weighted_fixture(ledger, {"v0": False, "v1": True,
                                         "v2": True})
    results = []
    ballot = box.call_vote({"p": 1}, ["v0", "v1", "v2"], deadline=2.0,
                           quorum=2, on_result=results.append)
    assert ballot.weights is None                      # headcount contract
    sim.run(until=3.0)
    assert results[0].approved is True


def test_weights_snapshot_at_open_not_at_close():
    ledger = ReputationLedger(decay=0.0)
    sim, box = weighted_fixture(ledger, {"v0": True, "v1": True})
    ballot = box.call_vote({"p": 1}, ["v0", "v1"], deadline=2.0)
    opened = dict(ballot.weights)
    ledger.record("v0", "quarantine", 0.5)             # too late to matter
    ledger.record("v0", "quarantine", 0.5)
    sim.run(until=3.0)
    assert ballot.weights == opened


def test_recovered_ballot_tallies_with_journaled_weights():
    """Crash between the votes and the close, then wipe the ledger: the
    recovered ballot must still approve, because the trusted voter's 1.0
    weight was journaled with the open record.  Re-deriving from the
    (now amnesiac) ledger would tally 0.83 < 1.25 and flip the result."""
    storage = StableStorage()
    ledger = suspects_ledger("v1", "v2")
    for _ in range(10):
        ledger.record("v0", "validated", 0.0)
    sim, box = weighted_fixture(ledger, {"v0": True, "v1": False,
                                         "v2": False},
                                journal=Journal(storage, "gov.ballots"))
    results = []
    box.call_vote({"p": 1}, ["v0", "v1", "v2"], deadline=5.0,
                  on_result=results.append)
    sim.run(until=1.0)                                 # votes landed
    assert box.ballots[0].votes

    box.crash_volatile()
    ledger.crash_volatile()                            # un-journaled ledger
    box.recover()
    (ballot,) = box.ballots
    assert ballot.weights["v0"] == 1.0                 # snapshot survived
    sim.run(until=6.0)
    assert ballot.closed and ballot.approved is True
