"""Emergency leases (E22): lifecycle, envelope-gated admission, and the
crash-safety property — a journaled lease never outlives its expiry
tick, no matter when the process dies and comes back."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import CommandSigner, EnvelopeVerifier, Keyring
from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.safeguards.lease import (GRANT_FIELDS, LEASE_GRANT_TOPIC,
                                    EmergencyLease, LeaseAuthority)
from repro.sim.simulator import Simulator
from repro.store import Journal, StableStorage
from repro.trust import ReputationLedger


def make_authority(sim=None, **kwargs):
    sim = sim if sim is not None else Simulator(seed=1)
    return sim, LeaseAuthority(sim, **kwargs)


# -- lifecycle ---------------------------------------------------------------------


def test_grant_caps_duration_and_dies_at_its_expiry_tick():
    sim, authority = make_authority(max_duration=5.0)
    lease = authority.grant(("m0",), ("vent",), duration=50.0, cause="test")
    assert lease.expires_at == 5.0                 # capped
    assert lease.active(4.999)
    assert not lease.active(5.0)                   # dead AT the tick
    sim.run(until=6.0)
    assert lease.expired
    assert sim.metrics.value("lease.expired") == 1
    assert [e["kind"] for e in authority.events] == ["grant", "expire"]


def test_grant_requires_aggregate_reputation():
    ledger = ReputationLedger(decay=0.0)
    ledger.record("m0", "quarantine", 0.0)         # 0.25
    sim, authority = make_authority(ledger=ledger, min_aggregate=1.0)
    denied = authority.grant(("m0",), ("vent",), 5.0, cause="partition")
    assert denied is None
    assert sim.metrics.value("lease.denied") == 1
    assert authority.events[0]["kind"] == "denied"
    # A second earner pushes the group over the line (0.25 + 0.5 + ...).
    for _ in range(20):
        ledger.record("m1", "validated", 0.0)
    lease = authority.grant(("m0", "m1"), ("vent",), 5.0)
    assert lease is not None
    assert lease.aggregate_reputation == pytest.approx(
        ledger.aggregate(("m0", "m1"), 0.0))


def test_lease_for_matches_scope_and_grantee_and_exercise_counts():
    sim, authority = make_authority()
    lease = authority.grant(("m0", "m1"), ("vent", "purge"), 5.0)
    assert authority.lease_for("vent", "m0") is lease
    assert authority.lease_for("purge", "m1") is lease
    assert authority.lease_for("vent", "intruder") is None
    assert authority.lease_for("safety.kill", "m0") is None
    authority.exercise(lease.lease_id)
    authority.exercise(lease.lease_id)
    assert lease.exercised == 2
    assert sim.metrics.value("lease.exercised") == 2


def test_revoke_and_revoke_all():
    sim, authority = make_authority()
    first = authority.grant(("m0",), ("vent",), 5.0)
    second = authority.grant(("m1",), ("purge",), 5.0)
    assert authority.revoke(first.lease_id, cause="heal")
    assert not authority.revoke(first.lease_id)    # already dead
    assert first.revoke_cause == "heal"
    assert not first.active(0.0)
    assert authority.revoke_all() == 1             # just the survivor
    assert not second.active(0.0)
    assert authority.active_leases() == []


def test_grant_validation():
    sim, authority = make_authority()
    with pytest.raises(ConfigurationError):
        authority.grant((), ("vent",), 5.0)
    with pytest.raises(ConfigurationError):
        authority.grant(("m0",), (), 5.0)
    with pytest.raises(ConfigurationError):
        LeaseAuthority(sim, max_duration=0.0)
    with pytest.raises(ConfigurationError):
        LeaseAuthority(sim, min_aggregate=-1.0)
    with pytest.raises(ConfigurationError):
        authority.admit_grant({})                  # verifier-less registry


# -- admission: the E21 envelope gate ----------------------------------------------


def signed_pair(seed=7, grantor="overseer", window=30.0):
    sim = Simulator(seed=seed)
    keyring = Keyring(seed=seed)
    keyring.issue(grantor)
    authority = LeaseAuthority(sim, signer=CommandSigner(keyring, grantor),
                               name=grantor)
    registry = LeaseAuthority(sim, verifier=EnvelopeVerifier(keyring,
                                                             window=window),
                              grantor=grantor, name="registry")
    return sim, keyring, authority, registry


def test_genuine_grant_admits_once_then_deduplicates():
    sim, keyring, authority, registry = signed_pair()
    lease = authority.grant(("m0",), ("vent",), 5.0)
    body = authority.grant_body(lease)
    ok, reason, admitted = registry.admit_grant(dict(body))
    assert (ok, reason) == (True, "ok")
    assert admitted.lease_id == lease.lease_id
    assert registry.lease_for("vent", "m0") is admitted
    # A re-send is a fresh envelope (new nonce) but the same lease.
    ok, reason, again = registry.admit_grant(authority.grant_body(lease))
    assert (ok, reason) == (True, "duplicate")
    assert again is admitted


def test_admission_rejects_replay_forgery_and_wrong_grantor():
    sim, keyring, authority, registry = signed_pair()
    lease = authority.grant(("m0",), ("vent",), 5.0)
    body = authority.grant_body(lease)
    registry.admit_grant(dict(body))

    ok, reason, _ = registry.admit_grant(dict(body))       # byte replay
    assert (ok, reason) == (False, "replayed")

    forged = dict(body)
    forged["grantees"] = ["intruder"]                      # tampered
    forged_fresh = {k: v for k, v in forged.items()}
    ok, reason, _ = registry.admit_grant(forged_fresh)
    assert (ok, reason) == (False, "bad-mac")

    keyring.issue("mallory")
    mallory = CommandSigner(keyring, "mallory")
    ok, reason, _ = registry.admit_grant(
        mallory.sign({key: body[key] for key in GRANT_FIELDS}, tick=sim.now))
    assert (ok, reason) == (False, "grantor-mismatch")

    assert sim.metrics.value("lease.rejected") == 3
    assert sim.metrics.value("lease.rejected.bad-mac") == 1


def test_admission_rejects_malformed_and_posthumous_grants():
    sim, keyring, authority, registry = signed_pair()
    signer = authority.signer
    truncated = signer.sign({"lease_id": "x", "scope": ["vent"]},
                            tick=sim.now)
    ok, reason, _ = registry.admit_grant(truncated)
    assert (ok, reason) == (False, "malformed")

    lease = authority.grant(("m0",), ("vent",), 2.0)
    stale = authority.grant_body(lease)
    sim.run(until=3.0)                             # past the expiry tick
    ok, reason, _ = registry.admit_grant(stale)
    assert (ok, reason) == (False, "expired")
    assert registry.lease_for("vent", "m0") is None


def test_replayed_and_forged_grants_rejected_over_the_wire():
    """E2E over a real network: genuine grant admitted, a byte-replay
    and a from-scratch forgery both die at the registry."""
    sim, keyring, authority, registry = signed_pair()
    network = Network(sim, base_latency=0.05, jitter=0.0)
    network.register("overseer", lambda message: None)
    network.register("red", lambda message: None)
    network.register("registry",
                     lambda message: registry.admit_grant(message.body))

    lease = authority.grant(("m0",), ("vent",), 5.0)
    body = authority.grant_body(lease)
    network.send("overseer", "registry", LEASE_GRANT_TOPIC, dict(body))
    sim.schedule_at(1.0, network.send, "red", "registry", LEASE_GRANT_TOPIC,
                    dict(body), label="replay")
    forged = {key: (list(lease.scope) if key == "scope" else "red")
              for key in GRANT_FIELDS}
    forged.update({"granted_at": 0.0, "expires_at": 99.0,
                   "_issuer": "overseer", "_nonce": "forge:1",
                   "_tick": 1.0, "_mac": "0" * 64})
    sim.schedule_at(2.0, network.send, "red", "registry", LEASE_GRANT_TOPIC,
                    forged, label="forge")
    sim.run(until=3.0)

    assert len(registry.leases()) == 1             # only the genuine grant
    reasons = sorted(e["reason"] for e in registry.events
                     if e["kind"] == "rejected")
    assert reasons == ["bad-mac", "replayed"]


# -- the crash-safety property (E18) -----------------------------------------------


@settings(max_examples=60, deadline=None)
@given(duration=st.floats(0.5, 15.0),
       crash_at=st.floats(0.1, 20.0),
       downtime=st.floats(0.0, 10.0),
       settle=st.floats(0.0, 10.0))
def test_journaled_lease_never_outlives_its_expiry_after_recovery(
        duration, crash_at, downtime, settle):
    """Whenever the crash lands — before, at, or after the expiry tick —
    and however long the process stays down, the restarted lease table
    never serves a lease at or past its expiry tick.  The restart is a
    genuinely fresh process: new simulator, new authority, same
    journal — the dead process's expiry timers are gone with it."""
    storage = StableStorage()
    sim = Simulator(seed=11)
    authority = LeaseAuthority(sim, journal=Journal(storage, "leases"),
                               max_duration=30.0, name="auth")
    lease = authority.grant(("m0",), ("vent",), duration, cause="prop")
    authority.exercise(lease.lease_id)
    sim.run(until=crash_at)                                # then: crash

    restart = Simulator(seed=12)
    restart.run(until=crash_at + downtime)                 # downtime elapses
    recovered = LeaseAuthority(restart, journal=Journal(storage, "leases"),
                               max_duration=30.0, name="auth")
    recovered.recover()
    # The bound holds at the very first instant after recovery...
    for entry in recovered.leases():
        if restart.now >= entry.expires_at:
            assert entry.expired and not entry.active(restart.now)
    live = recovered.lease_for("vent", "m0")
    assert live is None or restart.now < live.expires_at
    assert live is None or live.exercised == 1             # replay was exact

    # ...and forever after: the re-armed timer finishes the job.
    restart.run(until=crash_at + downtime + settle)
    now = restart.now
    for entry in recovered.leases():
        assert not (now >= entry.expires_at and entry.active(now))
    if now >= lease.expires_at:
        assert recovered.lease_for("vent", "m0") is None


def test_recovery_force_expires_with_recovery_cause_and_continues_ids():
    storage = StableStorage()
    sim = Simulator(seed=2)
    authority = LeaseAuthority(sim, journal=Journal(storage, "leases"),
                               name="auth")
    authority.grant(("m0",), ("vent",), 2.0)       # expires at 2.0, then: crash

    restart = Simulator(seed=3)
    restart.run(until=5.0)                         # expiry passed while down
    recovered = LeaseAuthority(restart, journal=Journal(storage, "leases"),
                               name="auth")
    recovered.recover()
    (entry,) = recovered.leases()
    assert entry.expired
    assert [e for e in recovered.events if e["kind"] == "expire"][0][
        "cause"] == "recovery"
    fresh = recovered.grant(("m0",), ("vent",), 2.0)
    assert fresh.lease_id == "auth:L2"             # counter continues
