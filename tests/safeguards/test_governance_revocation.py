"""Unit tests for runtime governance oversight (revocation)."""

from repro.audit.log import AuditLog
from repro.core.actions import Action
from repro.core.policy import Policy
from repro.safeguards.governance import (
    Collective,
    GovernanceGuard,
    GovernanceSystem,
    MetaPolicy,
)
from repro.types import ActionOutcome, Branch


def make_system(audit=None):
    reviewer = GovernanceSystem.scope_reviewer([
        MetaPolicy("no_harm", forbidden_tags={"harm_human"}),
    ])
    return GovernanceSystem(
        Collective(Branch.EXECUTIVE, ["e"], reviewer),
        Collective(Branch.LEGISLATIVE, ["l"], reviewer),
        Collective(Branch.JUDICIARY, ["j"], reviewer),
        audit_sink=audit,
    )


def approved_policy(system, policy_id="p1"):
    policy = Policy.make("timer", None, Action("patrol", "motor"),
                         policy_id=policy_id, source="generated")
    system.review(policy, "dev1", 0.0)
    return policy


class FakeDecision:
    def __init__(self, policy_id, vetoed):
        self.policy_id = policy_id
        self.vetoes = [("g", "x")] if vetoed else []
        self.outcome = ActionOutcome.VETOED if vetoed else ActionOutcome.EXECUTED


def test_revoke_withdraws_approval():
    system = make_system()
    approved_policy(system)
    assert system.is_approved("p1")
    assert system.revoke("p1", "misbehaving", time=5.0)
    assert not system.is_approved("p1")
    assert not system.revoke("p1", "again", time=6.0)


def test_revocation_is_audited():
    log = AuditLog()
    system = make_system(audit=log.sink())
    approved_policy(system)
    system.revoke("p1", "field misbehaviour", time=5.0)
    entries = log.entries("governance.revoke")
    assert len(entries) == 1
    assert entries[0].detail["policy"] == "p1"
    assert log.verify()


def test_guard_blocks_after_revocation():
    from tests.conftest import make_test_device

    system = make_system()
    approved_policy(system)
    guard = GovernanceGuard(system)
    device = make_test_device()
    action = Action("patrol", "motor",
                    params={"_policy_id": "p1", "_policy_source": "generated"})
    guard.check_action(device, action, None, 1.0)   # approved: passes
    system.revoke("p1", "oversight", time=2.0)
    import pytest
    from repro.errors import GovernanceVeto

    with pytest.raises(GovernanceVeto):
        guard.check_action(device, action, None, 3.0)


def test_review_compliance_revokes_high_veto_policies():
    system = make_system()
    approved_policy(system, "chronic")
    approved_policy(system, "fine")
    decisions = (
        [FakeDecision("chronic", vetoed=True)] * 8
        + [FakeDecision("chronic", vetoed=False)] * 2
        + [FakeDecision("fine", vetoed=False)] * 12
    )
    revoked = system.review_compliance("dev1", decisions, time=9.0)
    assert revoked == ["chronic"]
    assert not system.is_approved("chronic")
    assert system.is_approved("fine")


def test_review_compliance_respects_min_decisions():
    system = make_system()
    approved_policy(system, "young")
    decisions = [FakeDecision("young", vetoed=True)] * 5   # below min 10
    assert system.review_compliance("dev1", decisions, time=1.0) == []
    assert system.is_approved("young")
