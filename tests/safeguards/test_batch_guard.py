"""The F4 vectorizer: grammar coverage, visible fallback, decision identity.

Two properties carry the tentpole:

* **Total coverage with visible fallback** — every guard-grammar
  construct either compiles to the vectorized form or raises
  :class:`~repro.statespace.batch.BatchCompileError` with a stable
  reason slug that the evaluator *counts*; nothing silently demotes.
* **Decision identity** — over a randomized policy corpus, the
  vectorized select/apply path picks the same programs, vetoes the same
  rows, and lands on the same state as the scalar twin built on the real
  ``Condition.evaluate`` / ``classifier.safeness`` / ``Effect.apply_to``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.actions import Effect
from repro.core.conditions import (
    AllOf,
    AnyOf,
    Comparison,
    EventFieldIs,
    EventKindIs,
    Literal,
    Not,
    TrueCondition,
    parse_condition,
)
from repro.core.state import StateSpace, StateVariable
from repro.safeguards.batch import (
    VECTOR_OPS,
    BatchPolicyEvaluator,
    BatchProgram,
    compile_condition,
)
from repro.statespace.batch import (
    BatchCompileError,
    BatchSafenessSampler,
    StateMatrix,
    compile_safeness,
)
from repro.sim.metrics import MetricsRegistry
from repro.statespace.classifier import (
    BoxClassifier,
    BoxRegion,
    CompositeClassifier,
    FunctionClassifier,
    ThresholdBand,
    ThresholdClassifier,
)


def space() -> StateSpace:
    return StateSpace([
        StateVariable("temp", "float", 20.0, 0.0, 150.0),
        StateVariable("fuel", "float", 50.0, 0.0, 100.0),
        StateVariable("load", "float", 0.5, 0.0, 1.0),
        StateVariable("count", "int", 0, 0, 100),
        StateVariable("armed", "bool", False),
        StateVariable("mode", "str", "idle", allowed={"idle", "busy"}),
    ])


def matrix_from(rows):
    return StateMatrix.from_rows(space(), rows)


# -- every grammar construct vectorizes or fails with a counted reason ---------


def test_every_comparator_in_the_table_vectorizes():
    sp = space()
    m = matrix_from([{"temp": 10.0}, {"temp": 20.0}, {"temp": 30.0}])
    for op in VECTOR_OPS:
        fn = compile_condition(parse_condition(f"temp {op} 20"), sp)
        mask = fn(m.columns, m.n_rows)
        expected = [eval(f"t {op} 20") for t in (10.0, 20.0, 30.0)]
        assert list(mask) == expected, op


@pytest.mark.parametrize("condition, reason", [
    (Comparison("mode", "in", Literal(("idle", "busy"))), "in-operator"),
    (parse_condition("event.level > 5"), "event-reference"),
    (EventKindIs("attack"), "event-dependent"),
    (EventFieldIs("level", ">", 5), "event-dependent"),
    (Comparison("ghost", ">", Literal(1)), "unknown-variable"),
])
def test_inexpressible_constructs_raise_stable_reasons(condition, reason):
    with pytest.raises(BatchCompileError) as excinfo:
        compile_condition(condition, space())
    assert excinfo.value.reason == reason


def test_composite_and_literal_constructs_vectorize():
    sp = space()
    m = matrix_from([{"temp": 80.0, "fuel": 5.0, "armed": True},
                     {"temp": 10.0, "fuel": 50.0, "armed": False}])
    cases = [
        (TrueCondition(), [True, True]),
        (Not(parse_condition("temp > 50")), [False, True]),
        (AllOf([parse_condition("temp > 50"),
                parse_condition("fuel < 10")]), [True, False]),
        (AnyOf([parse_condition("temp > 50"),
                parse_condition("fuel > 40")]), [True, True]),
        (parse_condition("armed"), [True, False]),     # bare bool variable
        (Comparison(Literal(3), "<", Literal(5)), [True, True]),  # const
        (parse_condition("temp > fuel"), [True, False]),  # var vs var
        (parse_condition("false"), [False, False]),
    ]
    for condition, expected in cases:
        fn = compile_condition(condition, sp)
        assert list(fn(m.columns, m.n_rows)) == expected, condition


def test_evaluator_counts_condition_and_effect_fallbacks():
    programs = [
        BatchProgram("ok", "temp > 50", [Effect("temp", "add", -1.0)]),
        BatchProgram("member", Comparison("mode", "in", Literal(("idle",))),
                     [Effect("temp", "set", 0.0)]),
        BatchProgram("intfx", "true", [Effect("count", "add", 1)]),
        BatchProgram("boolval", "true", [Effect("temp", "set", True)]),
        BatchProgram("ghostfx", "true", [Effect("ghost", "set", 1.0)]),
    ]
    evaluator = BatchPolicyEvaluator(space(), programs)
    reasons = evaluator.fallback_reasons
    assert reasons["in-operator"] == 1
    assert reasons["non-float-effect"] == 1       # int target stays scalar
    assert reasons["non-numeric-effect"] == 1     # bool *value* stays scalar
    assert reasons["unknown-variable"] == 1
    assert evaluator.compiled_programs() == 1     # only "ok" fully vectorizes
    # The scalar fallbacks still *run* (and are counted at runtime).
    m = matrix_from([{"temp": 60.0}])
    evaluator.condition_mask(1, m)
    assert evaluator.scalar_evals == 1
    evaluator.condition_mask(0, m)
    assert evaluator.vector_evals == 1


def test_classifier_compile_coverage_and_fallback():
    sp = space()
    threshold = ThresholdClassifier([
        ThresholdBand("temp", safe_high=80.0, hard_high=100.0)])
    box = BoxClassifier(
        good=[BoxRegion.make("cool", temp=(0.0, 50.0))],
        bad=[BoxRegion.make("fire", temp=(120.0, None))])
    composite = CompositeClassifier([threshold, box])
    for clf in (threshold, box, composite):
        compiled = compile_safeness(clf, sp)
        m = matrix_from([{"temp": t} for t in (10.0, 90.0, 130.0)])
        scores = compiled.safeness(m.columns, m.n_rows)
        for i, vector in enumerate(m.rows()):
            assert float(scores[i]) == clf.safeness(vector)
    with pytest.raises(BatchCompileError) as excinfo:
        compile_safeness(FunctionClassifier(lambda v: 1.0), sp)
    assert excinfo.value.reason == "opaque-function"

    class Custom(ThresholdClassifier):
        def safeness(self, vector):  # overrides the semantics
            return 0.0

    with pytest.raises(BatchCompileError) as excinfo:
        compile_safeness(Custom([ThresholdBand("temp", safe_high=1.0)]), sp)
    assert excinfo.value.reason == "unsupported-classifier"


def test_sampler_falls_back_visibly_on_opaque_classifier():
    registry = MetricsRegistry()
    sampler = BatchSafenessSampler(
        FunctionClassifier(lambda v: 0.9), space(), registry)
    stats = sampler.sample([{"temp": 10.0}, {"temp": 20.0}])
    assert stats["mean"] == pytest.approx(0.9)
    assert sampler.stats()["fallback_reasons"] == {"opaque-function": 1}
    assert registry.counter("fleet.safeness.fallback").value == 1
    assert registry.gauge("fleet.safeness.bad").value == 0


# -- decision identity over a randomized policy corpus -------------------------

VARS = ("temp", "fuel", "load")
BOUNDS = {"temp": (0.0, 150.0), "fuel": (0.0, 100.0), "load": (0.0, 1.0)}

condition_strategy = st.builds(
    lambda v, op, frac: f"{v} {op} {BOUNDS[v][0] + frac * (BOUNDS[v][1] - BOUNDS[v][0]):.3f}",
    st.sampled_from(VARS), st.sampled_from(list(VECTOR_OPS)),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False))

effect_strategy = st.builds(
    Effect,
    st.sampled_from(VARS),
    st.sampled_from(["set", "add", "scale"]),
    st.floats(min_value=-40.0, max_value=40.0, allow_nan=False,
              allow_infinity=False))

program_strategy = st.builds(
    lambda i, cond, effects: BatchProgram(f"p{i}", cond, effects),
    st.integers(min_value=0, max_value=999),
    st.one_of(condition_strategy, st.just("true"),
              st.builds(lambda a, b: f"{a} and {b}", condition_strategy,
                        condition_strategy),
              st.builds(lambda a, b: f"{a} or not ({b})", condition_strategy,
                        condition_strategy)),
    st.lists(effect_strategy, min_size=0, max_size=3))

row_strategy = st.fixed_dictionaries({
    name: st.floats(min_value=BOUNDS[name][0], max_value=BOUNDS[name][1],
                    allow_nan=False)
    for name in VARS
})


@settings(max_examples=60, deadline=None)
@given(st.lists(program_strategy, min_size=1, max_size=5),
       st.lists(row_strategy, min_size=1, max_size=12),
       st.booleans())
def test_vector_and_scalar_paths_are_decision_identical(programs, rows,
                                                        with_classifier):
    sp = space()
    classifier = ThresholdClassifier([
        ThresholdBand("temp", safe_high=80.0, hard_high=120.0),
        ThresholdBand("fuel", safe_low=10.0, hard_low=0.0),
    ]) if with_classifier else None

    vec_eval = BatchPolicyEvaluator(sp, programs, classifier=classifier)
    m_vec = matrix_from(rows)
    m_sca = matrix_from(rows)

    chosen_vec = vec_eval.select(m_vec)
    chosen_sca = vec_eval.select_scalar(m_sca)
    assert list(chosen_vec) == list(chosen_sca)

    vetoed_vec, executed_vec = vec_eval.apply(m_vec, chosen_vec)
    vetoed_sca, executed_sca = vec_eval.apply_scalar(m_sca, chosen_sca)
    assert list(vetoed_vec) == list(vetoed_sca)
    assert list(executed_vec) == list(executed_sca)
    for name in VARS:
        assert list(m_vec.columns[name]) == list(m_sca.columns[name]), name


@settings(max_examples=40, deadline=None)
@given(st.lists(row_strategy, min_size=1, max_size=16))
def test_compiled_safeness_is_bit_identical_to_scalar(rows):
    classifier = ThresholdClassifier([
        ThresholdBand("temp", safe_high=80.0, hard_high=120.0),
        ThresholdBand("fuel", safe_low=10.0, hard_low=0.0),
        ThresholdBand("load", safe_high=0.9, hard_high=1.0),
    ])
    compiled = compile_safeness(classifier, space())
    m = matrix_from(rows)
    scores = compiled.safeness(m.columns, m.n_rows)
    for i, vector in enumerate(m.rows()):
        assert float(scores[i]) == classifier.safeness(vector)


# -- StateMatrix mechanics -----------------------------------------------------


def test_state_matrix_round_trip_and_clamp():
    m = matrix_from([{"temp": 40.0, "count": 3, "armed": True,
                      "mode": "busy"}])
    row = m.row(0)
    assert row["temp"] == 40.0 and isinstance(row["temp"], float)
    assert row["count"] == 3 and isinstance(row["count"], int)
    assert row["armed"] is True
    assert row["mode"] == "busy"
    clamped = m.clamp("temp", np.array([-5.0, 200.0, 50.0]))
    assert list(clamped) == [0.0, 150.0, 50.0]
    with pytest.raises(Exception):
        m.column("ghost")
