"""Unit tests for the E21 actuation gateway."""

import pytest

from repro.audit.log import AuditLog
from repro.crypto import CommandSigner, EnvelopeVerifier, Keyring
from repro.errors import ConfigurationError
from repro.safeguards.gateway import ActuationGateway
from repro.sim.simulator import Simulator
from repro.store import Journal, StableStorage


def build(**kwargs):
    sim = Simulator(seed=1)
    ring = Keyring(seed=1)
    signer = CommandSigner(ring, "watchdog")
    verifier = EnvelopeVerifier(ring)
    gateway = ActuationGateway(sim, verifier, **kwargs)
    return sim, signer, verifier, gateway


def kill(signer, sim, target, cause="bad_state"):
    return signer.sign({"cause": cause, "target": target}, tick=sim.now)


def test_verify_then_execute():
    sim, signer, _, gateway = build()
    fired = []
    decision = gateway.admit(kill(signer, sim, "d0"), kind="safety.kill",
                             target="d0", execute=lambda: fired.append(1))
    assert decision.allowed and decision.reason == "ok"
    assert fired == [1]
    assert len(gateway.accepts()) == 1


def test_rejects_do_not_execute():
    sim, signer, _, gateway = build()
    fired = []
    body = kill(signer, sim, "d0")
    body["cause"] = "tampered"
    decision = gateway.admit(body, kind="safety.kill", target="d0",
                             execute=lambda: fired.append(1))
    assert not decision.allowed and decision.reason == "bad-mac"
    assert fired == []
    assert int(sim.metrics.value("authz.rejected.bad-mac")) == 1


def test_consumed_envelope_cannot_actuate_twice():
    sim, signer, _, gateway = build()
    body = kill(signer, sim, "d0")
    assert gateway.admit(body, "safety.kill", target="d0").allowed
    again = gateway.admit(body, "safety.kill", target="d0")
    assert (again.allowed, again.reason) == (False, "replayed")


def test_target_binding_rejects_readdressed_envelope():
    sim, signer, _, gateway = build()
    body = kill(signer, sim, "d0")
    decision = gateway.admit(body, "safety.kill", target="d1")
    assert (decision.allowed, decision.reason) == (False, "target-mismatch")
    assert decision.detail["claimed"] == "d0"
    # The nonce was NOT burned by the failed attempt; the genuine
    # delivery still actuates.
    assert gateway.admit(body, "safety.kill", target="d0").allowed


def test_budget_caps_an_issuer_and_trips_the_freeze():
    sim, signer, _, gateway = build(budget=2, budget_window=60.0)
    assert gateway.admit(kill(signer, sim, "d0"), "k", target="d0").allowed
    assert gateway.admit(kill(signer, sim, "d1"), "k", target="d1").allowed
    third = gateway.admit(kill(signer, sim, "d2"), "k", target="d2")
    assert (third.allowed, third.reason) == (False, "budget")
    assert gateway.frozen
    # While frozen even a fresh, valid envelope rejects.
    after = gateway.admit(kill(signer, sim, "d3"), "k", target="d3")
    assert (after.allowed, after.reason) == (False, "frozen")
    assert int(sim.metrics.value("authz.freezes")) == 1


def test_budget_window_rolls():
    sim, signer, _, gateway = build(budget=1, budget_window=5.0,
                                    freeze_on_budget=False)
    assert gateway.admit(kill(signer, sim, "d0"), "k", target="d0").allowed
    assert not gateway.admit(kill(signer, sim, "d1"), "k", target="d1").allowed
    sim.run(until=10.0)                      # the window slides past d0
    assert gateway.admit(kill(signer, sim, "d1"), "k", target="d1").allowed
    assert not gateway.frozen


def test_cooldown_spaces_acceptances():
    sim, signer, _, gateway = build(cooldown=2.0)
    assert gateway.admit(kill(signer, sim, "d0"), "k", target="d0").allowed
    rushed = gateway.admit(kill(signer, sim, "d1"), "k", target="d1")
    assert (rushed.allowed, rushed.reason) == (False, "cooldown")
    sim.run(until=3.0)
    assert gateway.admit(kill(signer, sim, "d1"), "k", target="d1").allowed


def test_unfreeze_restores_service():
    sim, signer, _, gateway = build()
    gateway.freeze("operator drill")
    assert not gateway.admit(kill(signer, sim, "d0"), "k", target="d0").allowed
    gateway.unfreeze("operator")
    assert gateway.admit(kill(signer, sim, "d0"), "k", target="d0").allowed


def test_rejects_are_audit_chained():
    sim = Simulator(seed=2)
    ring = Keyring(seed=2)
    signer = CommandSigner(ring, "watchdog")
    audit = AuditLog()
    gateway = ActuationGateway(sim, EnvelopeVerifier(ring), audit=audit)
    gateway.admit({"cause": "x"}, "safety.kill", target="d0")
    entries = audit.entries("authz.reject")
    assert len(entries) == 1
    assert entries[0].detail["reason"] == "unsigned"
    assert audit.verify()
    gateway.freeze("drill")
    assert audit.entries("authz.freeze")


def test_config_validation():
    sim = Simulator(seed=0)
    verifier = EnvelopeVerifier(Keyring())
    with pytest.raises(ConfigurationError):
        ActuationGateway(sim, verifier, budget=0)
    with pytest.raises(ConfigurationError):
        ActuationGateway(sim, verifier, budget_window=0.0)
    with pytest.raises(ConfigurationError):
        ActuationGateway(sim, verifier, cooldown=-1.0)


# -- durability (E18): crash/restart cannot launder a replay ---------------------

def journaled_gateway(sim, ring, storage):
    return ActuationGateway(
        sim, EnvelopeVerifier(ring),
        journal=Journal(storage, "gateway.authz"),
    )


def test_crash_without_journal_would_launder_a_replay():
    sim, signer, verifier, gateway = build()
    body = kill(signer, sim, "d0")
    assert gateway.admit(body, "k", target="d0").allowed
    report = gateway.crash_volatile()
    assert report["journaled"] is False and report["lost"] == 1
    # Amnesia: the very same consumed envelope actuates again.
    assert gateway.admit(body, "k", target="d0").allowed


def test_journal_replay_keeps_consumed_nonces_burned():
    sim = Simulator(seed=3)
    ring = Keyring(seed=3)
    signer = CommandSigner(ring, "watchdog")
    storage = StableStorage()
    gateway = journaled_gateway(sim, ring, storage)
    body = signer.sign({"cause": "bad_state", "target": "d0"}, tick=sim.now)
    assert gateway.admit(body, "k", target="d0").allowed
    gateway.crash_volatile()
    recovered = gateway.recover()
    assert recovered["replayed"] >= 1
    laundered = gateway.admit(body, "k", target="d0")
    assert (laundered.allowed, laundered.reason) == (False, "replayed")


def test_journal_replay_reasserts_the_freeze():
    sim = Simulator(seed=4)
    ring = Keyring(seed=4)
    signer = CommandSigner(ring, "watchdog")
    storage = StableStorage()
    gateway = journaled_gateway(sim, ring, storage)
    gateway.freeze("stolen key suspected")
    gateway.crash_volatile()
    assert not gateway.frozen                # the crash forgot the freeze
    gateway.recover()
    assert gateway.frozen
    assert gateway.freeze_reason == "stolen key suspected"
    body = signer.sign({"cause": "x", "target": "d0"}, tick=sim.now)
    assert not gateway.admit(body, "k", target="d0").allowed


def test_unfreeze_survives_recovery_too():
    sim = Simulator(seed=5)
    ring = Keyring(seed=5)
    storage = StableStorage()
    gateway = journaled_gateway(sim, ring, storage)
    gateway.freeze("drill")
    gateway.unfreeze("operator")
    gateway.crash_volatile()
    gateway.recover()
    assert not gateway.frozen
