"""E21 integration: signed kill orders end-to-end, retry ≠ replay, and
watchdog attestation-baseline durability."""

from repro.crypto import CommandSigner, EnvelopeVerifier, Keyring
from repro.crypto.envelope import TRANSPORT_KEYS
from repro.net.network import Network
from repro.net.reliable import ReliableChannel
from repro.safeguards.deactivation import (KILL_TOPIC, OverseerLink, Watchdog,
                                           safety_address)
from repro.safeguards.gateway import ActuationGateway
from repro.safeguards.tamper import attest_fleet
from repro.sim.simulator import Simulator
from repro.statespace.classifier import ThresholdBand, ThresholdClassifier
from repro.store import Journal, StableStorage
from repro.types import DeviceStatus

from tests.conftest import make_test_device


def classifier():
    return ThresholdClassifier([
        ThresholdBand("temp", safe_high=80.0, hard_high=100.0),
    ])


def build_signed_fleet(n=2, reliable=True, **gateway_kwargs):
    sim = Simulator(seed=6)
    network = Network(sim, base_latency=0.05, jitter=0.0)
    transport = (ReliableChannel(network, timeout=0.5, backoff=2.0,
                                 max_attempts=5) if reliable else network)
    devices = {f"d{i}": make_test_device(f"d{i}") for i in range(n)}
    ring = Keyring(seed=6)
    signer = CommandSigner(ring, "watchdog")
    verifier = EnvelopeVerifier(ring)
    gateway = ActuationGateway(sim, verifier, **gateway_kwargs)
    watchdog = Watchdog(sim, devices, classifier(), check_interval=1.0,
                        transport=transport, signer=signer)
    links = {
        device_id: OverseerLink(sim, device, transport,
                                overseer=watchdog.address,
                                report_interval=1.0, attest=False,
                                gateway=gateway)
        for device_id, device in devices.items()
    }
    return sim, network, devices, watchdog, gateway, links


def test_signed_kill_order_executes_through_the_gateway():
    sim, _, devices, watchdog, gateway, _ = build_signed_fleet()
    devices["d0"].state.set("temp", 120.0)
    sim.run(until=6.0)
    assert devices["d0"].status == DeviceStatus.DEACTIVATED
    assert devices["d1"].status == DeviceStatus.ACTIVE
    assert len(gateway.accepts()) == 1
    assert gateway.accepts()[0].issuer == "watchdog"


def test_retry_is_accepted_replay_is_rejected():
    """Satellite 1: an ack-timeout retransmission of the kill order is the
    *same* envelope and is accepted; a later duplicate delivery of that
    consumed envelope is rejected as a replay."""
    sim, network, devices, watchdog, gateway, _ = build_signed_fleet()
    captured = []
    network.tap(lambda m: captured.append(dict(m.body))
                if m.topic == KILL_TOPIC else None)
    devices["d0"].state.set("temp", 120.0)
    # Black out the wire as the first kill order goes out, so the
    # reliable channel must retry it after the ack timeout.
    def set_loss(rate):
        network.loss_rate = rate

    sim.schedule(1.9, set_loss, 1.0)
    sim.schedule(2.4, set_loss, 0.0)
    sim.run(until=10.0)
    assert devices["d0"].status == DeviceStatus.DEACTIVATED
    assert int(sim.metrics.value("reliable.resends")) >= 1
    # Every capture of the kill order carries the same nonce: retries and
    # re-issues present one envelope, and exactly one acceptance happened.
    nonces = {body["_nonce"] for body in captured}
    assert len(nonces) == 1
    assert len(gateway.accepts()) == 1
    # Duplicate delivery of the consumed envelope (what an attacker — or
    # a confused network — would present again): rejected, not executed.
    replayed = {key: value for key, value in captured[-1].items()
                if key not in TRANSPORT_KEYS}
    decision = gateway.admit(replayed, KILL_TOPIC, target="d0")
    assert (decision.allowed, decision.reason) == (False, "replayed")


def test_forged_order_is_rejected_and_device_survives():
    sim, network, devices, _, gateway, _ = build_signed_fleet()
    network.register("attacker", lambda m: None)
    forged = {"cause": "forged", "target": "d1", "_issuer": "watchdog",
              "_nonce": "forged:1", "_tick": 0.0, "_mac": "0" * 64}
    sim.schedule(1.0, lambda: network.send(
        "attacker", safety_address("d1"), KILL_TOPIC, forged))
    sim.run(until=5.0)
    assert devices["d1"].status == DeviceStatus.ACTIVE
    assert len(gateway.rejects("bad-mac")) == 1


def test_unsigned_link_without_gateway_still_trusts():
    """The historical behaviour is preserved when no gateway is armed."""
    sim = Simulator(seed=7)
    network = Network(sim, base_latency=0.05, jitter=0.0)
    device = make_test_device("d0")
    watchdog = Watchdog(sim, {"d0": device}, classifier(),
                        check_interval=1.0, transport=network)
    OverseerLink(sim, device, network, overseer=watchdog.address,
                 report_interval=1.0, attest=False)
    network.register("attacker", lambda m: None)
    sim.schedule(1.0, lambda: network.send(
        "attacker", safety_address("d0"), KILL_TOPIC, {"cause": "forged"}))
    sim.run(until=3.0)
    assert device.status == DeviceStatus.DEACTIVATED
    assert device.deactivation_reason == "watchdog: forged"


def test_kill_envelope_cached_within_resign_window():
    sim = Simulator(seed=8)
    network = Network(sim)
    devices = {"d0": make_test_device("d0")}
    signer = CommandSigner(Keyring(seed=8), "watchdog")
    watchdog = Watchdog(sim, devices, classifier(), transport=network,
                        signer=signer, resign_after=5.0)
    first = watchdog._kill_body("d0", "bad_state")
    again = watchdog._kill_body("d0", "reissued")
    assert again is first                    # same envelope, same nonce
    sim.run(until=6.0)                       # past resign_after
    fresh = watchdog._kill_body("d0", "reissued")
    assert fresh["_nonce"] != first["_nonce"]


# -- watchdog baseline durability (satellite 2) -----------------------------------

def test_baseline_journal_survives_crash_and_restart():
    sim = Simulator(seed=9)
    devices = {"d0": make_test_device("d0"), "d1": make_test_device("d1")}
    storage = StableStorage()
    journal = Journal(storage, "watchdog.baseline")
    watchdog = Watchdog(sim, devices, classifier(),
                        attestation_baseline=attest_fleet(devices.values()),
                        baseline_journal=journal)
    before = dict(watchdog.attestation_baseline)
    report = watchdog.crash_volatile()
    assert report["journaled"] and report["lost"] == 2
    assert watchdog.attestation_baseline == {}
    assert watchdog.recover()["replayed"] >= 2
    assert watchdog.attestation_baseline == before


def test_rebaseline_is_journaled_and_last_hash_wins():
    sim = Simulator(seed=10)
    device = make_test_device("d0")
    devices = {"d0": device}
    storage = StableStorage()
    watchdog = Watchdog(sim, devices, classifier(),
                        attestation_baseline=attest_fleet(devices.values()),
                        baseline_journal=Journal(storage, "watchdog.baseline"))
    # A legitimate, re-approved configuration change.
    from repro.core.policy import Policy
    device.engine.policies.add(
        Policy.make("timer", None, device.engine.actions.get("cool_down")))
    watchdog.approve_current_configuration(["d0"])
    approved = watchdog.attestation_baseline["d0"]
    watchdog.crash_volatile()
    watchdog.recover()
    # The re-approval, not the stale original, is what recovery restores.
    assert watchdog.attestation_baseline["d0"] == approved


def test_crash_without_baseline_journal_blesses_reprogramming():
    """The failure mode the journal closes: an amnesiac watchdog has no
    baseline left, so a pre-crash reprogramming goes unnoticed."""
    sim = Simulator(seed=11)
    device = make_test_device("d0")
    watchdog = Watchdog(sim, {"d0": device}, classifier(),
                        attestation_baseline=attest_fleet([device]))
    report = watchdog.crash_volatile()
    assert not report["journaled"]
    assert watchdog.recover()["replayed"] == 0
    assert watchdog.attestation_baseline == {}
