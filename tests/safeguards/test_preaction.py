"""Unit tests for pre-action checks (sec VI-A)."""

import pytest

from repro.core.actions import Action, noop_action
from repro.errors import PreActionVeto
from repro.safeguards.preaction import CallableHarmModel, PreActionCheck
from repro.statespace.breakglass import BreakGlassController, BreakGlassRule

from tests.conftest import make_test_device


def harm_if_tagged(tag="kinetic"):
    return CallableHarmModel(
        direct=lambda device, action, time:
            "human in blast radius" if tag in action.tags else None,
        hazard=lambda device, action, time:
            "leaves a hole" if "digging" in action.tags else None,
    )


def strike():
    return Action("strike", "motor", tags={"kinetic"})


def dig():
    return Action("dig", "motor", tags={"digging"})


def test_vetoes_predicted_direct_harm():
    check = PreActionCheck(harm_if_tagged())
    device = make_test_device()
    with pytest.raises(PreActionVeto) as exc_info:
        check.check_action(device, strike(), None, time=1.0)
    assert check.vetoes == 1
    assert "blast radius" in str(exc_info.value)
    assert exc_info.value.safeguard == "preaction"


def test_harmless_actions_pass():
    check = PreActionCheck(harm_if_tagged())
    device = make_test_device()
    check.check_action(device, Action("patrol", "motor"), None, 1.0)
    assert check.vetoes == 0


def test_noop_always_passes():
    check = PreActionCheck(harm_if_tagged())
    check.check_action(make_test_device(), noop_action(), None, 1.0)


def test_hazard_blocking_off_by_default():
    """The paper's base mechanism misses indirect harm: digging passes."""
    check = PreActionCheck(harm_if_tagged())
    check.check_action(make_test_device(), dig(), None, 1.0)


def test_hazard_blocking_opt_in():
    check = PreActionCheck(harm_if_tagged(), block_predicted_hazards=True)
    with pytest.raises(PreActionVeto):
        check.check_action(make_test_device(), dig(), None, 1.0)


def test_breakglass_bypass_is_counted():
    controller = BreakGlassController(
        context_verifier=lambda device_id: {"emergency": True},
    )
    controller.register_rule(BreakGlassRule.make(
        "rule", "emergency", {"preaction"}, max_uses=1,
    ))
    controller.request("dev1", "rule", "justified", time=0.0)
    check = PreActionCheck(harm_if_tagged(), breakglass=controller)
    device = make_test_device()
    check.check_action(device, strike(), None, time=1.0)   # bypassed
    assert check.bypasses == 1
    with pytest.raises(PreActionVeto):                     # grant exhausted
        check.check_action(device, strike(), None, time=2.0)


def test_engine_integration_substitutes_safe_action():
    from repro.core.policy import Policy

    device = make_test_device(safeguards=[PreActionCheck(harm_if_tagged())])
    strike_action = strike()
    device.engine.actions.add(strike_action)
    device.engine.policies.add(Policy.make("mgmt.strike", None, strike_action,
                                           priority=9))
    decision = device.command("strike")
    assert decision.outcome.value in ("substituted", "vetoed")
    assert decision.executed != "strike"
