"""Unit tests for collection-formation checks (sec VI-D)."""

import pytest

from repro.core.actions import Action, Effect
from repro.errors import ConfigurationError
from repro.safeguards.collection import (
    AggregateConstraint,
    CollectionGuard,
    CollectiveStateAssessment,
    HumanCheckModel,
    OfflineAnalyzer,
)
from repro.sim.rng import SeededRNG

from tests.conftest import make_test_device


HEAT = AggregateConstraint("heat", "temp", "sum", 100.0)


class TestAggregateConstraint:
    def test_reducers(self):
        vectors = [{"temp": 30.0}, {"temp": 50.0}]
        assert AggregateConstraint("s", "temp", "sum", 100).evaluate(vectors) == 80.0
        assert AggregateConstraint("m", "temp", "max", 100).evaluate(vectors) == 50.0
        assert AggregateConstraint("a", "temp", "mean", 100).evaluate(vectors) == 40.0
        assert AggregateConstraint("c", "temp", "count", 100).evaluate(vectors) == 2.0

    def test_violation_and_headroom(self):
        vectors = [{"temp": 60.0}, {"temp": 60.0}]
        assert HEAT.violated_by(vectors)
        assert HEAT.headroom(vectors) == -20.0

    def test_missing_and_non_numeric_skipped(self):
        assert HEAT.evaluate([{"other": 1.0}, {"temp": "hot"}, {"temp": True}]) == 0.0

    def test_unknown_reducer(self):
        with pytest.raises(ConfigurationError):
            AggregateConstraint("x", "temp", "median", 1.0)


class TestOfflineAnalyzer:
    def test_flags_aggregate_violation(self):
        analyzer = OfflineAnalyzer([HEAT])
        result = analyzer.analyze([{"temp": 60.0}], {"temp": 60.0})
        assert not result["safe"]
        assert result["violations"] == ["heat"]
        assert result["members"] == 2

    def test_worst_case_uses_declared_maxima(self):
        """Each member currently emits 30 but can emit 60: worst case
        violates even though the current snapshot does not."""
        analyzer = OfflineAnalyzer([HEAT])
        members = [{"temp": 30.0, "temp_max": 60.0}] * 2
        assert analyzer.analyze(members, worst_case=False)["safe"]
        assert not analyzer.analyze(members, worst_case=True)["safe"]

    def test_counts_analyses(self):
        analyzer = OfflineAnalyzer([HEAT])
        analyzer.analyze([])
        analyzer.analyze([])
        assert analyzer.analyses == 2


class TestHumanCheck:
    def test_faithful_review_follows_analyzer(self):
        human = HumanCheckModel(SeededRNG(1).stream("human"), error_rate=0.0)
        assert human.review({"safe": True}, time=0.0)
        assert not human.review({"safe": False}, time=1.0)

    def test_error_rate_flips_decision(self):
        human = HumanCheckModel(SeededRNG(1).stream("human"), error_rate=1.0)
        assert not human.review({"safe": True}, time=0.0)
        assert human.review({"safe": False}, time=1.0)
        assert human.errors == 2

    def test_rate_limiting_fails_closed(self):
        human = HumanCheckModel(SeededRNG(1).stream("human"), min_interval=5.0)
        assert human.review({"safe": True}, time=0.0)
        assert not human.review({"safe": True}, time=1.0)   # too soon
        assert human.rate_limited == 1
        assert human.review({"safe": True}, time=6.0)


class TestCollectionGuard:
    def test_admits_safe_rejects_unsafe(self):
        guard = CollectionGuard(OfflineAnalyzer([HEAT]), worst_case=False)
        first = make_test_device("a")
        first.state.set("temp", 60.0)
        second = make_test_device("b")
        second.state.set("temp", 30.0)
        third = make_test_device("c")
        third.state.set("temp", 30.0)
        assert guard.request_join(first, 0.0)
        assert guard.request_join(second, 1.0)
        assert not guard.request_join(third, 2.0)   # 60+30+30 > 100
        assert guard.rejections == 1
        assert set(guard.members) == {"a", "b"}

    def test_force_join_skips_review(self):
        guard = CollectionGuard(OfflineAnalyzer([HEAT]))
        device = make_test_device("a")
        device.state.set("temp", 150.0)
        guard.force_join(device)
        assert "a" in guard.members

    def test_leave_and_audit(self):
        events = []
        guard = CollectionGuard(OfflineAnalyzer([HEAT]),
                                audit_sink=lambda kind, detail: events.append(kind))
        device = make_test_device("a")
        assert guard.request_join(device, 0.0)
        guard.leave("a", 1.0)
        assert "a" not in guard.members
        assert events == ["collection.join_review", "collection.leave"]


class TestCollectiveStateAssessment:
    def proposals(self, temps, deltas):
        proposals = {}
        for index, (temp, delta) in enumerate(zip(temps, deltas)):
            device = make_test_device(f"d{index}")
            device.state.set("temp", temp)
            action = Action(f"act{index}", "motor",
                            effects=[Effect("temp", "add", delta)])
            proposals[device.device_id] = (device, action)
        return proposals

    def test_all_approved_when_within_limits(self):
        assessment = CollectiveStateAssessment([HEAT])
        result = assessment.assess(self.proposals([20.0, 20.0], [10.0, 10.0]))
        assert result["approved"] == ["d0", "d1"]
        assert result["deferred"] == []

    def test_defers_to_keep_aggregate_safe(self):
        """Each +30 individually fine; all three together violate sum<=100."""
        assessment = CollectiveStateAssessment([HEAT])
        result = assessment.assess(
            self.proposals([10.0, 10.0, 10.0], [30.0, 30.0, 30.0])
        )
        assert result["violations"] == ["heat"]
        assert len(result["approved"]) == 2
        assert len(result["deferred"]) == 1

    def test_deterministic_greedy_order(self):
        assessment = CollectiveStateAssessment([HEAT])
        result = assessment.assess(
            self.proposals([10.0, 10.0, 10.0], [30.0, 30.0, 30.0])
        )
        assert result["approved"] == ["d0", "d1"]
        assert result["deferred"] == ["d2"]
        assert assessment.deferrals == 1
