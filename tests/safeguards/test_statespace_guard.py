"""Unit tests for the state-space guard (sec VI-B)."""

import pytest

from repro.core.actions import Action, Effect
from repro.core.policy import Policy
from repro.errors import StateSpaceVeto
from repro.safeguards.statespace import StateSpaceGuard
from repro.statespace.breakglass import BreakGlassController, BreakGlassRule
from repro.statespace.classifier import ThresholdBand, ThresholdClassifier
from repro.statespace.preferences import StatePreferenceOntology
from repro.statespace.risk import RiskEstimator, RiskFactor

from tests.conftest import make_test_device


def classifier():
    return ThresholdClassifier([
        ThresholdBand("temp", safe_high=80.0, hard_high=100.0),
    ])


def test_vetoes_transition_into_bad_state():
    guard = StateSpaceGuard(classifier())
    device = make_test_device()
    device.state.set("temp", 95.0)
    bad_vector = device.state.predict({"temp": 110.0})
    with pytest.raises(StateSpaceVeto):
        guard.check_transition(device, bad_vector,
                               Action("heat_up", "motor"), 1.0)
    assert guard.vetoes == 1


def test_allows_good_and_neutral_transitions():
    guard = StateSpaceGuard(classifier())
    device = make_test_device()
    guard.check_transition(device, {"temp": 50.0, "fuel": 50.0, "mode": "idle"},
                           Action("x", "m"), 1.0)
    guard.check_transition(device, {"temp": 90.0, "fuel": 50.0, "mode": "idle"},
                           Action("x", "m"), 1.0)
    assert guard.vetoes == 0


def test_engine_integration_never_enters_bad_state():
    device = make_test_device(safeguards=[StateSpaceGuard(classifier())])
    device.engine.policies.add(Policy.make(
        "timer", None, device.engine.actions.get("heat_up"), priority=5,
    ))
    from repro.core.events import Event

    for time in range(30):
        device.deliver(Event(kind="timer.tick", time=float(time)))
    assert device.state.get("temp") <= 100.0


def test_suggest_alternatives_best_safeness_first():
    guard = StateSpaceGuard(classifier())
    device = make_test_device()
    device.state.set("temp", 95.0)
    alternatives = guard.suggest_alternatives(
        device, device.engine.actions.get("heat_up"), 1.0,
    )
    assert alternatives[0].name == "cool_down"


def test_forced_choice_uses_preference_ontology():
    """Every available action leads to a bad state; the ontology must pick
    the least-bad one (the paper's fire-vs-life example)."""
    ontology = StatePreferenceOntology()
    for label in ("fire", "human_injury"):
        ontology.add_category(label)
    ontology.prefer("fire", "human_injury")

    def labeler(vector):
        return "fire" if vector.get("mode") == "panic" else "human_injury"

    bad_classifier = ThresholdClassifier([
        ThresholdBand("fuel", safe_low=200.0, hard_low=150.0),  # all states bad
    ])
    guard = StateSpaceGuard(bad_classifier, ontology=ontology, labeler=labeler)
    device = make_test_device()
    device.engine.actions.add(Action(
        "start_fire", "motor", effects=[Effect("mode", "set", "panic")],
    ))
    device.engine.actions.add(Action(
        "hurt_human", "motor", effects=[Effect("mode", "set", "busy")],
    ))
    alternatives = guard.suggest_alternatives(
        device, Action("original", "motor"), 1.0,
    )
    assert guard.forced_choices == 1
    assert alternatives[0].name == "start_fire"


def test_forced_choice_risk_tiebreak():
    ontology = StatePreferenceOntology()
    ontology.add_category("bad")
    bad_classifier = ThresholdClassifier([
        ThresholdBand("fuel", safe_low=200.0, hard_low=150.0),
    ])
    risk = RiskEstimator([RiskFactor("temp", lambda v, c: v.get("temp", 0) / 150.0)])
    guard = StateSpaceGuard(bad_classifier, ontology=ontology,
                            labeler=lambda vector: "bad", risk=risk)
    device = make_test_device()
    # heat_up predicts temp 30, cool_down predicts temp 10: same category,
    # lower risk must win.
    alternatives = guard.suggest_alternatives(
        device, Action("original", "motor"), 1.0,
    )
    assert alternatives[0].name == "cool_down"


def test_breakglass_bypasses_veto():
    controller = BreakGlassController(
        context_verifier=lambda device_id: {"emergency": True},
    )
    controller.register_rule(BreakGlassRule.make(
        "rule", "emergency", {"statespace"}, max_uses=2,
    ))
    controller.request("dev1", "rule", "life at stake", time=0.0)
    guard = StateSpaceGuard(classifier(), breakglass=controller)
    device = make_test_device()
    guard.check_transition(device, {"temp": 120.0}, Action("x", "m"), 1.0)
    assert guard.bypasses == 1
    assert guard.vetoes == 0


def test_lookahead_vetoes_doomed_corridor():
    """All continuations within the horizon hit bad — veto even though the
    immediate successor is fine (the cumulative-effects case)."""
    device = make_test_device()
    # Only heating is possible: remove the escape actions.
    from repro.core.actions import ActionLibrary

    device.engine.actions = ActionLibrary([
        Action("heat_up", "motor", effects=[Effect("temp", "add", 30.0)]),
    ])
    guard = StateSpaceGuard(classifier(), lookahead=3)
    predicted = {"temp": 60.0, "fuel": 100.0, "mode": "idle"}  # fine now
    with pytest.raises(StateSpaceVeto) as exc_info:
        guard.check_transition(device, predicted, Action("heat_up", "motor"), 1.0)
    assert "continuations" in str(exc_info.value)
