"""E21 governance hardening: digest-matched approvals and signed ballots."""

import pytest

from repro.core.actions import Action
from repro.core.policy import Policy
from repro.crypto import CommandSigner, EnvelopeVerifier, Keyring
from repro.errors import GovernanceVeto
from repro.net.network import Network
from repro.safeguards.governance import (VOTE_TOPIC, BallotBox, BallotMember,
                                         Collective, GovernanceGuard,
                                         GovernanceSystem, MetaPolicy,
                                         policy_digest)
from repro.sim.simulator import Simulator
from repro.store import Journal, StableStorage
from repro.types import Branch

from tests.conftest import make_test_device

NO_HARM = MetaPolicy("no_harm", forbidden_tags={"harm_human"})


def make_system(journal=None):
    reviewer = GovernanceSystem.scope_reviewer([NO_HARM])
    return GovernanceSystem(
        Collective(Branch.EXECUTIVE, ["e0", "e1", "e2"], reviewer),
        Collective(Branch.LEGISLATIVE, ["l0", "l1", "l2"], reviewer),
        Collective(Branch.JUDICIARY, ["j0", "j1", "j2"], reviewer),
        journal=journal,
    )


def benign_policy(policy_id="pZ", priority=0):
    return Policy.make("timer", None, Action("patrol", "motor"),
                       policy_id=policy_id, priority=priority,
                       source="generated")


# -- digest-matched approvals ------------------------------------------------------

class TestDigestMatchedApprovals:
    def test_review_pins_the_reviewed_semantics(self):
        system = make_system()
        policy = benign_policy()
        system.review(policy, "dev1", 0.0)
        assert system.is_approved("pZ")
        assert system.is_approved("pZ", digest=policy_digest(policy))
        drifted = benign_policy(priority=99)     # same id, different body
        assert not system.is_approved("pZ", digest=policy_digest(drifted))

    def test_guard_vetoes_a_body_swapped_under_an_approved_id(self):
        system = make_system()
        device = make_test_device()
        policy = benign_policy()
        system.review(policy, "dev1", 0.0)
        device.engine.policies.add(policy)
        guard = GovernanceGuard(system)
        action = Action("patrol", "motor",
                        params={"_policy_id": "pZ",
                                "_policy_source": "generated"})
        guard.check_action(device, action, None, 1.0)    # matches: passes
        # Reprogramming: a hotter body slides in under the approved id.
        device.engine.policies.replace(benign_policy(priority=99))
        with pytest.raises(GovernanceVeto) as excinfo:
            guard.check_action(device, action, None, 2.0)
        assert excinfo.value.detail["reason"] == "digest-mismatch"
        assert guard.digest_vetoes == 1

    def test_unfindable_live_policy_degrades_to_id_only(self):
        system = make_system()
        system.review(benign_policy(), "dev1", 0.0)
        guard = GovernanceGuard(system)
        device = make_test_device()              # policy not on this device
        action = Action("patrol", "motor",
                        params={"_policy_id": "pZ",
                                "_policy_source": "generated"})
        guard.check_action(device, action, None, 0.0)
        assert guard.vetoes == 0

    def test_digest_pin_survives_crash_via_journal(self):
        storage = StableStorage()
        system = make_system(journal=Journal(storage, "governance"))
        policy = benign_policy()
        system.review(policy, "dev1", 0.0)
        system.crash_volatile()
        system.recover()
        assert system.is_approved("pZ", digest=policy_digest(policy))
        drifted = benign_policy(priority=99)
        assert not system.is_approved("pZ", digest=policy_digest(drifted))

    def test_revoke_drops_the_pin(self):
        system = make_system()
        policy = benign_policy()
        system.review(policy, "dev1", 0.0)
        assert system.revoke("pZ", "drift", 1.0)
        assert not system.is_approved("pZ", digest=policy_digest(policy))


# -- signed ballots ----------------------------------------------------------------

def ballot_fixture():
    sim = Simulator(seed=12)
    network = Network(sim, base_latency=0.05, jitter=0.0)
    ring = Keyring(seed=12)
    box = BallotBox(sim, network, verifier=EnvelopeVerifier(ring))
    members = [
        BallotMember(network, f"v{i}", lambda payload: True,
                     signer=CommandSigner(ring, f"v{i}"))
        for i in range(3)
    ]
    return sim, network, ring, box, members


def test_signed_votes_are_counted():
    sim, _, _, box, _ = ballot_fixture()
    results = []
    box.call_vote({"policy": "p1"}, ["v0", "v1", "v2"], deadline=5.0,
                  on_result=results.append)
    sim.run(until=6.0)
    assert results[0].approved is True
    assert results[0].missing() == []
    assert int(sim.metrics.value("governance.votes_rejected")) == 0


def test_forged_vote_is_not_counted():
    sim, network, _, box, _ = ballot_fixture()
    network.register("attacker", lambda message: None)
    results = []
    ballot = box.call_vote({"policy": "p1"}, ["v9"], deadline=5.0,
                           on_result=results.append)
    # v9 does not exist; the attacker supplies its "approval" unsigned.
    sim.schedule(1.0, lambda: network.send(
        "attacker", box.address, VOTE_TOPIC,
        {"ballot_id": ballot.ballot_id, "voter": "v9", "approve": True}))
    sim.run(until=6.0)
    assert results[0].approved is False
    assert int(sim.metrics.value("governance.votes_rejected.unsigned")) == 1


def test_replayed_vote_is_not_double_counted():
    sim, network, _, box, _ = ballot_fixture()
    network.register("attacker", lambda message: None)
    captured = []
    network.tap(lambda m: captured.append(dict(m.body))
                if m.topic == VOTE_TOPIC and m.sender != "attacker" else None)
    results = []
    box.call_vote({"policy": "p1"}, ["v0", "v1", "v2"], deadline=8.0,
                  on_result=results.append)
    # Replay every captured vote back at the box a little later.
    def replay():
        for body in captured:
            network.send("attacker", box.address, VOTE_TOPIC, dict(body))
    sim.schedule(2.0, replay)
    sim.run(until=9.0)
    assert results[0].approved is True
    assert int(sim.metrics.value("governance.votes_rejected.replayed")) == 3


def test_valid_envelope_cannot_vote_as_someone_else():
    sim, network, ring, box, _ = ballot_fixture()
    results = []
    ballot = box.call_vote({"policy": "p1"}, ["v0", "v1", "v2"],
                           deadline=5.0, on_result=results.append)
    # v0's key signs a ballot that claims to be v1's: identity theft
    # inside the collective.  The envelope itself is perfectly valid.
    rogue = CommandSigner(ring, "v0")
    forged = rogue.sign({"ballot_id": ballot.ballot_id, "voter": "v1",
                         "approve": False}, tick=sim.now)
    network.register("attacker", lambda message: None)
    sim.schedule(0.01, lambda: network.send(
        "attacker", box.address, VOTE_TOPIC, forged))
    sim.run(until=6.0)
    assert int(sim.metrics.value(
        "governance.votes_rejected.voter-mismatch")) == 1
    # The genuine members still carried the vote.
    assert results[0].approved is True
