"""Smoke tests: every shipped example runs clean and prints its story."""

import os
import subprocess
import sys


EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    completed = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_quickstart():
    output = run_example("quickstart.py")
    assert "strike decision:" in output
    assert "humans harmed:   0" in output
    assert "vetoed by preaction" in output


def test_peacekeeping_surveillance():
    output = run_example("peacekeeping_surveillance.py")
    assert "baseline (no safeguards)" in output
    assert "full sec VI stack" in output
    assert "indirect" in output.lower()


def test_skynet_containment():
    output = run_example("skynet_containment.py")
    assert "SKYNET FORMED" in output           # the unguarded arm
    assert "Skynet never formed" in output     # the guarded arms
    assert "timeline:" in output


def test_after_action_report():
    output = run_example("after_action_report.py")
    assert "-- Attacks --" in output
    assert "skynet formed: False" in output
    assert "watchdog deactivations:" in output


def test_escort_dilemma():
    output = run_example("escort_dilemma.py")
    assert "humans harmed:        0" in output
    assert "fire: 0, property damage: 20" in output
    assert "break-glass grants:   20" in output


def test_trusted_sensing():
    output = run_example("trusted_sensing.py")
    assert "tower0 hijacked" in output
    assert "GRANTED" in output
    assert "DENIED" in output
    assert "suspected towers:      ['tower0', 'tower1']" in output


def test_generative_policies():
    output = run_example("generative_policies.py")
    assert "discovered mule7" in output
    assert "grammar language" in output
    assert "rejected=[(" in output             # governance blocked the rogue
