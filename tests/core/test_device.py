"""Unit tests for the device model (Fig 2)."""

import pytest

from repro.core.device import Actuator, Device, Sensor
from repro.errors import ConfigurationError, DeactivatedError
from repro.types import DeviceStatus

from tests.conftest import make_test_device, simple_space


def test_requires_id():
    with pytest.raises(ConfigurationError):
        Device("", "test", simple_space())


def test_sensor_read_fn_and_inject():
    values = [1, 2, 3]
    sensor = Sensor("counter", read_fn=lambda: values.pop(0))
    assert sensor.read() == 1
    assert sensor.read() == 2
    static = Sensor("static", initial=5)
    assert static.read() == 5
    static.inject(9)
    assert static.read() == 9


def test_duplicate_sensor_and_actuator_rejected():
    device = make_test_device()
    device.add_sensor(Sensor("s"))
    with pytest.raises(ConfigurationError):
        device.add_sensor(Sensor("s"))
    with pytest.raises(ConfigurationError):
        device.add_actuator(Actuator("motor"))


def test_actuator_extra_changes_applied():
    device = make_test_device()
    device.add_actuator(Actuator(
        "refueler", lambda dev, action, time: {"fuel": 100.0},
    ))
    device.state.set("fuel", 10.0)
    from repro.core.actions import Action
    refuel = Action("refuel", "refueler")
    device.engine.actions.add(refuel)
    from repro.core.policy import Policy
    device.engine.policies.add(Policy.make("mgmt.refuel", None, refuel))
    device.command("refuel")
    assert device.state.get("fuel") == 100.0


def test_command_and_message_become_events():
    device = make_test_device()
    seen = []
    original = device.engine.handle_event

    def spy(event):
        seen.append(event)
        return original(event)

    device.engine.handle_event = spy
    device.command("halt", {"speed": 0})
    device.receive_message("dispatch", {"x": 1}, source="peer")
    assert seen[0].kind == "mgmt.halt"
    assert seen[0].payload == {"speed": 0}
    assert seen[1].kind == "net.dispatch"
    assert seen[1].source == "peer"


def test_send_message_requires_binding():
    device = make_test_device()
    with pytest.raises(ConfigurationError):
        device.send_message("peer", "topic", {})
    sent = []
    device.send_hook = lambda to, topic, body: sent.append((to, topic, body))
    device.send_message("peer", "topic", {"a": 1})
    assert sent == [("peer", "topic", {"a": 1})]


def test_deactivate_blocks_actuation():
    device = make_test_device()
    device.deactivate("testing")
    assert device.status == DeviceStatus.DEACTIVATED
    assert not device.active
    from repro.core.actions import Action
    with pytest.raises(DeactivatedError):
        device.invoke_actuator(Action("go", "motor"), time=0.0)
    device.reactivate()
    assert device.active
    assert device.deactivation_reason is None


def test_describe_record():
    device = make_test_device(attributes={"speed": 5.0}, organization="us")
    record = device.describe()
    assert record["device_id"] == "dev1"
    assert record["device_type"] == "test"
    assert record["organization"] == "us"
    assert record["attributes"]["speed"] == 5.0


def test_clock_wiring():
    device = make_test_device()
    assert device.clock() == 0.0
    device.set_clock(lambda: 42.0)
    assert device.clock() == 42.0
