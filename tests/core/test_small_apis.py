"""Tests for small public APIs: sensor override, obligation escalation,
condition `in` operator, and parser fuzzing."""

from hypothesis import given, strategies as st

from repro.core.actions import Action
from repro.core.conditions import Comparison, Literal, parse_condition
from repro.core.device import Sensor
from repro.core.obligations import (
    Obligation,
    ObligationManager,
    ObligationOntology,
)
from repro.errors import ConditionParseError


class TestSensorOverride:
    def test_override_freezes_and_restore_reconnects(self):
        live = {"value": 1}
        sensor = Sensor("s", read_fn=lambda: live["value"])
        assert sensor.read() == 1
        sensor.override(999)
        live["value"] = 2
        assert sensor.read() == 999      # frozen at the lie
        sensor.restore(lambda: live["value"])
        assert sensor.read() == 2


class TestObligationEscalation:
    def make_manager(self, executor):
        ontology = ObligationOntology()
        ontology.declare_hazard("digging")
        ontology.attach("digging", Obligation(
            "warn", Action("post", "poster"), deadline=2.0,
        ))
        return ObligationManager(ontology, executor=executor)

    def dig(self):
        return Action("dig", "digger", tags={"digging"})

    def test_on_violation_fires_on_expiry(self):
        escalated = []
        manager = self.make_manager(executor=lambda action: True)
        manager.on_violation = escalated.append
        manager.on_action_executed(self.dig(), time=0.0)
        manager.expire(time=5.0)
        assert len(escalated) == 1
        assert escalated[0].obligation.name == "warn"

    def test_on_violation_fires_on_failed_remedy(self):
        escalated = []
        manager = self.make_manager(executor=lambda action: False)
        manager.on_violation = escalated.append
        manager.on_action_executed(self.dig(), time=0.0)
        manager.discharge_due(time=1.0)
        assert len(escalated) == 1


class TestInOperator:
    def test_membership_against_literal_collection(self):
        condition = Comparison("mode", "in", Literal(("patrol", "idle")))
        assert condition.evaluate({"mode": "patrol"})
        assert not condition.evaluate({"mode": "panic"})


class TestParserFuzz:
    @given(st.text(max_size=40))
    def test_parser_never_crashes_unexpectedly(self, text):
        """Arbitrary input either parses or raises ConditionParseError —
        nothing else escapes."""
        try:
            parse_condition(text)
        except ConditionParseError:
            pass

    @given(st.sampled_from(["temp", "fuel"]),
           st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
           st.integers(min_value=-1000, max_value=1000))
    def test_simple_comparisons_always_roundtrip(self, variable, op, value):
        condition = parse_condition(f"{variable} {op} {value}")
        state = {"temp": 0, "fuel": 0}
        expected = eval(f"state[variable] {op} value")  # trusted test input
        assert condition.evaluate(state) == expected
