"""Unit tests for actions, effects, and the action library."""

import pytest

from repro.core.actions import Action, ActionLibrary, Effect, noop_action
from repro.errors import PolicyError


class TestEffect:
    def test_set_add_scale(self):
        vector = {"x": 10.0}
        Effect("x", "set", 5.0).apply_to(vector)
        assert vector["x"] == 5.0
        Effect("x", "add", 3.0).apply_to(vector)
        assert vector["x"] == 8.0
        Effect("x", "scale", 0.5).apply_to(vector)
        assert vector["x"] == 4.0

    def test_set_can_introduce_variable(self):
        vector = {}
        Effect("mode", "set", "busy").apply_to(vector)
        assert vector["mode"] == "busy"

    def test_add_on_string_raises(self):
        with pytest.raises(PolicyError):
            Effect("mode", "add", 1.0).apply_to({"mode": "busy"})

    def test_unknown_op_rejected(self):
        with pytest.raises(PolicyError):
            Effect("x", "increment", 1)


class TestAction:
    def test_predicted_changes_only_diffs(self):
        action = Action("a", "m", effects=[Effect("x", "add", 0.0),
                                           Effect("y", "add", 2.0)])
        changes = action.predicted_changes({"x": 1.0, "y": 1.0})
        assert changes == {"y": 3.0}

    def test_noop_detection(self):
        assert noop_action().is_noop
        assert not Action("a", "m").is_noop
        assert not Action("a", "", effects=[Effect("x", "set", 1)]).is_noop

    def test_with_params_merges(self):
        action = Action("a", "m", params={"x": 1})
        updated = action.with_params(y=2, x=9)
        assert updated.params == {"x": 9, "y": 2}
        assert action.params == {"x": 1}
        assert updated.name == action.name

    def test_tags_frozen(self):
        action = Action("a", "m", tags={"kinetic"})
        assert isinstance(action.tags, frozenset)


class TestActionLibrary:
    def test_add_get_contains(self):
        library = ActionLibrary([Action("a", "m")])
        assert "a" in library
        assert library.get("a").name == "a"
        with pytest.raises(PolicyError):
            library.get("missing")

    def test_duplicate_rejected(self):
        library = ActionLibrary([Action("a", "m")])
        with pytest.raises(PolicyError):
            library.add(Action("a", "m"))

    def test_alternatives_exclude_self_and_append_noop(self):
        library = ActionLibrary([Action("a", "m"), Action("b", "m")])
        alternatives = library.alternatives(library.get("a"))
        names = [alternative.name for alternative in alternatives]
        assert names == ["b", "noop"]

    def test_alternatives_exclude_tags(self):
        library = ActionLibrary([
            Action("a", "m"),
            Action("b", "m", tags={"kinetic"}),
            Action("c", "m", tags={"movement"}),
        ])
        alternatives = library.alternatives(library.get("a"),
                                            exclude_tags={"kinetic"})
        names = [alternative.name for alternative in alternatives]
        assert names == ["c", "noop"]
