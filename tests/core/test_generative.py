"""Unit tests for the generative policy architecture (sec IV)."""

import pytest

from repro.core.actions import Action, ActionLibrary
from repro.core.events import Event
from repro.core.generative.grammar import (
    PolicyGrammar,
    default_dispatch_grammar,
    parse_policy_spec,
)
from repro.core.generative.generator import GenerativePolicyEngine
from repro.core.generative.interaction_graph import (
    DeviceTypeNode,
    InteractionEdge,
    InteractionGraph,
)
from repro.core.generative.refinement import (
    PolicyRefinement,
    deserialize_policy,
    serialize_policy,
)
from repro.core.generative.templates import PolicyTemplate, TemplateRegistry
from repro.core.policy import Policy
from repro.errors import ConfigurationError, GrammarError, PolicyError, TemplateError

from tests.conftest import make_test_device


def graph():
    g = InteractionGraph()
    g.add_type(DeviceTypeNode.make("drone", speed="float", airborne="bool"))
    g.add_type(DeviceTypeNode.make("mule", speed="float"))
    g.add_interaction(InteractionEdge("drone", "mule", "dispatches",
                                      template_ids=("t1",)))
    return g


def templates():
    return TemplateRegistry([
        PolicyTemplate.make(
            "t1", event_pattern="sensor.convoy", condition="fuel > {min_fuel}",
            action_name="call_peer", priority=5, to="$peer_id",
        ),
    ])


class TestInteractionGraph:
    def test_duplicate_type_rejected(self):
        g = graph()
        with pytest.raises(ConfigurationError):
            g.add_type(DeviceTypeNode.make("drone"))

    def test_interaction_requires_declared_types(self):
        g = graph()
        with pytest.raises(ConfigurationError):
            g.add_interaction(InteractionEdge("drone", "ghost", "x"))

    def test_interactions_for(self):
        g = graph()
        assert len(g.interactions_for("drone", "mule")) == 1
        assert g.interactions_for("mule", "drone") == []

    def test_validate_record(self):
        g = graph()
        good = {"device_type": "drone",
                "attributes": {"speed": 5.0, "airborne": True}}
        assert g.validate_record(good) == []
        missing = {"device_type": "drone", "attributes": {"speed": 5.0}}
        assert any("airborne" in problem for problem in g.validate_record(missing))
        wrong_kind = {"device_type": "drone",
                      "attributes": {"speed": "fast", "airborne": True}}
        assert any("speed" in problem for problem in g.validate_record(wrong_kind))
        unknown = {"device_type": "tank", "attributes": {}}
        assert g.validate_record(unknown) == ["unknown device type 'tank'"]

    def test_extend_and_remove_type(self):
        g = graph()
        g.extend_type(DeviceTypeNode.make("tank", armor="float"))
        assert g.knows_type("tank")
        g.remove_type("mule")
        assert not g.knows_type("mule")
        assert g.interactions_for("drone", "mule") == []


class TestTemplates:
    def library(self):
        return ActionLibrary([Action("call_peer", "radio")])

    def test_instantiate_fills_slots(self):
        template = templates().get("t1")
        policy = template.instantiate(
            {"peer_id": "m7", "min_fuel": 10}, self.library(),
        )
        assert policy.source == "generated"
        assert policy.action.params["to"] == "m7"
        assert policy.action.params["_policy_id"] == policy.policy_id
        assert policy.applies(Event(kind="sensor.convoy"), {"fuel": 50.0})
        assert not policy.applies(Event(kind="sensor.convoy"), {"fuel": 5.0})

    def test_missing_slot_raises(self):
        template = templates().get("t1")
        with pytest.raises(TemplateError):
            template.instantiate({"peer_id": "m7"}, self.library())
        with pytest.raises(TemplateError):
            template.instantiate({"min_fuel": 10}, self.library())

    def test_required_slots(self):
        assert templates().get("t1").required_slots() == {"min_fuel", "peer_id"}

    def test_duplicate_template_rejected(self):
        registry = templates()
        with pytest.raises(TemplateError):
            registry.add(PolicyTemplate.make("t1", "x", "", "call_peer"))

    def test_literal_string_params_formatted(self):
        registry = TemplateRegistry([PolicyTemplate.make(
            "t2", "timer", "", "call_peer", topic="report-{peer_id}",
        )])
        policy = registry.get("t2").instantiate({"peer_id": "m1"}, self.library())
        assert policy.action.params["topic"] == "report-m1"


class TestGrammar:
    def test_enumeration_is_bounded_and_complete(self):
        grammar = default_dispatch_grammar(
            event_kinds=["sensor.smoke", "sensor.convoy"],
            action_names=["investigate", "call_peer"],
            thresholds=(20, 50),
        )
        specs = grammar.enumerate()
        assert len(specs) == 8   # 2 events x 2 thresholds x 2 actions

    def test_generate_policies_parses_all(self):
        grammar = default_dispatch_grammar(["timer"], ["call_peer"], (30,))
        library = ActionLibrary([Action("call_peer", "radio")])
        policies = grammar.generate_policies(library)
        assert len(policies) == 1
        policy = policies[0]
        assert policy.event_pattern == "timer"
        assert policy.priority == 3
        assert policy.applies(Event(kind="timer.tick"), {"fuel": 50.0})
        assert policy.action.params["_policy_source"] == "generated"

    def test_recursive_grammar_terminates(self):
        grammar = PolicyGrammar({
            "Policy": [["on", "timer", "do", "act"], ["<Policy>"]],
        })
        specs = grammar.enumerate(max_specs=100, max_depth=5)
        assert specs == ["on timer do act"]

    def test_undefined_nonterminal_rejected(self):
        with pytest.raises(GrammarError):
            PolicyGrammar({"Policy": [["<Ghost>"]]})

    def test_missing_start_rejected(self):
        with pytest.raises(GrammarError):
            PolicyGrammar({"Other": [["x"]]}, start="Policy")

    def test_parse_spec_variants(self):
        library = ActionLibrary([Action("go", "motor")])
        policy = parse_policy_spec("on timer do go", library)
        assert policy.priority == 0
        policy = parse_policy_spec("on timer if fuel > 5 do go prio 7", library)
        assert policy.priority == 7
        with pytest.raises(GrammarError):
            parse_policy_spec("whenever timer then go", library)

    def test_unknown_action_raises(self):
        library = ActionLibrary([])
        with pytest.raises(PolicyError):
            parse_policy_spec("on timer do ghost", library)

    def test_language_size(self):
        grammar = default_dispatch_grammar(["a", "b"], ["x"], (1, 2, 3))
        assert grammar.language_size() == 6


class TestGenerativeEngine:
    def drone_device(self):
        device = make_test_device("uav1")
        device.device_type = "drone"
        device.engine.actions.add(Action("call_peer", "motor"))
        return device

    def record(self, device_id="m7", device_type="mule", speed=3.0):
        return {"device_id": device_id, "device_type": device_type,
                "organization": "uk", "attributes": {"speed": speed}}

    def engine(self, governance=None, refinement=None):
        registry = TemplateRegistry([PolicyTemplate.make(
            "t1", event_pattern="sensor.convoy", condition="fuel > 10",
            action_name="call_peer", priority=5, to="$peer_id",
        )])
        return GenerativePolicyEngine(graph(), registry,
                                      governance=governance,
                                      refinement=refinement)

    def test_discovery_installs_policy(self):
        engine = self.engine()
        device = self.drone_device()
        engine.manage(device)
        generation = engine.handle_discovery("uav1", self.record())
        assert len(generation.generated) == 1
        policy_id = generation.generated[0]
        installed = device.engine.policies.get(policy_id)
        assert installed.action.params["to"] == "m7"
        assert engine.policies_generated == 1

    def test_unknown_observer_reports_problem(self):
        engine = self.engine()
        generation = engine.handle_discovery("ghost", self.record())
        assert generation.generated == []
        assert generation.problems

    def test_unknown_type_without_refinement_generates_nothing(self):
        engine = self.engine()
        device = self.drone_device()
        engine.manage(device)
        generation = engine.handle_discovery(
            "uav1", self.record(device_type="tank"),
        )
        assert generation.generated == []

    def test_unknown_type_with_refinement_infers(self):
        refinement = PolicyRefinement(min_type_observations=3)
        for speed in (2.8, 3.0, 3.2):
            refinement.observe_discovery(self.record(device_type="mule",
                                                     speed=speed))
        engine = self.engine(refinement=refinement)
        device = self.drone_device()
        engine.manage(device)
        generation = engine.handle_discovery(
            "uav1", self.record(device_id="mystery", device_type="robomule"),
        )
        assert len(generation.generated) == 1
        assert any("inferred" in problem for problem in generation.problems)

    def test_governance_rejection_blocks_install(self):
        from repro.safeguards.governance import (
            Collective, GovernanceSystem, MetaPolicy,
        )
        from repro.types import Branch

        reviewer = GovernanceSystem.scope_reviewer([
            MetaPolicy("cap", max_priority=1),   # template priority 5 > cap
        ])
        governance = GovernanceSystem(
            Collective(Branch.EXECUTIVE, ["e"], reviewer),
            Collective(Branch.LEGISLATIVE, ["l"], reviewer),
            Collective(Branch.JUDICIARY, ["j"], reviewer),
        )
        engine = self.engine(governance=governance)
        device = self.drone_device()
        engine.manage(device)
        generation = engine.handle_discovery("uav1", self.record())
        assert generation.generated == []
        assert engine.policies_rejected == 1

    def test_on_install_hook(self):
        engine = self.engine()
        device = self.drone_device()
        engine.manage(device)
        installed = []
        engine.on_install = lambda dev, policy: installed.append(policy.policy_id)
        engine.handle_discovery("uav1", self.record())
        assert len(installed) == 1

    def test_coverage_counts_distinct_peers(self):
        engine = self.engine()
        device = self.drone_device()
        engine.manage(device)
        engine.handle_discovery("uav1", self.record("m1"))
        engine.handle_discovery("uav1", self.record("m2"))
        assert engine.coverage() == {"uav1": 2}


class TestRefinementSharing:
    def test_serialize_requires_condition_str(self):
        ast_policy = Policy.make("timer", "fuel > 1", Action("a", "m"))
        with pytest.raises(PolicyError):
            serialize_policy(ast_policy)

    def test_roundtrip_through_serialization(self):
        registry = TemplateRegistry([PolicyTemplate.make(
            "t1", "sensor.convoy", "fuel > 10", "call_peer", priority=5,
            to="$peer_id",
        )])
        library = ActionLibrary([Action("call_peer", "radio")])
        original = registry.get("t1").instantiate({"peer_id": "m7"}, library)
        spec = serialize_policy(original)

        receiver = make_test_device("uav2")
        receiver.engine.actions.add(Action("call_peer", "motor"))
        rebuilt = deserialize_policy(spec, receiver)
        assert rebuilt.source == "shared"
        assert rebuilt.event_pattern == "sensor.convoy"
        assert rebuilt.action.params["to"] == "m7"
        assert rebuilt.condition.evaluate({"fuel": 50.0})

    def test_installer_rejects_unknown_action(self):
        refinement = PolicyRefinement()
        receiver = make_test_device("uav2")   # has no call_peer action
        installer = refinement.installer(receiver)

        class FakeItem:
            key = "policy:p1"
            origin = "uav1"
            payload = {"policy_id": "p1", "event_pattern": "timer",
                       "condition_str": "", "action_name": "no_such_action",
                       "action_params": {}, "priority": 0, "author": "x"}

        installer(FakeItem())
        assert refinement.shared_rejected == 1
        assert refinement.shared_installed == 0

    def test_installer_installs_known_action(self):
        refinement = PolicyRefinement()
        receiver = make_test_device("uav2")
        installer = refinement.installer(receiver)

        class FakeItem:
            key = "policy:p1"
            origin = "uav1"
            payload = {"policy_id": "p1", "event_pattern": "timer",
                       "condition_str": "", "action_name": "cool_down",
                       "action_params": {}, "priority": 0, "author": "x"}

        installer(FakeItem())
        assert refinement.shared_installed == 1
        assert f"shared:p1:uav2" in receiver.engine.policies
