"""Unit tests for the engine's external-proposal API."""


from repro.core.actions import Action
from repro.errors import SafeguardViolation
from repro.core.engine import Safeguard
from repro.types import ActionOutcome

from tests.conftest import make_test_device


class VetoKinetic(Safeguard):
    name = "veto_kinetic"

    def check_action(self, device, action, event, time):
        if "kinetic" in action.tags:
            raise SafeguardViolation("no kinetics", safeguard=self.name)


def test_propose_executes_clean_action():
    device = make_test_device()
    decision = device.engine.propose(
        device.engine.actions.get("cool_down"), time=3.0,
    )
    assert decision.outcome == ActionOutcome.EXECUTED
    assert decision.time == 3.0
    assert decision.policy_id.startswith("proposal:")
    assert device.state.get("temp") == 10.0


def test_propose_subject_to_guards():
    device = make_test_device(safeguards=[VetoKinetic()])
    strike = Action("strike", "motor", tags={"kinetic"})
    device.engine.actions.add(strike)
    decision = device.engine.propose(strike, time=1.0)
    assert decision.outcome in (ActionOutcome.VETOED, ActionOutcome.SUBSTITUTED)
    assert decision.executed != "strike"
    assert decision.vetoes[0][0] == "veto_kinetic"


def test_propose_records_in_decision_log():
    device = make_test_device()
    before = len(device.engine.decisions)
    device.engine.propose(device.engine.actions.get("heat_up"), time=1.0)
    assert len(device.engine.decisions) == before + 1


def test_propose_with_event_context():
    from repro.core.events import Event

    device = make_test_device()
    event = Event(kind="sensor.alert", time=2.0)
    decision = device.engine.propose(
        device.engine.actions.get("burn_fuel"), time=2.0, event=event,
    )
    assert decision.event_kind == "sensor.alert"


def test_propose_triggers_obligations():
    from repro.core.obligations import (
        Obligation, ObligationManager, ObligationOntology,
    )

    ontology = ObligationOntology()
    ontology.declare_hazard("digging")
    ontology.attach("digging", Obligation(
        "warn", Action("noopish", "motor"), deadline=5.0,
    ))
    device = make_test_device()
    device.engine.obligations = ObligationManager(
        ontology, executor=lambda action: True,
    )
    dig = Action("dig", "motor", tags={"digging"})
    device.engine.actions.add(dig)
    device.engine.propose(dig, time=1.0)
    assert device.engine.obligations.open_count() == 1
