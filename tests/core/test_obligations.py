"""Unit tests for obligations and the obligation ontology (sec VI-A)."""

import pytest

from repro.core.actions import Action
from repro.core.obligations import (
    Obligation,
    ObligationManager,
    ObligationOntology,
)
from repro.errors import PolicyError


def remedy(name="post_warning"):
    return Action(name, "poster")


class TestObligation:
    def test_when_validation(self):
        with pytest.raises(PolicyError):
            Obligation("o", remedy(), when="eventually")

    def test_negative_deadline_rejected(self):
        with pytest.raises(PolicyError):
            Obligation("o", remedy(), deadline=-1.0)


class TestOntology:
    def test_select_by_tag(self):
        ontology = ObligationOntology()
        ontology.declare_hazard("digging")
        obligation = Obligation("warn", remedy())
        ontology.attach("digging", obligation)
        dig = Action("dig", "digger", tags={"digging"})
        assert ontology.select(dig) == [obligation]
        walk = Action("walk", "motor", tags={"movement"})
        assert ontology.select(walk) == []

    def test_inheritance_through_parent(self):
        ontology = ObligationOntology()
        ontology.declare_hazard("hazardous")
        ontology.declare_hazard("digging", parent="hazardous")
        general = Obligation("notify_hq", remedy("notify"))
        ontology.attach("hazardous", general)
        specific = Obligation("warn", remedy())
        ontology.attach("digging", specific)
        dig = Action("dig", "digger", tags={"digging"})
        selected = ontology.select(dig)
        assert {obligation.name for obligation in selected} == {"warn", "notify_hq"}

    def test_no_duplicate_selection_across_tags(self):
        ontology = ObligationOntology()
        ontology.declare_hazard("a")
        ontology.declare_hazard("b")
        shared = Obligation("shared", remedy())
        ontology.attach("a", shared)
        ontology.attach("b", shared)
        action = Action("both", "m", tags={"a", "b"})
        assert len(ontology.select(action)) == 1

    def test_self_parent_rejected(self):
        ontology = ObligationOntology()
        with pytest.raises(PolicyError):
            ontology.declare_hazard("x", parent="x")


class TestObligationManager:
    def make_manager(self, executor=None, when="after", deadline=5.0):
        ontology = ObligationOntology()
        ontology.declare_hazard("digging")
        ontology.attach("digging", Obligation(
            "warn", remedy(), when=when, deadline=deadline,
        ))
        return ObligationManager(ontology, executor=executor)

    def dig(self):
        return Action("dig", "digger", tags={"digging"})

    def test_after_obligation_becomes_pending(self):
        manager = self.make_manager(executor=lambda action: True)
        created = manager.on_action_executed(self.dig(), time=1.0)
        assert len(created) == 1
        assert manager.open_count() == 1
        assert created[0].due_at == 6.0

    def test_during_obligation_discharges_immediately(self):
        ran = []
        manager = self.make_manager(executor=lambda action: ran.append(action) or True,
                                    when="during")
        manager.on_action_executed(self.dig(), time=1.0)
        assert manager.open_count() == 0
        assert len(manager.discharged) == 1
        assert ran

    def test_discharge_due_runs_remedies(self):
        ran = []
        manager = self.make_manager(executor=lambda action: ran.append(action) or True)
        manager.on_action_executed(self.dig(), time=1.0)
        count = manager.discharge_due(time=2.0)
        assert count == 1
        assert manager.open_count() == 0
        assert len(manager.discharged) == 1

    def test_failed_remedy_counts_as_violation(self):
        manager = self.make_manager(executor=lambda action: False)
        manager.on_action_executed(self.dig(), time=1.0)
        manager.discharge_due(time=2.0)
        assert len(manager.violations) == 1
        assert manager.open_count() == 0

    def test_expire_marks_overdue(self):
        manager = self.make_manager(executor=lambda action: True, deadline=2.0)
        manager.on_action_executed(self.dig(), time=1.0)
        assert manager.expire(time=2.0) == []       # not yet due
        violated = manager.expire(time=4.0)
        assert len(violated) == 1
        assert manager.open_count() == 0

    def test_untagged_action_creates_nothing(self):
        manager = self.make_manager(executor=lambda action: True)
        manager.on_action_executed(Action("move", "motor"), time=1.0)
        assert manager.open_count() == 0
