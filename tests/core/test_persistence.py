"""Unit tests for policy-set persistence and trace export."""

import os

import pytest

from repro.core.actions import Action
from repro.core.persistence import (
    export_policy_set,
    import_policy_set,
    load_policy_set,
    policy_to_spec,
    save_policy_set,
)
from repro.core.policy import Policy, PolicySet
from repro.errors import PolicyError

from tests.conftest import make_test_device


def string_policy(policy_id="p1", action_name="cool_down", source="human",
                  priority=3):
    policy = Policy.make(
        "timer", "temp > 50", Action(action_name, "motor"),
        priority=priority, source=source, policy_id=policy_id,
        condition_str="temp > 50",
    )
    return policy


class TestExport:
    def test_spec_roundtrips_fields(self):
        spec = policy_to_spec(string_policy())
        assert spec["policy_id"] == "p1"
        assert spec["condition_str"] == "temp > 50"
        assert spec["priority"] == 3
        assert spec["source"] == "human"

    def test_unconditional_policy_exports_empty_condition(self):
        policy = Policy.make("timer", None, Action("a", "m"), policy_id="u")
        assert policy_to_spec(policy)["condition_str"] == ""

    def test_ast_only_condition_rejected(self):
        from repro.core.conditions import Comparison, Literal

        policy = Policy(policy_id="ast", event_pattern="timer",
                        condition=Comparison("temp", ">", Literal(1)),
                        action=Action("a", "m"), priority=0, source="human",
                        author="", metadata={})
        with pytest.raises(PolicyError):
            policy_to_spec(policy)

    def test_export_lists_skipped(self):
        from repro.core.conditions import Comparison, Literal

        policies = PolicySet([
            string_policy("ok"),
            Policy(policy_id="ast", event_pattern="timer",
                   condition=Comparison("temp", ">", Literal(1)),
                   action=Action("a", "m"), priority=0, source="human",
                   author="", metadata={}),
        ])
        bundle = export_policy_set(policies)
        assert [spec["policy_id"] for spec in bundle["policies"]] == ["ok"]
        assert bundle["skipped"] == ["ast"]


class TestImport:
    def test_roundtrip_restores_behaviour(self, tmp_path):
        device = make_test_device("src")
        device.engine.policies.add(string_policy())
        path = os.path.join(tmp_path, "policies.json")
        save_policy_set(device.engine.policies, path)

        target = make_test_device("dst")
        result = load_policy_set(path, target)
        assert result["installed"] == ["p1"]
        restored = target.engine.policies.get("p1")
        assert restored.priority == 3
        assert restored.condition.evaluate({"temp": 60.0})
        assert not restored.condition.evaluate({"temp": 10.0})

    def test_missing_action_rejected(self):
        bundle = export_policy_set(PolicySet([
            string_policy("ghost", action_name="no_such_action"),
        ]))
        # Build it via a device that HAS the action, import where it doesn't.
        source_device = make_test_device("src")
        source_device.engine.actions.add(Action("no_such_action", "motor"))
        target = make_test_device("dst")
        result = import_policy_set(bundle, target)
        assert result["installed"] == []
        assert result["rejected"][0][0] == "ghost"

    def test_governance_gates_generated_sources_on_restore(self):
        from repro.safeguards.governance import (
            Collective, GovernanceSystem, MetaPolicy,
        )
        from repro.types import Branch

        reviewer = GovernanceSystem.scope_reviewer([
            MetaPolicy("cap", max_priority=1),
        ])
        governance = GovernanceSystem(
            Collective(Branch.EXECUTIVE, ["e"], reviewer),
            Collective(Branch.LEGISLATIVE, ["l"], reviewer),
            Collective(Branch.JUDICIARY, ["j"], reviewer),
        )
        bundle = export_policy_set(PolicySet([
            string_policy("gen", source="generated", priority=9),
            string_policy("manual", source="human", priority=9),
        ]))
        target = make_test_device("dst")
        result = import_policy_set(bundle, target, governance=governance)
        # The generated policy violates the cap and is rejected; the human
        # one is not gated.
        assert result["installed"] == ["manual"]
        assert result["rejected"][0] == ("gen", "governance rejected")

    def test_bad_version_rejected(self):
        with pytest.raises(PolicyError):
            import_policy_set({"version": 99}, make_test_device())


class TestTraceExport:
    def test_jsonl_roundtrip(self, tmp_path):
        from repro.sim.tracing import TraceRecorder

        recorder = TraceRecorder()
        recorder.record(1.0, "a.b", "dev1", value=1)
        recorder.record(2.0, "c", "dev2")
        path = os.path.join(tmp_path, "trace.jsonl")
        count = recorder.export_jsonl(path)
        assert count == 2
        loaded = TraceRecorder.load_jsonl(path)
        assert len(loaded.events) == 2
        assert loaded.events[0].detail == {"value": 1}
        assert loaded.count("a") == 1

    def test_filtered_export(self, tmp_path):
        from repro.sim.tracing import TraceRecorder

        recorder = TraceRecorder()
        recorder.record(1.0, "keep.this", "s")
        recorder.record(2.0, "drop.this", "s")
        path = os.path.join(tmp_path, "trace.jsonl")
        assert recorder.export_jsonl(path, kind_prefix="keep") == 1
