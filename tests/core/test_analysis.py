"""Unit tests for policy-set static analysis."""

from repro.core.actions import Action
from repro.core.analysis import analyze_policy_set, find_shadowed, would_conflict
from repro.core.policy import Policy, PolicySet


def policy(pattern, condition, action_name, *, priority=0, actuator="motor",
           policy_id=None, tags=(), source="human"):
    return Policy.make(
        pattern, condition, Action(action_name, actuator, tags=set(tags)),
        priority=priority, policy_id=policy_id, source=source,
    )


class TestAnalyzePolicySet:
    def test_action_surface(self):
        policies = PolicySet([
            policy("timer", "temp > 5", "cool", policy_id="a"),
            policy("timer", None, "patrol", policy_id="b"),
            policy("sensor.smoke", None, "investigate", policy_id="c"),
        ])
        report = analyze_policy_set(policies)
        assert report.policy_count == 3
        assert report.action_surface["timer"] == ["cool", "patrol"]
        assert report.action_surface["sensor.smoke"] == ["investigate"]

    def test_tagged_actions_inventory(self):
        policies = PolicySet([
            policy("mgmt.strike", None, "strike", tags=("kinetic",),
                   policy_id="s1"),
            policy("timer", None, "patrol", policy_id="p1"),
        ])
        report = analyze_policy_set(policies)
        assert "strike" in report.tagged_actions
        assert report.tagged_actions["strike"]["tags"] == ["kinetic"]
        assert report.tagged_actions["strike"]["policies"] == ["s1"]
        assert "patrol" not in report.tagged_actions

    def test_sources_and_priority(self):
        policies = PolicySet([
            policy("timer", None, "a", source="human", priority=5),
            policy("timer", "temp > 1", "b", source="generated", priority=9),
        ])
        report = analyze_policy_set(policies)
        assert report.sources == {"human": 1, "generated": 1}
        assert report.max_priority == 9

    def test_clean_report(self):
        policies = PolicySet([policy("timer", "temp > 5", "cool")])
        assert analyze_policy_set(policies).is_clean()


class TestShadowing:
    def test_unconditional_dominator_shadows(self):
        policies = [
            policy("timer", None, "always", priority=10, policy_id="dom"),
            policy("timer", "temp > 5", "sometimes", priority=1,
                   policy_id="dead"),
        ]
        findings = find_shadowed(policies)
        assert len(findings) == 1
        assert findings[0].shadowed == "dead"
        assert findings[0].dominator == "dom"

    def test_wildcard_dominator_shadows_everything_lower(self):
        policies = [
            policy("*", None, "always", priority=10, policy_id="dom"),
            policy("sensor.smoke", "temp > 5", "x", priority=1,
                   policy_id="dead"),
        ]
        assert len(find_shadowed(policies)) == 1

    def test_conditional_policy_never_shadows(self):
        policies = [
            policy("timer", "temp > 5", "a", priority=10, policy_id="p1"),
            policy("timer", "temp < 5", "b", priority=1, policy_id="p2"),
        ]
        assert find_shadowed(policies) == []

    def test_equal_priority_does_not_shadow(self):
        policies = [
            policy("timer", None, "a", priority=5, policy_id="p1"),
            policy("timer", "temp > 5", "b", priority=5, policy_id="p2"),
        ]
        assert find_shadowed(policies) == []

    def test_narrower_dominator_does_not_shadow_broader(self):
        # The dominator only covers sensor.smoke.*, not all of sensor.*.
        policies = [
            policy("sensor.smoke", None, "a", priority=10, policy_id="p1"),
            policy("sensor", "temp > 1", "b", priority=1, policy_id="p2"),
        ]
        assert find_shadowed(policies) == []


class TestWouldConflict:
    def test_detects_same_priority_actuator_fight(self):
        policies = PolicySet([
            policy("timer", None, "go", priority=5, policy_id="existing"),
        ])
        candidate = policy("timer", None, "stop", priority=5)
        assert would_conflict(policies, candidate) == "existing"

    def test_no_conflict_on_different_priority_or_actuator(self):
        policies = PolicySet([
            policy("timer", None, "go", priority=5, policy_id="existing"),
        ])
        assert would_conflict(policies,
                              policy("timer", None, "stop", priority=6)) is None
        assert would_conflict(policies,
                              policy("timer", None, "beep", priority=5,
                                     actuator="speaker")) is None

    def test_same_action_not_a_conflict(self):
        policies = PolicySet([
            policy("timer", None, "go", priority=5, policy_id="existing"),
        ])
        assert would_conflict(policies,
                              policy("timer", "temp > 1", "go",
                                     priority=5)) is None


def test_generator_rejects_conflicting_policies():
    from repro.core.generative.generator import GenerativePolicyEngine
    from repro.core.generative.interaction_graph import (
        DeviceTypeNode, InteractionEdge, InteractionGraph,
    )
    from repro.core.generative.templates import PolicyTemplate, TemplateRegistry
    from tests.conftest import make_test_device

    graph = InteractionGraph()
    graph.add_type(DeviceTypeNode.make("test"))
    graph.add_type(DeviceTypeNode.make("mule"))
    graph.add_interaction(InteractionEdge("test", "mule", "x",
                                          template_ids=("t1", "t2")))
    registry = TemplateRegistry([
        PolicyTemplate.make("t1", "timer", "", "cool_down", priority=7),
        PolicyTemplate.make("t2", "timer", "", "heat_up", priority=7),
    ])
    engine = GenerativePolicyEngine(graph, registry, reject_conflicting=True)
    device = make_test_device()
    engine.manage(device)
    generation = engine.handle_discovery("dev1", {
        "device_id": "m1", "device_type": "mule", "attributes": {},
    })
    # Both templates target the motor actuator at priority 7: the second is
    # rejected as conflicting.
    assert len(generation.generated) == 1
    assert len(generation.rejected) == 1
    assert "conflicts with" in generation.rejected[0][1]
