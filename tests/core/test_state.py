"""Unit tests for state variables, spaces, and device state."""

import pytest
from hypothesis import given, strategies as st

from repro.core.state import DeviceState, StateSpace, StateVariable, distance
from repro.errors import StateBoundsError, UnknownVariableError


class TestStateVariable:
    def test_validate_kind(self):
        var = StateVariable("x", "float", 0.0)
        var.validate(1.5)
        with pytest.raises(StateBoundsError):
            var.validate("nope")

    def test_bool_is_not_a_number(self):
        var = StateVariable("x", "float", 0.0)
        with pytest.raises(StateBoundsError):
            var.validate(True)

    def test_bounds_enforced(self):
        var = StateVariable("x", "float", 5.0, low=0.0, high=10.0)
        with pytest.raises(StateBoundsError):
            var.validate(-1.0)
        with pytest.raises(StateBoundsError):
            var.validate(11.0)

    def test_default_must_satisfy_bounds(self):
        with pytest.raises(StateBoundsError):
            StateVariable("x", "float", 20.0, low=0.0, high=10.0)

    def test_allowed_set_for_strings(self):
        var = StateVariable("mode", "str", "a", allowed={"a", "b"})
        var.validate("b")
        with pytest.raises(StateBoundsError):
            var.validate("c")

    def test_clamp(self):
        var = StateVariable("x", "float", 5.0, low=0.0, high=10.0)
        assert var.clamp(-3.0) == 0.0
        assert var.clamp(15.0) == 10.0
        assert var.clamp(5.0) == 5.0

    def test_clamp_int_kind_returns_int(self):
        var = StateVariable("n", "int", 1, low=0, high=5)
        assert var.clamp(7.0) == 5
        assert isinstance(var.clamp(7.0), int)

    def test_unknown_kind_rejected(self):
        with pytest.raises(StateBoundsError):
            StateVariable("x", "complex", 0.0)


class TestStateSpace:
    def test_duplicate_names_rejected(self):
        with pytest.raises(StateBoundsError):
            StateSpace([StateVariable("x", "float", 0.0),
                        StateVariable("x", "float", 1.0)])

    def test_unknown_variable_raises(self):
        space = StateSpace([StateVariable("x", "float", 0.0)])
        with pytest.raises(UnknownVariableError):
            space.variable("y")

    def test_numeric_names_excludes_str_and_bool(self):
        space = StateSpace([
            StateVariable("x", "float", 0.0),
            StateVariable("n", "int", 0),
            StateVariable("flag", "bool", False),
            StateVariable("mode", "str", "a", allowed={"a"}),
        ])
        assert space.numeric_names() == ["x", "n"]

    def test_merged_spaces(self):
        a = StateSpace([StateVariable("x", "float", 0.0)])
        b = StateSpace([StateVariable("y", "float", 0.0)])
        merged = a.merged(b)
        assert set(merged.names()) == {"x", "y"}

    def test_merged_conflict_raises(self):
        a = StateSpace([StateVariable("x", "float", 0.0)])
        b = StateSpace([StateVariable("x", "float", 1.0)])
        with pytest.raises(StateBoundsError):
            a.merged(b)


class TestDeviceState:
    def space(self):
        return StateSpace([
            StateVariable("x", "float", 0.0, 0.0, 100.0),
            StateVariable("mode", "str", "idle", allowed={"idle", "busy"}),
        ])

    def test_defaults_and_initial(self):
        state = DeviceState(self.space(), {"x": 5.0})
        assert state.get("x") == 5.0
        assert state["mode"] == "idle"

    def test_apply_records_transition(self):
        state = DeviceState(self.space())
        transition = state.apply({"x": 3.0, "mode": "busy"}, time=2.0,
                                 cause="test")
        assert transition.changed == {"x": (0.0, 3.0), "mode": ("idle", "busy")}
        assert state.version == 1
        assert len(state.history()) == 1

    def test_noop_apply_does_not_bump_version(self):
        state = DeviceState(self.space())
        state.apply({"x": 0.0})
        assert state.version == 0
        assert state.history() == []

    def test_predict_does_not_mutate(self):
        state = DeviceState(self.space())
        predicted = state.predict({"x": 9.0})
        assert predicted["x"] == 9.0
        assert state.get("x") == 0.0

    def test_snapshot_is_a_copy(self):
        state = DeviceState(self.space())
        snapshot = state.snapshot()
        snapshot["x"] = 99.0
        assert state.get("x") == 0.0

    def test_bounds_enforced_on_set(self):
        state = DeviceState(self.space())
        with pytest.raises(StateBoundsError):
            state.set("x", 200.0)

    def test_clamp_changes_saturates(self):
        state = DeviceState(self.space())
        clamped = state.clamp_changes({"x": 500.0, "mode": "busy"})
        assert clamped == {"x": 100.0, "mode": "busy"}

    def test_history_limit(self):
        state = DeviceState(self.space(), history_limit=3)
        for index in range(10):
            state.set("x", float(index + 1))
        assert len(state.history()) == 3

    @given(st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=0.0, max_value=100.0))
    def test_predict_then_apply_agree(self, first, second):
        state = DeviceState(self.space(), {"x": first})
        predicted = state.predict({"x": second})
        state.apply({"x": second})
        assert state.snapshot() == predicted


def test_distance_euclidean():
    assert distance({"x": 0.0, "y": 0.0}, {"x": 3.0, "y": 4.0}) == 5.0


def test_distance_ignores_non_numeric_and_missing():
    a = {"x": 1.0, "mode": "a", "only_a": 2.0}
    b = {"x": 4.0, "mode": "b"}
    assert distance(a, b) == 3.0
