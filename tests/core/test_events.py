"""Unit tests for the event model."""

from repro.core.events import Event


def test_kind_prefix_matching():
    event = Event(kind="sensor.smoke")
    assert event.matches_kind("sensor")
    assert event.matches_kind("sensor.smoke")
    assert event.matches_kind("*")
    assert not event.matches_kind("sensor.smoke.extra")
    assert not event.matches_kind("sens")


def test_constructors():
    sensor = Event.sensor("temp", 42.0, time=1.0, source="probe")
    assert sensor.kind == "sensor.temp"
    assert sensor.get("value") == 42.0

    message = Event.message("dispatch", {"x": 1}, source="peer")
    assert message.kind == "net.dispatch"
    assert message.source == "peer"

    command = Event.command("strike", {"target_x": 5.0})
    assert command.kind == "mgmt.strike"
    assert command.get("target_x") == 5.0
    assert command.get("missing", "default") == "default"

    discovery = Event.discovery("d2", "mule", {"speed": 3.0}, time=2.0)
    assert discovery.kind == "discovery.device"
    assert discovery.payload["device_type"] == "mule"

    timer = Event.timer("tick", time=3.0)
    assert timer.kind == "timer.tick"


def test_event_ids_unique():
    assert Event(kind="a").event_id != Event(kind="a").event_id


def test_payload_copied_for_messages():
    body = {"x": 1}
    event = Event.message("topic", body)
    body["x"] = 99
    assert event.payload["x"] == 1
