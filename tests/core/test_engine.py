"""Unit tests for the policy engine and guard chain."""


from repro.core.actions import Action, noop_action
from repro.core.engine import Safeguard
from repro.core.events import Event
from repro.core.policy import Policy
from repro.errors import SafeguardViolation
from repro.types import ActionOutcome

from tests.conftest import heat_policy, make_test_device


class VetoAll(Safeguard):
    name = "veto_all"

    def check_action(self, device, action, event, time):
        if not action.is_noop:
            raise SafeguardViolation("no actions allowed", safeguard=self.name)


class VetoHot(Safeguard):
    """Vetoes transitions whose predicted temp exceeds a limit."""

    name = "veto_hot"

    def __init__(self, limit=100.0):
        self.limit = limit

    def check_transition(self, device, predicted, action, time):
        if predicted.get("temp", 0.0) > self.limit:
            raise SafeguardViolation(
                f"temp {predicted['temp']} over {self.limit}",
                safeguard=self.name,
            )


class SuggestCool(Safeguard):
    name = "suggest_cool"

    def check_action(self, device, action, event, time):
        if action.name == "heat_up":
            raise SafeguardViolation("heating banned", safeguard=self.name)

    def suggest_alternatives(self, device, action, time):
        return [device.engine.actions.get("cool_down")]


def tick(time=1.0):
    return Event(kind="timer.tick", time=time)


def test_no_policy_noop():
    device = make_test_device()
    decision = device.deliver(tick())
    assert decision.outcome == ActionOutcome.NOOP
    assert decision.policy_id is None


def test_policy_executes_and_applies_effects():
    device = make_test_device()
    heat_policy(device)
    decision = device.deliver(tick())
    assert decision.outcome == ActionOutcome.EXECUTED
    assert device.state.get("temp") == 30.0
    assert decision.executed == "heat_up"


def test_veto_without_alternatives_results_in_vetoed():
    device = make_test_device(safeguards=[VetoAll()])
    heat_policy(device)
    decision = device.deliver(tick())
    assert decision.outcome == ActionOutcome.VETOED
    assert decision.executed is None
    assert device.state.get("temp") == 20.0
    assert decision.vetoes[0][0] == "veto_all"


def test_safeguard_suggested_alternative_substitutes():
    device = make_test_device(safeguards=[SuggestCool()])
    heat_policy(device)
    decision = device.deliver(tick())
    assert decision.outcome == ActionOutcome.SUBSTITUTED
    assert decision.executed == "cool_down"
    assert device.state.get("temp") == 10.0


def test_transition_guard_blocks_only_over_limit():
    device = make_test_device(safeguards=[VetoHot(limit=35.0)])
    heat_policy(device)
    first = device.deliver(tick())           # 20 -> 30 allowed
    assert first.outcome == ActionOutcome.EXECUTED
    second = device.deliver(tick(2.0))       # 30 -> 40 vetoed; library alt runs
    assert second.outcome == ActionOutcome.SUBSTITUTED
    assert second.executed in ("cool_down", "burn_fuel")


def test_deactivated_device_noops():
    device = make_test_device()
    heat_policy(device)
    device.deactivate("test")
    decision = device.deliver(tick())
    assert decision.outcome == ActionOutcome.NOOP
    assert decision.detail["reason"] == "device deactivated"
    assert device.state.get("temp") == 20.0


def test_guard_chain_runs_all_guards():
    """A later guard's veto must be honoured even if earlier guards pass."""
    device = make_test_device(safeguards=[VetoHot(limit=500.0), VetoAll()])
    heat_policy(device)
    decision = device.deliver(tick())
    assert decision.outcome == ActionOutcome.VETOED


def test_noop_action_skips_transition_checks():
    device = make_test_device(safeguards=[VetoHot(limit=0.0)])
    device.engine.policies.add(
        Policy.make("timer", None, noop_action("stand down"))
    )
    decision = device.deliver(tick())
    assert decision.outcome == ActionOutcome.EXECUTED


def test_decision_log_and_veto_count():
    device = make_test_device(safeguards=[VetoAll()])
    heat_policy(device)
    for time in range(3):
        device.deliver(tick(float(time)))
    assert device.engine.veto_count() == 3
    assert len(device.engine.decisions) == 3


def test_on_decision_hook_invoked():
    device = make_test_device()
    heat_policy(device)
    seen = []
    device.engine.on_decision = seen.append
    device.deliver(tick())
    assert len(seen) == 1
    assert seen[0].outcome == ActionOutcome.EXECUTED


def test_missing_actuator_fails_not_crashes():
    device = make_test_device()
    ghost = Action("ghost", "no_such_actuator")
    device.engine.actions.add(ghost)
    device.engine.policies.add(Policy.make("timer", None, ghost, priority=9))
    decision = device.deliver(tick())
    assert decision.outcome == ActionOutcome.FAILED


def test_effects_clamped_to_physical_bounds():
    device = make_test_device()
    device.state.set("temp", 145.0)
    heat_policy(device)
    decision = device.deliver(tick())
    assert decision.outcome == ActionOutcome.EXECUTED
    assert device.state.get("temp") == 150.0  # saturated, not error


def test_remove_safeguard_by_name():
    device = make_test_device(safeguards=[VetoAll()])
    assert device.engine.remove_safeguard("veto_all")
    assert not device.engine.remove_safeguard("veto_all")
    heat_policy(device)
    assert device.deliver(tick()).outcome == ActionOutcome.EXECUTED
