"""Unit tests for policies and policy sets."""

import pytest

from repro.core.actions import Action
from repro.core.events import Event
from repro.core.policy import Policy, PolicySet
from repro.errors import PolicyConflictError, PolicyError


def action(name="act", actuator="m", **kwargs):
    return Action(name, actuator, **kwargs)


class TestPolicy:
    def test_make_parses_string_condition(self):
        policy = Policy.make("sensor.smoke", "temp > 10", action())
        assert policy.applies(Event(kind="sensor.smoke"), {"temp": 20.0})
        assert not policy.applies(Event(kind="sensor.smoke"), {"temp": 5.0})

    def test_none_condition_is_unconditional(self):
        policy = Policy.make("timer", None, action())
        assert policy.applies(Event(kind="timer.tick"), {})

    def test_event_pattern_prefix_matching(self):
        policy = Policy.make("sensor", None, action())
        assert policy.applies(Event(kind="sensor.smoke"), {})
        assert not policy.applies(Event(kind="net.dispatch"), {})

    def test_wildcard_pattern(self):
        policy = Policy.make("*", None, action())
        assert policy.applies(Event(kind="anything.at.all"), {})

    def test_invalid_source_rejected(self):
        with pytest.raises(PolicyError):
            Policy.make("timer", None, action(), source="alien")

    def test_invalid_condition_type_rejected(self):
        with pytest.raises(PolicyError):
            Policy.make("timer", 42, action())

    def test_unique_auto_ids(self):
        first = Policy.make("timer", None, action())
        second = Policy.make("timer", None, action())
        assert first.policy_id != second.policy_id


class TestPolicySet:
    def test_add_remove_get(self):
        policies = PolicySet()
        policy = Policy.make("timer", None, action(), policy_id="p1")
        policies.add(policy)
        assert "p1" in policies
        assert policies.get("p1") is policy
        removed = policies.remove("p1")
        assert removed is policy
        with pytest.raises(PolicyError):
            policies.remove("p1")

    def test_duplicate_id_rejected_replace_allowed(self):
        policies = PolicySet()
        policies.add(Policy.make("timer", None, action(), policy_id="p1"))
        with pytest.raises(PolicyError):
            policies.add(Policy.make("timer", None, action(), policy_id="p1"))
        replacement = Policy.make("net", None, action(), policy_id="p1")
        policies.replace(replacement)
        assert policies.get("p1").event_pattern == "net"

    def test_applicable_sorted_by_priority(self):
        policies = PolicySet([
            Policy.make("timer", None, action("low"), priority=1, policy_id="a"),
            Policy.make("timer", None, action("high"), priority=9, policy_id="b"),
        ])
        hits = policies.applicable(Event(kind="timer.tick"), {})
        assert [policy.policy_id for policy in hits] == ["b", "a"]

    def test_select_returns_highest_priority(self):
        policies = PolicySet([
            Policy.make("timer", "temp > 10", action("hot"), priority=5),
            Policy.make("timer", None, action("default"), priority=1),
        ])
        winner = policies.select(Event(kind="timer.tick"), {"temp": 50.0})
        assert winner.action.name == "hot"
        winner = policies.select(Event(kind="timer.tick"), {"temp": 5.0})
        assert winner.action.name == "default"

    def test_select_none_when_nothing_applies(self):
        policies = PolicySet()
        assert policies.select(Event(kind="timer.tick"), {}) is None

    def test_strict_conflict_detection(self):
        policies = PolicySet([
            Policy.make("timer", None, action("go", "motor"), priority=5),
            Policy.make("timer", None, action("stop", "motor"), priority=5),
        ])
        with pytest.raises(PolicyConflictError):
            policies.select(Event(kind="timer.tick"), {}, strict=True)

    def test_strict_no_conflict_different_actuators(self):
        policies = PolicySet([
            Policy.make("timer", None, action("go", "motor"), priority=5),
            Policy.make("timer", None, action("beep", "speaker"), priority=5),
        ])
        assert policies.select(Event(kind="timer.tick"), {}, strict=True)

    def test_find_conflicts_static(self):
        policies = PolicySet([
            Policy.make("timer", None, action("go", "motor"), priority=5),
            Policy.make("timer", None, action("stop", "motor"), priority=5),
            Policy.make("net", None, action("stop", "motor"), priority=5),
        ])
        conflicts = policies.find_conflicts()
        assert len(conflicts) == 1

    def test_by_source(self):
        policies = PolicySet([
            Policy.make("timer", None, action("a"), source="human"),
            Policy.make("timer", None, action("b"), source="generated"),
        ])
        assert len(policies.by_source("generated")) == 1

    def test_index_only_scans_matching_root(self):
        """Policies under other event roots never even get evaluated."""
        evaluated = []

        from repro.core.conditions import Condition

        class Spy(Condition):
            def __init__(self, tag):
                self.tag = tag

            def evaluate(self, state, event=None):
                evaluated.append(self.tag)
                return True

        policies = PolicySet([
            Policy(policy_id="net_p", event_pattern="net.dispatch",
                   condition=Spy("net"), action=action("a"), priority=0,
                   source="human", author="", metadata={}),
            Policy(policy_id="timer_p", event_pattern="timer",
                   condition=Spy("timer"), action=action("b"), priority=0,
                   source="human", author="", metadata={}),
        ])
        policies.applicable(Event(kind="timer.tick"), {})
        assert evaluated == ["timer"]

    def test_wildcard_policies_match_every_root(self):
        policies = PolicySet([
            Policy.make("*", None, action("always"), policy_id="w"),
        ])
        for kind in ("timer.tick", "sensor.smoke", "net.dispatch"):
            assert policies.select(Event(kind=kind), {}).policy_id == "w"

    def test_replace_reindexes_pattern(self):
        policies = PolicySet([
            Policy.make("timer", None, action("a"), policy_id="p1"),
        ])
        policies.replace(Policy.make("net.dispatch", None, action("b"),
                                     policy_id="p1"))
        assert policies.select(Event(kind="timer.tick"), {}) is None
        assert policies.select(Event(kind="net.dispatch"), {}) is not None

    def test_remove_unindexes(self):
        policies = PolicySet([
            Policy.make("timer", None, action("a"), policy_id="p1"),
        ])
        policies.remove("p1")
        assert policies.select(Event(kind="timer.tick"), {}) is None
        assert len(policies) == 0

    def test_snapshot_is_sorted_ids(self):
        policies = PolicySet([
            Policy.make("timer", None, action(), policy_id="z"),
            Policy.make("timer", None, action(), policy_id="a"),
        ])
        assert policies.snapshot() == ["a", "z"]
