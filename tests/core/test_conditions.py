"""Unit + property tests for condition expressions and the parser."""

import pytest
from hypothesis import given, strategies as st

from repro.core.conditions import (
    AllOf,
    AnyOf,
    Comparison,
    EventFieldIs,
    EventKindIs,
    Literal,
    Not,
    parse_condition,
)
from repro.core.events import Event
from repro.errors import ConditionEvalError, ConditionParseError


STATE = {"temp": 50.0, "fuel": 30.0, "mode": "patrol", "armed": True}


class TestComparison:
    def test_variable_vs_literal(self):
        assert Comparison("temp", ">", Literal(40)).evaluate(STATE)
        assert not Comparison("temp", "<", Literal(40)).evaluate(STATE)

    def test_variable_vs_variable(self):
        assert Comparison("temp", ">", "fuel").evaluate(STATE)

    def test_unknown_variable_raises(self):
        with pytest.raises(ConditionEvalError):
            Comparison("missing", "==", Literal(1)).evaluate(STATE)

    def test_type_mismatch_raises(self):
        with pytest.raises(ConditionEvalError):
            Comparison("mode", ">", Literal(5)).evaluate(STATE)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ConditionParseError):
            Comparison("temp", "~=", Literal(1))

    def test_event_field_access(self):
        event = Event(kind="sensor.smoke", payload={"level": 7})
        condition = Comparison("event.level", ">=", Literal(5))
        assert condition.evaluate(STATE, event)

    def test_event_kind_and_source_fields(self):
        event = Event(kind="sensor.smoke", source="env")
        assert Comparison("event.kind", "==",
                          Literal("sensor.smoke")).evaluate(STATE, event)
        assert Comparison("event.source", "==",
                          Literal("env")).evaluate(STATE, event)

    def test_event_access_without_event_raises(self):
        with pytest.raises(ConditionEvalError):
            Comparison("event.level", ">", Literal(0)).evaluate(STATE, None)

    def test_variables_reported(self):
        condition = Comparison("temp", ">", "fuel")
        assert condition.variables() == {"temp", "fuel"}
        assert Comparison("event.x", "==", Literal(1)).variables() == set()


class TestCombinators:
    def test_all_any_not(self):
        hot = Comparison("temp", ">", Literal(40))
        low_fuel = Comparison("fuel", "<", Literal(10))
        assert AllOf([hot, Not(low_fuel)]).evaluate(STATE)
        assert AnyOf([low_fuel, hot]).evaluate(STATE)
        assert not AllOf([hot, low_fuel]).evaluate(STATE)

    def test_operator_overloads(self):
        hot = Comparison("temp", ">", Literal(40))
        low = Comparison("fuel", "<", Literal(10))
        assert (hot & ~low).evaluate(STATE)
        assert (low | hot).evaluate(STATE)

    def test_empty_allof_is_true(self):
        assert AllOf([]).evaluate(STATE)
        assert not AnyOf([]).evaluate(STATE)


class TestEventConditions:
    def test_event_kind_is_prefix(self):
        event = Event(kind="sensor.smoke")
        assert EventKindIs("sensor").evaluate({}, event)
        assert EventKindIs("sensor.smoke").evaluate({}, event)
        assert not EventKindIs("net").evaluate({}, event)
        assert not EventKindIs("sensor").evaluate({}, None)

    def test_event_field_is(self):
        event = Event(kind="x", payload={"n": 3})
        assert EventFieldIs("n", ">=", 3).evaluate({}, event)
        assert not EventFieldIs("missing", "==", 1).evaluate({}, event)


class TestParser:
    @pytest.mark.parametrize("text,expected", [
        ("temp > 40", True),
        ("temp < 40", False),
        ("temp >= 50", True),
        ("temp <= 49.5", False),
        ("mode == 'patrol'", True),
        ("mode != 'patrol'", False),
        ('mode == "patrol"', True),
        ("armed", True),
        ("not armed", False),
        ("temp > 40 and fuel < 50", True),
        ("temp > 40 and fuel > 50", False),
        ("temp > 90 or fuel < 50", True),
        ("not (temp > 90) and mode == 'patrol'", True),
        ("temp > 40 and fuel < 50 or mode == 'idle'", True),
        ("true", True),
        ("", True),
        ("false", False),
    ])
    def test_parse_and_evaluate(self, text, expected):
        assert parse_condition(text).evaluate(STATE) is expected

    def test_precedence_and_binds_tighter_than_or(self):
        # a or (b and c): false or (true and true)
        condition = parse_condition("temp > 90 or temp > 40 and fuel < 50")
        assert condition.evaluate(STATE)

    def test_negative_numbers(self):
        assert parse_condition("temp > -10").evaluate(STATE)

    @pytest.mark.parametrize("bad", [
        "temp >", "> 5", "temp ==== 5", "(temp > 5", "temp > 5)",
        "5", "'literal'", "temp 5", "and temp > 5",
    ])
    def test_malformed_raises(self, bad):
        with pytest.raises(ConditionParseError):
            parse_condition(bad)

    def test_event_payload_in_parsed_condition(self):
        event = Event(kind="sensor.smoke", payload={"level": 9})
        condition = parse_condition("event.level > 5 and temp > 40")
        assert condition.evaluate(STATE, event)

    @given(st.floats(min_value=-1e6, max_value=1e6,
                     allow_nan=False, allow_infinity=False))
    def test_parsed_threshold_matches_direct_comparison(self, threshold):
        condition = parse_condition(f"temp > {threshold}")
        assert condition.evaluate(STATE) == (STATE["temp"] > threshold)

    def test_repr_roundtrip_semantics(self):
        """The AST repr is informative, not a grammar; check it exists."""
        condition = parse_condition("temp > 5 and not (fuel < 2)")
        assert "temp" in repr(condition)
