"""Unit tests for gossip-based knowledge sharing (sec IV, ref [3])."""

from repro.net.gossip import GossipNode, KnowledgeItem
from repro.net.network import Network
from repro.sim.simulator import Simulator


def build(n=4, fanout=2, interval=1.0):
    sim = Simulator(seed=9)
    net = Network(sim, base_latency=0.01, jitter=0.0)
    nodes = {}
    for index in range(n):
        node_id = f"n{index}"

        def handler(message, node_id=node_id):
            if GossipNode.is_exchange(message):
                nodes[node_id].handle_exchange(message)

        net.register(node_id, handler)
        nodes[node_id] = GossipNode(node_id, sim, net,
                                    interval=interval, fanout=fanout)
    return sim, net, nodes


def test_knowledge_spreads_to_all():
    sim, _net, nodes = build(n=5)
    nodes["n0"].publish("fact", {"value": 42})
    sim.run(until=30.0)
    for node in nodes.values():
        item = node.get("fact")
        assert item is not None
        assert item.payload == {"value": 42}


def test_newer_version_wins():
    sim, _net, nodes = build(n=3)
    nodes["n0"].publish("fact", {"value": 1})
    sim.run(until=10.0)
    nodes["n0"].publish("fact", {"value": 2})
    sim.run(until=30.0)
    for node in nodes.values():
        assert node.get("fact").payload == {"value": 2}
        assert node.get("fact").version == 2


def test_version_tie_breaks_by_origin():
    low = KnowledgeItem("k", 1, "aaa", {})
    high = KnowledgeItem("k", 1, "zzz", {})
    assert low.beats(high)
    assert not high.beats(low)
    assert low.beats(None)


def test_taint_flag_travels():
    sim, _net, nodes = build(n=3)
    nodes["n0"].publish("bad_fact", {"cmd": "rogue"}, tainted=True)
    sim.run(until=30.0)
    assert all(node.get("bad_fact").tainted for node in nodes.values())


def test_partition_confines_gossip():
    sim, net, nodes = build(n=4)
    net.topology.partition([["n0", "n1"], ["n2", "n3"]])
    nodes["n0"].publish("fact", {"v": 1})
    sim.run(until=30.0)
    assert nodes["n1"].get("fact") is not None
    assert nodes["n2"].get("fact") is None
    assert nodes["n3"].get("fact") is None


def test_stop_halts_rounds():
    sim, _net, nodes = build(n=2)
    nodes["n0"].publish("fact", {"v": 1})
    nodes["n0"].stop()
    nodes["n1"].stop()
    sim.run(until=30.0)
    assert nodes["n1"].get("fact") is None


def test_on_update_callback():
    sim, net, nodes = build(n=2)
    seen = []
    nodes["n1"].on_update = seen.append
    nodes["n0"].publish("fact", {"v": 7})
    sim.run(until=10.0)
    assert len(seen) >= 1
    assert seen[0].key == "fact"


def test_keys_listing():
    sim, _net, nodes = build(n=2)
    nodes["n0"].publish("b_fact", {})
    nodes["n0"].publish("a_fact", {})
    assert nodes["n0"].keys() == ["a_fact", "b_fact"]
