"""Unit tests for the ack/retry channel (net/reliable.py)."""

import pytest

from repro.errors import NetworkError
from repro.net.message import BROADCAST
from repro.net.network import Network
from repro.net.reliable import ACK_TOPIC, ReliableChannel
from repro.sim.simulator import Simulator


def build(loss_rate=0.0, seed=7, **channel_kwargs):
    sim = Simulator(seed=seed)
    network = Network(sim, base_latency=0.1, jitter=0.0, loss_rate=loss_rate)
    channel = ReliableChannel(network, **channel_kwargs)
    return sim, network, channel


def test_lossless_send_delivers_once_and_acks():
    sim, network, channel = build()
    inbox = []
    channel.register("a", lambda message: None)
    channel.register("b", inbox.append)
    pending = channel.send("a", "b", "hello", {"x": 1})
    sim.run(until=5.0)
    assert [message.body for message in inbox] == [{"x": 1}]
    assert pending.acked and pending.attempts == 1
    assert channel.outstanding() == 0
    assert sim.metrics.value("reliable.acked") == 1
    # Protocol bookkeeping is stripped before the application handler.
    assert "_rmid" not in inbox[0].body


def test_retries_recover_from_heavy_loss():
    # Flat backoff: 30 attempts at 0.5 s intervals.  Seed 9 loses ten
    # attempts to the 60% loss before an ack makes it back.
    sim, network, channel = build(loss_rate=0.6, max_attempts=30,
                                  timeout=0.5, backoff=1.0, seed=9)
    inbox = []
    channel.register("a", lambda message: None)
    channel.register("b", inbox.append)
    pending = channel.send("a", "b", "hello", {"x": 1})
    sim.run(until=300.0)
    assert pending.acked
    assert pending.attempts > 1                      # loss actually bit
    assert len(inbox) == 1                           # duplicates suppressed
    assert sim.metrics.value("reliable.resends") > 0


def test_duplicate_deliveries_suppressed_and_reacked():
    sim, network, channel = build()
    inbox = []
    acks = []
    channel.register("b", inbox.append)
    network.register("raw", lambda message: acks.append(message))
    # The same rmid arriving twice (a retry whose first copy survived):
    # one delivery, two acks (the re-ack covers a lost first ack).
    for _ in range(2):
        network.send("raw", "b", "hello", {"x": 1, "_rmid": "r99",
                                           "_rfrom": "raw"})
    sim.run(until=5.0)
    assert len(inbox) == 1
    assert [message.topic for message in acks] == [ACK_TOPIC, ACK_TOPIC]
    assert sim.metrics.value("reliable.duplicates") == 1


def test_dead_letter_after_attempt_budget():
    sim, network, channel = build(max_attempts=3, timeout=0.5, jitter=0.0)
    failures = []
    channel.register("a", lambda message: None)
    # "b" is registered but suspended: every attempt vanishes.
    channel.register("b", lambda message: None)
    network.suspend("b")
    pending = channel.send("a", "b", "hello", {}, on_fail=failures.append)
    sim.run(until=60.0)
    assert pending.dead and not pending.acked
    assert pending.attempts == 3
    assert failures == [pending]
    assert channel.dead_letters == [pending]
    assert channel.outstanding() == 0
    assert sim.metrics.value("reliable.dead_letter") == 1


def test_backoff_delays_grow_exponentially():
    sim, network, channel = build(max_attempts=4, timeout=1.0, jitter=0.0)
    channel.register("a", lambda message: None)
    channel.register("b", lambda message: None)
    network.suspend("b")
    sent_at = []
    network.tap(lambda message: sent_at.append(sim.now)
                if message.topic == "hello" else None)
    channel.send("a", "b", "hello", {})
    sim.run(until=60.0)
    gaps = [b - a for a, b in zip(sent_at, sent_at[1:])]
    assert len(sent_at) == 4
    assert gaps == pytest.approx([1.0, 2.0, 4.0])


def test_plain_datagrams_pass_through_untouched():
    sim, network, channel = build()
    inbox = []
    channel.register("b", inbox.append)
    network.register("raw", lambda message: None)
    network.send("raw", "b", "gossip", {"x": 2})
    sim.run(until=5.0)
    assert [message.body for message in inbox] == [{"x": 2}]
    assert sim.metrics.value("reliable.acked") == 0


def test_attach_wraps_an_existing_endpoint():
    sim, network, channel = build()
    inbox = []
    network.register("b", inbox.append)
    channel.attach("b")
    channel.register("a", lambda message: None)
    channel.send("a", "b", "hello", {"x": 3})
    sim.run(until=5.0)
    assert [message.body for message in inbox] == [{"x": 3}]
    assert sim.metrics.value("reliable.acked") == 1


def test_broadcast_rejected_and_parameters_validated():
    sim, network, channel = build()
    channel.register("a", lambda message: None)
    with pytest.raises(NetworkError):
        channel.send("a", BROADCAST, "hello", {})
    for kwargs in ({"timeout": 0.0}, {"backoff": 0.5}, {"jitter": -1.0},
                   {"max_attempts": 0}):
        with pytest.raises(NetworkError):
            ReliableChannel(network, **kwargs)


def test_same_seed_same_retry_schedule():
    def retry_times(seed):
        sim, network, channel = build(max_attempts=4, timeout=1.0,
                                      jitter=0.5, seed=seed)
        channel.register("a", lambda message: None)
        channel.register("b", lambda message: None)
        network.suspend("b")
        sent_at = []
        network.tap(lambda message: sent_at.append(sim.now)
                    if message.topic == "hello" else None)
        channel.send("a", "b", "hello", {})
        sim.run(until=60.0)
        return sent_at

    assert retry_times(5) == retry_times(5)
    assert retry_times(5) != retry_times(6)


# -- flow control: per-sender in-flight cap + snapshot coalescing -------------------


def test_in_flight_cap_queues_excess_sends():
    sim, network, channel = build(max_in_flight=2)
    inbox = []
    channel.register("a", lambda message: None)
    channel.register("b", inbox.append)
    handles = [channel.send("a", "b", "data", {"n": n}) for n in range(5)]
    assert channel.queue_depth("a") == 3           # 2 on the wire, 3 waiting
    assert channel.outstanding() == 5
    sim.run(until=10.0)
    # Everything drains, in FIFO order, exactly once each.
    assert [message.body["n"] for message in inbox] == [0, 1, 2, 3, 4]
    assert all(handle.acked for handle in handles)
    assert channel.queue_depth() == 0
    assert channel.outstanding() == 0
    assert sim.metrics.value("reliable.queued") == 3


def test_queue_drains_on_dead_letters_too():
    # Unreachable recipient: every send dead-letters, but the cap still
    # admits the backlog one resolution at a time instead of stalling.
    sim, network, channel = build(max_in_flight=1, max_attempts=2,
                                  timeout=0.5, jitter=0.0)
    channel.register("a", lambda message: None)
    handles = [channel.send("a", "nowhere", "data", {"n": n}) for n in range(3)]
    sim.run(until=60.0)
    assert all(handle.dead for handle in handles)
    assert len(channel.dead_letters) == 3
    assert channel.queue_depth() == 0


def test_coalescing_supersedes_queued_snapshots():
    sim, network, channel = build(max_in_flight=1)
    inbox = []
    channel.register("a", lambda message: None)
    channel.register("b", inbox.append)
    first = channel.send("a", "b", "report", {"v": 1}, coalesce="telemetry")
    stale = channel.send("a", "b", "report", {"v": 2}, coalesce="telemetry")
    fresh = channel.send("a", "b", "report", {"v": 3}, coalesce="telemetry")
    other = channel.send("a", "b", "order", {"v": 4})   # different topic: kept
    assert stale.superseded and not fresh.superseded
    assert channel.queue_depth("a") == 2                # fresh + order
    sim.run(until=10.0)
    # The wire only ever carried v=1 (in flight before v=2 arrived), the
    # winning v=3 snapshot, and the non-coalescible order.
    assert [message.body for message in inbox] == [{"v": 1}, {"v": 3}, {"v": 4}]
    assert first.acked and fresh.acked and other.acked
    assert not stale.acked and not stale.dead           # dropped silently
    assert sim.metrics.value("reliable.coalesced") == 1


def test_coalescing_never_touches_in_flight_messages():
    sim, network, channel = build(max_in_flight=2)
    inbox = []
    channel.register("a", lambda message: None)
    channel.register("b", inbox.append)
    wire1 = channel.send("a", "b", "report", {"v": 1}, coalesce="telemetry")
    wire2 = channel.send("a", "b", "report", {"v": 2}, coalesce="telemetry")
    assert not wire1.superseded and not wire2.superseded
    sim.run(until=10.0)
    assert [message.body["v"] for message in inbox] == [1, 2]


def test_uncapped_channel_ignores_coalesce_tag():
    sim, network, channel = build()                      # max_in_flight=None
    inbox = []
    channel.register("a", lambda message: None)
    channel.register("b", inbox.append)
    for value in range(4):
        channel.send("a", "b", "report", {"v": value}, coalesce="telemetry")
    assert channel.queue_depth() == 0                    # nothing ever queues
    sim.run(until=10.0)
    assert [message.body["v"] for message in inbox] == [0, 1, 2, 3]


def test_caps_are_per_sender_not_global():
    sim, network, channel = build(max_in_flight=1)
    channel.register("a", lambda message: None)
    channel.register("b", lambda message: None)
    channel.register("c", lambda message: None)
    channel.send("a", "c", "data", {})
    channel.send("b", "c", "data", {})                  # different sender
    assert channel.queue_depth("a") == 0
    assert channel.queue_depth("b") == 0                # both on the wire
    channel.send("a", "c", "data", {})
    assert channel.queue_depth("a") == 1                # a is at its cap


def test_max_in_flight_validation():
    with pytest.raises(NetworkError):
        build(max_in_flight=0)
