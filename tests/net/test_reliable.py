"""Unit tests for the ack/retry channel (net/reliable.py)."""

import pytest

from repro.errors import NetworkError
from repro.net.message import BROADCAST
from repro.net.network import Network
from repro.net.reliable import ACK_TOPIC, ReliableChannel
from repro.sim.simulator import Simulator


def build(loss_rate=0.0, seed=7, **channel_kwargs):
    sim = Simulator(seed=seed)
    network = Network(sim, base_latency=0.1, jitter=0.0, loss_rate=loss_rate)
    channel = ReliableChannel(network, **channel_kwargs)
    return sim, network, channel


def test_lossless_send_delivers_once_and_acks():
    sim, network, channel = build()
    inbox = []
    channel.register("a", lambda message: None)
    channel.register("b", inbox.append)
    pending = channel.send("a", "b", "hello", {"x": 1})
    sim.run(until=5.0)
    assert [message.body for message in inbox] == [{"x": 1}]
    assert pending.acked and pending.attempts == 1
    assert channel.outstanding() == 0
    assert sim.metrics.value("reliable.acked") == 1
    # Protocol bookkeeping is stripped before the application handler.
    assert "_rmid" not in inbox[0].body


def test_retries_recover_from_heavy_loss():
    # Flat backoff: 30 attempts at 0.5 s intervals.  Seed 9 loses ten
    # attempts to the 60% loss before an ack makes it back.
    sim, network, channel = build(loss_rate=0.6, max_attempts=30,
                                  timeout=0.5, backoff=1.0, seed=9)
    inbox = []
    channel.register("a", lambda message: None)
    channel.register("b", inbox.append)
    pending = channel.send("a", "b", "hello", {"x": 1})
    sim.run(until=300.0)
    assert pending.acked
    assert pending.attempts > 1                      # loss actually bit
    assert len(inbox) == 1                           # duplicates suppressed
    assert sim.metrics.value("reliable.resends") > 0


def test_duplicate_deliveries_suppressed_and_reacked():
    sim, network, channel = build()
    inbox = []
    acks = []
    channel.register("b", inbox.append)
    network.register("raw", lambda message: acks.append(message))
    # The same rmid arriving twice (a retry whose first copy survived):
    # one delivery, two acks (the re-ack covers a lost first ack).
    for _ in range(2):
        network.send("raw", "b", "hello", {"x": 1, "_rmid": "r99",
                                           "_rfrom": "raw"})
    sim.run(until=5.0)
    assert len(inbox) == 1
    assert [message.topic for message in acks] == [ACK_TOPIC, ACK_TOPIC]
    assert sim.metrics.value("reliable.duplicates") == 1


def test_dead_letter_after_attempt_budget():
    sim, network, channel = build(max_attempts=3, timeout=0.5, jitter=0.0)
    failures = []
    channel.register("a", lambda message: None)
    # "b" is registered but suspended: every attempt vanishes.
    channel.register("b", lambda message: None)
    network.suspend("b")
    pending = channel.send("a", "b", "hello", {}, on_fail=failures.append)
    sim.run(until=60.0)
    assert pending.dead and not pending.acked
    assert pending.attempts == 3
    assert failures == [pending]
    assert channel.dead_letters == [pending]
    assert channel.outstanding() == 0
    assert sim.metrics.value("reliable.dead_letter") == 1


def test_backoff_delays_grow_exponentially():
    sim, network, channel = build(max_attempts=4, timeout=1.0, jitter=0.0)
    channel.register("a", lambda message: None)
    channel.register("b", lambda message: None)
    network.suspend("b")
    sent_at = []
    network.tap(lambda message: sent_at.append(sim.now)
                if message.topic == "hello" else None)
    channel.send("a", "b", "hello", {})
    sim.run(until=60.0)
    gaps = [b - a for a, b in zip(sent_at, sent_at[1:])]
    assert len(sent_at) == 4
    assert gaps == pytest.approx([1.0, 2.0, 4.0])


def test_plain_datagrams_pass_through_untouched():
    sim, network, channel = build()
    inbox = []
    channel.register("b", inbox.append)
    network.register("raw", lambda message: None)
    network.send("raw", "b", "gossip", {"x": 2})
    sim.run(until=5.0)
    assert [message.body for message in inbox] == [{"x": 2}]
    assert sim.metrics.value("reliable.acked") == 0


def test_attach_wraps_an_existing_endpoint():
    sim, network, channel = build()
    inbox = []
    network.register("b", inbox.append)
    channel.attach("b")
    channel.register("a", lambda message: None)
    channel.send("a", "b", "hello", {"x": 3})
    sim.run(until=5.0)
    assert [message.body for message in inbox] == [{"x": 3}]
    assert sim.metrics.value("reliable.acked") == 1


def test_broadcast_rejected_and_parameters_validated():
    sim, network, channel = build()
    channel.register("a", lambda message: None)
    with pytest.raises(NetworkError):
        channel.send("a", BROADCAST, "hello", {})
    for kwargs in ({"timeout": 0.0}, {"backoff": 0.5}, {"jitter": -1.0},
                   {"max_attempts": 0}):
        with pytest.raises(NetworkError):
            ReliableChannel(network, **kwargs)


def test_same_seed_same_retry_schedule():
    def retry_times(seed):
        sim, network, channel = build(max_attempts=4, timeout=1.0,
                                      jitter=0.5, seed=seed)
        channel.register("a", lambda message: None)
        channel.register("b", lambda message: None)
        network.suspend("b")
        sent_at = []
        network.tap(lambda message: sent_at.append(sim.now)
                    if message.topic == "hello" else None)
        channel.send("a", "b", "hello", {})
        sim.run(until=60.0)
        return sent_at

    assert retry_times(5) == retry_times(5)
    assert retry_times(5) != retry_times(6)
