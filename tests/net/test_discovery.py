"""Unit tests for dynamic device discovery (sec IV)."""

from repro.net.discovery import DiscoveryService
from repro.net.network import Network
from repro.sim.simulator import Simulator


class Member:
    """Minimal discovery participant."""

    def __init__(self, member_id, sim, net, service, record=None):
        self.member_id = member_id
        self.service = service
        self.discovered = []
        self.record = record or {"device_id": member_id, "device_type": "drone",
                                 "attributes": {"speed": 5.0}}
        net.register(member_id, self._on_message)
        service.join(member_id, lambda: dict(self.record),
                     on_discovery=lambda observer, rec: self.discovered.append(rec))

    def _on_message(self, message):
        if DiscoveryService.is_announcement(message):
            self.service.handle_announcement(self.member_id, message)


def build(n=3, announce_interval=2.0):
    sim = Simulator(seed=5)
    net = Network(sim, base_latency=0.01, jitter=0.0)
    service = DiscoveryService(sim, net, announce_interval=announce_interval)
    members = [Member(f"m{i}", sim, net, service) for i in range(n)]
    return sim, net, service, members


def test_members_discover_each_other():
    sim, _net, service, members = build(n=3)
    sim.run(until=10.0)
    for member in members:
        visible = service.visible_to(member.member_id)
        assert len(visible) == 2
        assert member.member_id not in visible


def test_discovery_callback_fires_once_per_peer():
    sim, _net, _service, members = build(n=2)
    sim.run(until=20.0)   # many announcement rounds
    assert len(members[0].discovered) == 1
    assert members[0].discovered[0]["device_id"] == "m1"


def test_attribute_updates_propagate():
    sim, _net, service, members = build(n=2)
    sim.run(until=3.0)
    members[1].record["attributes"] = {"speed": 9.0}
    sim.run(until=10.0)
    visible = service.visible_to("m0")
    assert visible["m1"]["attributes"]["speed"] == 9.0


def test_leave_stops_announcements():
    sim, _net, service, members = build(n=2)
    sim.run(until=3.0)
    service.leave("m1")
    service.forget("m0", "m1")
    sim.run(until=10.0)
    assert "m1" not in service.visible_to("m0")


def test_partition_blocks_discovery():
    sim = Simulator(seed=5)
    net = Network(sim, base_latency=0.01, jitter=0.0)
    service = DiscoveryService(sim, net, announce_interval=1.0)
    net.topology.partition([["m0"], ["m1"]])
    members = [Member(f"m{i}", sim, net, service) for i in range(2)]
    sim.run(until=10.0)
    assert service.visible_to("m0") == {}
    assert members[0].discovered == []


def test_metrics_count_new_discoveries():
    sim, _net, _service, _members = build(n=3)
    sim.run(until=10.0)
    # 3 members, each discovering 2 peers.
    assert sim.metrics.value("discovery.new") == 6
