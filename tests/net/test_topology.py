"""Unit tests for network topology and partitions."""

import pytest

from repro.errors import NetworkError
from repro.net.topology import Topology


def test_implicit_full_connectivity():
    topo = Topology(["a", "b", "c"])
    assert topo.can_reach("a", "b")
    assert topo.can_reach("c", "a")
    assert not topo.can_reach("a", "a")
    assert sorted(topo.neighbors("a")) == ["b", "c"]


def test_explicit_mode_after_first_link():
    topo = Topology(["a", "b", "c"])
    topo.add_link("a", "b")
    assert topo.can_reach("a", "b")
    assert not topo.can_reach("a", "c")   # explicit now; no link
    assert topo.neighbors("a") == ["b"]


def test_unknown_members_unreachable():
    topo = Topology(["a"])
    assert not topo.can_reach("a", "ghost")
    assert topo.neighbors("ghost") == []


def test_self_link_rejected():
    with pytest.raises(NetworkError):
        Topology(["a"]).add_link("a", "a")


def test_partition_and_heal():
    topo = Topology(["a", "b", "c", "d"])
    topo.partition([["a", "b"], ["c", "d"]])
    assert topo.can_reach("a", "b")
    assert not topo.can_reach("a", "c")
    topo.heal()
    assert topo.can_reach("a", "c")


def test_partition_in_explicit_mode():
    topo = Topology.line(["a", "b", "c"])
    assert topo.can_reach("a", "b")
    topo.partition([["a"], ["b", "c"]])
    assert not topo.can_reach("a", "b")
    assert topo.can_reach("b", "c")


def test_connected_component_explicit():
    topo = Topology.line(["a", "b", "c"])
    topo.add_member("lonely")
    assert topo.connected_component("a") == {"a", "b", "c"}
    assert topo.connected_component("lonely") == {"lonely"}


def test_connected_component_implicit_respects_partitions():
    topo = Topology(["a", "b", "c"])
    topo.partition([["a", "b"], ["c"]])
    assert topo.connected_component("a") == {"a", "b"}


def test_star_shape():
    topo = Topology.star("hub", ["l1", "l2"])
    assert topo.can_reach("hub", "l1")
    assert not topo.can_reach("l1", "l2")


def test_ring_shape():
    topo = Topology.ring(["a", "b", "c", "d"])
    assert topo.can_reach("a", "b")
    assert topo.can_reach("a", "d")
    assert not topo.can_reach("a", "c")
    with pytest.raises(NetworkError):
        Topology.ring(["a", "b"])


def test_remove_member_clears_partition_assignment():
    topo = Topology(["a", "b"])
    topo.partition([["a"], ["b"]])
    topo.remove_member("b")
    topo.add_member("b")
    # Fresh member defaults back to the unassigned group with nobody else
    # in a different partition... 'a' is in group 0, 'b' unassigned (-1).
    assert not topo.can_reach("a", "b")
    topo.heal()
    assert topo.can_reach("a", "b")
