"""Unit tests for the message bus."""

import pytest

from repro.errors import NetworkError
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.simulator import Simulator


def make_net(**kwargs):
    sim = Simulator(seed=1)
    return sim, Network(sim, **kwargs)


def test_basic_delivery_with_latency():
    sim, net = make_net(base_latency=0.5, jitter=0.0)
    inbox = []
    net.register("a", lambda message: None)
    net.register("b", inbox.append)
    net.send("a", "b", "topic", {"x": 1})
    sim.run()
    assert len(inbox) == 1
    assert inbox[0].body == {"x": 1}
    assert sim.now == 0.5


def test_broadcast_excludes_sender():
    sim, net = make_net(jitter=0.0)
    boxes = {name: [] for name in ("a", "b", "c")}
    for name in boxes:
        net.register(name, boxes[name].append)
    net.broadcast("a", "topic", {})
    sim.run()
    assert len(boxes["a"]) == 0
    assert len(boxes["b"]) == 1
    assert len(boxes["c"]) == 1


def test_loss_rate_drops_messages():
    sim, net = make_net(loss_rate=1.0 - 1e-12)  # effectively always drop
    inbox = []
    net.register("a", lambda message: None)
    net.register("b", inbox.append)
    for _ in range(20):
        net.send("a", "b", "topic", {})
    sim.run()
    assert inbox == []
    assert sim.metrics.value("net.dropped") == 20


def test_unroutable_and_unreachable_counted():
    sim, net = make_net()
    net.register("a", lambda message: None)
    net.send("a", "ghost", "topic", {})
    assert sim.metrics.value("net.unroutable") == 1

    net.register("b", lambda message: None)
    net.topology.partition([["a"], ["b"]])
    net.send("a", "b", "topic", {})
    assert sim.metrics.value("net.unreachable") == 1


def test_register_validation():
    _sim, net = make_net()
    net.register("a", lambda message: None)
    with pytest.raises(NetworkError):
        net.register("a", lambda message: None)
    with pytest.raises(NetworkError):
        net.register("*", lambda message: None)


def test_unregister_removes_from_topology():
    sim, net = make_net()
    net.register("a", lambda message: None)
    net.register("b", lambda message: None)
    net.unregister("b")
    net.send("a", "b", "topic", {})
    sim.run()
    assert sim.metrics.value("net.unroutable") == 1


def test_tap_sees_all_sends():
    sim, net = make_net()
    taps = []
    net.tap(taps.append)
    net.register("a", lambda message: None)
    net.register("b", lambda message: None)
    net.send("a", "b", "t1", {})
    net.send("a", "ghost", "t2", {})   # even unroutable sends are tapped
    assert [message.topic for message in taps] == ["t1", "t2"]


def test_latency_histogram_recorded():
    sim, net = make_net(base_latency=0.2, jitter=0.0)
    net.register("a", lambda message: None)
    net.register("b", lambda message: None)
    net.send("a", "b", "topic", {})
    sim.run()
    histogram = sim.metrics.get("net.latency")
    assert histogram.count == 1
    assert histogram.mean == pytest.approx(0.2)


def test_invalid_parameters_rejected():
    sim = Simulator(seed=1)
    with pytest.raises(NetworkError):
        Network(sim, base_latency=-1.0)
    with pytest.raises(NetworkError):
        Network(sim, loss_rate=1.5)
    with pytest.raises(NetworkError):
        Network(sim, loss_rate=-0.1)


def test_total_blackout_loss_rate_allowed():
    # loss_rate == 1.0 models a fully severed link (partition experiments).
    sim, net = make_net(loss_rate=1.0)
    inbox = []
    net.register("a", lambda message: None)
    net.register("b", inbox.append)
    net.send("a", "b", "topic", {})
    sim.run()
    assert inbox == []
    assert sim.metrics.value("net.dropped") == 1


def test_suspend_and_resume_silence_an_address():
    sim, net = make_net()
    inbox = []
    net.register("a", lambda message: None)
    net.register("b", inbox.append)
    net.suspend("b")
    net.send("a", "b", "topic", {"n": 1})
    sim.run()
    assert inbox == []
    assert sim.metrics.value("net.suspended_drop") == 1
    net.resume("b")
    net.send("a", "b", "topic", {"n": 2})
    sim.run()
    assert [message.body["n"] for message in inbox] == [2]


def test_explicit_topology_respected():
    sim = Simulator(seed=1)
    topo = Topology.line(["a", "b", "c"])
    net = Network(sim, topology=topo, jitter=0.0)
    boxes = {name: [] for name in ("a", "b", "c")}
    for name in boxes:
        net.register(name, boxes[name].append)
    net.send("a", "c", "topic", {})   # no direct a-c link
    sim.run()
    assert boxes["c"] == []
    net.send("a", "b", "topic", {})
    sim.run()
    assert len(boxes["b"]) == 1
