"""Unit tests for human-emulation learning and its risks (sec IV)."""

import pytest

from repro.core.actions import Action, ActionLibrary
from repro.core.conditions import parse_condition
from repro.errors import LearningError
from repro.learning.emulation import Demonstration, HumanEmulationLearner


BUCKETERS = {"temp": lambda value: "high" if value > 50 else "low"}


def learner(min_demonstrations=3, min_agreement=0.6):
    return HumanEmulationLearner(BUCKETERS,
                                 min_demonstrations=min_demonstrations,
                                 min_agreement=min_agreement)


def demo(temp, action, event_kind="timer"):
    return Demonstration(situation={"temp": temp}, action_name=action,
                         event_kind=event_kind)


def test_learns_majority_behaviour():
    model = learner()
    for _ in range(5):
        model.observe(demo(80.0, "cool_down"))
    assert model.recommended_action("timer", {"temp": 90.0}) == "cool_down"
    assert model.recommended_action("timer", {"temp": 20.0}) is None


def test_unconfident_below_min_demonstrations():
    model = learner(min_demonstrations=5)
    for _ in range(4):
        model.observe(demo(80.0, "cool_down"))
    assert model.recommended_action("timer", {"temp": 90.0}) is None


def test_disagreement_below_threshold_blocks():
    model = learner(min_agreement=0.8)
    for _ in range(3):
        model.observe(demo(80.0, "cool_down"))
    for _ in range(2):
        model.observe(demo(80.0, "heat_up"))
    assert model.recommended_action("timer", {"temp": 90.0}) is None


def test_mistakes_in_demonstrations_are_encoded():
    """The paper's inappropriate-emulation risk: if the majority of human
    demonstrations are wrong, the learner faithfully encodes the mistake."""
    model = learner()
    for _ in range(4):
        model.observe(demo(80.0, "heat_up"))       # humans err
    for _ in range(1):
        model.observe(demo(80.0, "cool_down"))
    assert model.recommended_action("timer", {"temp": 90.0}) == "heat_up"


def test_event_kinds_bucket_separately():
    model = learner()
    for _ in range(3):
        model.observe(demo(80.0, "cool_down", event_kind="timer"))
        model.observe(demo(80.0, "investigate", event_kind="sensor.smoke"))
    assert model.recommended_action("timer", {"temp": 90.0}) == "cool_down"
    assert model.recommended_action("sensor.smoke", {"temp": 90.0}) == "investigate"


def test_missing_bucketed_variable_raises():
    model = learner()
    with pytest.raises(LearningError):
        model.observe(Demonstration(situation={"fuel": 1.0}, action_name="x"))


def test_requires_bucketers():
    with pytest.raises(LearningError):
        HumanEmulationLearner({})


def test_propose_policies_produces_evaluable_rules():
    model = learner()
    for _ in range(5):
        model.observe(demo(80.0, "cool_down"))
    library = ActionLibrary([Action("cool_down", "cooler")])
    policies = model.propose_policies(
        action_lookup=library.get,
        bucket_conditions={("temp", "high"): parse_condition("temp > 50")},
    )
    assert len(policies) == 1
    policy = policies[0]
    assert policy.source == "learned"
    assert policy.condition.evaluate({"temp": 90.0})
    assert not policy.condition.evaluate({"temp": 10.0})
    assert policy.action.name == "cool_down"
