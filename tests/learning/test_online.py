"""Unit + property tests for online learning primitives."""

import statistics

import pytest
from hypothesis import given, strategies as st

from repro.errors import LearningError
from repro.learning.online import ExponentialSmoother, OnlinePerceptron, RunningStats


class TestRunningStats:
    def test_matches_statistics_module(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        stats = RunningStats()
        for value in values:
            stats.update(value)
        assert stats.mean == pytest.approx(statistics.mean(values))
        assert stats.variance == pytest.approx(statistics.variance(values))
        assert stats.min == 1.0
        assert stats.max == 9.0

    def test_zscore_warmup(self):
        stats = RunningStats()
        assert stats.zscore(100.0) == 0.0
        stats.update(1.0)
        assert stats.zscore(100.0) == 0.0  # single point has no spread

    def test_zscore_basic(self):
        stats = RunningStats()
        for value in [10.0, 12.0, 8.0, 10.0, 11.0, 9.0]:
            stats.update(value)
        assert abs(stats.zscore(10.0)) < 0.2
        assert stats.zscore(30.0) > 3.0

    def test_nan_rejected(self):
        with pytest.raises(LearningError):
            RunningStats().update(float("nan"))

    @given(st.lists(st.floats(min_value=-1e5, max_value=1e5), min_size=2,
                    max_size=50),
           st.lists(st.floats(min_value=-1e5, max_value=1e5), min_size=2,
                    max_size=50))
    def test_merge_equals_combined(self, first, second):
        left = RunningStats()
        for value in first:
            left.update(value)
        right = RunningStats()
        for value in second:
            right.update(value)
        merged = left.merge(right)
        combined = RunningStats()
        for value in first + second:
            combined.update(value)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean, abs=1e-6)
        assert merged.variance == pytest.approx(combined.variance, rel=1e-6,
                                                abs=1e-6)

    def test_merge_with_empty(self):
        stats = RunningStats()
        stats.update(5.0)
        merged = stats.merge(RunningStats())
        assert merged.count == 1
        assert merged.mean == 5.0


class TestExponentialSmoother:
    def test_first_observation_initializes(self):
        smoother = ExponentialSmoother(alpha=0.5)
        assert smoother.update(10.0) == 10.0

    def test_smoothing_formula(self):
        smoother = ExponentialSmoother(alpha=0.5, initial=0.0)
        assert smoother.update(10.0) == 5.0
        assert smoother.update(10.0) == 7.5

    def test_alpha_validation(self):
        with pytest.raises(LearningError):
            ExponentialSmoother(alpha=0.0)
        with pytest.raises(LearningError):
            ExponentialSmoother(alpha=1.5)


class TestOnlinePerceptron:
    def separable_samples(self):
        # y = +1 iff x0 + x1 > 0, with margin.
        positives = [((1.0, 1.0), 1), ((2.0, 0.5), 1), ((0.5, 2.0), 1)]
        negatives = [((-1.0, -1.0), -1), ((-2.0, -0.5), -1), ((-0.5, -2.0), -1)]
        return positives + negatives

    def test_learns_separable_data(self):
        model = OnlinePerceptron(n_features=2, learning_rate=0.5)
        model.fit(self.separable_samples(), epochs=20)
        assert model.accuracy(self.separable_samples()) == 1.0

    def test_update_returns_whether_changed(self):
        model = OnlinePerceptron(n_features=1)
        assert model.update((1.0,), 1) is True      # 0 score -> update
        model.fit([((1.0,), 1)], epochs=10)
        assert model.update((10.0,), 1) is False    # confidently right

    def test_label_validation(self):
        model = OnlinePerceptron(n_features=1)
        with pytest.raises(LearningError):
            model.update((1.0,), 0)

    def test_feature_length_validation(self):
        model = OnlinePerceptron(n_features=2)
        with pytest.raises(LearningError):
            model.predict((1.0,))

    def test_constructor_validation(self):
        with pytest.raises(LearningError):
            OnlinePerceptron(n_features=0)
        with pytest.raises(LearningError):
            OnlinePerceptron(n_features=1, learning_rate=0.0)

    def test_deterministic_given_stream(self):
        samples = self.separable_samples()
        a = OnlinePerceptron(n_features=2)
        b = OnlinePerceptron(n_features=2)
        a.fit(samples, epochs=5)
        b.fit(samples, epochs=5)
        assert a.weights == b.weights
        assert a.bias == b.bias

    def test_accuracy_empty(self):
        assert OnlinePerceptron(n_features=1).accuracy([]) == 0.0
