"""Unit tests for adversarial-ML defenses (refs [17, 18])."""

import pytest

from repro.attacks.poisoning import PoisoningCampaign
from repro.errors import LearningError
from repro.learning.adversarial import (
    label_flip_filter,
    mad_outlier_filter,
    sanitize_samples,
    train_sanitized,
)
from repro.learning.online import OnlinePerceptron


def clean_dataset(n=40):
    """Linearly separable: label = sign(x0)."""
    samples = []
    for index in range(n // 2):
        offset = 1.0 + (index % 5) * 0.2
        samples.append(((offset, 0.5), 1))
        samples.append(((-offset, -0.5), -1))
    return samples


class TestMadFilter:
    def test_removes_shifted_outliers(self):
        samples = clean_dataset() + [((1000.0, 0.5), 1), ((-999.0, 0.0), -1)]
        clean, report = mad_outlier_filter(samples)
        assert report.removed == 2
        assert report.kept == len(clean) == len(samples) - 2
        assert set(report.removed_indices) == {len(samples) - 2, len(samples) - 1}

    def test_clean_data_untouched(self):
        samples = clean_dataset()
        _clean, report = mad_outlier_filter(samples)
        assert report.removed == 0
        assert report.removal_rate == 0.0

    def test_empty_input(self):
        clean, report = mad_outlier_filter([])
        assert clean == []
        assert report.kept == 0


class TestLabelFlipFilter:
    def test_removes_flipped_labels(self):
        trusted = clean_dataset(10)
        samples = clean_dataset(20) + [((2.0, 0.5), -1)]  # flipped
        clean, report = label_flip_filter(samples, trusted, k=3)
        assert report.removed == 1
        assert all(label == 1 for (features, label) in clean
                   if features[0] > 0)

    def test_requires_trusted_seed(self):
        with pytest.raises(LearningError):
            label_flip_filter(clean_dataset(4), [])


class TestPipeline:
    def test_sanitize_combines_reports(self):
        trusted = clean_dataset(10)
        samples = (clean_dataset(20)
                   + [((500.0, 0.0), 1)]        # feature outlier
                   + [((1.5, 0.5), -1)])        # flipped label
        _clean, report = sanitize_samples(samples, trusted)
        assert report.removed == 2

    def test_training_on_poisoned_data_degrades(self):
        clean = clean_dataset(60)
        campaign = PoisoningCampaign(rate=0.4, mode="label_flip", seed=1)
        poisoned = campaign.apply(clean)
        dirty_model = OnlinePerceptron(n_features=2)
        dirty_model.fit(poisoned, epochs=5)
        dirty_accuracy = dirty_model.accuracy(clean)

        sane_model, report = train_sanitized(2, poisoned,
                                             trusted=clean_dataset(10),
                                             epochs=5)
        sane_accuracy = sane_model.accuracy(clean)
        assert sane_accuracy >= dirty_accuracy
        assert sane_accuracy >= 0.9
        assert report.removed > 0

    def test_sanitized_training_on_clean_data_harmless(self):
        clean = clean_dataset(40)
        model, report = train_sanitized(2, clean, trusted=clean_dataset(10))
        assert model.accuracy(clean) == 1.0
        assert report.removed == 0
