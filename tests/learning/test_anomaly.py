"""Unit tests for the state anomaly detector."""

from repro.learning.anomaly import StateAnomalyDetector


def feed_baseline(detector, n=20, temp=50.0):
    for index in range(n):
        detector.observe({"temp": temp + (index % 3) - 1}, time=float(index))


def test_detects_outlier_after_warmup():
    detector = StateAnomalyDetector(threshold=3.0, warmup=10)
    feed_baseline(detector)
    reports = detector.observe({"temp": 200.0}, time=100.0)
    assert len(reports) == 1
    assert reports[0].variable == "temp"
    assert reports[0].zscore > 3.0


def test_no_alerts_during_warmup():
    detector = StateAnomalyDetector(warmup=50)
    feed_baseline(detector, n=20)
    assert detector.observe({"temp": 200.0}, time=21.0) == []


def test_anomalies_do_not_shift_baseline():
    detector = StateAnomalyDetector(threshold=3.0, warmup=10)
    feed_baseline(detector)
    for time in range(5):
        detector.observe({"temp": 200.0}, time=100.0 + time)
    # Baseline must still consider 200 anomalous after repeated attacks.
    reports = detector.observe({"temp": 200.0}, time=200.0)
    assert len(reports) == 1


def test_disarm_silences_detector():
    detector = StateAnomalyDetector(threshold=3.0, warmup=10)
    feed_baseline(detector)
    detector.disarm()
    assert detector.observe({"temp": 500.0}, time=100.0) == []
    detector.rearm()
    assert len(detector.observe({"temp": 500.0}, time=101.0)) == 1


def test_watch_list_restricts_variables():
    detector = StateAnomalyDetector(threshold=3.0, warmup=5,
                                    variables={"temp"})
    for index in range(10):
        detector.observe({"temp": 50.0 + index % 2, "fuel": 50.0},
                         time=float(index))
    reports = detector.observe({"temp": 51.0, "fuel": 10000.0}, time=20.0)
    assert reports == []


def test_non_numeric_ignored():
    detector = StateAnomalyDetector(warmup=2)
    for index in range(5):
        reports = detector.observe({"mode": "patrol", "armed": True},
                                   time=float(index))
        assert reports == []


def test_anomaly_count_per_variable():
    detector = StateAnomalyDetector(threshold=3.0, warmup=10)
    feed_baseline(detector)
    detector.observe({"temp": 500.0}, time=100.0)
    assert detector.anomaly_count() == 1
    assert detector.anomaly_count("temp") == 1
    assert detector.anomaly_count("fuel") == 0


def test_baseline_accessor():
    detector = StateAnomalyDetector()
    feed_baseline(detector, n=5)
    assert detector.baseline("temp").count == 5
    assert detector.baseline("missing") is None
