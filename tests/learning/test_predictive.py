"""Unit tests for attribute-relationship and type-inference models (sec IV)."""

import pytest

from repro.learning.predictive import (
    AttributeRelationshipModel,
    NaiveBayesTypeClassifier,
)


class TestAttributeRelationshipModel:
    def test_learns_linear_relation(self):
        model = AttributeRelationshipModel()
        for speed in [1.0, 2.0, 3.0, 4.0, 5.0]:
            model.observe({"speed": speed, "range": 10.0 * speed})
        prediction = model.predict_attribute("range", {"speed": 6.0})
        assert prediction == pytest.approx(60.0, rel=1e-6)

    def test_bidirectional_relations(self):
        model = AttributeRelationshipModel()
        for speed in [1.0, 2.0, 3.0, 4.0]:
            model.observe({"speed": speed, "range": 10.0 * speed})
        assert model.predict_attribute("speed", {"range": 30.0}) == pytest.approx(3.0)

    def test_insufficient_observations_return_none(self):
        model = AttributeRelationshipModel(min_observations=3)
        model.observe({"a": 1.0, "b": 2.0})
        assert model.predict_attribute("b", {"a": 1.0}) is None

    def test_ignores_non_numeric(self):
        model = AttributeRelationshipModel()
        for index in range(5):
            model.observe({"speed": float(index), "name": "x", "armed": True})
        assert model.predict_attribute("name", {"speed": 1.0}) is None

    def test_constant_variable_unpredictable(self):
        model = AttributeRelationshipModel()
        for index in range(5):
            model.observe({"a": 5.0, "b": float(index)})
        # a never varies: no slope for predicting b from a.
        assert model.predict_attribute("b", {"a": 5.0}) is None

    def test_known_relations_lists_supported_pairs(self):
        model = AttributeRelationshipModel()
        for index in range(5):
            model.observe({"a": float(index), "b": 2.0 * index})
        relations = model.known_relations()
        assert ("a", "b", pytest.approx(2.0)) in [
            (x, y, slope) for x, y, slope in relations
        ]


class TestNaiveBayesTypeClassifier:
    def train(self):
        classifier = NaiveBayesTypeClassifier()
        for speed in [4.5, 5.0, 5.5, 6.0]:
            classifier.observe("drone", {"speed": speed, "airborne": True})
        for speed in [2.5, 3.0, 3.5, 4.0]:
            classifier.observe("mule", {"speed": speed, "airborne": False})
        return classifier

    def test_classifies_by_numeric_and_categorical(self):
        classifier = self.train()
        assert classifier.classify({"speed": 5.2, "airborne": True}) == "drone"
        assert classifier.classify({"speed": 3.0, "airborne": False}) == "mule"

    def test_untrained_returns_none(self):
        assert NaiveBayesTypeClassifier().classify({"speed": 5.0}) is None

    def test_categorical_feature_dominates_when_disjoint(self):
        classifier = self.train()
        # Speed ambiguous (4.25) but airborne=False points at mule.
        assert classifier.classify({"speed": 4.25, "airborne": False}) == "mule"

    def test_log_posteriors_cover_all_types(self):
        classifier = self.train()
        posteriors = classifier.log_posteriors({"speed": 5.0})
        assert set(posteriors) == {"drone", "mule"}

    def test_unseen_numeric_attribute_penalized_not_crash(self):
        classifier = self.train()
        result = classifier.classify({"speed": 5.0, "mystery": 1.0})
        assert result in ("drone", "mule")

    def test_types_listing(self):
        assert self.train().types() == ["drone", "mule"]
