"""The E22 reputation/lease fleet scenario: acceptance invariants and
shard-count invariance (F4)."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.reputation import (ReputationFleetSpec,
                                        ReputationScenario,
                                        parse_lease_events)


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        ReputationFleetSpec(n_b=0).validate()
    with pytest.raises(ConfigurationError):
        ReputationFleetSpec(strike_tick=5, bank_ticks=10).validate()
    with pytest.raises(ConfigurationError):
        ReputationFleetSpec(vent_timeout=10.0, vent_every=6,
                            tick_interval=1.0).validate()
    with pytest.raises(ConfigurationError):
        ReputationFleetSpec(warn_temp=130.0, kill_base=120.0).validate()


def test_weighted_arm_contains_the_rogue_sooner():
    weighted = ReputationScenario(seed=11, partition=False,
                                  weighted=True).run()
    unweighted = ReputationScenario(seed=11, partition=False,
                                    weighted=False).run()
    assert 0 < weighted.summary["rogue_killed_tick"] \
             < unweighted.summary["rogue_killed_tick"]
    # Tightened kill lines never claim an honest device.
    assert weighted.summary["healthy_killed"] == 0
    assert unweighted.summary["healthy_killed"] == 0


def test_leases_serve_the_partitioned_minority_and_die_on_time():
    leased = ReputationScenario(seed=11, rogue=False, leased=True).run()
    unleased = ReputationScenario(seed=11, rogue=False, leased=False).run()
    assert leased.summary["vents_b_partition"] > 0
    assert leased.summary["lease_grants"] >= 2      # expiry forced re-grant
    assert leased.summary["lease_revocations"] >= 1  # heal revoked the last
    assert unleased.summary["vents_b_partition"] == 0
    assert unleased.summary["no_quorum_rejects"] > 0

    events = parse_lease_events(leased)
    expiry_of = {e["lease"]: e["expires_at"] for e in events
                 if e["kind"] == "lease.grant"}
    exercises = [e for e in events if e["kind"] == "lease.exercise"]
    assert exercises
    assert all(e["time"] < expiry_of[e["lease"]] for e in exercises)


def test_full_spec_is_shard_count_invariant():
    serial = ReputationScenario(seed=11, n_shards=1).run()
    sharded = ReputationScenario(seed=11, n_shards=2).run()
    assert serial.trace_digest == sharded.trace_digest
    assert serial.summary == sharded.summary
    assert serial.audit_digest == sharded.audit_digest
