"""Scenario-level tests: peacekeeping and confrontation end to end."""


from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import SafeguardConfig
from repro.scenarios.peacekeeping import (
    PeacekeepingScenario,
    device_safety_classifier,
    state_label,
)
from repro.types import Safeness


class TestClassifierHelpers:
    def test_device_safety_classifier(self):
        classifier = device_safety_classifier()
        assert classifier.classify({"temp": 50.0, "fuel": 80.0}) == Safeness.GOOD
        assert classifier.classify({"temp": 110.0, "fuel": 80.0}) == Safeness.BAD
        assert classifier.classify({"temp": 50.0, "fuel": 0.0}) == Safeness.BAD

    def test_state_label_ordering(self):
        assert state_label({"temp": 20.0, "fuel": 90.0}) == "nominal"
        assert state_label({"temp": 85.0, "fuel": 90.0}) == "degraded"
        assert state_label({"temp": 105.0, "fuel": 90.0}) == "property_damage"
        assert state_label({"temp": 130.0, "fuel": 90.0}) == "fire"


class TestPeacekeeping:
    def run_pair(self, until=120.0, **kwargs):
        baseline = PeacekeepingScenario(
            seed=3, config=SafeguardConfig.none(), **kwargs).run(until=until)
        guarded = PeacekeepingScenario(
            seed=3, config=SafeguardConfig.full(), **kwargs).run(until=until)
        return baseline, guarded

    def test_scenario_builds_expected_fleet(self):
        scenario = PeacekeepingScenario(seed=1, n_drones_per_org=2,
                                        n_mules_per_org=1)
        assert len(scenario.devices) == 6   # 2 orgs x (2 drones + 1 mule)
        assert len(scenario.coalition.organizations) == 2

    def test_devices_act_and_system_progresses(self):
        scenario = PeacekeepingScenario(seed=1)
        result = scenario.run(until=60.0)
        assert result["actions_executed"] > 0
        assert result["messages_delivered"] > 0

    def test_generative_policies_installed_for_discovered_peers(self):
        scenario = PeacekeepingScenario(seed=1)
        scenario.run(until=30.0)
        assert scenario.generative.policies_generated > 0
        coverage = scenario.generative.coverage()
        assert coverage   # at least some observers generated for peers

    def test_full_safeguards_dont_break_mission(self):
        baseline, guarded = self.run_pair(until=100.0)
        # Dispatches (the mission) still happen under full safeguards.
        assert guarded["dispatch_completions"] > 0
        assert guarded["actions_executed"] > 0

    def test_safeguards_reduce_harm(self):
        totals = {"baseline": 0, "guarded": 0}
        for seed in (1, 2, 3):
            baseline = PeacekeepingScenario(
                seed=seed, config=SafeguardConfig.none(), n_civilians=40,
                strike_interval=5.0, dig_interval=4.0).run(until=200.0)
            guarded = PeacekeepingScenario(
                seed=seed, config=SafeguardConfig.full(), n_civilians=40,
                strike_interval=5.0, dig_interval=4.0).run(until=200.0)
            totals["baseline"] += baseline["harm_total"]
            totals["guarded"] += guarded["harm_total"]
        assert totals["baseline"] > 0
        assert totals["guarded"] < totals["baseline"]

    def test_obligations_close_hazards(self):
        scenario = PeacekeepingScenario(
            seed=2, config=SafeguardConfig.only(obligations=True),
            dig_interval=4.0,
        )
        result = scenario.run(until=100.0)
        assert result["open_hazards"] == 0
        baseline = PeacekeepingScenario(seed=2, dig_interval=4.0)
        baseline_result = baseline.run(until=100.0)
        assert baseline_result["open_hazards"] > 0

    def test_cross_validation_flag_routes_kinetics_to_the_human(self):
        scenario = PeacekeepingScenario(
            seed=4, config=SafeguardConfig.only(cross_validation=True),
            strike_interval=5.0,
        )
        result = scenario.run(until=80.0)
        reviews = sum(op.reviews_answered for op in scenario.operators.values())
        assert reviews > 0
        # Reviewed strikes still execute (the default judge approves).
        assert result["actions_executed"] > 0

    def test_determinism_same_seed_same_results(self):
        first = PeacekeepingScenario(seed=7).run(until=80.0)
        second = PeacekeepingScenario(seed=7).run(until=80.0)
        assert first == second

    def test_different_seeds_differ(self):
        first = PeacekeepingScenario(seed=7).run(until=80.0)
        second = PeacekeepingScenario(seed=8).run(until=80.0)
        assert first != second


class TestConfrontation:
    def test_worm_without_safeguards_forms_skynet(self):
        scenario = ConfrontationScenario(
            seed=3, config=SafeguardConfig.none(),
            threats=ThreatConfig(worm=True, worm_spread_prob=0.4),
        )
        result = scenario.run(until=120.0)
        assert result["skynet_formed"]
        assert result["compromised_ever"] >= 2
        assert result["orgs_spanned_peak"] == 2
        assert result["rogue_harm"] > 0

    def test_full_safeguards_prevent_skynet(self):
        scenario = ConfrontationScenario(
            seed=3, config=SafeguardConfig.full(),
            threats=ThreatConfig(worm=True, worm_spread_prob=0.4),
        )
        result = scenario.run(until=120.0)
        assert not result["skynet_formed"]
        assert result["rogue_harm"] == 0

    def test_no_threats_no_compromise(self):
        scenario = ConfrontationScenario(
            seed=3, config=SafeguardConfig.none(), threats=ThreatConfig.none(),
        )
        result = scenario.run(until=60.0)
        assert result["compromised_ever"] == 0
        assert not result["skynet_formed"]

    def test_watchdog_contains_worm(self):
        scenario = ConfrontationScenario(
            seed=5, config=SafeguardConfig.only(watchdog=True, sealed=True),
            threats=ThreatConfig(worm=True, worm_spread_prob=0.4),
        )
        result = scenario.run(until=120.0)
        assert result["deactivations"] >= 1
        assert result["max_concurrent_compromised"] <= 3
        assert result["mean_containment_latency"] >= 0.0

    def test_invalid_durability_mode_rejected(self):
        import pytest

        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ConfrontationScenario(seed=3, durability="paper-tape")

    def test_journal_durability_wires_audit_logs_to_stable_storage(self):
        scenario = ConfrontationScenario(
            seed=3, config=SafeguardConfig.only(watchdog=True),
            threats=ThreatConfig.none(), durability="journal",
        )
        summary = scenario.run(until=20.0)
        assert summary["audit_entries"] > 0
        assert summary["audit_entries_lost"] == 0
        # Every device's audit blob reached simulated stable storage.
        for device_id in scenario.devices:
            assert scenario.storage.size(f"{device_id}.audit") > 0
