"""Unit tests for the experiment matrix runner."""

import json
import os

from repro.scenarios.harness import SafeguardConfig, run_matrix


def fake_run(config: SafeguardConfig, seed: int) -> dict:
    return {
        "harm": 0 if config.preaction else seed,
        "label": config.label(),
        "seed": seed,
    }


def test_matrix_aggregates_per_arm():
    arms = [("baseline", SafeguardConfig.none()),
            ("guarded", SafeguardConfig.only(preaction=True))]
    aggregated = run_matrix(arms, fake_run, seeds=[1, 2, 3])
    assert aggregated["baseline"]["_n"] == 3
    assert aggregated["baseline"]["harm"][0] == 2.0   # mean of 1,2,3
    assert aggregated["guarded"]["harm"] == (0.0, 0.0)
    assert "label" not in aggregated["baseline"]      # non-numeric dropped


def test_matrix_json_export(tmp_path):
    arms = [("baseline", SafeguardConfig.none())]
    export = os.path.join(tmp_path, "results.json")
    run_matrix(arms, fake_run, seeds=[7], export_path=export)
    with open(export, encoding="utf-8") as handle:
        data = json.load(handle)
    assert data["seeds"] == [7]
    assert data["results"]["baseline"][0]["seed"] == 7


def test_matrix_with_real_scenario():
    from repro.scenarios.peacekeeping import PeacekeepingScenario

    def run(config, seed):
        return PeacekeepingScenario(seed=seed, config=config,
                                    n_drones_per_org=1,
                                    n_mules_per_org=1).run(until=30.0)

    aggregated = run_matrix(
        [("baseline", SafeguardConfig.none())], run, seeds=[1, 2],
    )
    assert aggregated["baseline"]["_n"] == 2
    assert "actions_executed" in aggregated["baseline"]


def test_matrix_auto_ingests_into_warehouse(tmp_path):
    from repro.telemetry.warehouse import Warehouse

    warehouse = Warehouse(str(tmp_path / "wh"))
    arms = [("baseline", SafeguardConfig.none()),
            ("guarded", SafeguardConfig.only(preaction=True))]
    run_matrix(arms, fake_run, seeds=[1, 2, 3], warehouse=warehouse,
               experiment="e10", git_rev="rev-test", tag="unit")
    assert len(warehouse) == 6            # one record per (arm, seed) cell
    assert {record.key.arm for record in warehouse.runs()} == {
        "baseline", "guarded"}
    assert warehouse.group("harm", by="arm")["baseline"]["mean"] == 2.0
    assert all(record.key.git_rev == "rev-test"
               for record in warehouse.runs())
    # Re-running the same matrix is a warehouse no-op (idempotent cells).
    run_matrix(arms, fake_run, seeds=[1, 2, 3], warehouse=warehouse,
               experiment="e10", git_rev="rev-test", tag="unit")
    assert len(warehouse) == 6


def test_matrix_without_warehouse_unchanged():
    arms = [("baseline", SafeguardConfig.none())]
    assert (run_matrix(arms, fake_run, seeds=[5])
            == run_matrix(arms, fake_run, seeds=[5], warehouse=None))
