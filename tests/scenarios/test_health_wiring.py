"""E20 fleet-health wiring in the confrontation scenario."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import SafeguardConfig
from repro.sim.faults import FaultPlan, LinkDegradation


def build(**kwargs):
    defaults = dict(
        seed=5, config=SafeguardConfig.full(), threats=ThreatConfig.none(),
        n_drones_per_org=2, n_mules_per_org=1, n_civilians=4, n_warfighters=2,
        safety_transport="reliable", durability="journal+snapshot",
        health=True,
    )
    defaults.update(kwargs)
    return ConfrontationScenario(**defaults)


def storm_plan():
    return FaultPlan([LinkDegradation(at=5.0, until=35.0,
                                      loss_rate=0.9, latency_factor=2.0)])


class TestConfigValidation:
    def test_size_compaction_needs_health_and_journal(self):
        with pytest.raises(ConfigurationError):
            build(health=False, compaction_policy="size")
        with pytest.raises(ConfigurationError):
            build(durability="none", compaction_policy="size")
        with pytest.raises(ConfigurationError):
            build(compaction_policy="hourly")

    def test_adaptive_needs_health_and_reliable_transport(self):
        with pytest.raises(ConfigurationError):
            build(health=False, adaptive_quarantine=True)
        with pytest.raises(ConfigurationError):
            build(safety_transport="datagram", adaptive_quarantine=True)

    def test_health_off_leaves_no_monitor(self):
        scenario = build(health=False)
        assert scenario.monitor is None and scenario.alerts is None
        assert scenario.adaptive is None and scenario.compactor is None


class TestHealthInScenario:
    def test_storm_fires_link_alert_and_relaxes_quarantine(self):
        scenario = build(fault_plan=storm_plan(), adaptive_quarantine=True,
                        quarantine_relaxed=8)
        result = scenario.run(until=30.0)
        assert result["alerts_fired"] >= 1
        assert scenario.alerts.is_active("link.degraded")
        assert all(link.quarantine_after == 8
                   for link in scenario.overseer_links.values())
        # The firing is audit-chained on the journal-backed fleet log.
        assert scenario.alerts.audit is not None
        kinds = [entry.kind for entry in scenario.alerts.audit.entries()]
        assert "alert.fire" in kinds

    def test_alert_resolves_after_storm_and_restores_threshold(self):
        scenario = build(fault_plan=storm_plan(), adaptive_quarantine=True)
        scenario.run(until=80.0)
        assert not scenario.alerts.is_active("link.degraded")
        assert all(link.quarantine_after == 3
                   for link in scenario.overseer_links.values())
        alert = scenario.alerts.firings("link.degraded")[0]
        assert alert.resolved_at is not None and alert.trace_id is not None

    def test_health_gauges_reach_prometheus_snapshot(self):
        from repro.telemetry.exposition import prometheus_text

        scenario = build()
        scenario.run(until=10.0)
        text = prometheus_text(scenario.sim.metrics)
        assert "health_link_rtt_ewma" in text
        assert "health_queue_depth" in text

    def test_bundle_includes_alerts_jsonl(self, tmp_path):
        scenario = build(fault_plan=storm_plan())
        scenario.run(until=30.0, telemetry_dir=str(tmp_path))
        assert os.path.exists(tmp_path / "alerts.jsonl")
        rows = [json.loads(line)
                for line in (tmp_path / "alerts.jsonl").read_text().splitlines()]
        assert any(row["rule"] == "link.degraded" for row in rows)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["health"] is True
        assert manifest["alerts"]["fired"] == len(rows)
        assert "alerts.jsonl" in manifest["files"]

    def test_size_compaction_bounds_journals_in_scenario(self):
        scenario = build(compaction_policy="size", compaction_bytes=4096,
                        threats=ThreatConfig())
        result = scenario.run(until=60.0)
        assert result["compactions_sized"] > 0
        for journal in scenario.audit_journals.values():
            assert scenario.storage.size(journal.name) < 3 * 4096

    def test_deterministic_replay_with_health_on(self):
        results = [build(fault_plan=storm_plan(),
                         adaptive_quarantine=True).run(until=40.0)
                   for _ in range(2)]
        assert results[0] == results[1]
