"""The F4 acceptance bar: shard-count and evaluator-path invariance.

One :class:`~repro.scenarios.sharded.ShardedFleetSpec` must produce a
byte-identical merged run no matter how the fleet is partitioned
(``n_shards`` in {1, 2, 4, 7}), whether shards run in-process or in
worker processes, and whether the per-tick evaluation is vectorized or
scalar.  On top of that invariance ride the interop claims: signed kill
orders keep ``healthy_killed`` at zero while the unsigned arm shows the
counterfactual (E21), and worm span contexts stitch across shard
boundaries (E19).
"""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.sharded import (
    ShardedFleetSpec,
    ShardedScenario,
    device_name,
    fleet_edges,
    fleet_members,
    worm_seed_indices,
)

#: Small but eventful: worms spread, rogues overheat, the watchdog kills,
#: the forger is rejected — all well inside the horizon.
SPEC = dict(seed=11, n_devices=96, horizon=40.0, window=4.0,
            n_communities=6, forge_count=4)

_runs: dict = {}


def run_cached(n_shards=1, processes=False, **overrides):
    key = (n_shards, processes, tuple(sorted({**SPEC, **overrides}.items())))
    if key not in _runs:
        scenario = ShardedScenario(n_shards=n_shards, processes=processes,
                                   **{**SPEC, **overrides})
        _runs[key] = scenario.run()
    return _runs[key]


# -- the determinism contract --------------------------------------------------


def test_serial_run_is_eventful_and_safe():
    run = run_cached(n_shards=1)
    s = run.summary
    assert s["devices"] == SPEC["n_devices"]
    assert s["infected"] > 0
    assert s["killed"] > 0
    assert s["harm_strikes"] > 0
    assert s["vetoes"] > 0
    assert s["kill_orders"] > 0
    # E21: every forged order lands as a bad-mac rejection; no healthy
    # device ever dies in the signed arm.
    assert s["healthy_killed"] == 0
    assert s["authz_rejected"] == {"bad-mac": SPEC["forge_count"]}
    assert s["fallback_reasons"] == {}


@pytest.mark.parametrize("n_shards", [2, 4, 7])
def test_sharded_trace_is_byte_identical_to_serial(n_shards):
    serial = run_cached(n_shards=1)
    sharded = run_cached(n_shards=n_shards)
    assert sharded.trace_bytes() == serial.trace_bytes()
    assert sharded.trace_digest == serial.trace_digest
    assert sharded.audit_digest == serial.audit_digest
    assert sharded.summary == serial.summary
    assert sharded.spans == serial.spans
    assert sharded.perf["shards"] == n_shards


def test_process_mode_matches_in_process():
    inproc = run_cached(n_shards=2)
    procs = run_cached(n_shards=2, processes=True)
    assert procs.trace_digest == inproc.trace_digest
    assert procs.audit_digest == inproc.audit_digest
    assert procs.summary == inproc.summary
    assert procs.perf["mode"] == "processes"


def test_scalar_twin_is_byte_identical_to_vectorized():
    vector = run_cached(n_shards=2)
    scalar = run_cached(n_shards=2, vectorized=False)
    assert scalar.trace_bytes() == vector.trace_bytes()
    assert scalar.audit_digest == vector.audit_digest
    summary = dict(scalar.summary)
    assert summary.pop("vectorized") is False
    expect = dict(vector.summary)
    assert expect.pop("vectorized") is True
    assert summary == expect


def test_unsigned_arm_shows_the_counterfactual_harm():
    unsigned = run_cached(n_shards=2, signed_commands=False)
    s = unsigned.summary
    assert s["authz_rejected"] == {}
    assert s["healthy_killed"] > 0          # forged kills now land


# -- E19: spans stitch across shard boundaries ---------------------------------


def test_infection_spans_cross_shard_boundaries():
    run = run_cached(n_shards=4)
    plan = run.plan
    spec = ShardedFleetSpec(**SPEC)
    roots = {f"worm:{device_name(i)}": device_name(i)
             for i in worm_seed_indices(spec)}
    infect = [s for s in run.spans if s["name"] == "worm.infect"]
    assert infect
    assert {s["trace_id"] for s in infect} <= set(roots)
    crossed = [s for s in infect
               if plan.shard_of(s["subject"]) != plan.shard_of(
                   roots[s["trace_id"]])]
    assert crossed, "no infection chain ever crossed a shard boundary"
    # Victim spans are children inside the root's trace, never new roots.
    for span in infect:
        if span["subject"] != roots[span["trace_id"]]:
            assert span["parent_id"] is not None


# -- timing + perf surface (E20 satellite) -------------------------------------


def test_barrier_timing_and_perf_are_populated():
    run = run_cached(n_shards=4)
    assert run.timing.n_shards == 4
    assert run.timing.windows == run.perf["windows"] > 0
    assert run.timing.imbalance() >= 1.0
    report = run.timing.report()
    assert len(report["shards"]) == 4
    perf = run.perf
    assert perf["events"] > 0
    assert perf["events_per_sec"] > 0
    assert perf["unroutable"] == 0


# -- configuration and topology ------------------------------------------------


def test_partition_respects_pins_and_covers_fleet():
    scenario = ShardedScenario(n_shards=3, **SPEC)
    plan = scenario.plan()
    assert plan.shard_of("watchdog") == 0
    assert plan.shard_of("forger") == 2
    spec = ShardedFleetSpec(**SPEC)
    assert sum(plan.sizes()) == spec.n_devices + 2
    names = set(fleet_members(spec))
    for a, b in fleet_edges(spec):
        assert a in names and b in names


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        ShardedScenario(n_shards=0, **SPEC)
    with pytest.raises(ConfigurationError):
        ShardedScenario(n_devices=2)
    with pytest.raises(ConfigurationError):
        ShardedScenario(spread_prob=1.5)
