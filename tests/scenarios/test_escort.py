"""Unit tests for the escort dilemma scenario."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.escort import ARMS, EscortScenario


def test_invalid_arm_rejected():
    with pytest.raises(ConfigurationError):
        EscortScenario("nonsense")


def test_baseline_burns_but_saves():
    result = EscortScenario("baseline", ticks=60).run()
    assert result["humans_harmed"] == 0
    assert result["fire_entries"] > 0


def test_statespace_guard_pristine_but_costly():
    result = EscortScenario("statespace", ticks=60).run()
    assert result["bad_entries"] == 0
    assert result["humans_harmed"] == 60 // 12


def test_combined_resolves_the_dilemma():
    result = EscortScenario("combined", ticks=60).run()
    assert result["humans_harmed"] == 0
    assert result["fire_entries"] == 0
    assert result["property_damage_entries"] > 0
    assert result["grants"] == result["property_damage_entries"]
    assert result["audit_violations"] == 0


def test_arm_listing_is_stable():
    assert ARMS == ("baseline", "statespace", "combined")


def test_deterministic():
    first = EscortScenario("combined", ticks=60).run()
    second = EscortScenario("combined", ticks=60).run()
    assert first == second
