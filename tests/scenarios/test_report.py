"""Unit tests for after-action reports."""

from repro.audit.auditor import Finding
from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import SafeguardConfig
from repro.scenarios.report import AfterActionReport


def test_report_from_confrontation_run():
    scenario = ConfrontationScenario(
        seed=3, config=SafeguardConfig.full(),
        threats=ThreatConfig(worm=True, worm_time=10.0),
    )
    scenario.run(until=60.0)
    report = (
        AfterActionReport(scenario.sim, title="Worm incident")
        .add_harm_section(scenario.world)
        .add_safeguard_section(scenario.devices)
        .add_attack_section(scenario.injector)
        .add_emergent_section(horizon=60.0)
    )
    rendered = report.render()
    assert "Worm incident" in rendered
    assert "-- Harm --" in rendered
    assert "humans harmed: 0" in rendered
    assert "attacks launched: 1" in rendered
    assert "watchdog deactivations: 1" in rendered


def test_report_custom_and_audit_sections():
    from repro.sim.simulator import Simulator

    sim = Simulator(seed=1)
    sim.run(until=5.0)
    findings = [Finding("violation", "use_outside_emergency", "uav1",
                        "used break-glass after the emergency ended")]
    report = (
        AfterActionReport(sim)
        .add_audit_section(findings)
        .add_custom_section("Notes", ["all quiet"])
    )
    rendered = report.render()
    assert "audit findings: 1" in rendered
    assert "[violation] uav1" in rendered
    assert "all quiet" in rendered
    assert "t=5.0" in rendered


def test_report_without_aggregate_series():
    from repro.sim.simulator import Simulator

    sim = Simulator(seed=1)
    report = AfterActionReport(sim).add_emergent_section()
    assert "no aggregate series recorded" in report.render()


def test_harm_section_details():
    from repro.devices.world import World
    from repro.sim.simulator import Simulator
    from repro.types import HarmKind

    sim = Simulator(seed=1)
    world = World(sim)
    world.add_human("h1", 1.0, 1.0)
    world.add_human("h2", 2.0, 2.0)
    world.harm_human("h1", HarmKind.DIRECT, "strike", "uav1")
    world.harm_human("h2", HarmKind.INDIRECT, "hazard:hole", "mule1")
    world.harm_human("h1", HarmKind.DIRECT, "strike", "uav1")
    rendered = AfterActionReport(sim).add_harm_section(world).render()
    assert "humans harmed: 3" in rendered
    assert "direct: 2" in rendered
    assert "indirect: 1" in rendered
    assert "most harmful device: uav1 (2)" in rendered
