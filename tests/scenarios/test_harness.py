"""Unit tests for the experiment harness."""

import dataclasses

import pytest

from repro.scenarios.harness import (
    ExperimentTable,
    SafeguardConfig,
    mean_and_std,
    run_replications,
)


class TestSafeguardConfig:
    def test_presets(self):
        baseline = SafeguardConfig.none()
        assert not baseline.preaction and not baseline.sealed
        full = SafeguardConfig.full()
        assert full.preaction and full.statespace and full.watchdog
        assert full.sealed

    def test_only_and_without(self):
        single = SafeguardConfig.only(preaction=True)
        assert single.preaction and not single.statespace
        ablated = SafeguardConfig.full().without(watchdog=True)
        assert not ablated.watchdog and ablated.preaction

    def test_labels(self):
        assert SafeguardConfig.none().label() == "baseline"
        assert SafeguardConfig.only(preaction=True).label() == "preaction"
        assert "+" in SafeguardConfig.full().label()

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SafeguardConfig.none().preaction = True


class TestExperimentTable:
    def test_render_aligns_columns(self):
        table = ExperimentTable("demo", ["name", "value"])
        table.add_row("baseline", 12.5)
        table.add_row("full", 0.001)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "== demo =="
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_row_length_validated(self):
        table = ExperimentTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_extraction(self):
        table = ExperimentTable("demo", ["name", "value"])
        table.add_row("a", 1)
        table.add_row("b", 2)
        assert table.column("value") == [1, 2]
        assert table.to_dict()["rows"] == [["a", 1], ["b", 2]]

    def test_float_formatting(self):
        table = ExperimentTable("demo", ["v"])
        table.add_row(0.5)
        table.add_row(123456.0)
        table.add_row(float("nan"))
        rendered = table.render()
        assert "0.5" in rendered
        assert "nan" in rendered


def test_mean_and_std():
    mean, std = mean_and_std([1.0, 2.0, 3.0])
    assert mean == 2.0
    assert std == 1.0
    assert mean_and_std([5.0]) == (5.0, 0.0)
    assert mean_and_std([]) == (0.0, 0.0)


def test_run_replications_aggregates_numeric_keys():
    def run(seed):
        return {"harm": float(seed), "label": "text", "count": seed * 2}

    result = run_replications(run, seeds=[1, 2, 3])
    assert result["_n"] == 3
    assert result["harm"][0] == 2.0
    assert result["count"][0] == 4.0
    assert "label" not in result
