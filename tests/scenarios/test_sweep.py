"""The parallel sweep executor: ordering, seeding, and determinism.

The load-bearing property is that :func:`repro.scenarios.sweep.run_sweep`
is result-identical to the serial loop — cell-for-cell, byte-for-byte —
no matter how cells are scheduled across workers.  A few tests here spawn
a small process pool; they stay cheap (tiny grids, short horizons).
"""

import json
import warnings

import pytest

from repro.scenarios.harness import SafeguardConfig, run_matrix
from repro.scenarios.sweep import cell_seed, default_workers, run_sweep
from repro.sim.faults import FaultPlan
from repro.sim.simulator import Simulator


def square_cell(value: int) -> int:
    return value * value


def trace_cell(seed: int, ticks: int) -> bytes:
    """A tiny simulation returning its full trace as canonical bytes."""
    sim = Simulator(seed=seed)
    rng = sim.rng.stream("walk")

    def tick(index: int) -> None:
        sim.record("walk.tick", "walker", index=index, draw=rng.uniform(0, 1))

    for index in range(ticks):
        sim.schedule(0.5 * (index + 1), tick, index, label="walker:tick")
    sim.run(until=100.0)
    return "\n".join(
        f"{event.time!r} {event.kind} {event.subject} "
        f"{json.dumps(event.detail, sort_keys=True)}"
        for event in sim.trace.query()
    ).encode()


def failing_cell(value: int) -> int:
    if value == 2:
        raise ValueError("cell 2 exploded")
    return value


# -- ordering and fallback ----------------------------------------------------------


def test_serial_matches_list_comprehension():
    cells = [(value,) for value in range(8)]
    assert run_sweep(square_cell, cells, workers=1) == [v * v for v in range(8)]


def test_parallel_results_in_cell_order():
    cells = [(value,) for value in range(12)]
    assert run_sweep(square_cell, cells, workers=2) == [v * v for v in range(12)]


def test_unpicklable_fn_falls_back_to_serial():
    cells = [(value,) for value in range(4)]
    assert run_sweep(lambda v: v + 1, cells, workers=2) == [1, 2, 3, 4]


def test_cell_exception_propagates():
    cells = [(value,) for value in range(4)]
    with pytest.raises(ValueError, match="cell 2 exploded"):
        run_sweep(failing_cell, cells, workers=1)
    with pytest.raises(ValueError, match="cell 2 exploded"):
        run_sweep(failing_cell, cells, workers=2)


def test_default_workers_env(monkeypatch):
    monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
    assert default_workers() == 1
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
    assert default_workers() == 3
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "0")
    assert default_workers() >= 1


def test_default_workers_bad_value_warns_once(monkeypatch):
    """A non-integer REPRO_SWEEP_WORKERS falls back to serial, but names
    the bad value in a warning instead of silently demoting the sweep —
    and warns once per value, not once per call."""
    from repro.scenarios import sweep as sweep_module

    monkeypatch.setattr(sweep_module, "_warned_values", set())
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "nonsense")
    with pytest.warns(UserWarning, match="'nonsense' is not an integer"):
        assert default_workers() == 1
    with warnings.catch_warnings():
        warnings.simplefilter("error")     # a second warning would raise
        assert default_workers() == 1
    # A *different* bad value warns again.
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2.5")
    with pytest.warns(UserWarning, match="'2.5' is not an integer"):
        assert default_workers() == 1


# -- seeding ------------------------------------------------------------------------


def test_cell_seed_is_stable_and_spread():
    # Stable: fixed values that must never change across releases
    # (changing them would silently re-seed every recorded experiment).
    assert cell_seed("e17", "unguarded", 3, 0.6) == cell_seed("e17", "unguarded", 3, 0.6)
    seeds = {cell_seed("arm", base, intensity)
             for base in range(10) for intensity in (0.0, 0.3, 0.6, 0.9)}
    assert len(seeds) == 40                    # no collisions on a real grid
    assert all(0 <= seed < 2 ** 32 for seed in seeds)
    assert cell_seed("a", 1) != cell_seed("a", 2) != cell_seed("b", 2)


# -- determinism: parallel == serial, byte for byte ---------------------------------


def test_trace_bytes_identical_serial_vs_parallel():
    cells = [(seed, 20) for seed in (5, 6, 7, 8)]
    serial = run_sweep(trace_cell, cells, workers=1)
    parallel = run_sweep(trace_cell, cells, workers=2)
    assert serial == parallel
    assert all(trace for trace in serial)
    assert len(set(serial)) == len(cells)      # distinct seeds, distinct traces


def chaos_cell(seed: int, intensity: float) -> dict:
    from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig

    ids = [f"org-drone{i}" for i in range(3)]
    plan = FaultPlan.random(seed=cell_seed("sweep-test", seed, intensity) % 1000,
                            device_ids=ids, horizon=30.0, intensity=intensity)
    scenario = ConfrontationScenario(
        seed=seed, config=SafeguardConfig.only(watchdog=True),
        threats=ThreatConfig(worm=True, worm_time=10.0),
        supervision="isolate", safety_transport="reliable", fault_plan=plan,
    )
    return scenario.run(until=30.0)


def test_scenario_aggregates_identical_serial_vs_parallel():
    cells = [(seed, intensity) for seed in (3, 4) for intensity in (0.0, 0.6)]
    serial = run_sweep(chaos_cell, cells, workers=1)
    parallel = run_sweep(chaos_cell, cells, workers=2)
    assert serial == parallel


def test_run_matrix_identical_serial_vs_parallel():
    arms = [("baseline", SafeguardConfig.none()),
            ("watchdog", SafeguardConfig.only(watchdog=True))]
    serial = run_matrix(arms, matrix_cell, seeds=[1, 2])
    parallel = run_matrix(arms, matrix_cell, seeds=[1, 2], workers=2)
    assert serial == parallel


def matrix_cell(config: SafeguardConfig, seed: int) -> dict:
    return {"score": seed * (2 if config.watchdog else 1), "label": config.label()}
