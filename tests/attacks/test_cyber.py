"""Unit tests for cyber compromise and worm spread (sec IV)."""

from repro.attacks.cyber import MalevolentPayload, WormAttack, compromise_device
from repro.attacks.injector import AttackInjector
from repro.core.policy import Policy
from repro.core.actions import Action
from repro.learning.anomaly import StateAnomalyDetector
from repro.net.network import Network
from repro.safeguards.tamper import seal_guard_chain
from repro.sim.simulator import Simulator
from repro.types import DeviceStatus

from tests.conftest import make_test_device


def rogue_policy():
    return Policy.make("timer", None,
                       Action("rogue", "motor", tags={"harm_human"}),
                       priority=99, source="learned", policy_id="rogue")


def test_compromise_injects_policies_and_marks_status():
    device = make_test_device()
    report = compromise_device(device, MalevolentPayload(
        policies=[rogue_policy()], strip_safeguards=False,
    ), time=0.0)
    assert device.status == DeviceStatus.COMPROMISED
    assert "rogue" in device.engine.policies
    assert "rogue" in device.engine.actions
    assert report["policies_injected"] == 1


def test_compromise_disarms_registered_detectors():
    device = make_test_device()
    detector = StateAnomalyDetector()
    device.attributes["anomaly_detectors"] = [detector]
    compromise_device(device, MalevolentPayload(strip_safeguards=False),
                      time=0.0)
    assert not detector.enabled


def test_strip_blocked_by_sealed_chain():
    from tests.core.test_engine import VetoAll

    device = make_test_device(safeguards=[VetoAll()])
    seal_guard_chain(device)
    report = compromise_device(device, MalevolentPayload(), time=0.0)
    assert report["strip_blocked"]
    assert not report["safeguards_stripped"]
    assert len(device.engine.safeguards) == 1


def test_strip_succeeds_on_unsealed_chain():
    from tests.core.test_engine import VetoAll

    device = make_test_device(safeguards=[VetoAll()])
    report = compromise_device(device, MalevolentPayload(), time=0.0)
    assert report["safeguards_stripped"]
    assert len(device.engine.safeguards) == 0


def test_on_compromise_hook():
    device = make_test_device()
    flags = []
    compromise_device(device, MalevolentPayload(
        strip_safeguards=False,
        on_compromise=lambda dev: flags.append(dev.device_id),
    ), time=0.0)
    assert flags == ["dev1"]


def build_fleet(n=6, seed=3):
    sim = Simulator(seed=seed)
    net = Network(sim)
    devices = {}
    for index in range(n):
        device = make_test_device(f"d{index}")
        devices[device.device_id] = device
        net.register(device.device_id, lambda message: None)
    return sim, net, devices


def test_worm_spreads_over_topology():
    sim, net, devices = build_fleet()
    worm = WormAttack(devices, MalevolentPayload(strip_safeguards=False),
                      initial_targets=["d0"], topology=net.topology,
                      spread_prob=1.0, spread_interval=1.0)
    injector = AttackInjector(sim)
    record = injector.launch_at(1.0, worm)
    sim.run(until=5.0)
    assert len(record.affected) == len(devices)
    assert record.affected["d0"] == 1.0


def test_worm_respects_partitions():
    sim, net, devices = build_fleet()
    net.topology.partition([["d0", "d1"], ["d2", "d3", "d4", "d5"]])
    worm = WormAttack(devices, MalevolentPayload(strip_safeguards=False),
                      initial_targets=["d0"], topology=net.topology,
                      spread_prob=1.0)
    AttackInjector(sim).launch_at(1.0, worm)
    sim.run(until=10.0)
    assert worm.infected == {"d0", "d1"}


def test_deactivated_devices_block_infection_and_spread():
    sim, net, devices = build_fleet()
    devices["d1"].deactivate("pre-killed")
    worm = WormAttack(devices, MalevolentPayload(strip_safeguards=False),
                      initial_targets=["d0"], topology=net.topology,
                      spread_prob=1.0)
    AttackInjector(sim).launch_at(1.0, worm)
    sim.run(until=5.0)
    assert "d1" not in worm.infected
    # Deactivating the seed before launch blocks everything.
    sim2, net2, devices2 = build_fleet(seed=4)
    devices2["d0"].deactivate("pre-killed")
    worm2 = WormAttack(devices2, MalevolentPayload(strip_safeguards=False),
                       initial_targets=["d0"], topology=net2.topology,
                       spread_prob=1.0)
    AttackInjector(sim2).launch_at(1.0, worm2)
    sim2.run(until=5.0)
    assert worm2.infected == set()


def test_spread_probability_zero_confines_to_seed():
    sim, net, devices = build_fleet()
    worm = WormAttack(devices, MalevolentPayload(strip_safeguards=False),
                      initial_targets=["d0"], topology=net.topology,
                      spread_prob=0.0)
    AttackInjector(sim).launch_at(1.0, worm)
    sim.run(until=20.0)
    assert worm.infected == {"d0"}


def test_containment_latency_recorded():
    sim, net, devices = build_fleet()
    worm = WormAttack(devices, MalevolentPayload(strip_safeguards=False),
                      initial_targets=["d0"], topology=net.topology,
                      spread_prob=0.0)
    injector = AttackInjector(sim)
    record = injector.launch_at(1.0, worm)
    sim.run(until=2.0)
    record.mark_contained("d0", 4.0)
    assert record.containment_latency() == [3.0]
    assert record.active_at(2.0) == {"d0"}
    assert record.active_at(5.0) == set()
