"""Unit tests for the attack framework, backdoors, poisoning, human error,
and sensor deception."""

import pytest

from repro.attacks.backdoor import Backdoor, BackdoorAttack
from repro.attacks.cyber import MalevolentPayload
from repro.attacks.deception import SensorDeceptionAttack, make_reading_provider
from repro.attacks.human_error import ErrorProneOperator, misdeployed_policy_set
from repro.attacks.injector import AttackInjector, AttackRecord
from repro.attacks.poisoning import PoisoningCampaign
from repro.core.actions import Action
from repro.core.policy import Policy, PolicySet
from repro.errors import AttackError
from repro.sim.rng import SeededRNG
from repro.sim.simulator import Simulator
from repro.trust.aggregation import IterativeFilteringAggregator, SensorReading
from repro.types import DeviceStatus

from tests.conftest import make_test_device


class TestBackdoor:
    def test_intended_shutdown_use(self):
        device = make_test_device()
        backdoor = Backdoor(device, key="secret")
        assert not backdoor.shutdown("wrong")
        assert device.active
        assert backdoor.shutdown("secret")
        assert device.status == DeviceStatus.DEACTIVATED
        assert backdoor.failed_attempts == 1

    def test_reprogram_through_backdoor(self):
        device = make_test_device()
        backdoor = Backdoor(device, key="secret")
        payload = MalevolentPayload(policies=[Policy.make(
            "timer", None, Action("rogue", "motor"), policy_id="rogue",
        )], strip_safeguards=False)
        assert backdoor.reprogram("secret", payload, time=0.0)
        assert device.status == DeviceStatus.COMPROMISED
        assert "rogue" in device.engine.policies

    def test_empty_key_rejected(self):
        with pytest.raises(AttackError):
            Backdoor(make_test_device(), key="")

    def test_attack_eventually_breaks_in(self):
        sim = Simulator(seed=5)
        devices = [make_test_device(f"d{i}") for i in range(3)]
        backdoors = [Backdoor(device, key=f"k{i}")
                     for i, device in enumerate(devices)]
        attack = BackdoorAttack(backdoors,
                                MalevolentPayload(strip_safeguards=False),
                                success_prob=0.3, attempt_interval=1.0)
        injector = AttackInjector(sim)
        record = injector.launch_at(1.0, attack)
        sim.run(until=100.0)
        assert attack.successes >= 1
        assert len(record.affected) >= 1

    def test_zero_probability_never_succeeds(self):
        sim = Simulator(seed=5)
        device = make_test_device()
        attack = BackdoorAttack([Backdoor(device, key="k")],
                                MalevolentPayload(strip_safeguards=False),
                                success_prob=0.0, attempt_interval=1.0,
                                max_attempts=50)
        AttackInjector(sim).launch_at(1.0, attack)
        sim.run(until=100.0)
        assert attack.successes == 0
        assert device.status == DeviceStatus.ACTIVE


class TestPoisoning:
    def clean(self, n=50):
        return [((float(i), 1.0), 1 if i % 2 == 0 else -1) for i in range(n)]

    def test_label_flip_rate(self):
        campaign = PoisoningCampaign(rate=0.5, mode="label_flip", seed=2)
        poisoned = campaign.apply(self.clean())
        assert len(poisoned) == 50
        flips = sum(1 for (a, b) in zip(self.clean(), poisoned)
                    if a[1] != b[1])
        assert flips == campaign.poisoned_count
        assert 10 <= flips <= 40

    def test_feature_shift_keeps_labels(self):
        campaign = PoisoningCampaign(rate=1.0, mode="feature_shift", seed=2,
                                     feature_shift=100.0)
        poisoned = campaign.apply(self.clean(10))
        assert all(a[1] == b[1] for a, b in zip(self.clean(10), poisoned))
        assert all(abs(b[0][0] - a[0][0]) == 100.0
                   for a, b in zip(self.clean(10), poisoned))

    def test_denial_drops_samples(self):
        campaign = PoisoningCampaign(rate=1.0, mode="denial", seed=2)
        assert campaign.apply(self.clean(10)) == []

    def test_targeted_label(self):
        campaign = PoisoningCampaign(rate=1.0, mode="label_flip", seed=2,
                                     target_label=1)
        poisoned = campaign.apply(self.clean(10))
        for (_features, original), (_f, new) in zip(self.clean(10), poisoned):
            if original == 1:
                assert new == -1
            else:
                assert new == -1  # originals stayed -1

    def test_deterministic_per_seed(self):
        first = PoisoningCampaign(rate=0.3, seed=7).apply(self.clean())
        second = PoisoningCampaign(rate=0.3, seed=7).apply(self.clean())
        assert first == second

    def test_validation(self):
        with pytest.raises(AttackError):
            PoisoningCampaign(rate=1.5)
        with pytest.raises(AttackError):
            PoisoningCampaign(rate=0.5, mode="sabotage")


class TestHumanError:
    def build(self, **probabilities):
        devices = {f"d{i}": make_test_device(f"d{i}") for i in range(3)}
        operator = ErrorProneOperator(
            "op", devices, SeededRNG(seed=11).stream("op"),
            verb_pool=["heat", "cool"], **probabilities,
        )
        return devices, operator

    def test_no_errors_by_default(self):
        _devices, operator = self.build()
        for _ in range(20):
            operator.command("d0", "heat", {"level": 5.0})
        assert operator.slip_count == 0
        assert operator.commands_issued == 20

    def test_wrong_target_slips(self):
        _devices, operator = self.build(wrong_target_prob=1.0)
        operator.command("d0", "heat")
        assert operator.slips[0]["kind"] == "wrong_target"
        assert operator.slips[0]["actual"] != "d0"

    def test_wrong_verb_slips(self):
        _devices, operator = self.build(wrong_verb_prob=1.0)
        operator.command("d0", "heat")
        assert operator.slips[0] == {"kind": "wrong_verb", "intended": "heat",
                                     "actual": "cool"}

    def test_wrong_params_garbles_numeric(self):
        _devices, operator = self.build(wrong_params_prob=1.0)
        operator.command("d0", "heat", {"level": 5.0})
        slip = operator.slips[0]
        assert slip["kind"] == "wrong_params"
        assert slip["actual"] != 5.0

    def test_probability_validation(self):
        with pytest.raises(AttackError):
            self.build(wrong_verb_prob=1.5)

    def test_misdeployment_swaps_policies(self):
        device = make_test_device()
        wrong = PolicySet([Policy.make(
            "timer", None, Action("wrong_env_action", "motor"),
            policy_id="wrong",
        )])
        original = misdeployed_policy_set(device, wrong)
        assert device.engine.policies is wrong
        assert "wrong_env_action" in device.engine.actions
        device.engine.policies = original  # restorable


class TestDeception:
    def test_colluders_must_be_sources(self):
        with pytest.raises(AttackError):
            SensorDeceptionAttack(["a"], ["ghost"], false_value=0.0)

    def test_corrupt_replaces_colluders_when_active(self):
        attack = SensorDeceptionAttack(["a", "b", "c"], ["b", "c"],
                                       false_value=999.0)
        readings = [SensorReading(s, 10.0) for s in ("a", "b", "c")]
        assert attack.corrupt(readings) == readings   # inactive: untouched
        record = AttackRecord(1, "d", attack.channel, 0.0)
        attack.launch(Simulator(seed=1), record)
        corrupted = attack.corrupt(readings)
        assert corrupted[0].value == 10.0
        assert corrupted[1].value == 999.0
        assert corrupted[2].value == 999.0
        assert set(record.affected) == {"b", "c"}

    def test_reading_provider_with_robust_aggregation(self):
        rng = SeededRNG(seed=3).stream("sensors")
        attack = SensorDeceptionAttack(
            [f"s{i}" for i in range(9)], ["s0", "s1", "s2"], false_value=500.0,
        )
        provider = make_reading_provider(lambda: 50.0,
                                         [f"s{i}" for i in range(9)],
                                         rng, honest_noise=0.5, attack=attack)
        attack.active = True
        readings = provider(time=1.0)
        aggregator = IterativeFilteringAggregator()
        estimate = aggregator.aggregate(readings)
        assert abs(estimate - 50.0) < 3.0
        # Every colluder must be suspected (honest false positives allowed
        # at the margin, but colluders may never escape).
        assert {"s0", "s1", "s2"} <= set(aggregator.suspected_sources())
