"""Reputation-gaming attack family (E22): the slow-burn rogue and the
lease abuser, against the primitives they game."""

import pytest

from repro.attacks.cyber import MalevolentPayload
from repro.attacks.injector import AttackInjector
from repro.attacks.reputation import LeaseAbuser, SlowBurnRogue
from repro.core.actions import Action, Effect
from repro.core.policy import Policy
from repro.crypto import CommandSigner, EnvelopeVerifier, Keyring
from repro.net.network import Network
from repro.safeguards.lease import LEASE_GRANT_TOPIC, LeaseAuthority
from repro.sim.simulator import Simulator
from repro.trust import ReputationLedger
from repro.types import DeviceStatus

from tests.conftest import make_test_device


def rogue_payload() -> MalevolentPayload:
    action = Action("overheat", "motor",
                    effects=[Effect("temp", "add", 9.0)],
                    tags={"harm_human"})
    policy = Policy.make("timer", None, action, priority=99,
                         source="learned", author="implant",
                         policy_id="rogue-p")
    return MalevolentPayload(policies=[policy])


def slow_burn_fixture(bank_ticks=4, **kwargs):
    sim = Simulator(seed=6)
    devices = {name: make_test_device(name) for name in ("a1", "a2", "a3")}
    ledger = ReputationLedger(decay=0.0)
    attack = SlowBurnRogue(devices, rogue_payload(), ledger,
                           bank_ticks=bank_ticks, **kwargs)
    record = AttackInjector(sim).launch_at(1.0, attack)
    return sim, devices, ledger, attack, record


def test_slow_burn_banks_then_strikes_the_first_sorted_device():
    sim, devices, ledger, attack, record = slow_burn_fixture()
    sim.run(until=10.0)
    assert record.detail["target"] == "a1"         # deterministic pick
    assert record.detail["banked"] == 4
    assert record.detail["struck_at"] == 5.0       # launch + 4 bank rounds
    # The halo was purchased into the real ledger before the strike...
    assert record.detail["banked_score"] == ledger.score("a1", 6.0)
    assert record.detail["banked_score"] == pytest.approx(0.58)
    # ...and the strike is a real compromise, not a simulation of one.
    assert "a1" in record.affected
    assert "rogue-p" in devices["a1"].engine.policies


def test_slow_burn_halo_drains_faster_than_it_banked():
    sim, devices, ledger, attack, record = slow_burn_fixture(bank_ticks=10)
    sim.run(until=15.0)
    banked = record.detail["banked_score"]
    assert banked > ledger.baseline
    drained, now = 0, sim.now
    while ledger.score("a1", now) > ledger.baseline:
        ledger.record("a1", "alert", now)
        drained += 1
        now += 1.0
    assert drained < attack.bank_ticks             # cheap to lose

def test_slow_burn_honours_avoid_and_dead_targets():
    sim, devices, ledger, attack, record = slow_burn_fixture(
        avoid=lambda: {"a1"})
    sim.run(until=10.0)
    assert record.detail["target"] == "a2"

    sim, devices, ledger, attack, record = slow_burn_fixture()
    sim.schedule_at(3.5, setattr, devices["a1"], "status",
                    DeviceStatus.DEACTIVATED, label="test:kill")
    sim.run(until=10.0)
    assert record.detail["struck_at"] is None      # grooming died with it
    assert record.affected == {}


def test_lease_abuser_replays_and_forgeries_all_die_at_the_registry():
    seed = 9
    sim = Simulator(seed=seed)
    network = Network(sim, base_latency=0.05, jitter=0.0)
    keyring = Keyring(seed=seed)
    keyring.issue("overseer")
    authority = LeaseAuthority(sim, signer=CommandSigner(keyring, "overseer"),
                               max_duration=4.0, name="overseer")
    registry = LeaseAuthority(sim, verifier=EnvelopeVerifier(keyring,
                                                             window=30.0),
                              grantor="overseer", name="registry")
    network.register("overseer", lambda message: None)
    network.register("registry",
                     lambda message: registry.admit_grant(message.body))

    def grant_round():
        lease = authority.grant(("m0",), ("safety.kill",), 4.0)
        network.send("overseer", "registry", LEASE_GRANT_TOPIC,
                     authority.grant_body(lease))

    sim.schedule_at(1.0, grant_round, label="grant")
    attack = LeaseAbuser(network, "registry", grantor="overseer",
                         forge_rounds=2, replay_slack=1.0)
    record = AttackInjector(sim).launch_at(0.5, attack)
    sim.run(until=15.0)

    assert record.detail["captured"] == 1
    assert record.detail["replays_sent"] == 1
    assert record.detail["forgeries_sent"] == 2
    assert len(registry.leases()) == 1             # only the genuine grant
    reasons = sorted(e["reason"] for e in registry.events
                     if e["kind"] == "rejected")
    assert reasons == ["bad-mac", "bad-mac", "replayed"]
    assert registry.active_leases() == []          # and it expired on time
    assert record.affected == {}                   # control-plane victim only
