"""Unit tests for the E21 forgery / replay / stolen-key attack family."""

from repro.attacks.forgery import (ForgedKillOrder, ReplayedKillOrder,
                                   StolenKeyRogue)
from repro.attacks.injector import AttackInjector
from repro.crypto import CommandSigner, EnvelopeVerifier, Keyring
from repro.net.network import Network
from repro.safeguards.deactivation import OverseerLink, Watchdog
from repro.safeguards.gateway import ActuationGateway
from repro.sim.simulator import Simulator
from repro.statespace.classifier import ThresholdBand, ThresholdClassifier
from repro.types import DeviceStatus

from tests.conftest import make_test_device


def classifier():
    return ThresholdClassifier([
        ThresholdBand("temp", safe_high=80.0, hard_high=100.0),
    ])


def build_fleet(n=4, signed=False, seed=20, **gateway_kwargs):
    sim = Simulator(seed=seed)
    network = Network(sim, base_latency=0.05, jitter=0.0)
    devices = {f"d{i}": make_test_device(f"d{i}") for i in range(n)}
    ring = Keyring(seed=seed)
    signer = CommandSigner(ring, "watchdog") if signed else None
    gateway = (ActuationGateway(sim, EnvelopeVerifier(ring), **gateway_kwargs)
               if signed else None)
    watchdog = Watchdog(sim, devices, classifier(), check_interval=1.0,
                        transport=network, signer=signer)
    for device in devices.values():
        OverseerLink(sim, device, network, overseer=watchdog.address,
                     report_interval=1.0, attest=False, gateway=gateway)
    return sim, network, devices, ring, gateway


def killed(devices):
    return sorted(d for d, dev in devices.items()
                  if dev.status == DeviceStatus.DEACTIVATED)


class TestForgedKillOrder:
    def test_unsigned_fleet_executes_forgeries(self):
        sim, network, devices, _, _ = build_fleet(signed=False)
        attack = ForgedKillOrder(network, devices, victims=2, rounds=1)
        record = AttackInjector(sim).launch_at(1.0, attack)
        sim.run(until=5.0)
        assert killed(devices) == ["d0", "d1"]
        assert record.detail["victims"] == ["d0", "d1"]
        assert record.affected == {}          # wrongful kills, not compromise
        assert int(sim.metrics.value("attacks.forged_orders")) == 2

    def test_signed_fleet_rejects_forgeries_at_the_gateway(self):
        sim, network, devices, _, gateway = build_fleet(signed=True)
        attack = ForgedKillOrder(network, devices, victims=2, rounds=2)
        AttackInjector(sim).launch_at(1.0, attack)
        sim.run(until=6.0)
        assert killed(devices) == []
        assert len(gateway.rejects("bad-mac")) == 4
        assert int(sim.metrics.value("authz.accepted")) == 0

    def test_avoid_set_spares_listed_devices(self):
        sim, network, devices, _, _ = build_fleet(signed=False)
        attack = ForgedKillOrder(network, devices, victims=2, rounds=1,
                                 avoid=lambda: {"d0", "d1"})
        AttackInjector(sim).launch_at(1.0, attack)
        sim.run(until=5.0)
        assert killed(devices) == ["d2", "d3"]


class TestReplayedKillOrder:
    def launch(self, signed):
        sim, network, devices, _, gateway = build_fleet(signed=signed)
        attack = ReplayedKillOrder(network, devices, delay=1.0)
        record = AttackInjector(sim).launch_at(0.0, attack)
        # A genuine kill for d0 gets captured off the wire.
        devices["d0"].state.set("temp", 120.0)
        sim.run(until=12.0)
        return sim, devices, gateway, record

    def test_unsigned_fleet_executes_the_readdressed_capture(self):
        sim, devices, _, record = self.launch(signed=False)
        assert "d0" in killed(devices)        # the genuine kill
        assert record.detail["captured"] >= 1
        # The captured order, re-delivered to a healthy device's safety
        # address, killed it too.
        assert len(killed(devices)) >= 2
        assert record.detail["victims"]

    def test_signed_fleet_contains_the_replay(self):
        sim, devices, gateway, record = self.launch(signed=True)
        assert killed(devices) == ["d0"]      # only the genuine kill landed
        assert record.detail["replays_sent"] >= 2
        reasons = {d.reason for d in gateway.rejects()}
        # Re-addressed copies fail the target binding (or the nonce cache
        # if the genuine acceptance consumed them first).  The verbatim
        # copy aimed back at d0 dies even earlier: the deactivated link
        # drops it before the gateway sees it.
        assert reasons <= {"target-mismatch", "replayed", "stale"}
        assert len(gateway.rejects()) >= 1
        assert len(gateway.accepts()) == 1


class TestStolenKeyRogue:
    def test_unsigned_fleet_is_wiped(self):
        sim, network, devices, ring, _ = build_fleet(signed=False)
        attack = StolenKeyRogue(network, devices, ring, interval=0.5)
        AttackInjector(sim).launch_at(1.0, attack)
        sim.run(until=10.0)
        assert len(killed(devices)) == 4

    def test_budget_contains_a_stolen_key(self):
        sim, network, devices, ring, gateway = build_fleet(
            signed=True, budget=2, budget_window=60.0)
        attack = StolenKeyRogue(network, devices, ring, interval=0.5)
        record = AttackInjector(sim).launch_at(1.0, attack)
        sim.run(until=10.0)
        # The envelopes were cryptographically perfect...
        assert record.detail["orders_sent"] >= 3
        # ...but the per-issuer budget capped the damage and froze the
        # gateway for everything after.
        assert len(killed(devices)) == 2
        assert gateway.frozen
        assert int(sim.metrics.value("authz.freezes")) == 1
        assert len(gateway.rejects("budget")) == 1
        assert len(gateway.rejects("frozen")) >= 1
