"""The transport-agnostic control plane, driven by direct dispatch.

Every test runs a :class:`ControlPlane` on a :class:`ManualClock` with
``workers=0``, so monitor ticks, token buckets, and job execution are
fully deterministic — no threads, no wall clock.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api.runtime import ManualClock
from repro.api.service import ControlPlane, ControlPlaneConfig
from repro.statespace.batch import numpy_available


def make_plane(**overrides):
    clock = ManualClock()
    defaults = dict(workers=0, monitor_interval=1.0)
    defaults.update(overrides)
    plane = ControlPlane(config=ControlPlaneConfig(**defaults), clock=clock)
    return plane, clock


def post(plane, path, payload, headers=None):
    return plane.handle_request(
        "POST", path, headers=headers or {},
        body=json.dumps(payload).encode("utf-8"))


def get(plane, path, query=None, headers=None):
    return plane.handle_request("GET", path, query=query or {},
                                headers=headers or {})


class TestEvaluate:
    def test_clear_command_executes_and_mutates_state(self):
        plane, _ = make_plane()
        response = post(plane, "/evaluate",
                        {"event": {"kind": "mgmt.command.move"}})
        assert response.status == 200
        assert response.payload["outcome"] == "executed"
        assert response.payload["executed"] == "advance"
        assert response.payload["policy_id"] == "move-when-charged"
        assert response.payload["state"]["speed"] == 25.0
        assert response.payload["trace_id"] == response.trace_id
        plane.close()

    def test_dangerous_command_is_substituted_by_the_guard(self):
        plane, _ = make_plane()
        response = post(plane, "/evaluate", {
            "state": {"heat": 120.0},
            "event": {"kind": "mgmt.command.move"},
        })
        assert response.status == 200
        assert response.payload["outcome"] == "substituted"
        assert response.payload["requested"] == "advance"
        assert response.payload["executed"] == "vent_heat"
        assert response.payload["vetoes"]
        plane.close()

    def test_request_body_errors_are_bad_request(self):
        plane, _ = make_plane()
        assert post(plane, "/evaluate", {"event": {}}).status == 400
        assert get(plane, "/evaluate").status == 405
        response = plane.handle_request("POST", "/evaluate",
                                        body=b"not json{")
        assert response.status == 500 or response.status == 400
        plane.close()


class TestExplainRoundTrip:
    def test_decision_spans_nest_under_the_request_root(self):
        plane, _ = make_plane()
        evaluated = post(plane, "/evaluate", {
            "state": {"heat": 120.0},
            "event": {"kind": "mgmt.command.move"},
        })
        explained = get(plane, "/explain",
                        {"trace_id": evaluated.trace_id})
        assert explained.status == 200
        kinds = explained.payload["kinds"]
        assert "api.request" in kinds
        assert "engine.decision" in kinds
        assert "safeguard.veto" in kinds
        assert "api.request" in explained.payload["rendered"]
        plane.close()

    def test_unknown_trace_is_not_found(self):
        plane, _ = make_plane()
        assert get(plane, "/explain", {"trace_id": "t999"}).status == 404
        assert get(plane, "/explain").status == 400
        plane.close()


class TestRoutingAndErrors:
    def test_unknown_path_is_404_and_metered(self):
        plane, _ = make_plane()
        response = get(plane, "/no/such/endpoint")
        assert (response.status, response.reason) == (404, "not-found")
        metrics = plane.runtime.metrics
        assert metrics.value("api.errors") == 1.0
        assert metrics.value("api.errors.not-found") == 1.0
        plane.close()

    def test_handler_crash_is_500_internal_and_service_survives(self):
        plane, _ = make_plane()

        def explode(_event):
            raise RuntimeError("engine fell over")

        plane.device.engine.handle_event = explode
        response = post(plane, "/evaluate",
                        {"event": {"kind": "mgmt.command.move"}})
        assert (response.status, response.reason) == (500, "internal")
        assert plane.runtime.metrics.value("api.errors.internal") == 1.0
        assert get(plane, "/health").status == 200    # still serving
        plane.close()


class TestAdmissionAtTheEdge:
    def test_reject_is_metered_traced_and_audited(self):
        plane, _ = make_plane(api_keys={"s3cret": "ops"})
        response = post(plane, "/evaluate",
                        {"event": {"kind": "mgmt.command.move"}})
        assert (response.status, response.reason) == (401, "unauthorized")
        metrics = plane.runtime.metrics
        assert metrics.value("api.errors.unauthorized") == 1.0
        names = [span.name for span in plane.runtime.telemetry.spans]
        assert "api.reject" in names
        kinds = [event.kind for event in plane.runtime.trace.events]
        assert "api.reject" in kinds
        audited = plane.audit.entries("api.reject")
        assert len(audited) == 1
        assert audited[0].detail["reason"] == "unauthorized"
        assert plane.audit.verify()
        # The authorized caller sees the reject in the audit tail.
        tail = get(plane, "/audit", {"kind": "api.reject"},
                   headers={"x-api-key": "s3cret"})
        assert tail.status == 200
        assert tail.payload["matched"] == 1
        assert tail.payload["verified"] is True
        assert tail.payload["head_hash"]
        plane.close()

    def test_rate_limit_refills_on_the_service_clock(self):
        plane, clock = make_plane(api_keys={"k": "ops"}, rate=1.0,
                                  burst=1.0)
        headers = {"x-api-key": "k"}
        body = {"event": {"kind": "mgmt.command.move"}}
        assert post(plane, "/evaluate", body, headers).status == 200
        limited = post(plane, "/evaluate", body, headers)
        assert (limited.status, limited.reason) == (429, "rate-limited")
        clock.advance(1.0)
        assert post(plane, "/evaluate", body, headers).status == 200
        plane.close()

    def test_health_and_metrics_stay_open(self):
        plane, _ = make_plane(api_keys={"k": "ops"})
        assert get(plane, "/health").status == 200
        assert get(plane, "/metrics").status == 200
        plane.close()


@pytest.mark.skipif(not numpy_available(),
                    reason="vectorized path needs numpy")
class TestBatch:
    def test_rows_route_through_programs_with_fallback_counters(self):
        plane, _ = make_plane()
        response = post(plane, "/batch", {
            "rows": [{}, {"heat": 120.0}],
        })
        assert response.status == 200
        payload = response.payload
        assert payload["rows"] == 2
        assert payload["chosen"] == ["move-when-charged",
                                     "vent-on-overheat"]
        # The bool-effect program can't vectorize: the fallback is
        # loudly reported, not silently demoted.
        assert payload["fallback_reasons"].get("non-float-effect", 0) >= 1
        assert len(payload["results"]) == 2
        plane.close()

    def test_row_limit_is_413(self):
        plane, _ = make_plane(batch_row_limit=4)
        response = post(plane, "/batch", {"rows": [{}] * 5})
        assert (response.status, response.reason) == (413, "too-many-rows")
        plane.close()

    def test_empty_rows_are_bad_request(self):
        plane, _ = make_plane()
        assert post(plane, "/batch", {"rows": []}).status == 400
        plane.close()


class TestJobsEndpoint:
    def test_submit_links_job_to_the_request_trace(self):
        plane, _ = make_plane()
        submitted = post(plane, "/jobs", {"kind": "noop",
                                          "params": {"x": 1}})
        assert submitted.status == 202
        job = submitted.payload["job"]
        assert job["status"] == "queued"
        assert job["trace_id"] == submitted.trace_id
        plane.jobs.run_pending()
        fetched = get(plane, f"/jobs/{job['job_id']}")
        assert fetched.payload["job"]["status"] == "done"
        assert fetched.payload["job"]["result"]["params"] == {"x": 1}
        listing = get(plane, "/jobs")
        assert listing.payload["depth"] == 0
        assert len(listing.payload["jobs"]) == 1
        plane.close()

    def test_unknown_kind_and_missing_job(self):
        plane, _ = make_plane()
        response = post(plane, "/jobs", {"kind": "frobnicate"})
        assert (response.status, response.reason) == (400, "unknown-kind")
        assert get(plane, "/jobs/job-99").status == 404
        plane.close()

    def test_full_queue_is_503(self):
        plane, _ = make_plane(queue_capacity=1)
        assert post(plane, "/jobs", {"kind": "noop"}).status == 202
        overflow = post(plane, "/jobs", {"kind": "noop"})
        assert (overflow.status, overflow.reason) == (503, "queue-full")
        plane.close()


class TestSelfMonitoring:
    def test_slis_appear_after_a_monitor_tick(self):
        plane, clock = make_plane()
        for _ in range(8):
            post(plane, "/evaluate", {"event": {"kind": "sensor.threat"}})
        clock.advance(1.1)
        plane.runtime.pump()
        health = get(plane, "/health")
        slis = health.payload["slis"]
        assert slis["api.latency_p50"] > 0.0
        assert slis["api.latency_p99"] >= slis["api.latency_p50"]
        assert slis["jobs.queue_depth"] == 0.0
        assert health.payload["status"] == "ok"
        assert health.payload["requests"] >= 8.0
        plane.close()

    def test_queue_saturation_fires_and_clears_the_self_alert(self):
        plane, clock = make_plane(queue_capacity=2)
        for _ in range(2):
            assert post(plane, "/jobs", {"kind": "noop"}).status == 202
        clock.advance(1.1)
        plane.runtime.pump()                       # tick: saturation == 1
        health = get(plane, "/health")
        assert health.payload["status"] == "degraded"
        assert "jobs-queue-saturation" in health.payload["alerts"]["active"]
        assert plane.audit.entries("alert.fire")
        # The firing is itself a replayable trace.
        alert = plane.alerts.active["jobs-queue-saturation"]
        explained = get(plane, "/explain", {"trace_id": alert.trace_id})
        assert explained.status == 200
        assert "alert.fire" in explained.payload["kinds"]
        # Drain the queue; the next tick resolves the alert.
        plane.jobs.run_pending()
        clock.advance(1.1)
        plane.runtime.pump()
        recovered = get(plane, "/health")
        assert recovered.payload["status"] == "ok"
        assert recovered.payload["alerts"]["active"] == []
        assert plane.audit.entries("alert.resolve")
        plane.close()


class TestMetricsEndpoint:
    def test_prometheus_snapshot_includes_red_metrics(self):
        plane, _ = make_plane()
        post(plane, "/evaluate", {"event": {"kind": "mgmt.command.move"}})
        response = get(plane, "/metrics")
        assert response.status == 200
        assert response.content_type.startswith("text/plain")
        text = response.payload
        # The scrape itself is metered after its handler runs, so the
        # snapshot shows only the requests that finished before it.
        assert "api_requests 1.0" in text
        assert "api_requests_evaluate 1.0" in text
        assert "# TYPE api_latency summary" in text
        plane.close()


class TestObservabilityToggle:
    def test_disabled_observability_means_no_spans_or_access_log(self):
        plane, _ = make_plane(observability=False)
        response = post(plane, "/evaluate",
                        {"event": {"kind": "mgmt.command.move"}})
        assert response.status == 200
        assert response.trace_id is None
        assert "trace_id" not in response.payload
        assert plane.runtime.telemetry.spans == []
        assert len(plane.access) == 0
        assert plane.runtime.metrics.value("api.requests") == 0.0
        plane.close()

    def test_access_log_records_every_request(self):
        plane, _ = make_plane()
        post(plane, "/evaluate", {"event": {"kind": "mgmt.command.move"}})
        get(plane, "/nope")
        records = plane.access.tail(2)
        assert [r["endpoint"] for r in records] == ["evaluate", "/nope"]
        assert records[0]["status"] == 200
        assert records[1]["status"] == 404
        assert records[0]["trace_id"]
        plane.close()


class TestBundleExport:
    def test_bundle_includes_access_log_and_service_manifest(self, tmp_path):
        plane, _ = make_plane()
        post(plane, "/evaluate", {"event": {"kind": "mgmt.command.move"}})
        directory = str(tmp_path / "bundle")
        manifest = plane.export_bundle(directory)
        assert manifest["service"] == "repro.api"
        assert manifest["profile"] == "patrol-drone"
        assert manifest["access_log_records"] == 1
        access_path = os.path.join(directory, "access.jsonl")
        with open(access_path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert lines[0]["endpoint"] == "evaluate"
        assert os.path.exists(os.path.join(directory, "alerts.jsonl"))
        plane.close()


class TestQueryEndpoint:
    """The E24 warehouse behind /query: metered, traced, explainable."""

    def _seeded_warehouse_dir(self, tmp_path) -> str:
        from repro.telemetry.warehouse import Warehouse, ingest_run_dict

        directory = str(tmp_path / "wh")
        warehouse = Warehouse(directory)
        for arm, base in (("baseline", 100.0), ("full", 80.0)):
            for seed in (1, 2, 3):
                ingest_run_dict(
                    warehouse, {"throughput_rps": base + seed,
                                "healthy_killed": 0.0},
                    experiment="e10", arm=arm, seed=seed)
        return directory

    def test_no_warehouse_is_503_with_stable_reason(self):
        plane, _ = make_plane()
        response = post(plane, "/query", {"op": "stats"})
        assert (response.status, response.reason) == (503, "no-warehouse")
        plane.close()

    def test_get_is_method_not_allowed(self, tmp_path):
        plane, _ = make_plane(
            warehouse_dir=self._seeded_warehouse_dir(tmp_path))
        assert get(plane, "/query").status == 405
        plane.close()

    def test_select_caps_rows_at_config_limit(self, tmp_path):
        plane, _ = make_plane(
            warehouse_dir=self._seeded_warehouse_dir(tmp_path),
            query_result_limit=4)
        response = post(plane, "/query",
                        {"op": "select", "metric": "throughput_rps"})
        assert response.status == 200
        assert response.payload["matched"] == 6
        assert len(response.payload["values"]) == 4
        row = response.payload["values"][0]
        assert set(row) == {"run", "experiment", "arm", "seed", "value"}
        plane.close()

    def test_percentile_aggregation_across_runs(self, tmp_path):
        plane, _ = make_plane(
            warehouse_dir=self._seeded_warehouse_dir(tmp_path))
        response = post(plane, "/query", {
            "op": "percentile", "metric": "throughput_rps",
            "where": {"arm": "baseline"}, "q": [0.5]})
        assert response.status == 200
        assert response.payload["matched"] == 3
        assert response.payload["percentiles"] == {0.5: 102.0}
        plane.close()

    def test_group_by_arm(self, tmp_path):
        plane, _ = make_plane(
            warehouse_dir=self._seeded_warehouse_dir(tmp_path))
        response = post(plane, "/query", {
            "op": "group", "metric": "throughput_rps", "by": "arm"})
        groups = response.payload["groups"]
        assert groups["full"]["count"] == 3
        assert groups["baseline"]["p50"] == 102.0
        plane.close()

    def test_compare_identical_sets_is_ok(self, tmp_path):
        plane, _ = make_plane(
            warehouse_dir=self._seeded_warehouse_dir(tmp_path))
        response = post(plane, "/query", {
            "op": "compare",
            "baseline": {"arm": "baseline"},
            "candidate": {"arm": "baseline"}})
        assert response.status == 200
        assert response.payload["report"]["ok"] is True
        plane.close()

    def test_bad_requests_are_400(self, tmp_path):
        plane, _ = make_plane(
            warehouse_dir=self._seeded_warehouse_dir(tmp_path))
        assert post(plane, "/query", {"op": "noop"}).status == 400
        assert post(plane, "/query", {"op": "select"}).status == 400
        assert post(plane, "/query", {
            "op": "select", "metric": "m",
            "where": {"tyop": 1}}).status == 400
        assert post(plane, "/query", {
            "op": "select", "metric": "m", "where": "arm=full"}).status == 400
        plane.close()

    def test_query_is_traced_and_explainable(self, tmp_path):
        plane, _ = make_plane(
            warehouse_dir=self._seeded_warehouse_dir(tmp_path))
        response = post(plane, "/query", {
            "op": "percentile", "metric": "throughput_rps"})
        assert response.trace_id
        explained = get(plane, "/explain", {"trace_id": response.trace_id})
        assert explained.status == 200
        kinds = explained.payload["kinds"]
        assert "api.request" in kinds
        assert "warehouse.query" in kinds
        plane.close()

    def test_query_is_admission_metered(self, tmp_path):
        plane, _ = make_plane(
            warehouse_dir=self._seeded_warehouse_dir(tmp_path),
            api_keys={"k1": "operator"})
        denied = post(plane, "/query", {"op": "stats"})
        assert (denied.status, denied.reason) == (401, "unauthorized")
        allowed = post(plane, "/query", {"op": "stats"},
                       headers={"x-api-key": "k1"})
        assert allowed.status == 200
        assert allowed.payload["stats"]["records"] == 6
        plane.close()


class TestAccessLogRotation:
    """E24 satellite: the file-mode access log rotates by size."""

    def _record(self, n=0) -> dict:
        return {"endpoint": "evaluate", "status": 200, "n": n,
                "padding": "x" * 64}

    def test_rotates_and_keeps_bounded_generations(self, tmp_path):
        from repro.api.accesslog import AccessLog

        path = str(tmp_path / "access.jsonl")
        log = AccessLog(capacity=10, path=path, max_bytes=256, rotations=2)
        for n in range(20):
            log.log(self._record(n))
        log.close()
        assert log.rotated >= 2
        assert os.path.exists(path)
        assert os.path.exists(path + ".1")
        assert os.path.exists(path + ".2")
        assert not os.path.exists(path + ".3")      # oldest dropped
        assert os.path.getsize(path) < 256 + 128    # fresh after last roll

    def test_no_record_lost_across_generations(self, tmp_path):
        from repro.api.accesslog import AccessLog

        path = str(tmp_path / "access.jsonl")
        log = AccessLog(capacity=100, path=path, max_bytes=300,
                        rotations=10)
        total = 25
        for n in range(total):
            log.log(self._record(n))
        log.close()
        seen = []
        for candidate in [path] + [f"{path}.{i}" for i in range(1, 11)]:
            if os.path.exists(candidate):
                with open(candidate, encoding="utf-8") as handle:
                    seen.extend(json.loads(line)["n"]
                                for line in handle if line.strip())
        assert sorted(seen) == list(range(total))

    def test_restart_counts_existing_bytes(self, tmp_path):
        from repro.api.accesslog import AccessLog

        path = str(tmp_path / "access.jsonl")
        first = AccessLog(capacity=10, path=path, max_bytes=10_000)
        first.log(self._record())
        first.close()
        existing = os.path.getsize(path)
        second = AccessLog(capacity=10, path=path, max_bytes=existing + 1)
        assert second.rotated == 0
        second.log(self._record())                  # crosses the threshold
        assert second.rotated == 1
        second.close()

    def test_no_max_bytes_never_rotates(self, tmp_path):
        from repro.api.accesslog import AccessLog

        path = str(tmp_path / "access.jsonl")
        log = AccessLog(capacity=10, path=path)
        for n in range(50):
            log.log(self._record(n))
        log.close()
        assert log.rotated == 0
        assert not os.path.exists(path + ".1")

    def test_plane_config_wires_rotation(self, tmp_path):
        path = str(tmp_path / "api_access.jsonl")
        plane, _ = make_plane(access_log_path=path,
                              access_log_max_bytes=200,
                              access_log_rotations=2)
        for _ in range(10):
            post(plane, "/evaluate",
                 {"event": {"kind": "mgmt.command.move"}})
        plane.close()
        assert plane.access.rotated >= 1
        assert os.path.exists(path + ".1")

    def test_bad_rotation_params_rejected(self):
        from repro.api.accesslog import AccessLog

        with pytest.raises(ValueError):
            AccessLog(max_bytes=0)
        with pytest.raises(ValueError):
            AccessLog(rotations=0)
