"""Admission control at the HTTP edge: API keys and token buckets."""

from __future__ import annotations

import pytest

from repro.api.auth import AdmissionControl, TokenBucket
from repro.api.runtime import ManualClock, ServiceRuntime


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert [bucket.allow(0.0) for _ in range(3)] == [True, True, True]
        assert bucket.allow(0.0) is False

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.allow(0.0) and bucket.allow(0.0)
        assert bucket.allow(0.0) is False
        assert bucket.allow(0.5) is True           # 0.5s * 2/s = 1 token back
        assert bucket.allow(0.5) is False

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        bucket.allow(0.0)
        assert bucket.allow(100.0) is True
        assert bucket.allow(100.0) is True
        assert bucket.allow(100.0) is False        # not 1000 tokens

    def test_time_going_backwards_does_not_refill(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.allow(5.0) is True
        assert bucket.allow(1.0) is False          # stale clock, no credit

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


def _runtime() -> ServiceRuntime:
    return ServiceRuntime(clock=ManualClock())


class TestAdmissionControl:
    def test_open_service_admits_everyone_as_anonymous(self):
        admission = AdmissionControl(_runtime())
        assert admission.admit("evaluate", {}) == ("anonymous", None)

    def test_unknown_key_is_unauthorized(self):
        admission = AdmissionControl(_runtime(),
                                     api_keys={"s3cret": "ops"})
        principal, reason = admission.admit("evaluate", {})
        assert (principal, reason) == (None, "unauthorized")
        principal, reason = admission.admit("evaluate",
                                            {"x-api-key": "wrong"})
        assert (principal, reason) == (None, "unauthorized")

    def test_known_key_names_the_principal(self):
        admission = AdmissionControl(_runtime(),
                                     api_keys={"s3cret": "ops"})
        assert admission.admit("evaluate",
                               {"x-api-key": "s3cret"}) == ("ops", None)

    def test_bearer_token_is_an_api_key_spelling(self):
        admission = AdmissionControl(_runtime(),
                                     api_keys={"s3cret": "ops"})
        headers = {"authorization": "Bearer s3cret"}
        assert admission.admit("evaluate", headers) == ("ops", None)

    def test_open_endpoints_skip_auth_and_limits(self):
        runtime = _runtime()
        admission = AdmissionControl(runtime, api_keys={"k": "ops"},
                                     rate=1.0, burst=1.0)
        for _ in range(5):                          # would exhaust any bucket
            assert admission.admit("health", {}) == ("anonymous", None)
            assert admission.admit("metrics", {}) == ("anonymous", None)

    def test_rate_limit_is_per_principal_and_refills(self):
        runtime = _runtime()
        admission = AdmissionControl(
            runtime, api_keys={"a": "alice", "b": "bob"},
            rate=1.0, burst=1.0)
        assert admission.admit("evaluate", {"x-api-key": "a"})[1] is None
        assert admission.admit("evaluate",
                               {"x-api-key": "a"}) == ("alice",
                                                       "rate-limited")
        # Bob's bucket is untouched by Alice's burst.
        assert admission.admit("evaluate", {"x-api-key": "b"})[1] is None
        runtime.clock.advance(1.0)
        assert admission.admit("evaluate", {"x-api-key": "a"})[1] is None

    def test_rejects_and_admissions_are_metered(self):
        runtime = _runtime()
        admission = AdmissionControl(runtime, api_keys={"k": "ops"},
                                     rate=1.0, burst=1.0)
        admission.admit("evaluate", {"x-api-key": "k"})
        admission.admit("evaluate", {"x-api-key": "k"})   # rate-limited
        admission.admit("evaluate", {})                   # unauthorized
        assert runtime.metrics.value("api.admitted") == 1.0
        assert runtime.metrics.value("api.admission_rejected") == 2.0
