"""The asyncio HTTP front end, exercised over real sockets."""

from __future__ import annotations

import http.client
import json
import socket

import pytest

from repro.api.http import ServerThread
from repro.api.service import ControlPlane, ControlPlaneConfig


@pytest.fixture()
def server():
    plane = ControlPlane(config=ControlPlaneConfig(
        workers=0, monitor_interval=0.2))
    thread = ServerThread(plane)
    host, port = thread.start()
    yield plane, host, port
    thread.stop()
    plane.close()


def request(host, port, method, path, payload=None, headers=None):
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        data = response.read()
        return response.status, dict(response.getheaders()), data
    finally:
        conn.close()


class TestRoundTrip:
    def test_evaluate_over_the_wire_echoes_the_trace_id(self, server):
        plane, host, port = server
        status, headers, data = request(
            host, port, "POST", "/evaluate",
            {"event": {"kind": "mgmt.command.move"}})
        assert status == 200
        payload = json.loads(data)
        assert payload["outcome"] == "executed"
        assert headers["X-Trace-Id"] == payload["trace_id"]
        # The trace the header names is replayable from the same server.
        status, _, data = request(
            host, port, "GET", f"/explain?trace_id={payload['trace_id']}")
        assert status == 200
        assert "api.request" in json.loads(data)["kinds"]

    def test_unknown_path_is_404_json(self, server):
        _plane, host, port = server
        status, _headers, data = request(host, port, "GET", "/nope")
        assert status == 404
        assert json.loads(data)["error"] == "not-found"

    def test_metrics_scrape_is_prometheus_text(self, server):
        _plane, host, port = server
        status, headers, data = request(host, port, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert b"# TYPE api_requests counter" in data


class TestKeepAlive:
    def test_two_requests_ride_one_connection(self, server):
        plane, host, port = server
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("GET", "/health")
            first = conn.getresponse()
            first.read()
            assert first.status == 200
            conn.request("GET", "/health")
            second = conn.getresponse()
            second.read()
            assert second.status == 200
        finally:
            conn.close()
        assert plane.runtime.events_processed >= 2

    def test_connection_close_is_honoured(self, server):
        _plane, host, port = server
        status, headers, _data = request(host, port, "GET", "/health",
                                         headers={"Connection": "close"})
        assert status == 200
        assert headers["Connection"] == "close"


class TestMalformedInput:
    def test_garbage_request_line_is_400(self, server):
        _plane, host, port = server
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400 ")

    def test_bad_content_length_is_400(self, server):
        _plane, host, port = server
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"POST /evaluate HTTP/1.1\r\n"
                         b"Content-Length: banana\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400 ")

    def test_post_body_round_trips_content_length(self, server):
        _plane, host, port = server
        status, _headers, data = request(
            host, port, "POST", "/jobs", {"kind": "noop"})
        assert status == 202
        assert json.loads(data)["job"]["status"] == "queued"


class TestPumpLoop:
    def test_monitor_ticks_without_any_traffic(self, server):
        import time

        plane, _host, _port = server
        deadline = time.monotonic() + 5.0
        while plane.monitor.ticks == 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert plane.monitor.ticks > 0
