"""The sim-shaped service runtime: clocks, pumped periodics, lazy roots."""

from __future__ import annotations

import pytest

from repro.api.runtime import ManualClock, MonotonicClock, ServiceRuntime


class TestClocks:
    def test_manual_clock_advances(self):
        clock = ManualClock()
        assert clock() == 0.0
        clock.advance(2.5)
        assert clock() == 2.5
        clock.set(4.0)
        assert clock() == 4.0

    def test_manual_clock_refuses_to_go_backwards(self):
        clock = ManualClock(start=5.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(1.0)

    def test_monotonic_clock_starts_near_zero_and_grows(self):
        clock = MonotonicClock()
        first = clock()
        assert 0.0 <= first < 1.0
        assert clock() >= first


class TestPeriodicPump:
    def test_task_fires_once_per_elapsed_interval(self):
        clock = ManualClock()
        runtime = ServiceRuntime(clock=clock)
        fired = []
        runtime.every(1.0, lambda: fired.append(runtime.now))
        assert runtime.pump() == 0                 # not yet due
        clock.advance(1.0)
        assert runtime.pump() == 1
        clock.advance(3.0)
        assert runtime.pump() == 3                 # catches up per interval
        assert len(fired) == 4

    def test_start_after_delays_first_firing(self):
        clock = ManualClock()
        runtime = ServiceRuntime(clock=clock)
        fired = []
        runtime.every(1.0, lambda: fired.append(1), start_after=5.0)
        clock.advance(4.0)
        assert runtime.pump() == 0
        clock.advance(1.0)
        assert runtime.pump() == 1

    def test_catchup_is_bounded_and_reanchors(self):
        clock = ManualClock()
        runtime = ServiceRuntime(clock=clock)
        fired = []
        task = runtime.every(1.0, lambda: fired.append(1))
        clock.advance(1000.0)                      # stalled pump
        assert runtime.pump() == 64                # max_catchup, not 1000
        assert task.fired == 64
        assert runtime.pump() == 0                 # re-anchored on now
        clock.advance(1.0)
        assert runtime.pump() == 1

    def test_cancelled_tasks_stop_firing_and_are_pruned(self):
        clock = ManualClock()
        runtime = ServiceRuntime(clock=clock)
        task = runtime.every(1.0, lambda: None)
        runtime.every(2.0, lambda: None)
        task.cancel()
        clock.advance(2.0)
        assert runtime.pump() == 1                 # only the 2.0s task
        assert runtime.min_interval() == 2.0

    def test_min_interval_is_the_pump_sleep_hint(self):
        runtime = ServiceRuntime(clock=ManualClock())
        assert runtime.min_interval() is None
        runtime.every(0.5, lambda: None)
        runtime.every(2.0, lambda: None)
        assert runtime.min_interval() == 0.5

    def test_interval_must_be_positive(self):
        runtime = ServiceRuntime(clock=ManualClock())
        with pytest.raises(ValueError):
            runtime.every(0.0, lambda: None)


class TestLazyRoots:
    def test_idle_tick_allocates_no_spans(self):
        clock = ManualClock()
        runtime = ServiceRuntime(clock=clock)
        runtime.every(1.0, lambda: None, label="svc:idle")
        clock.advance(3.0)
        runtime.pump()
        assert runtime.telemetry.spans == []

    def test_tick_that_joins_the_chain_materializes_task_root(self):
        clock = ManualClock()
        runtime = ServiceRuntime(clock=clock)

        def traced():
            runtime.telemetry.start_span("work.step", "svc")

        runtime.every(1.0, traced, label="svc:watch")
        clock.advance(1.0)
        runtime.pump()
        names = [span.name for span in runtime.telemetry.spans]
        assert names == ["task.watch", "work.step"]
        root, child = runtime.telemetry.spans
        assert child.context.parent_id == root.context.span_id
        assert runtime.telemetry.current is None   # cleared after the tick

    def test_disabled_tracer_skips_seeding(self):
        clock = ManualClock()
        runtime = ServiceRuntime(clock=clock, spans_enabled=False)
        runtime.every(1.0, lambda: runtime.telemetry.start_span("x", "y"),
                      label="svc:quiet")
        clock.advance(1.0)
        runtime.pump()
        assert runtime.telemetry.spans == []


class TestSimSurface:
    def test_record_stamps_current_clock(self):
        clock = ManualClock()
        runtime = ServiceRuntime(clock=clock)
        clock.advance(7.0)
        runtime.record("api.reject", "evaluate", reason="unauthorized")
        event = runtime.trace.events[0]
        assert event.time == 7.0
        assert event.kind == "api.reject"

    def test_uptime_tracks_elapsed_clock(self):
        clock = ManualClock(start=100.0)
        runtime = ServiceRuntime(clock=clock)
        clock.advance(3.0)
        assert runtime.uptime() == 3.0
        assert runtime.now == 103.0
