"""The bounded background job queue and its saturation gauges."""

from __future__ import annotations

import pytest

from repro.api.jobs import JobQueue
from repro.api.runtime import ManualClock, ServiceRuntime


def _queue(capacity: int = 2, **kwargs) -> JobQueue:
    runtime = ServiceRuntime(clock=ManualClock())
    return JobQueue(runtime, capacity=capacity, workers=0, **kwargs)


class TestSubmission:
    def test_submit_and_drain_synchronously(self):
        jobs = _queue()
        job, reject = jobs.submit("noop", {"x": 1})
        assert reject is None
        assert job.status == "queued"
        assert jobs.run_pending() == 1
        assert job.status == "done"
        assert job.result == {"ok": True, "params": {"x": 1}}
        assert job.done_event.is_set()
        assert jobs.get(job.job_id) is job

    def test_unknown_kind_is_rejected_without_queueing(self):
        jobs = _queue()
        job, reject = jobs.submit("frobnicate")
        assert (job, reject) == (None, "unknown-kind")
        assert jobs.depth == 0
        assert jobs.runtime.metrics.value("jobs.rejected") == 1.0

    def test_full_queue_refuses_loudly(self):
        jobs = _queue(capacity=2)
        assert jobs.submit("noop")[1] is None
        assert jobs.submit("noop")[1] is None
        job, reject = jobs.submit("noop")
        assert (job, reject) == (None, "queue-full")
        assert jobs.runtime.metrics.value("jobs.rejected") == 1.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            _queue(capacity=0)


class TestLifecycle:
    def test_failed_job_records_traceback_and_counter(self):
        jobs = _queue()

        def explode(_params):
            raise RuntimeError("scenario fell over")

        jobs.register("explode", explode)
        job, _ = jobs.submit("explode")
        jobs.run_pending()
        assert job.status == "failed"
        assert "scenario fell over" in job.error
        assert jobs.runtime.metrics.value("jobs.failed") == 1.0
        assert jobs.runtime.metrics.value("jobs.completed") == 0.0

    def test_timestamps_come_from_the_runtime_clock(self):
        jobs = _queue()
        clock = jobs.runtime.clock
        clock.advance(10.0)
        job, _ = jobs.submit("noop")
        clock.advance(5.0)
        jobs.run_pending()
        assert job.submitted_at == 10.0
        assert job.started_at == 15.0
        assert job.finished_at == 15.0

    def test_to_dict_carries_the_request_trace_id(self):
        jobs = _queue()
        job, _ = jobs.submit("noop", trace_id="t42")
        record = job.to_dict()
        assert record["trace_id"] == "t42"
        assert record["status"] == "queued"
        assert record["job_id"] == job.job_id


class TestGauges:
    def test_depth_and_saturation_track_the_queue(self):
        jobs = _queue(capacity=2)
        metrics = jobs.runtime.metrics
        jobs.submit("noop")
        assert metrics.value("jobs.queue_depth") == 1.0
        assert metrics.value("jobs.queue_saturation") == 0.5
        jobs.submit("noop")
        assert metrics.value("jobs.queue_saturation") == 1.0
        jobs.run_pending()
        assert jobs.depth == 0

    def test_threaded_workers_drain_and_stop(self):
        runtime = ServiceRuntime(clock=ManualClock())
        jobs = JobQueue(runtime, capacity=4, workers=2)
        submitted = [jobs.submit("noop")[0] for _ in range(4)]
        for job in submitted:
            assert job.done_event.wait(5.0), job.job_id
            assert job.status == "done"
        assert runtime.metrics.value("jobs.completed") == 4.0
        jobs.stop()
