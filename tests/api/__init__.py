"""Tests for the E23 control-plane service."""
