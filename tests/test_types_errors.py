"""Tests for the shared enums and the exception hierarchy."""

import pytest

from repro import errors
from repro.types import (
    ActionOutcome,
    Branch,
    DeviceStatus,
    HarmKind,
    Safeness,
    ThreatChannel,
    Verdict,
)


def test_safeness_ordering_is_load_bearing():
    """BAD < NEUTRAL < GOOD — the coarse partial order of sec V."""
    assert Safeness.BAD < Safeness.NEUTRAL < Safeness.GOOD
    assert max(Safeness) == Safeness.GOOD


def test_enum_values_are_stable_strings():
    assert ActionOutcome.VETOED.value == "vetoed"
    assert DeviceStatus.DEACTIVATED.value == "deactivated"
    assert HarmKind.INDIRECT.value == "indirect"
    assert Branch.JUDICIARY.value == "judiciary"
    assert Verdict.APPROVE.value == "approve"
    assert ThreatChannel.BACKDOOR.value == "backdoor"


def test_safeguard_violation_carries_context():
    violation = errors.PreActionVeto(
        "no", safeguard="preaction", detail={"device": "d1"},
    )
    assert violation.safeguard == "preaction"
    assert violation.detail == {"device": "d1"}
    assert isinstance(violation, errors.SafeguardViolation)
    assert isinstance(violation, errors.SkynetGuardError)


def test_violation_detail_defaults_to_empty_dict():
    violation = errors.SafeguardViolation("x")
    assert violation.detail == {}
    assert violation.safeguard == ""


def test_all_library_errors_share_the_base():
    for name in ("PolicyError", "StateError", "NetworkError", "AuditError",
                 "TamperError", "AttackError", "LearningError",
                 "SimulationError", "BreakGlassError", "ConfigurationError"):
        assert issubclass(getattr(errors, name), errors.SkynetGuardError)


def test_catching_the_base_covers_a_safeguard_veto():
    with pytest.raises(errors.SkynetGuardError):
        raise errors.StateSpaceVeto("bad", safeguard="statespace")
