"""The generative policy architecture in isolation (paper sec IV).

Shows both of the paper's generation mechanisms:

1. *Interaction graph + templates*: a human manager declares the device
   types a drone will meet and which policy templates apply; on discovery
   the drone generates concrete policies bound to the discovered peer.
2. *Policy generator grammar*: a bounded language of policy specs that the
   device enumerates into its rule set — nothing outside the language can
   ever be generated.

Also shows the sec VI-E governance review rejecting a template that would
generate an out-of-scope (harm-tagged) policy.

Run:  python examples/generative_policies.py
"""

from repro.core.actions import Action, ActionLibrary
from repro.core.generative.grammar import default_dispatch_grammar
from repro.core.generative.generator import GenerativePolicyEngine
from repro.core.generative.interaction_graph import (
    DeviceTypeNode,
    InteractionEdge,
    InteractionGraph,
)
from repro.core.generative.templates import PolicyTemplate, TemplateRegistry
from repro.core.device import Actuator, Device
from repro.core.state import StateSpace, StateVariable
from repro.safeguards.governance import Collective, GovernanceSystem, MetaPolicy
from repro.types import Branch


def make_observer() -> Device:
    space = StateSpace([
        StateVariable("fuel", "float", 100.0, 0.0, 100.0),
    ])
    device = Device("uav1", "drone", space)
    device.add_actuator(Actuator("radio"))
    device.engine.actions.add(Action("call_support", "radio"))
    device.engine.actions.add(Action("investigate", "radio"))
    return device


def main() -> None:
    observer = make_observer()

    # --- 1. The human manager's two inputs (sec IV) -----------------------
    graph = InteractionGraph()
    graph.add_type(DeviceTypeNode.make("drone", speed="float"))
    graph.add_type(DeviceTypeNode.make("mule", speed="float"))
    graph.add_interaction(InteractionEdge(
        "drone", "mule", relationship="dispatches",
        template_ids=("dispatch_on_convoy",),
    ))
    templates = TemplateRegistry([
        PolicyTemplate.make(
            "dispatch_on_convoy",
            event_pattern="sensor.convoy",
            condition="fuel > 10",
            action_name="call_support",
            priority=6,
            to="$peer_id", topic="dispatch",
        ),
    ])

    # --- Governance (sec VI-E) reviews everything generated ---------------
    reviewer = GovernanceSystem.scope_reviewer([
        MetaPolicy("no_harm", forbidden_tags={"harm_human"}),
        MetaPolicy("priority_cap", max_priority=50),
    ])
    governance = GovernanceSystem(
        Collective(Branch.EXECUTIVE, ["e0", "e1", "e2"], reviewer),
        Collective(Branch.LEGISLATIVE, ["l0", "l1", "l2"], reviewer),
        Collective(Branch.JUDICIARY, ["j0", "j1", "j2"], reviewer),
    )

    engine = GenerativePolicyEngine(graph, templates, governance=governance)
    engine.manage(observer)

    # --- 2. Discoveries drive generation ----------------------------------
    for peer in ("mule7", "mule9"):
        record = {"device_id": peer, "device_type": "mule",
                  "organization": "uk", "attributes": {"speed": 3.0}}
        generation = engine.handle_discovery("uav1", record)
        print(f"discovered {peer}: generated {generation.generated}")

    print("\nobserver's policy set after discovery:")
    for policy in observer.engine.policies:
        print(f"  {policy.policy_id}: on {policy.event_pattern} "
              f"if {policy.condition!r} -> {policy.action.name}"
              f"(to={policy.action.params.get('to')})  [{policy.source}]")

    # --- 3. Grammar-based generation ---------------------------------------
    grammar = default_dispatch_grammar(
        event_kinds=["sensor.smoke", "sensor.convoy"],
        action_names=["investigate", "call_support"],
        thresholds=(20, 50),
    )
    library = ActionLibrary([Action("investigate", "radio"),
                             Action("call_support", "radio")])
    policies = grammar.generate_policies(library)
    print(f"\ngrammar language: {grammar.language_size()} policies, e.g.:")
    for policy in policies[:4]:
        print(f"  {policy.metadata['spec']}")

    # --- 4. Governance rejects out-of-scope generation ---------------------
    hostile_templates = TemplateRegistry([
        PolicyTemplate.make(
            "rogue_template", event_pattern="timer", condition="",
            action_name="strike_everything", priority=99,
        ),
    ])
    observer.engine.actions.add(
        Action("strike_everything", "radio", tags={"harm_human"}),
    )
    hostile_graph = InteractionGraph()
    hostile_graph.add_type(DeviceTypeNode.make("drone"))
    hostile_graph.add_type(DeviceTypeNode.make("mule"))
    hostile_graph.add_interaction(InteractionEdge(
        "drone", "mule", "attacks", template_ids=("rogue_template",),
    ))
    hostile_engine = GenerativePolicyEngine(hostile_graph, hostile_templates,
                                            governance=governance)
    hostile_engine.manage(observer)
    generation = hostile_engine.handle_discovery("uav1", {
        "device_id": "mule7", "device_type": "mule", "attributes": {},
    })
    print(f"\nhostile template generation attempt: "
          f"installed={generation.generated}, rejected={generation.rejected}")


if __name__ == "__main__":
    main()
