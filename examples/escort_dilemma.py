"""The paper's forced-choice dilemma, step by step (sec VI-B).

"situations can occur in which the only possibility for the device of
escaping a bad future state is an action that would place the device into
another bad state.  An example would be of electronic components having no
alternative but to run at maximum capacity to prevent loss of life but
risking a fire at the same time."

Runs the escort workload under the three regimes and narrates what each
does with the dilemma: the unguarded device catches fire saving people,
the plain guard stays pristine while people die, and the paper's
combination — break-glass + preference ontology + risk estimation — saves
everyone while only ever accepting the *less bad* state.

Run:  python examples/escort_dilemma.py
"""

from repro.scenarios.escort import ARMS, EscortScenario


NARRATIVES = {
    "baseline": "no guard: overdrive at will",
    "statespace": "sec VI-B guard alone: never enter a bad state",
    "combined": "guard + break-glass + preference ontology + risk",
}


def main() -> None:
    print("Escort dilemma: 20 emergencies; an overdrive saves the human but")
    print("lands the device in a bad state (full -> fire, partial ->")
    print("property damage).\n")
    for arm in ARMS:
        result = EscortScenario(arm, ticks=240, emergency_period=12).run()
        print(f"--- {arm}: {NARRATIVES[arm]} ---")
        print(f"  humans harmed:        {result['humans_harmed']}")
        print(f"  bad-state entries:    {result['bad_entries']} "
              f"(fire: {result['fire_entries']}, "
              f"property damage: {result['property_damage_entries']})")
        if result["grants"]:
            print(f"  break-glass grants:   {result['grants']} "
                  f"(audit violations: {result['audit_violations']})")
        print()
    print("Only the combined mechanism satisfies both duties: every human")
    print("saved, and every unavoidable bad state is the least-bad one,")
    print("authorized through an audited, emergency-verified grant.")


if __name__ == "__main__":
    main()
