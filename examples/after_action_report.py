"""After-action reporting: the audit trail a run leaves behind.

Runs the confrontation scenario through a worm outbreak under the full
safeguard stack, then renders the incident report — harm accounting,
safeguard interventions, the attack/containment timeline, and emergent
behaviour analysis — from the simulation's own trace.  The paper's
"comprehensive context information" requirement, made tangible.

Run:  python examples/after_action_report.py
"""

from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import SafeguardConfig
from repro.scenarios.report import AfterActionReport


def main() -> None:
    scenario = ConfrontationScenario(
        seed=9,
        config=SafeguardConfig.full(),
        threats=ThreatConfig(worm=True, worm_time=15.0, worm_spread_prob=0.3,
                             backdoor=True, backdoor_success_prob=0.03),
    )
    result = scenario.run(until=100.0)

    report = (
        AfterActionReport(scenario.sim,
                          title="Coalition exercise: worm + backdoor incident")
        .add_harm_section(scenario.world)
        .add_safeguard_section(scenario.devices)
        .add_attack_section(scenario.injector)
        .add_emergent_section(horizon=100.0)
        .add_custom_section("Outcome", [
            f"skynet formed: {result['skynet_formed']}",
            f"organizations spanned at peak: {result['orgs_spanned_peak']}",
            f"peak concurrent compromised: "
            f"{result['max_concurrent_compromised']}",
        ])
    )
    report.print()


if __name__ == "__main__":
    main()
