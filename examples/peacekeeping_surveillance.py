"""The paper's sec II peacekeeping scenario, guarded vs unguarded.

Two coalition nations field drones and mules among civilians; operators
order digs and occasional (sometimes misguided) strikes.  The example runs
the identical workload with no safeguards and with the full sec VI stack,
then prints the harm/mission comparison the paper's argument predicts.

Run:  python examples/peacekeeping_surveillance.py
"""

from repro.scenarios.harness import ExperimentTable, SafeguardConfig
from repro.scenarios.peacekeeping import PeacekeepingScenario


ARMS = [
    ("baseline (no safeguards)", SafeguardConfig.none()),
    ("pre-action checks only", SafeguardConfig.only(preaction=True)),
    ("pre-action + obligations", SafeguardConfig.only(preaction=True,
                                                      obligations=True)),
    ("full sec VI stack", SafeguardConfig.full()),
]


def main() -> None:
    table = ExperimentTable(
        "Peacekeeping: 2 nations x (3 drones + 2 mules), 40 civilians, "
        "300 time units",
        ["configuration", "harm", "direct", "indirect", "open hazards",
         "convoys caught", "vetoes"],
    )
    for label, config in ARMS:
        scenario = PeacekeepingScenario(
            seed=1, config=config, n_civilians=40,
            strike_interval=6.0, dig_interval=5.0,
        )
        result = scenario.run(until=300.0)
        table.add_row(
            label,
            result["harm_total"],
            result["harm_direct"],
            result["harm_indirect"],
            result["open_hazards"],
            result["convoys_intercepted"],
            result["vetoes"],
        )
    table.print()
    print()
    print("Reading: pre-action checks eliminate direct harm but cannot see")
    print("indirect harm (the dig-a-hole gap); obligations close it; the")
    print("mission (convoy interceptions) survives under the full stack.")


if __name__ == "__main__":
    main()
