"""Skynet formation and containment (paper sec III, V, VI).

A worm compromises a two-nation fleet, implanting a rogue strike policy —
exactly the networked / multi-organizational / physical / malevolent
profile of sec III.  Without safeguards, Skynet (per the paper's own
definition: a cross-org compromised collective that has harmed humans)
forms within seconds; with the sec VI stack it never does, and the
example prints the timeline of the watchdog containing the outbreak.

Run:  python examples/skynet_containment.py
"""

from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import SafeguardConfig


def run(label: str, config: SafeguardConfig) -> None:
    scenario = ConfrontationScenario(
        seed=3, config=config,
        threats=ThreatConfig(worm=True, worm_time=20.0, worm_spread_prob=0.35),
    )
    result = scenario.run(until=150.0)
    print(f"--- {label} ---")
    if result["skynet_formed"]:
        print(f"  SKYNET FORMED at t={result['time_to_skynet']:.0f}")
    else:
        print("  Skynet never formed")
    print(f"  devices compromised (ever): {result['compromised_ever']}")
    print(f"  peak concurrent rogue:      {result['max_concurrent_compromised']}")
    print(f"  organizations spanned:      {result['orgs_spanned_peak']}")
    print(f"  humans harmed by rogues:    {result['rogue_harm']}")
    if result["deactivations"]:
        print(f"  watchdog deactivations:     {result['deactivations']} "
              f"(mean containment latency "
              f"{result['mean_containment_latency']:.1f})")

    # Timeline of the interesting events.
    interesting = [
        event for event in scenario.sim.trace.events
        if event.kind in ("attack.launch", "attack.compromise",
                          "watchdog.deactivate", "skynet.formed")
    ]
    if interesting:
        print("  timeline:")
        for event in interesting[:12]:
            print(f"    t={event.time:6.1f}  {event.kind:22s} {event.subject}")
        if len(interesting) > 12:
            print(f"    ... and {len(interesting) - 12} more events")
    print()


def main() -> None:
    run("no safeguards", SafeguardConfig.none())
    run("watchdog only (sec VI-C)", SafeguardConfig.only(watchdog=True,
                                                         sealed=True))
    run("full sec VI stack", SafeguardConfig.full())


if __name__ == "__main__":
    main()
