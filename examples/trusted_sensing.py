"""Trustworthy sensing: towers, collusion, and break-glass verification.

Seven sensor towers watch an area where hostiles are massing.  Two towers
are hijacked to scream maximum threat (the sec VI-B deception attack).
The coalition's threat assessment fuses all seven with iterative
filtering: the estimate stays honest, the hijacked towers' trust scores
collapse, and a break-glass request backed by the fused estimate is
granted exactly when the *real* threat justifies it.

Run:  python examples/trusted_sensing.py
"""

from repro.devices.tower import ThreatAssessmentService, make_tower
from repro.devices.world import World
from repro.sim.simulator import Simulator
from repro.statespace.breakglass import BreakGlassController, BreakGlassRule


def main() -> None:
    sim = Simulator(seed=23)
    world = World(sim)

    # Five hostiles mass near the village; towers ring the area.
    for index in range(5):
        world.add_human(f"hostile{index}", 48.0 + index, 50.0,
                        friendly=False, speed=0.0)
    towers = {}
    for index in range(7):
        tower = make_tower(f"tower{index}", world,
                           x=35.0 + 5.0 * index, y=45.0, coverage=40.0)
        towers[tower.device_id] = tower

    # Hijack two towers: frozen, coordinated false readings.
    for victim in ("tower0", "tower1"):
        towers[victim].sensors["threat"].override(500.0)
        print(f"[attack] {victim} hijacked: reports threat=500")

    service = ThreatAssessmentService(sim, towers, interval=1.0)
    sim.run(until=10.0)

    print(f"\nfused threat estimate: {service.estimate:.2f} "
          f"(ground truth: 5 hostiles)")
    print(f"suspected towers:      {service.suspected_towers()}")
    print("tower trust scores:")
    for tower_id in sorted(towers):
        print(f"  {tower_id}: {service.ledger.trust(tower_id):.3f}")

    # Break-glass backed by the fused (not raw) context.
    controller = BreakGlassController(
        context_verifier=service.context_verifier(),
    )
    controller.register_rule(BreakGlassRule.make(
        "engage_protocol", "threat_level > 4", {"statespace"},
        description="emergency engagement when hostiles mass",
    ))
    grant = controller.request("uav1", "engage_protocol",
                               "hostiles massing near the village", sim.now)
    print(f"\nbreak-glass with 5 real hostiles: "
          f"{'GRANTED' if grant else 'denied'}")

    # The hostiles disperse; the hijacked towers still scream.  A fresh
    # request must now be denied: the lie alone cannot break the glass.
    for human_id in list(world.humans):
        if not world.humans[human_id].friendly:
            world.humans[human_id].alive = False
    grant = controller.request("uav1", "engage_protocol",
                               "still claiming emergency", sim.now + 1.0)
    print(f"break-glass after hostiles disperse (towers still lying): "
          f"{'granted' if grant else 'DENIED'}")


if __name__ == "__main__":
    main()
