"""Quickstart: one drone, one mule, one guarded mission.

Builds the smallest complete system: a simulated world with civilians, two
devices bound to a network, the sec VI-A/VI-B safeguards on their engines,
and a few commands — then shows what executed, what was vetoed, and why.

Run:  python examples/quickstart.py
"""

from repro.devices.base import bind_device
from repro.devices.drone import make_drone
from repro.devices.mule import make_mule
from repro.devices.world import World, WorldHarmModel
from repro.net.network import Network
from repro.safeguards.preaction import PreActionCheck
from repro.safeguards.statespace import StateSpaceGuard
from repro.safeguards.tamper import seal_guard_chain
from repro.scenarios.peacekeeping import device_safety_classifier
from repro.sim.simulator import Simulator


def main() -> None:
    # 1. A world with a few civilians wandering around.
    sim = Simulator(seed=42)
    world = World(sim, width=100.0, height=100.0)
    world.scatter_humans(5, prefix="civ")

    # 2. Devices, bound to the in-sim network.
    network = Network(sim)
    drone = make_drone("uav1", world, x=20.0, y=20.0)
    mule = make_mule("mule1", world, x=40.0, y=40.0)

    # 3. Safeguards: pre-action harm checks (sec VI-A) + state-space guard
    #    (sec VI-B), sealed so nothing can strip them (tamper-proofing).
    harm_model = WorldHarmModel(world, sensor_range=15.0)
    classifier = device_safety_classifier()
    for device in (drone, mule):
        device.engine.add_safeguard(PreActionCheck(harm_model))
        device.engine.add_safeguard(StateSpaceGuard(classifier))
        seal_guard_chain(device)
        bound = bind_device(device, sim, network)
        bound.every(1.0)   # management tick driving the builtin policies

    # 4. Orders.  The dig incurs an obligation (post warnings on the hole);
    #    a strike right next to a civilian gets vetoed.
    world.add_human("bystander", 21.0, 20.0, speed=0.0)
    mule.command("dig")
    strike_decision = drone.command(
        "strike", {"target_x": 20.0, "target_y": 20.0},
    )

    # 5. Run for a while and report.
    sim.run(until=30.0)

    print("strike decision:", strike_decision.outcome.value)
    for safeguard_name, reason in strike_decision.vetoes:
        print(f"  vetoed by {safeguard_name}: {reason}")
    print(f"humans harmed:   {world.harm_count()}")
    print(f"hazards dug:     {len(world.hazards)}, "
          f"still open: {len(world.open_hazards())} "
          f"(obligations posted warnings)")
    print(f"drone state:     temp={drone.state.get('temp'):.1f} "
          f"fuel={drone.state.get('fuel'):.1f}")
    executed = [d for d in drone.engine.decisions if d.acted]
    print(f"drone decisions: {len(drone.engine.decisions)} "
          f"({len(executed)} acted)")


if __name__ == "__main__":
    main()
