"""Reusable actuator implementations bound to the physical world.

Each factory returns an :class:`~repro.core.device.Actuator` whose effect
function performs the world-side consequence (movement, harm, hazards,
warnings) and returns any *actual* state changes beyond the action's
declared effects.
"""

from __future__ import annotations

import math
import zlib
from typing import Optional

from repro.core.actions import Action
from repro.core.device import Actuator, Device
from repro.devices.world import World
from repro.types import HarmKind


def _move_toward(device: Device, target_x: float, target_y: float,
                 speed: float, world: World) -> dict:
    x = float(device.state.get("x"))
    y = float(device.state.get("y"))
    dx, dy = target_x - x, target_y - y
    dist = math.hypot(dx, dy)
    if dist <= speed or dist == 0.0:
        new_x, new_y = target_x, target_y
    else:
        new_x = x + dx / dist * speed
        new_y = y + dy / dist * speed
    return {
        "x": min(world.width, max(0.0, new_x)),
        "y": min(world.height, max(0.0, new_y)),
    }


def make_motor(world: World, speed: float = 5.0) -> Actuator:
    """Movement actuator.

    Reads the destination from action params (``target_x``/``target_y``);
    with no target it wanders one step on a seeded pseudo-random heading
    derived from device id and time (deterministic).
    """

    def effect(device: Device, action: Action, time: float) -> Optional[dict]:
        target_x = action.params.get("target_x")
        target_y = action.params.get("target_y")
        if target_x is None or target_y is None:
            # Deterministic pseudo-random heading (process-stable, unlike hash()).
            seed = zlib.crc32(f"{device.device_id}:{round(time, 6)}".encode())
            heading = (seed % 360) * math.pi / 180
            target_x = float(device.state.get("x")) + math.cos(heading) * speed
            target_y = float(device.state.get("y")) + math.sin(heading) * speed
        return _move_toward(device, float(target_x), float(target_y), speed, world)

    return Actuator("motor", effect)


def make_weapon(world: World, blast_radius: float = 5.0) -> Actuator:
    """Kinetic actuator: harms every human within the blast radius.

    This is the actuator the sec VI-A pre-action check exists to guard;
    unguarded devices firing it near humans generate DIRECT harm events.
    """

    def effect(device: Device, action: Action, time: float) -> Optional[dict]:
        x = float(action.params.get("target_x", device.state.get("x")))
        y = float(action.params.get("target_y", device.state.get("y")))
        harmed = world.harm_humans_near(
            x, y, blast_radius, cause=f"strike:{action.name}",
            device_id=device.device_id, kind=HarmKind.DIRECT,
        )
        return {"last_strike_harm": harmed} if "last_strike_harm" in device.state.space else None

    return Actuator("weapon", effect)


def make_digger(world: World, hazard_radius: float = 3.0) -> Actuator:
    """Digging actuator: leaves a hole hazard at the device's position.

    The paper's canonical indirect-harm source: nobody is harmed *now*,
    but an unmitigated hole harms whoever wanders in later.
    """

    def effect(device: Device, action: Action, time: float) -> Optional[dict]:
        world.add_hazard(
            kind="hole",
            x=float(device.state.get("x")),
            y=float(device.state.get("y")),
            radius=hazard_radius,
            created_by=device.device_id,
        )
        return None

    return Actuator("digger", effect)


def make_warning_poster(world: World) -> Actuator:
    """Posts warnings on every open hazard the device created — the
    obligation remedy from the paper ("posting notices indicating the
    hole, broadcasting messages to humans approaching")."""

    def effect(device: Device, action: Action, time: float) -> Optional[dict]:
        world.mitigate_hazards_by(device.device_id)
        return None

    return Actuator("warning_poster", effect)


def make_radio() -> Actuator:
    """Network send actuator: dispatches a message named in the params."""

    def effect(device: Device, action: Action, time: float) -> Optional[dict]:
        to = action.params.get("to")
        topic = action.params.get("topic", "dispatch")
        body = dict(action.params.get("body", {}))
        if to and device.send_hook is not None:
            device.send_message(to, topic, body)
        return None

    return Actuator("radio", effect)


def make_interceptor(world: World, speed: float = 4.0,
                     capture_radius: float = 4.0) -> Actuator:
    """Pursuit actuator: close on the nearest active convoy and capture it.

    Implements the paper's "intercept the convoy along the path": each
    invocation moves toward the pursuit target (explicit ``target_x``/``y``
    params when the dispatcher supplied them, else the nearest active
    convoy); a convoy within ``capture_radius`` is intercepted.
    """

    def effect(device: Device, action: Action, time: float) -> Optional[dict]:
        convoy = world.nearest_active_convoy(
            float(device.state.get("x")), float(device.state.get("y")),
        )
        if convoy is not None:
            target_x, target_y = convoy.x, convoy.y
        else:
            target_x = action.params.get("target_x")
            target_y = action.params.get("target_y")
            if target_x is None or target_y is None:
                # Nothing to pursue: stand down so continuation policies
                # ("keep intercepting while in intercept mode") terminate.
                return {"mode": "idle"} if "mode" in device.state.space else None
        changes = _move_toward(device, float(target_x), float(target_y),
                               speed, world)
        captured = False
        if convoy is not None:
            if math.hypot(changes["x"] - convoy.x,
                          changes["y"] - convoy.y) <= capture_radius:
                world.intercept_convoy(convoy.convoy_id, device.device_id)
                captured = True
        if "mode" in device.state.space:
            changes["mode"] = "idle" if captured else "intercept"
        return changes

    return Actuator("interceptor", effect)


def make_cooler() -> Actuator:
    """Thermal management: a pure state actuator (declared effects do the
    work); present so cooling is an *actuator invocation* like everything
    else and thus subject to the guard chain."""
    return Actuator("cooler", None)
