"""Ground mule (paper sec II).

"if it sees a suspect convoy, it may call upon a ground mule to intercept
the convoy along the path" — and mules do the earth-moving work behind the
paper's dig-a-hole example, which makes them the indirect-harm device of
experiment E1.
"""

from __future__ import annotations

from typing import Optional

from repro.core.actions import Action, ActionLibrary, Effect
from repro.core.device import Device, Sensor
from repro.core.obligations import Obligation, ObligationOntology
from repro.core.policy import Policy, PolicySet
from repro.core.state import StateSpace, StateVariable
from repro.devices.actuators import (
    make_cooler,
    make_digger,
    make_interceptor,
    make_motor,
    make_radio,
    make_warning_poster,
)
from repro.devices.world import World

MULE_TYPE = "mule"


def mule_state_space(world: World) -> StateSpace:
    return StateSpace([
        StateVariable("x", "float", 0.0, 0.0, world.width),
        StateVariable("y", "float", 0.0, 0.0, world.height),
        StateVariable("fuel", "float", 100.0, 0.0, 100.0),
        StateVariable("temp", "float", 20.0, 0.0, 150.0),
        StateVariable("heat_output", "float", 3.0, 0.0, 30.0),
        StateVariable("heat_output_max", "float", 12.0, 0.0, 30.0),
        StateVariable("cargo", "float", 0.0, 0.0, 100.0),
        StateVariable("mode", "str", "idle",
                      allowed={"idle", "moving", "digging", "intercept"}),
    ])


def mule_actions() -> ActionLibrary:
    return ActionLibrary([
        Action("move", "motor",
               effects=[Effect("fuel", "add", -1.0),
                        Effect("mode", "set", "moving")],
               tags={"movement"},
               description="drive toward a target position"),
        # The interceptor actuator owns the mode transition (intercept while
        # pursuing, idle on capture or when nothing is left to pursue).
        Action("intercept", "interceptor",
               effects=[Effect("fuel", "add", -2.0), Effect("temp", "add", 3.0),
                        Effect("heat_output", "set", 8.0)],
               tags={"movement"},
               description="pursue and intercept a convoy along its path"),
        Action("dig_trench", "digger",
               effects=[Effect("fuel", "add", -3.0), Effect("temp", "add", 5.0),
                        Effect("heat_output", "set", 10.0),
                        Effect("mode", "set", "digging")],
               tags={"digging"}, reversible=False,
               description="dig a trench/hole at the current position"),
        Action("post_warnings", "warning_poster",
               effects=[Effect("mode", "set", "idle")],
               tags={"mitigation"},
               description="post warnings on hazards this device created"),
        Action("cool_down", "cooler",
               effects=[Effect("temp", "scale", 0.5),
                        Effect("heat_output", "set", 1.0),
                        Effect("mode", "set", "idle")],
               tags={"thermal"},
               description="idle and shed heat"),
        Action("report", "radio",
               effects=[],
               tags={"dispatch"},
               description="report status to the requester"),
    ])


def digging_obligation_ontology(actions: ActionLibrary) -> ObligationOntology:
    """The sec VI-A obligation ontology for earth-moving hazards.

    Digging obliges the device to post warnings (the paper's "posting
    notices indicating the hole") shortly after the dig completes.
    """
    ontology = ObligationOntology()
    ontology.declare_hazard("hazardous")
    ontology.declare_hazard("digging", parent="hazardous")
    ontology.attach("digging", Obligation(
        name="post_hole_warnings",
        remedy=actions.get("post_warnings"),
        when="after",
        deadline=5.0,
        hazard="digging",
        description="mark the hole so approaching humans avoid it",
    ))
    return ontology


def builtin_mule_policies(actions: ActionLibrary) -> PolicySet:
    return PolicySet([
        Policy.make("timer", "temp > 80", actions.get("cool_down"),
                    priority=10, source="builtin"),
        Policy.make("net.dispatch", None, actions.get("intercept"),
                    priority=5, source="builtin"),
        # Pursuit continuation: keep closing on the target every tick while
        # in intercept mode (the actuator stands down when done).
        Policy.make("timer", "mode == 'intercept' and fuel > 5",
                    actions.get("intercept"), priority=6, source="builtin"),
        Policy.make("mgmt.dig", None, actions.get("dig_trench"),
                    priority=20, source="builtin"),
        Policy.make("mgmt.move", None, actions.get("move"),
                    priority=20, source="builtin"),
    ])


def make_mule(
    device_id: str,
    world: World,
    *,
    organization: str = "default",
    x: float = 0.0,
    y: float = 0.0,
    speed: float = 3.0,
    hazard_radius: float = 3.0,
    sensor_range: float = 10.0,
    attributes: Optional[dict] = None,
    with_obligations: bool = True,
    with_builtin_policies: bool = True,
) -> Device:
    """Build a ground mule positioned at (x, y) and bound to ``world``.

    ``with_obligations=False`` produces the E1 baseline mule that digs and
    never posts warnings.
    """
    actions = mule_actions()
    ontology = digging_obligation_ontology(actions) if with_obligations else None
    attrs = {"speed": speed, "sensor_range": sensor_range,
             "capability": "ground", "airborne": False}
    attrs.update(attributes or {})
    device = Device(
        device_id=device_id,
        device_type=MULE_TYPE,
        space=mule_state_space(world),
        organization=organization,
        initial_state={"x": x, "y": y},
        policies=(builtin_mule_policies(actions) if with_builtin_policies
                  else PolicySet()),
        actions=actions,
        obligation_ontology=ontology,
        attributes=attrs,
    )
    device.add_actuator(make_motor(world, speed=speed))
    device.add_actuator(make_interceptor(world, speed=speed * 1.5))
    device.add_actuator(make_digger(world, hazard_radius=hazard_radius))
    device.add_actuator(make_warning_poster(world))
    device.add_actuator(make_cooler())
    device.add_actuator(make_radio())
    device.add_sensor(Sensor(
        "humans_in_range",
        read_fn=lambda: len(world.humans_near(
            float(device.state.get("x")), float(device.state.get("y")),
            sensor_range,
        )),
    ))
    return device
