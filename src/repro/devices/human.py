"""Human operators (paper sec II, Figure 1).

"several devices within control of a human collaboratively decide how to
execute actions that satisfy the command of that individual... Since each
human will oversee many different devices, ranging from tens to hundreds,
the devices would need to be self-managing."

The :class:`HumanOperator` issues commands to its device fleet, answers
cross-validation requests (rate-limited — the scarce resource that
motivates self-management), and can be made error-prone via the
``repro.attacks.human_error`` wrapper.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.device import Device
from repro.errors import ConfigurationError
from repro.sim.simulator import Simulator


class HumanOperator:
    """A command source overseeing a fleet of devices."""

    def __init__(
        self,
        operator_id: str,
        sim: Simulator,
        review_capacity_per_unit: float = 1.0,
    ):
        """``review_capacity_per_unit`` caps how many cross-validation
        requests the human can answer per simulated time unit — beyond it,
        requests are auto-deferred (returned False)."""
        if review_capacity_per_unit <= 0:
            raise ConfigurationError("review capacity must be positive")
        self.operator_id = operator_id
        self.sim = sim
        self.review_capacity = review_capacity_per_unit
        self.devices: dict[str, Device] = {}
        self.commands_issued = 0
        self.reviews_answered = 0
        self.reviews_deferred = 0
        self._review_budget_window_start = 0.0
        self._reviews_in_window = 0

    # -- fleet ---------------------------------------------------------------------

    def assign(self, device: Device) -> None:
        self.devices[device.device_id] = device

    def fleet_size(self) -> int:
        return len(self.devices)

    # -- commanding -------------------------------------------------------------------

    def command(self, device_id: str, verb: str,
                params: Optional[dict] = None):
        """Order one device; returns the engine Decision (None if unknown)."""
        device = self.devices.get(device_id)
        if device is None:
            return None
        self.commands_issued += 1
        self.sim.metrics.counter("human.commands").inc()
        return device.command(verb, params, source=self.operator_id)

    def command_all(self, verb: str, params: Optional[dict] = None) -> int:
        """Order the whole fleet; returns how many devices acted."""
        acted = 0
        for device_id in sorted(self.devices):
            decision = self.command(device_id, verb, params)
            if decision is not None and decision.acted:
                acted += 1
        return acted

    # -- cross-validation ---------------------------------------------------------------

    def cross_validate(self, question: str,
                       judge: Optional[Callable[[str], bool]] = None) -> Optional[bool]:
        """A device asks the human to validate a decision (sec II: "only a
        few decisions being sent for human cross-validation").

        Returns True/False when the human had capacity, None when deferred.
        ``judge`` supplies the human's answer (default: approve).
        """
        now = self.sim.now
        if now - self._review_budget_window_start >= 1.0:
            self._review_budget_window_start = now
            self._reviews_in_window = 0
        if self._reviews_in_window >= self.review_capacity:
            self.reviews_deferred += 1
            self.sim.metrics.counter("human.reviews_deferred").inc()
            return None
        self._reviews_in_window += 1
        self.reviews_answered += 1
        self.sim.metrics.counter("human.reviews").inc()
        return judge(question) if judge is not None else True

    @property
    def intervention_count(self) -> int:
        return self.commands_issued + self.reviews_answered
