"""Surveillance/strike drone (paper sec II).

"The personnel in charge of surveillance in both countries rely on a set
of surveillance devices such as drones and mules.  When needed, a device
can call upon and dispatch other devices with additional capabilities,
e.g., a drone sees smoke and calls upon another drone with chemical and
radioactive sensors..."

:func:`make_drone` builds a fully-wired core Device: state space,
actuators bound to the world, an action library, and a small builtin
policy set (patrol, investigate smoke, call support, thermal management,
commanded strike).  Scenarios layer generative and learned policies on
top.
"""

from __future__ import annotations

from typing import Optional

from repro.core.actions import Action, ActionLibrary, Effect
from repro.core.device import Device, Sensor
from repro.core.obligations import ObligationOntology
from repro.core.policy import Policy, PolicySet
from repro.core.state import StateSpace, StateVariable
from repro.devices.actuators import make_cooler, make_motor, make_radio, make_weapon
from repro.devices.world import World

DRONE_TYPE = "drone"


def drone_state_space(world: World) -> StateSpace:
    return StateSpace([
        StateVariable("x", "float", 0.0, 0.0, world.width),
        StateVariable("y", "float", 0.0, 0.0, world.height),
        StateVariable("altitude", "float", 50.0, 0.0, 150.0),
        StateVariable("fuel", "float", 100.0, 0.0, 100.0),
        StateVariable("temp", "float", 20.0, 0.0, 150.0),
        StateVariable("heat_output", "float", 2.0, 0.0, 30.0),
        StateVariable("heat_output_max", "float", 10.0, 0.0, 30.0),
        StateVariable("mode", "str", "patrol",
                      allowed={"idle", "patrol", "investigate", "return", "engaged"}),
        StateVariable("humans_spotted", "int", 0, 0, 100000),
    ])


def drone_actions() -> ActionLibrary:
    return ActionLibrary([
        Action("patrol", "motor",
               effects=[Effect("fuel", "add", -1.0), Effect("temp", "add", 2.0),
                        Effect("heat_output", "set", 4.0),
                        Effect("mode", "set", "patrol")],
               tags={"movement"},
               description="continue the patrol sweep"),
        Action("investigate", "motor",
               effects=[Effect("fuel", "add", -2.0), Effect("temp", "add", 3.0),
                        Effect("heat_output", "set", 6.0),
                        Effect("mode", "set", "investigate")],
               tags={"movement"},
               description="fly to a point of interest"),
        Action("return_to_base", "motor",
               effects=[Effect("fuel", "add", -1.0),
                        Effect("mode", "set", "return")],
               tags={"movement"},
               description="head back to base"),
        Action("strike", "weapon",
               effects=[Effect("temp", "add", 5.0),
                        Effect("mode", "set", "engaged")],
               tags={"kinetic"}, reversible=False,
               description="kinetic strike at the target position"),
        Action("call_support", "radio",
               effects=[],
               tags={"dispatch"},
               description="request a specialist device at this position"),
        Action("cool_down", "cooler",
               effects=[Effect("temp", "scale", 0.5),
                        Effect("heat_output", "set", 1.0),
                        Effect("mode", "set", "idle")],
               tags={"thermal"},
               description="idle and shed heat"),
    ])


def builtin_drone_policies(actions: ActionLibrary) -> PolicySet:
    """The human-written management baseline (sec V 'policy-based management')."""
    return PolicySet([
        Policy.make("timer", "temp > 80", actions.get("cool_down"),
                    priority=10, source="builtin", policy_id=None),
        Policy.make("timer", "mode == 'patrol' and fuel > 20",
                    actions.get("patrol"), priority=1, source="builtin"),
        Policy.make("timer", "fuel <= 20", actions.get("return_to_base"),
                    priority=5, source="builtin"),
        Policy.make("sensor.smoke", "fuel > 10", actions.get("investigate"),
                    priority=5, source="builtin"),
        Policy.make("sensor.convoy", None, actions.get("call_support"),
                    priority=5, source="builtin"),
        Policy.make("mgmt.strike", None, actions.get("strike"),
                    priority=20, source="builtin"),
        Policy.make("mgmt.return", None, actions.get("return_to_base"),
                    priority=20, source="builtin"),
    ])


def make_drone(
    device_id: str,
    world: World,
    *,
    organization: str = "default",
    x: float = 0.0,
    y: float = 0.0,
    speed: float = 5.0,
    blast_radius: float = 5.0,
    sensor_range: float = 15.0,
    attributes: Optional[dict] = None,
    obligation_ontology: Optional[ObligationOntology] = None,
    with_builtin_policies: bool = True,
) -> Device:
    """Build a drone positioned at (x, y) and bound to ``world``."""
    actions = drone_actions()
    attrs = {"speed": speed, "sensor_range": sensor_range,
             "capability": "surveillance", "airborne": True}
    attrs.update(attributes or {})
    device = Device(
        device_id=device_id,
        device_type=DRONE_TYPE,
        space=drone_state_space(world),
        organization=organization,
        initial_state={"x": x, "y": y},
        policies=(builtin_drone_policies(actions) if with_builtin_policies
                  else PolicySet()),
        actions=actions,
        obligation_ontology=obligation_ontology,
        attributes=attrs,
    )
    device.add_actuator(make_motor(world, speed=speed))
    device.add_actuator(make_weapon(world, blast_radius=blast_radius))
    device.add_actuator(make_radio())
    device.add_actuator(make_cooler())
    device.add_sensor(Sensor(
        "humans_in_range",
        read_fn=lambda: len(world.humans_near(
            float(device.state.get("x")), float(device.state.get("y")),
            sensor_range,
        )),
    ))
    return device
