"""Concrete device library and physical world model (paper sec II).

Drones, ground mules, base stations, mechanic (repair) devices, human
operators, coalition structure, and the simulated physical world in which
humans can actually be harmed — the substrate every experiment's harm
accounting rests on.
"""

from repro.devices.base import SimDevice, bind_device
from repro.devices.coalition import Coalition, Organization
from repro.devices.drone import make_drone
from repro.devices.human import HumanOperator
from repro.devices.mechanic import MechanicDevice
from repro.devices.mule import make_mule
from repro.devices.tower import ThreatAssessmentService, make_tower
from repro.devices.world import (
    Convoy,
    HarmEvent,
    Hazard,
    Human,
    World,
    WorldHarmModel,
)

__all__ = [
    "Coalition",
    "Convoy",
    "HarmEvent",
    "Hazard",
    "Human",
    "HumanOperator",
    "MechanicDevice",
    "Organization",
    "SimDevice",
    "ThreatAssessmentService",
    "World",
    "WorldHarmModel",
    "bind_device",
    "make_drone",
    "make_mule",
    "make_tower",
]
