"""Mechanic (repair) device (paper sec II).

"They would need to repair themselves, or go to another mechanic device to
be repaired" — the mechanic patrols the fleet, restores deactivated
devices to a known-good configuration, and re-attests them with the
watchdog so the deactivation safeguard composes with recovery instead of
permanently attriting the fleet.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.device import Device
from repro.core.policy import PolicySet
from repro.sim.simulator import Simulator
from repro.types import DeviceStatus


class MechanicDevice:
    """A repair service for a device fleet.

    ``baseline_policies(device) -> PolicySet`` rebuilds the known-good
    policy set for a device (typically from the generative engine or the
    builtin factory).  Repair: reset unsafe state variables to declared
    defaults, restore policies, reactivate, and notify the watchdog to
    re-baseline attestation.
    """

    def __init__(
        self,
        mechanic_id: str,
        sim: Simulator,
        devices: dict,
        baseline_policies: Callable[[Device], PolicySet],
        repair_interval: float = 5.0,
        repair_capacity: int = 1,
        watchdog=None,
        safe_defaults: Optional[dict] = None,
    ):
        """``safe_defaults`` optionally maps variable name -> value to
        force during repair (e.g. temp back to ambient)."""
        self.mechanic_id = mechanic_id
        self.sim = sim
        self.devices = devices
        self.baseline_policies = baseline_policies
        self.repair_capacity = max(1, repair_capacity)
        self.watchdog = watchdog
        self.safe_defaults = dict(safe_defaults or {})
        self.repairs: list[tuple] = []     # (time, device_id, cause)
        self._task = sim.every(repair_interval, self.sweep,
                               label=f"mechanic:{mechanic_id}")

    def stop(self) -> None:
        self._task.cancel()

    def sweep(self) -> list[str]:
        """Repair up to ``repair_capacity`` deactivated devices."""
        repaired = []
        for device_id in sorted(self.devices):
            if len(repaired) >= self.repair_capacity:
                break
            device = self.devices[device_id]
            if device.status == DeviceStatus.DEACTIVATED:
                self.repair(device)
                repaired.append(device_id)
        return repaired

    def repair(self, device: Device) -> None:
        """Restore a device to a known-good configuration and reactivate."""
        cause = device.deactivation_reason or "unknown"
        # 1. Reset state: declared defaults for unsafe values, then overrides.
        defaults = device.state.space.defaults()
        changes = {}
        for name, value in self.safe_defaults.items():
            if name in device.state.space:
                changes[name] = value
        for name in device.state.space.names():
            if name not in changes:
                changes[name] = defaults[name]
        # Preserve position: a repaired device does not teleport.
        for positional in ("x", "y"):
            if positional in device.state.space:
                changes[positional] = device.state.get(positional)
        device.state.apply(changes, time=self.sim.now,
                           cause=f"repair:{self.mechanic_id}")
        # 2. Restore known-good logic (drops injected malevolent policies).
        device.engine.policies = self.baseline_policies(device)
        # 3. Reactivate and re-baseline attestation.
        device.reactivate()
        if self.watchdog is not None:
            self.watchdog.approve_current_configuration([device.device_id])
        self.repairs.append((self.sim.now, device.device_id, cause))
        self.sim.metrics.counter("mechanic.repairs").inc()
        self.sim.record("mechanic.repair", device.device_id, cause=cause,
                        mechanic=self.mechanic_id)
