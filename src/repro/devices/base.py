"""Binding core devices to the simulator and network.

:class:`SimDevice` is a thin composition: a core
:class:`~repro.core.device.Device` plus its network registration, clock
wiring, discovery participation, and optional gossip node — the glue the
core deliberately leaves out.
"""

from __future__ import annotations

from typing import Optional

from repro.core.device import Device
from repro.core.events import Event
from repro.net.discovery import DiscoveryService
from repro.net.gossip import GossipNode
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.simulator import Simulator


def bind_device(device: Device, sim: Simulator, network: Network,
                discovery: Optional[DiscoveryService] = None,
                gossip_interval: Optional[float] = None) -> "SimDevice":
    """Wire a device into the simulation; returns the :class:`SimDevice`."""
    return SimDevice(device, sim, network, discovery, gossip_interval)


class SimDevice:
    """A device living on the simulator and network."""

    def __init__(self, device: Device, sim: Simulator, network: Network,
                 discovery: Optional[DiscoveryService] = None,
                 gossip_interval: Optional[float] = None):
        self.device = device
        self.sim = sim
        self.network = network
        self.discovery = discovery
        self.gossip: Optional[GossipNode] = None

        device.set_clock(lambda: sim.now)
        device.telemetry = sim.telemetry
        network.register(device.device_id, self._on_message)
        device.send_hook = lambda to, topic, body: network.send(
            device.device_id, to, topic, body
        )
        if discovery is not None:
            discovery.join(device.device_id, device.describe)
        if gossip_interval is not None:
            self.gossip = GossipNode(
                device.device_id, sim, network, interval=gossip_interval,
            )
        # Obligations pump: discharge due remedies and expire overdue ones.
        if device.engine.obligations is not None:
            self._obligation_task = sim.every(
                1.0, self._pump_obligations, label=f"{device.device_id}:obligations"
            )
        else:
            self._obligation_task = None

    @property
    def device_id(self) -> str:
        return self.device.device_id

    def _on_message(self, message: Message) -> None:
        """Route inbound traffic: protocol messages to their services,
        everything else into the device's event path (Fig 2 collaboration
        port)."""
        if self.discovery is not None and DiscoveryService.is_announcement(message):
            self.discovery.handle_announcement(self.device_id, message)
            return
        if self.gossip is not None and GossipNode.is_exchange(message):
            self.gossip.handle_exchange(message)
            return
        self.device.receive_message(message.topic, message.body, message.sender)

    # -- conveniences ------------------------------------------------------------

    def attach_audit(self, audit) -> None:
        """Chain a per-device :class:`~repro.audit.log.AuditLog` onto the
        engine's decision stream (sec VI-B: "collection of comprehensive
        context information").  Every decision becomes one hash-chained
        entry — the forensic record a post-incident auditor replays, and
        the thing the durability layer journals so it survives a crash.
        Any previously installed ``on_decision`` hook keeps running.
        """
        previous = self.device.engine.on_decision

        def on_decision(decision) -> None:
            if previous is not None:
                previous(decision)
            audit.append(
                self.sim.now, f"decision.{decision.outcome.value}",
                self.device.device_id, {
                    "requested": decision.requested,
                    "executed": decision.executed,
                    "vetoes": len(decision.vetoes),
                })

        self.device.engine.on_decision = on_decision
        self.audit = audit

    def emit_sensor(self, name: str, value) -> None:
        """Inject a sensor reading as an event at the current sim time."""
        self.device.deliver(Event.sensor(name, value, time=self.sim.now,
                                         source=self.device_id))

    def every(self, interval: float, label: str = ""):
        """Periodic management tick feeding ``timer.<label>`` events."""
        return self.sim.every(
            interval,
            lambda: self.device.deliver(
                Event.timer(label or "tick", time=self.sim.now)
            ),
            label=f"{self.device_id}:{label or 'tick'}",
        )

    def _pump_obligations(self) -> None:
        manager = self.device.engine.obligations
        if manager is None:
            return
        manager.discharge_due(self.sim.now)
        for violated in manager.expire(self.sim.now):
            self.sim.metrics.counter("obligations.violated").inc()
            self.sim.record("obligation.violated", self.device_id,
                            obligation=violated.obligation.name,
                            source_action=violated.source_action)

    def shutdown(self) -> None:
        """Remove the device from the network (retirement, not the VI-C kill)."""
        self.network.unregister(self.device_id)
        if self.discovery is not None:
            self.discovery.leave(self.device_id)
        if self.gossip is not None:
            self.gossip.stop()
