"""Coalition and organization structure (paper sec II, III).

Skynet is "Multi-Organizational: ... a multi-organization system can use
resources from other systems, and bring them under its own control", and
the generative-policy system "is targeted to address coalition
environments, which are multi-organizational by nature".

:class:`Organization` groups the devices of one nation/agency;
:class:`Coalition` federates organizations and answers the cross-org
queries experiments need (who controls what, which orgs a compromise has
crossed into — the multi-organizational spread metric of E10).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.device import Device
from repro.errors import ConfigurationError


class Organization:
    """One nation's (or agency's) device holdings."""

    def __init__(self, name: str):
        if not name:
            raise ConfigurationError("organization name must be non-empty")
        self.name = name
        self.devices: dict[str, Device] = {}
        self.operators: list = []

    def enroll(self, device: Device) -> Device:
        """Add a device; stamps the device's organization field."""
        device.organization = self.name
        self.devices[device.device_id] = device
        return device

    def add_operator(self, operator) -> None:
        self.operators.append(operator)

    def device_ids(self) -> list[str]:
        return sorted(self.devices)

    def __len__(self) -> int:
        return len(self.devices)


class Coalition:
    """A federation of organizations conducting a joint operation."""

    def __init__(self, name: str, organizations: Iterable[Organization] = ()):
        self.name = name
        self.organizations: dict[str, Organization] = {}
        for organization in organizations:
            self.add(organization)

    def add(self, organization: Organization) -> None:
        if organization.name in self.organizations:
            raise ConfigurationError(
                f"organization {organization.name!r} already in coalition"
            )
        self.organizations[organization.name] = organization

    def all_devices(self) -> dict:
        """device_id -> Device across every member organization."""
        out: dict[str, Device] = {}
        for organization in self.organizations.values():
            out.update(organization.devices)
        return out

    def organization_of(self, device_id: str) -> Optional[str]:
        for name, organization in self.organizations.items():
            if device_id in organization.devices:
                return name
        return None

    def organizations_spanned(self, device_ids: Iterable[str]) -> set:
        """Which member organizations a set of devices spans.

        Applied to an attack's affected set this measures the paper's
        multi-organizational property: a compromise confined to one org
        is containable by that org; one spanning several is Skynet-shaped.
        """
        spanned = set()
        for device_id in device_ids:
            name = self.organization_of(device_id)
            if name is not None:
                spanned.add(name)
        return spanned

    def devices_of_type(self, device_type: str) -> list[Device]:
        return [
            device for device in self.all_devices().values()
            if device.device_type == device_type
        ]

    def __len__(self) -> int:
        return sum(len(organization) for organization in self.organizations.values())
