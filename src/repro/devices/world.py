"""The simulated physical world.

The paper's sec III "Physical Aspect": "In order to cause damage to the
humans, the Skynet system must have a physical component".  The
:class:`World` holds positions of humans and hazards on a 2D field,
advances humans on random walks, detects hazard encounters, and records
every :class:`HarmEvent` — the ground-truth harm accounting all
experiments report.

The dig-a-hole story of sec VI-A maps directly: a digging action adds a
:class:`Hazard`; a human later walking within its radius is harmed
*indirectly*; a posted warning (obligation remedy) mitigates the hazard so
humans avoid it.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.safeguards.preaction import HarmModel
from repro.sim.simulator import Simulator
from repro.types import HarmKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.actions import Action
    from repro.core.device import Device

_hazard_ids = itertools.count(1)


@dataclass
class Human:
    """A human in the field (civilian or war-fighter)."""

    human_id: str
    x: float
    y: float
    friendly: bool = True
    speed: float = 1.0
    alive: bool = True
    injured: bool = False

    def position(self) -> tuple:
        return (self.x, self.y)


@dataclass
class Hazard:
    """A physical hazard left in the world (hole, spill, unexploded charge)."""

    kind: str
    x: float
    y: float
    radius: float
    created_by: str
    created_at: float
    hazard_id: int = field(default_factory=lambda: next(_hazard_ids))
    mitigated: bool = False     # warning posted / fenced off
    removed: bool = False       # filled in / cleaned up
    harmed: set = field(default_factory=set)   # humans already hurt by it

    @property
    def dangerous(self) -> bool:
        return not (self.mitigated or self.removed)


@dataclass(frozen=True)
class HarmEvent:
    """Ground truth: a human was harmed."""

    time: float
    human_id: str
    kind: HarmKind
    cause: str
    device_id: str


_convoy_ids = itertools.count(1)


@dataclass
class Convoy:
    """A suspect convoy crossing the field (paper sec II: "if it sees a
    suspect convoy, it may call upon a ground mule to intercept the convoy
    along the path")."""

    x: float
    y: float
    target_x: float
    target_y: float
    speed: float = 2.0
    convoy_id: int = field(default_factory=lambda: next(_convoy_ids))
    intercepted_by: Optional[str] = None
    escaped: bool = False

    @property
    def active(self) -> bool:
        return self.intercepted_by is None and not self.escaped

    def position(self) -> tuple:
        return (self.x, self.y)


def _distance(x1: float, y1: float, x2: float, y2: float) -> float:
    return math.hypot(x1 - x2, y1 - y2)


class World:
    """2D field with humans, hazards, and harm accounting."""

    def __init__(self, sim: Simulator, width: float = 100.0, height: float = 100.0,
                 step_interval: float = 1.0):
        if width <= 0 or height <= 0:
            raise ConfigurationError("world dimensions must be positive")
        self.sim = sim
        self.width = width
        self.height = height
        self.humans: dict[str, Human] = {}
        self.hazards: list[Hazard] = []
        self.harm_events: list[HarmEvent] = []
        self.convoys: list[Convoy] = []
        self._rng = sim.rng.stream("world")
        self._task = sim.every(step_interval, self._step, label="world-step")

    # -- population -------------------------------------------------------------

    def add_human(self, human_id: str, x: float, y: float, *,
                  friendly: bool = True, speed: float = 1.0) -> Human:
        if human_id in self.humans:
            raise ConfigurationError(f"duplicate human {human_id!r}")
        human = Human(human_id=human_id, x=self._clamp_x(x), y=self._clamp_y(y),
                      friendly=friendly, speed=speed)
        self.humans[human_id] = human
        return human

    def scatter_humans(self, count: int, prefix: str = "civ", *,
                       friendly: bool = True, speed: float = 1.0) -> list[Human]:
        return [
            self.add_human(
                f"{prefix}{index}",
                self._rng.uniform(0, self.width),
                self._rng.uniform(0, self.height),
                friendly=friendly, speed=speed,
            )
            for index in range(count)
        ]

    # -- hazards -----------------------------------------------------------------

    def add_hazard(self, kind: str, x: float, y: float, radius: float,
                   created_by: str) -> Hazard:
        hazard = Hazard(kind=kind, x=self._clamp_x(x), y=self._clamp_y(y),
                        radius=radius, created_by=created_by,
                        created_at=self.sim.now)
        self.hazards.append(hazard)
        self.sim.record("world.hazard", created_by, hazard_kind=kind, x=x, y=y)
        return hazard

    def mitigate_hazard(self, hazard_id: int) -> bool:
        """Post a warning: humans will avoid the hazard from now on."""
        for hazard in self.hazards:
            if hazard.hazard_id == hazard_id and not hazard.removed:
                hazard.mitigated = True
                self.sim.record("world.hazard_mitigated", hazard.created_by,
                                hazard_id=hazard_id)
                return True
        return False

    def mitigate_hazards_by(self, device_id: str) -> int:
        """Mitigate every open hazard a device created (obligation remedy)."""
        count = 0
        for hazard in self.hazards:
            if hazard.created_by == device_id and hazard.dangerous:
                hazard.mitigated = True
                count += 1
        if count:
            self.sim.record("world.hazard_mitigated", device_id, count=count)
        return count

    def remove_hazard(self, hazard_id: int) -> bool:
        for hazard in self.hazards:
            if hazard.hazard_id == hazard_id:
                hazard.removed = True
                return True
        return False

    def open_hazards(self) -> list[Hazard]:
        return [hazard for hazard in self.hazards if hazard.dangerous]

    # -- convoys ---------------------------------------------------------------------

    def add_convoy(self, x: float, y: float, target_x: float, target_y: float,
                   speed: float = 2.0) -> Convoy:
        convoy = Convoy(x=self._clamp_x(x), y=self._clamp_y(y),
                        target_x=self._clamp_x(target_x),
                        target_y=self._clamp_y(target_y), speed=speed)
        self.convoys.append(convoy)
        self.sim.record("world.convoy", f"convoy{convoy.convoy_id}",
                        x=x, y=y)
        return convoy

    def active_convoys(self) -> list[Convoy]:
        return [convoy for convoy in self.convoys if convoy.active]

    def nearest_active_convoy(self, x: float, y: float) -> Optional[Convoy]:
        candidates = self.active_convoys()
        if not candidates:
            return None
        return min(candidates,
                   key=lambda convoy: (_distance(convoy.x, convoy.y, x, y),
                                       convoy.convoy_id))

    def intercept_convoy(self, convoy_id: int, by: str) -> bool:
        """Mark a convoy intercepted (mule within capture range)."""
        for convoy in self.convoys:
            if convoy.convoy_id == convoy_id and convoy.active:
                convoy.intercepted_by = by
                self.sim.metrics.counter("world.convoys_intercepted").inc()
                self.sim.record("world.convoy_intercepted", by,
                                convoy=convoy_id)
                return True
        return False

    def convoys_intercepted(self) -> int:
        return sum(1 for convoy in self.convoys
                   if convoy.intercepted_by is not None)

    def convoys_escaped(self) -> int:
        return sum(1 for convoy in self.convoys if convoy.escaped)

    # -- queries ---------------------------------------------------------------------

    def humans_near(self, x: float, y: float, radius: float,
                    friendly_only: bool = False) -> list[Human]:
        return [
            human for human in self.humans.values()
            if human.alive
            and (_distance(human.x, human.y, x, y) <= radius)
            and (human.friendly or not friendly_only)
        ]

    def harm_count(self, kind: Optional[HarmKind] = None) -> int:
        if kind is None:
            return len(self.harm_events)
        return sum(1 for event in self.harm_events if event.kind == kind)

    # -- harm ------------------------------------------------------------------------

    def harm_human(self, human_id: str, kind: HarmKind, cause: str,
                   device_id: str) -> Optional[HarmEvent]:
        human = self.humans.get(human_id)
        if human is None or not human.alive:
            return None
        human.injured = True
        event = HarmEvent(time=self.sim.now, human_id=human_id, kind=kind,
                          cause=cause, device_id=device_id)
        self.harm_events.append(event)
        self.sim.metrics.counter("world.harm").inc()
        self.sim.metrics.counter(f"world.harm.{kind.value}").inc()
        self.sim.record("world.harm", device_id, human=human_id,
                        harm_kind=kind.value, cause=cause)
        return event

    def harm_humans_near(self, x: float, y: float, radius: float,
                         cause: str, device_id: str,
                         kind: HarmKind = HarmKind.DIRECT) -> int:
        """Direct-harm helper for kinetic actuators; returns humans harmed."""
        harmed = 0
        for human in self.humans_near(x, y, radius):
            if self.harm_human(human.human_id, kind, cause, device_id):
                harmed += 1
        return harmed

    # -- dynamics -------------------------------------------------------------------

    def _step(self) -> None:
        for human_id in sorted(self.humans):
            human = self.humans[human_id]
            if not human.alive:
                continue
            angle = self._rng.uniform(0.0, 2 * math.pi)
            human.x = self._clamp_x(human.x + human.speed * math.cos(angle))
            human.y = self._clamp_y(human.y + human.speed * math.sin(angle))
            self._check_hazards(human)
        for convoy in self.convoys:
            if not convoy.active:
                continue
            dx = convoy.target_x - convoy.x
            dy = convoy.target_y - convoy.y
            dist = math.hypot(dx, dy)
            if dist <= convoy.speed:
                convoy.x, convoy.y = convoy.target_x, convoy.target_y
                convoy.escaped = True
                self.sim.metrics.counter("world.convoys_escaped").inc()
                self.sim.record("world.convoy_escaped",
                                f"convoy{convoy.convoy_id}")
            else:
                convoy.x = self._clamp_x(convoy.x + dx / dist * convoy.speed)
                convoy.y = self._clamp_y(convoy.y + dy / dist * convoy.speed)

    def _check_hazards(self, human: Human) -> None:
        for hazard in self.hazards:
            if not hazard.dangerous or human.human_id in hazard.harmed:
                continue
            if _distance(human.x, human.y, hazard.x, hazard.y) <= hazard.radius:
                hazard.harmed.add(human.human_id)
                self.harm_human(
                    human.human_id, HarmKind.INDIRECT,
                    cause=f"hazard:{hazard.kind}", device_id=hazard.created_by,
                )

    def _clamp_x(self, x: float) -> float:
        return min(self.width, max(0.0, x))

    def _clamp_y(self, y: float) -> float:
        return min(self.height, max(0.0, y))


class WorldHarmModel(HarmModel):
    """A device's harm prediction backed by (partial) world observation.

    ``sensor_range`` bounds what the device can anticipate: the pre-action
    check only sees humans currently within range of the device's
    position — which is precisely how the paper's dig-a-hole indirect harm
    escapes it ("the machine does not anticipate a human to come on the
    path").  ``omniscient=True`` removes the bound, the idealized upper
    baseline in E1.
    """

    #: Action tags considered directly harmful when humans are in range.
    DIRECT_TAGS = frozenset({"kinetic", "harm_human", "crush"})
    #: Action tags that leave a hazard behind.
    HAZARD_TAGS = frozenset({"digging", "chemical", "incendiary"})

    def __init__(self, world: World, sensor_range: float = 15.0,
                 effect_radius: float = 5.0, omniscient: bool = False):
        self.world = world
        self.sensor_range = sensor_range
        self.effect_radius = effect_radius
        self.omniscient = omniscient

    def _device_position(self, device: "Device") -> tuple:
        return (float(device.state.get("x")), float(device.state.get("y")))

    def predict_direct_harm(self, device: "Device", action: "Action",
                            time: float) -> Optional[str]:
        if not (action.tags & self.DIRECT_TAGS):
            return None
        x, y = self._device_position(device)
        radius = (self.effect_radius if self.omniscient
                  else min(self.effect_radius, self.sensor_range))
        victims = self.world.humans_near(x, y, radius)
        if victims:
            return (f"{len(victims)} human(s) within {radius:.0f}m of "
                    f"{action.name!r}")
        return None

    def predict_hazard(self, device: "Device", action: "Action",
                       time: float) -> Optional[str]:
        if not (action.tags & self.HAZARD_TAGS):
            return None
        return f"action {action.name!r} leaves a {sorted(action.tags & self.HAZARD_TAGS)[0]} hazard"
