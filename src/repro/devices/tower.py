"""Sensor towers and coalition threat assessment (paper sec VI-B, ref [13]).

Devices "acquire information by using sensors (both their own and possibly
of other devices)" and must be protected "from deception attacks".  A
:class:`make_tower` device is a static sensing platform that counts
hostiles in its coverage area; the :class:`ThreatAssessmentService` fuses
the towers' redundant readings with robust aggregation into the fleet's
threat estimate — the trustworthy context that break-glass verification
and risk estimation consume.
"""

from __future__ import annotations

from typing import Optional

from repro.core.device import Device, Sensor
from repro.core.state import StateSpace, StateVariable
from repro.devices.world import World
from repro.errors import ConfigurationError
from repro.sim.simulator import Simulator
from repro.trust.aggregation import IterativeFilteringAggregator, SensorReading
from repro.trust.provenance import TrustLedger

TOWER_TYPE = "tower"


def tower_state_space(world: World) -> StateSpace:
    return StateSpace([
        StateVariable("x", "float", 0.0, 0.0, world.width),
        StateVariable("y", "float", 0.0, 0.0, world.height),
        StateVariable("threat_reading", "float", 0.0, 0.0, 1000.0),
        StateVariable("online", "bool", True),
    ])


def make_tower(
    device_id: str,
    world: World,
    *,
    organization: str = "default",
    x: float = 0.0,
    y: float = 0.0,
    coverage: float = 40.0,
    noise_sigma: float = 0.3,
    attributes: Optional[dict] = None,
) -> Device:
    """A static sensing platform counting hostiles within ``coverage``.

    The tower's threat sensor reads the number of non-friendly humans in
    range plus Gaussian noise; a hijacked tower's sensor can be overridden
    via ``Sensor.inject`` (what the deception experiments do).
    """
    attrs = {"coverage": coverage, "capability": "sensing", "airborne": False}
    attrs.update(attributes or {})
    device = Device(
        device_id=device_id,
        device_type=TOWER_TYPE,
        space=tower_state_space(world),
        organization=organization,
        initial_state={"x": x, "y": y},
        attributes=attrs,
    )
    rng = world.sim.rng.stream(f"tower/{device_id}")

    def read_threat() -> float:
        if not device.state.get("online"):
            return 0.0
        hostiles = [
            human for human in world.humans_near(
                float(device.state.get("x")), float(device.state.get("y")),
                coverage,
            )
            if not human.friendly
        ]
        return max(0.0, len(hostiles) + rng.gauss(0.0, noise_sigma))

    device.add_sensor(Sensor("threat", read_fn=read_threat))
    return device


class ThreatAssessmentService:
    """Fuses tower readings into the coalition's threat estimate.

    Each ``interval`` the service polls every tower's threat sensor,
    aggregates robustly (iterative filtering), updates the per-tower trust
    ledger from the aggregation weights, and records the estimate.  A
    compromised minority of towers reporting a coordinated false value is
    out-weighted, and its trust scores decay — the sources to decommission.
    """

    def __init__(self, sim: Simulator, towers: dict, interval: float = 2.0,
                 aggregator: Optional[IterativeFilteringAggregator] = None,
                 ledger: Optional[TrustLedger] = None):
        if not towers:
            raise ConfigurationError("threat assessment needs at least one tower")
        self.sim = sim
        self.towers = towers     # device_id -> Device (live view)
        self.aggregator = aggregator or IterativeFilteringAggregator()
        self.ledger = ledger or TrustLedger()
        self.estimate: float = 0.0
        self.rounds = 0
        self._task = sim.every(interval, self.assess, label="threat-assessment")

    def stop(self) -> None:
        self._task.cancel()

    def readings(self) -> list:
        out = []
        for tower_id in sorted(self.towers):
            tower = self.towers[tower_id]
            if not tower.active:
                continue
            out.append(SensorReading(
                source=tower_id,
                value=float(tower.sensors["threat"].read()),
                time=self.sim.now,
            ))
        return out

    def assess(self) -> float:
        """One fusion round; returns (and stores) the robust estimate."""
        readings = self.readings()
        if not readings:
            return self.estimate
        self.rounds += 1
        self.estimate = self.aggregator.aggregate(readings)
        self.ledger.observe_weights(self.aggregator.last_weights)
        self.sim.metrics.timeseries("threat.estimate").record(
            self.sim.now, self.estimate,
        )
        return self.estimate

    def suspected_towers(self) -> list:
        """Towers the last round's weights flagged as out of consensus."""
        return self.aggregator.suspected_sources()

    def context_verifier(self):
        """A break-glass context verifier backed by the fused estimate."""

        def verify(device_id: str) -> dict:
            return {"threat_level": self.assess()}

        return verify
