"""Detection of emergent temporal patterns (paper sec V, ref [16]).

"The patterns of states exhibited by the collection may also be difficult
to interpret because of temporal effects or emergent behaviors."  Three
classic systems-of-systems pathologies are detectable here:

* **oscillation** — an aggregate swinging around its mean (the rolling-
  blackout analogue: load sheds, recovers, sheds again);
* **synchrony** — many devices changing the same variable in lock-step
  (innocuous singly, dangerous in phase);
* **cascade** — bursts of failures/deactivations propagating through the
  fleet much faster than the background rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Optional, Sequence


@dataclass(frozen=True)
class EmergentPattern:
    """One detected pattern."""

    kind: str          # "oscillation" | "synchrony" | "cascade"
    start: float
    end: float
    score: float       # pattern-specific strength, higher = stronger
    detail: dict = field(default_factory=dict)


class EmergentBehaviorDetector:
    """Offline analysis over recorded time series / event times."""

    def __init__(self, oscillation_min_crossings: int = 6,
                 synchrony_window: float = 1.0,
                 synchrony_min_fraction: float = 0.6,
                 cascade_window: float = 2.0,
                 cascade_burst_factor: float = 4.0):
        self.oscillation_min_crossings = oscillation_min_crossings
        self.synchrony_window = synchrony_window
        self.synchrony_min_fraction = synchrony_min_fraction
        self.cascade_window = cascade_window
        self.cascade_burst_factor = cascade_burst_factor

    # -- oscillation ---------------------------------------------------------------

    def detect_oscillation(self, samples: Sequence[tuple]) -> Optional[EmergentPattern]:
        """Flag a series crossing its own mean unusually often.

        ``samples`` are (time, value) pairs.  Score = crossings per sample,
        reported when the absolute crossing count reaches the threshold.
        """
        if len(samples) < self.oscillation_min_crossings + 1:
            return None
        values = [value for _, value in samples]
        center = mean(values)
        crossings = 0
        for previous, current in zip(values, values[1:]):
            if (previous - center) * (current - center) < 0:
                crossings += 1
        if crossings < self.oscillation_min_crossings:
            return None
        return EmergentPattern(
            kind="oscillation",
            start=samples[0][0], end=samples[-1][0],
            score=crossings / max(1, len(samples) - 1),
            detail={"crossings": crossings, "mean": center},
        )

    # -- synchrony -------------------------------------------------------------------

    def detect_synchrony(self, change_times: dict) -> list[EmergentPattern]:
        """Find windows where most devices changed in near lock-step.

        ``change_times``: device_id -> sorted list of times the device
        changed the watched variable.  A pattern fires for each window of
        width ``synchrony_window`` containing changes from at least
        ``synchrony_min_fraction`` of the devices.
        """
        if not change_times:
            return []
        n_devices = len(change_times)
        events = sorted(
            (time, device_id)
            for device_id, times in change_times.items()
            for time in times
        )
        patterns: list[EmergentPattern] = []
        index = 0
        while index < len(events):
            window_start = events[index][0]
            window_end = window_start + self.synchrony_window
            participants = set()
            cursor = index
            while cursor < len(events) and events[cursor][0] <= window_end:
                participants.add(events[cursor][1])
                cursor += 1
            fraction = len(participants) / n_devices
            if fraction >= self.synchrony_min_fraction and len(participants) > 1:
                patterns.append(EmergentPattern(
                    kind="synchrony", start=window_start, end=window_end,
                    score=fraction,
                    detail={"participants": sorted(participants)},
                ))
                index = cursor  # skip past this window
            else:
                index += 1
        return patterns

    # -- cascade -----------------------------------------------------------------------

    def detect_cascade(self, event_times: Sequence[float],
                       horizon: float) -> list[EmergentPattern]:
        """Find failure bursts well above the background rate.

        A cascade is a window of width ``cascade_window`` whose event count
        exceeds ``cascade_burst_factor`` x the expected count under a
        uniform spread of the events over ``horizon``.
        """
        events = sorted(event_times)
        if len(events) < 3 or horizon <= 0:
            return []
        background_rate = len(events) / horizon
        expected_per_window = background_rate * self.cascade_window
        threshold = max(3.0, self.cascade_burst_factor * expected_per_window)
        patterns: list[EmergentPattern] = []
        index = 0
        while index < len(events):
            window_start = events[index]
            window_end = window_start + self.cascade_window
            cursor = index
            while cursor < len(events) and events[cursor] <= window_end:
                cursor += 1
            count = cursor - index
            if count >= threshold:
                patterns.append(EmergentPattern(
                    kind="cascade", start=window_start, end=window_end,
                    score=count / max(expected_per_window, 1e-9),
                    detail={"events": count,
                            "expected": expected_per_window},
                ))
                index = cursor
            else:
                index += 1
        return patterns
