"""Aggregate and emergent behaviour analysis (paper sec V, VI-D, ref [16]).

"While each of the devices may individually be in a good state... the net
impact of the action may result in harm to the human" and "Modelling,
analysis and simulation methods have been used to determine whether
systems of systems would exhibit emergent behavior... e.g., rolling
blackouts in a power grid."
"""

from repro.emergent.aggregate import AggregateMonitor, AggregateViolation
from repro.emergent.analysis import SystemOfSystemsAnalyzer
from repro.emergent.detector import EmergentBehaviorDetector, EmergentPattern

__all__ = [
    "AggregateMonitor",
    "AggregateViolation",
    "EmergentBehaviorDetector",
    "EmergentPattern",
    "SystemOfSystemsAnalyzer",
]
