"""Continuous monitoring of fleet-level aggregates.

The heat example of sec VI-D made measurable: an :class:`AggregateMonitor`
periodically folds a state variable across the fleet, records the time
series, and flags *emergent* violations — aggregate over the limit while
every contributing device is individually within its own safe region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.safeguards.collection import AggregateConstraint
from repro.sim.simulator import Simulator
from repro.statespace.classifier import SafenessClassifier
from repro.types import Safeness


@dataclass(frozen=True)
class AggregateViolation:
    """One observed aggregate-limit violation."""

    time: float
    constraint: str
    value: float
    limit: float
    emergent: bool           # True when no individual device was in a bad state
    individually_bad: tuple  # device ids in a bad state at violation time


class AggregateMonitor:
    """Samples aggregate constraints over a live fleet."""

    def __init__(
        self,
        sim: Simulator,
        devices: dict,
        constraints: list,
        interval: float = 1.0,
        individual_classifier: Optional[SafenessClassifier] = None,
    ):
        self.sim = sim
        self.devices = devices
        self.constraints: list[AggregateConstraint] = list(constraints)
        self.individual_classifier = individual_classifier
        self.violations: list[AggregateViolation] = []
        self._task = sim.every(interval, self.sample, label="aggregate-monitor")

    def stop(self) -> None:
        self._task.cancel()

    def sample(self) -> list[AggregateViolation]:
        """Take one sample; returns violations observed at this instant."""
        vectors = {
            device_id: device.state.snapshot()
            for device_id, device in self.devices.items()
        }
        individually_bad: tuple = ()
        if self.individual_classifier is not None:
            individually_bad = tuple(sorted(
                device_id for device_id, vector in vectors.items()
                if self.individual_classifier.classify(vector) == Safeness.BAD
            ))
        found = []
        all_vectors = list(vectors.values())
        for constraint in self.constraints:
            value = constraint.evaluate(all_vectors)
            self.sim.metrics.timeseries(f"aggregate.{constraint.name}").record(
                self.sim.now, value
            )
            if value > constraint.limit:
                violation = AggregateViolation(
                    time=self.sim.now, constraint=constraint.name,
                    value=value, limit=constraint.limit,
                    emergent=not individually_bad,
                    individually_bad=individually_bad,
                )
                found.append(violation)
                self.violations.append(violation)
                self.sim.metrics.counter(
                    f"aggregate.violations.{constraint.name}").inc()
                if violation.emergent:
                    self.sim.metrics.counter("aggregate.violations.emergent").inc()
                self.sim.record("aggregate.violation", constraint.name,
                                value=value, limit=constraint.limit,
                                emergent=violation.emergent)
        return found

    def emergent_violations(self) -> list[AggregateViolation]:
        """Violations where the fleet was collectively unsafe while every
        device was individually fine — the paper's central sec VI-D case."""
        return [violation for violation in self.violations if violation.emergent]

    def violation_time_fraction(self, constraint_name: str, horizon: float) -> float:
        """Fraction of the horizon the aggregate spent above its limit."""
        series = self.sim.metrics.get(f"aggregate.{constraint_name}")
        if series is None or horizon <= 0:
            return 0.0
        constraint = next(
            (c for c in self.constraints if c.name == constraint_name), None
        )
        if constraint is None:
            return 0.0
        return min(1.0, series.time_above(constraint.limit) / horizon)
