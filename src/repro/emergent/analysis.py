"""Monte-Carlo systems-of-systems safety analysis (paper sec VI-D, ref [16]).

The offline analyzer's deeper sibling: instead of evaluating only the
current/worst-case snapshot, :class:`SystemOfSystemsAnalyzer` *simulates*
the proposed collection forward — each device taking random actions from
its library for ``depth`` steps across many rollouts — and estimates the
probability that the collection reaches an aggregate bad state even
though every device stays individually good.  This is the "situational
analysis of whether the new network configuration can potentially cause
harm" that the human check relies on.

Pure function of its inputs: it never touches the live simulator or
network (the separation-of-privilege property of sec VI-D).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.rng import SeededRNG
from repro.statespace.classifier import SafenessClassifier
from repro.types import Safeness


class SystemOfSystemsAnalyzer:
    """Random-rollout estimation of collection-level risk."""

    def __init__(
        self,
        constraints: Sequence,
        individual_classifier: Optional[SafenessClassifier] = None,
        rollouts: int = 100,
        depth: int = 5,
        seed: int = 0,
    ):
        self.constraints = list(constraints)
        self.individual_classifier = individual_classifier
        self.rollouts = rollouts
        self.depth = depth
        self._rng = SeededRNG(seed, "sos-analyzer")

    def analyze(self, member_states: dict, member_actions: dict) -> dict:
        """Estimate violation probability for a proposed collection.

        ``member_states``: device_id -> current state vector;
        ``member_actions``: device_id -> list of candidate Actions (their
        declared effects drive the rollout dynamics).

        Returns aggregate violation probability, emergent-violation
        probability (aggregate violated while no member individually bad),
        and mean steps to first violation.
        """
        if not member_states:
            return {"violation_prob": 0.0, "emergent_prob": 0.0,
                    "mean_steps_to_violation": None, "rollouts": 0}
        violations = 0
        emergent = 0
        steps_to_violation: list[int] = []
        member_ids = sorted(member_states)
        for rollout in range(self.rollouts):
            rng = self._rng.fork(f"rollout:{rollout}")
            vectors = {m: dict(member_states[m]) for m in member_ids}
            hit = self._rollout(vectors, member_actions, rng)
            if hit is not None:
                violations += 1
                step, was_emergent = hit
                steps_to_violation.append(step)
                if was_emergent:
                    emergent += 1
        return {
            "violation_prob": violations / self.rollouts,
            "emergent_prob": emergent / self.rollouts,
            "mean_steps_to_violation": (
                sum(steps_to_violation) / len(steps_to_violation)
                if steps_to_violation else None
            ),
            "rollouts": self.rollouts,
        }

    def _rollout(self, vectors: dict, member_actions: dict,
                 rng: SeededRNG) -> Optional[tuple]:
        for step in range(1, self.depth + 1):
            for member_id in sorted(vectors):
                actions = member_actions.get(member_id, [])
                usable = [action for action in actions if not action.is_noop]
                if not usable:
                    continue
                action = rng.choice(usable)
                changes = action.predicted_changes(vectors[member_id])
                vectors[member_id].update(changes)
            all_vectors = list(vectors.values())
            if any(constraint.violated_by(all_vectors)
                   for constraint in self.constraints):
                was_emergent = True
                if self.individual_classifier is not None:
                    was_emergent = all(
                        self.individual_classifier.classify(vector) != Safeness.BAD
                        for vector in all_vectors
                    )
                return (step, was_emergent)
        return None

    def recommend_max_members(self, template_state: dict, template_actions: list,
                              max_members: int = 50,
                              acceptable_prob: float = 0.05) -> int:
        """Largest homogeneous collection size keeping violation probability
        within ``acceptable_prob`` — a sizing aid for collection formation."""
        for size in range(1, max_members + 1):
            states = {f"m{i}": dict(template_state) for i in range(size)}
            actions = {f"m{i}": template_actions for i in range(size)}
            result = self.analyze(states, actions)
            if result["violation_prob"] > acceptable_prob:
                return size - 1
        return max_members
