"""Robust aggregation of multi-sensor readings under collusion attacks.

Implements the iterative-filtering approach of the paper's ref [13]
(Rezvani, Ignjatovic, Bertino, Jha, "Secure Data Aggregation Technique for
Wireless Sensor Networks in the Presence of Collusion Attacks"): sources
whose readings sit far from the emerging consensus receive exponentially
less weight on each iteration, so a colluding minority reporting a common
false value cannot drag the estimate, unlike the plain mean.

Simpler estimators (mean, median, trimmed mean) are provided as baselines
for the E7/E8 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Optional, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SensorReading:
    """One reading contributed to an aggregation round."""

    source: str
    value: float
    time: float = 0.0


def mean_aggregate(readings: Sequence[SensorReading]) -> float:
    """Plain mean — the collusion-vulnerable baseline."""
    _require(readings)
    return sum(r.value for r in readings) / len(readings)


def median_aggregate(readings: Sequence[SensorReading]) -> float:
    """Median — robust to < 50% outliers but coarse."""
    _require(readings)
    return float(median(r.value for r in readings))


def trimmed_mean_aggregate(readings: Sequence[SensorReading],
                           trim_fraction: float = 0.2) -> float:
    """Mean after dropping the top/bottom ``trim_fraction`` of readings."""
    _require(readings)
    if not 0.0 <= trim_fraction < 0.5:
        raise ConfigurationError("trim_fraction must be in [0, 0.5)")
    ordered = sorted(r.value for r in readings)
    k = int(len(ordered) * trim_fraction)
    kept = ordered[k: len(ordered) - k] or ordered
    return sum(kept) / len(kept)


def _require(readings: Sequence[SensorReading]) -> None:
    if not readings:
        raise ConfigurationError("aggregation requires at least one reading")


class IterativeFilteringAggregator:
    """Reciprocal-distance iterative filtering (ref [13] style).

    Each iteration: estimate = weighted mean of readings; each source's
    next weight = 1 / (scale + (value - estimate)^2), normalized, where
    ``scale`` is the mean squared residual of that iteration (floored at
    ``epsilon``).  The residual-scaled denominator keeps the honest
    cluster's weights comparable to one another while sources far from the
    consensus — a colluding minority on a common false value — lose weight
    geometrically.  The final per-source weights double as trust scores
    for the provenance ledger.
    """

    def __init__(self, iterations: int = 25, epsilon: float = 1e-6,
                 convergence_tol: float = 1e-9):
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        self.iterations = iterations
        self.epsilon = epsilon
        self.convergence_tol = convergence_tol
        self.last_weights: dict[str, float] = {}
        self.last_iterations_used = 0

    def aggregate(self, readings: Sequence[SensorReading],
                  initial_weights: Optional[dict] = None) -> float:
        """Return the robust estimate; per-source weights land in
        :attr:`last_weights` (normalized to sum to 1)."""
        _require(readings)
        weights = []
        for reading in readings:
            if initial_weights and reading.source in initial_weights:
                weights.append(max(self.epsilon, initial_weights[reading.source]))
            else:
                weights.append(1.0)
        estimate = self._weighted_mean(readings, weights)
        self.last_iterations_used = 0
        for _ in range(self.iterations):
            self.last_iterations_used += 1
            residuals = [(reading.value - estimate) ** 2 for reading in readings]
            # Median keeps the scale robust: colluders cannot inflate it the
            # way they would a mean, so their own weights collapse fast.
            scale = max(self.epsilon, float(median(residuals)))
            weights = [1.0 / (scale + residual) for residual in residuals]
            new_estimate = self._weighted_mean(readings, weights)
            if abs(new_estimate - estimate) < self.convergence_tol:
                estimate = new_estimate
                break
            estimate = new_estimate
        total = sum(weights)
        self.last_weights = {
            reading.source: weight / total
            for reading, weight in zip(readings, weights)
        }
        return estimate

    @staticmethod
    def _weighted_mean(readings: Sequence[SensorReading],
                       weights: Sequence[float]) -> float:
        total = sum(weights)
        return sum(r.value * w for r, w in zip(readings, weights)) / total

    def suspected_sources(self, threshold_ratio: float = 0.1) -> list[str]:
        """Sources whose final weight is below ``threshold_ratio`` of the
        uniform share — the aggregator's collusion suspects."""
        if not self.last_weights:
            return []
        uniform = 1.0 / len(self.last_weights)
        cutoff = uniform * threshold_ratio
        return sorted(
            source for source, weight in self.last_weights.items()
            if weight < cutoff
        )
