"""Provenance records and a per-source trust ledger.

Section VI-B: state assessment must rest on trustworthy data.  The ledger
accumulates evidence about each data source — agreement with robust
aggregates raises trust, disagreement lowers it — and exposes the scores
the aggregator can use as priors (and the break-glass context verifier
uses to decide which sensors to believe).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError

_record_ids = itertools.count(1)


@dataclass(frozen=True)
class ProvenanceRecord:
    """Where a data item came from and what it passed through."""

    source: str
    kind: str
    value: object
    time: float
    chain: tuple = ()   # processing steps, e.g. ("aggregated", "sanitized")
    record_id: int = field(default_factory=lambda: next(_record_ids))

    def extended(self, step: str) -> "ProvenanceRecord":
        """A copy with one more processing step appended."""
        return ProvenanceRecord(
            source=self.source, kind=self.kind, value=self.value,
            time=self.time, chain=self.chain + (step,),
        )


class TrustLedger:
    """Exponentially-smoothed trust scores per data source in [0, 1]."""

    def __init__(self, initial_trust: float = 0.5, smoothing: float = 0.2,
                 distrust_floor: float = 0.05):
        if not 0.0 <= initial_trust <= 1.0:
            raise ConfigurationError("initial_trust must be in [0, 1]")
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError("smoothing must be in (0, 1]")
        self.initial_trust = initial_trust
        self.smoothing = smoothing
        self.distrust_floor = distrust_floor
        self._scores: dict[str, float] = {}
        self._observations: dict[str, int] = {}

    def trust(self, source: str) -> float:
        return self._scores.get(source, self.initial_trust)

    def observe(self, source: str, agreement: float) -> float:
        """Fold one agreement observation (0 = total disagreement,
        1 = perfect agreement) into the source's score; returns new score."""
        if not 0.0 <= agreement <= 1.0:
            raise ConfigurationError("agreement must be in [0, 1]")
        current = self.trust(source)
        updated = (1 - self.smoothing) * current + self.smoothing * agreement
        self._scores[source] = updated
        self._observations[source] = self._observations.get(source, 0) + 1
        return updated

    def observe_weights(self, weights: dict) -> None:
        """Fold a robust aggregator's normalized weights in as agreements.

        Weights are rescaled so the largest weight counts as full
        agreement; sources near zero weight get near-zero agreement.
        """
        if not weights:
            return
        top = max(weights.values())
        if top <= 0:
            return
        for source, weight in weights.items():
            self.observe(source, min(1.0, weight / top))

    def trusted_sources(self, minimum: float = 0.5) -> list[str]:
        return sorted(s for s in self._scores if self._scores[s] >= minimum)

    def distrusted_sources(self, maximum: Optional[float] = None) -> list[str]:
        cutoff = self.distrust_floor if maximum is None else maximum
        return sorted(s for s in self._scores if self._scores[s] <= cutoff)

    def observation_count(self, source: str) -> int:
        return self._observations.get(source, 0)

    def snapshot(self) -> dict:
        return dict(self._scores)
