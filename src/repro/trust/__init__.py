"""Trustworthy data substrate.

Section VI-B of the paper requires that "a device be able to obtain
trustworthy information concerning its own status and the environment",
protected "from deception attacks", citing Rezvani et al.'s secure
aggregation under collusion [13].  This package provides robust sensor
aggregation (iterative filtering, trimmed estimators) and a provenance /
trust-score ledger for data sources.
"""

from repro.trust.aggregation import (
    IterativeFilteringAggregator,
    SensorReading,
    mean_aggregate,
    median_aggregate,
    trimmed_mean_aggregate,
)
from repro.trust.provenance import ProvenanceRecord, TrustLedger
from repro.trust.reputation import (
    BANDS,
    OUTCOME_WEIGHTS,
    ReputationAdjuster,
    ReputationLedger,
)

__all__ = [
    "BANDS",
    "IterativeFilteringAggregator",
    "OUTCOME_WEIGHTS",
    "ProvenanceRecord",
    "ReputationAdjuster",
    "ReputationLedger",
    "SensorReading",
    "TrustLedger",
    "mean_aggregate",
    "median_aggregate",
    "trimmed_mean_aggregate",
]
