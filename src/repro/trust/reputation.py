"""Per-device reputation: autonomy scaled by earned trust (E22).

The paper's safeguards treat every device as equally trustworthy: a
vote, a join petition, and a gateway budget are identical whether the
device's audit history is spotless or riddled with vetoes.  This module
extends the sec VI-B trust idea from *sensors* to the *devices
themselves*: a :class:`ReputationLedger` folds audit outcomes (vetoes,
authorization rejects, alert involvement, cross-validation failures,
successful validations) into a deterministic per-device score with
configurable decay, and the control plane reads that score as

* a **quorum weight** — low-reputation ballots count fractionally in a
  reputation-armed :class:`~repro.safeguards.governance.BallotBox`;
* an **admission / budget scale** — the
  :class:`~repro.safeguards.collection.JoinDesk` and the
  :class:`~repro.safeguards.gateway.ActuationGateway` tighten as
  reputation drops;
* a **strictness band** — the :class:`ReputationAdjuster` proposes
  stricter per-device safeness thresholds and shorter quarantine fuses
  through the E20 :class:`~repro.telemetry.health.knobs.KnobArbiter`
  while a device sits in probation or suspicion.

Determinism is load-bearing: the score is a pure function of the
outcome sequence and their times — decay is applied lazily as
``baseline + (score - baseline) * (1 - decay)**dt`` at read time, so no
periodic task (whose cadence could differ across shard layouts) ever
touches the ledger.  Updates journal through (E18), so recovery
reproduces every weight a ballot or budget decision was made with.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.trust.provenance import ProvenanceRecord, TrustLedger

#: Default score delta per audit outcome.  Positive outcomes accrue
#: slowly; negative ones bite hard — reputation must be cheap to lose
#: and expensive to bank, or a slow-burn rogue could arbitrage it.
OUTCOME_WEIGHTS = {
    "validated": 0.02,        # successful validation / clean decision
    "alert": -0.08,           # named in a fired alert's evidence
    "veto": -0.12,            # a safeguard vetoed the device's action
    "crossval-fail": -0.15,   # cross-validation disagreed with peers
    "authz-reject": -0.18,    # authenticated command rejected at the gateway
    "quarantine": -0.25,      # watchdog/overseer containment
}

#: Reputation bands, from most to least trusted.
BANDS = ("trusted", "probation", "suspect")


class ReputationLedger:
    """Deterministic per-device reputation scores in ``[0, 1]``.

    ``decay`` pulls every score back toward ``baseline`` per unit of
    sim-time — grudges and halos both fade.  ``weight()`` maps a score
    onto a quorum/budget multiplier: full weight at or above
    ``full_weight_at``, linearly down to ``min_weight`` below it (never
    zero: a suspect device still counts *fractionally*, it is not
    silently disenfranchised).

    ``trust_ledger`` mirrors every outcome into the sec VI-B
    :class:`~repro.trust.provenance.TrustLedger` as an agreement
    observation, so sensor trust and device reputation share one
    provenance record shape (:attr:`provenance` keeps the
    :class:`~repro.trust.provenance.ProvenanceRecord` trail).
    """

    def __init__(
        self,
        baseline: float = 0.5,
        decay: float = 0.02,
        weights: Optional[dict] = None,
        min_weight: float = 0.25,
        full_weight_at: float = 0.6,
        probation_at: float = 0.35,
        journal=None,
        trust_ledger: Optional[TrustLedger] = None,
        on_update: Optional[Callable[[str, str, float, float], None]] = None,
    ):
        if not 0.0 <= baseline <= 1.0:
            raise ConfigurationError("baseline must be in [0, 1]")
        if not 0.0 <= decay < 1.0:
            raise ConfigurationError("decay must be in [0, 1)")
        if not 0.0 < min_weight <= 1.0:
            raise ConfigurationError("min_weight must be in (0, 1]")
        if not 0.0 < full_weight_at <= 1.0:
            raise ConfigurationError("full_weight_at must be in (0, 1]")
        if not 0.0 <= probation_at <= full_weight_at:
            raise ConfigurationError(
                "probation_at must be in [0, full_weight_at]")
        self.baseline = baseline
        self.decay = decay
        self.weights = dict(OUTCOME_WEIGHTS if weights is None else weights)
        self.min_weight = min_weight
        self.full_weight_at = full_weight_at
        self.probation_at = probation_at
        self._journal = journal
        self.trust_ledger = trust_ledger
        self.on_update = on_update
        #: device_id -> (score at last update, time of last update)
        self._scores: dict[str, tuple] = {}
        #: outcome -> count, fleet-wide.
        self.outcomes: dict[str, int] = {}
        #: Provenance trail of device outcomes (shared record shape with
        #: sensor trust, satellite of E22).
        self.provenance: list[ProvenanceRecord] = []

    # -- reads -------------------------------------------------------------------

    def score(self, device_id: str, now: float) -> float:
        """The device's reputation at ``now`` (decay applied lazily)."""
        stored = self._scores.get(device_id)
        if stored is None:
            return self.baseline
        value, last = stored
        return self._decayed(value, last, now)

    def _decayed(self, value: float, last: float, now: float) -> float:
        dt = now - last
        if dt <= 0 or self.decay == 0.0:
            return value
        return self.baseline + (value - self.baseline) * (1.0 - self.decay) ** dt

    def weight(self, device_id: str, now: float) -> float:
        """Quorum/budget multiplier in ``[min_weight, 1]`` for the device."""
        score = self.score(device_id, now)
        if score >= self.full_weight_at:
            return 1.0
        return max(self.min_weight, score / self.full_weight_at)

    def band(self, device_id: str, now: float) -> str:
        """``trusted`` / ``probation`` / ``suspect`` strictness band."""
        score = self.score(device_id, now)
        if score >= self.full_weight_at:
            return "trusted"
        if score >= self.probation_at:
            return "probation"
        return "suspect"

    def known(self) -> list[str]:
        """Device ids with at least one recorded outcome, sorted."""
        return sorted(self._scores)

    def aggregate(self, device_ids, now: float) -> float:
        """Summed reputation of a group — the lease-grant eligibility
        signal: emergency powers require *aggregate* earned trust, not
        just a headcount."""
        return sum(self.score(device_id, now) for device_id in device_ids)

    # -- writes ------------------------------------------------------------------

    def record(self, device_id: str, outcome: str, now: float,
               scale: float = 1.0) -> float:
        """Fold one audit ``outcome`` for ``device_id`` in; returns the
        new score.  ``scale`` multiplies the outcome's configured delta
        (e.g. severity-weighted alert involvement)."""
        if outcome not in self.weights:
            raise ConfigurationError(
                f"unknown outcome {outcome!r}; expected one of "
                f"{sorted(self.weights)}")
        current = self.score(device_id, now)
        updated = min(1.0, max(0.0, current + self.weights[outcome] * scale))
        self._scores[device_id] = (updated, now)
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        if self._journal is not None:
            self._journal.append({
                "kind": "outcome", "device": device_id, "outcome": outcome,
                "time": now, "score": updated,
            })
        if self.trust_ledger is not None:
            agreement = 1.0 if self.weights[outcome] >= 0 else 0.0
            self.trust_ledger.observe(device_id, agreement)
            self.provenance.append(ProvenanceRecord(
                source=device_id, kind=f"device.{outcome}", value=updated,
                time=now, chain=("reputation",),
            ))
        if self.on_update is not None:
            self.on_update(device_id, outcome, updated, now)
        return updated

    # -- fleet views -------------------------------------------------------------

    def mean(self, now: float) -> Optional[float]:
        if not self._scores:
            return None
        return sum(self.score(d, now) for d in self._scores) / len(self._scores)

    def minimum(self, now: float) -> Optional[float]:
        if not self._scores:
            return None
        return min(self.score(d, now) for d in self._scores)

    def in_band(self, band: str, now: float) -> list[str]:
        if band not in BANDS:
            raise ConfigurationError(f"unknown band {band!r}")
        return [d for d in self.known() if self.band(d, now) == band]

    def snapshot(self, now: float) -> dict:
        return {device_id: self.score(device_id, now)
                for device_id in self.known()}

    # -- durability (E18) --------------------------------------------------------

    def crash_volatile(self) -> dict:
        """Crash semantics: scores live in process memory — without the
        journal a restart resets every device to the baseline, and
        recovered ballots would tally with the wrong weights."""
        lost = len(self._scores)
        self._scores = {}
        self.outcomes = {}
        self.provenance = []
        return {"lost": lost, "kind": "reputation",
                "journaled": self._journal is not None}

    def recover(self) -> dict:
        """Replay outcome records: the last journaled score per device is
        exact (updates are journaled post-fold), so recovered weights are
        bit-identical to the pre-crash ledger's."""
        replayed = 0
        if self._journal is not None:
            for record in self._journal.replay():
                payload = record.payload
                if payload.get("kind") != "outcome":
                    continue
                self._scores[payload["device"]] = (
                    float(payload["score"]), float(payload["time"]))
                outcome = payload.get("outcome", "validated")
                self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
                replayed += 1
        return {"replayed": replayed}


class ReputationAdjuster:
    """Escalates guard strictness for low-reputation devices (E22).

    Wired like E20's :class:`~repro.telemetry.health.adaptive.AdaptiveQuarantine`
    — a closed loop from an observed signal to a safeguard knob — but
    *per device* and through the
    :class:`~repro.telemetry.health.knobs.KnobArbiter`, so it composes
    deterministically with fleet-wide adjusters tuning the same knobs:
    this adjuster's proposals carry :attr:`PRIORITY` 20 and outrank the
    storm-relaxation's 10, because a specific distrust signal must beat
    a general "the network is bad" relaxation (fail closed).

    Rules bind a knob-name template (``{device}`` substituted) to a
    per-band value function of the knob's base value::

        adjuster.add_rule(quarantine_knob, suspect=lambda base: max(1, base - 2))

    Each tick the adjuster walks the ledger's known devices in sorted
    order and proposes (or withdraws) accordingly — evaluation order is
    deterministic, and the arbiter span-attributes every effective
    change to its winning proposer.
    """

    #: Outranks AdaptiveQuarantine's storm relaxation (priority 10).
    PRIORITY = 20

    def __init__(self, sim, ledger: ReputationLedger, arbiter, monitor=None,
                 interval: float = 1.0, name: str = "reputation"):
        """Ticks on ``monitor`` (a
        :class:`~repro.telemetry.health.monitor.HealthMonitor`) when
        given — one sampling cadence for the whole health plane — or on
        its own ``sim.every(interval)`` task otherwise."""
        self.sim = sim
        self.ledger = ledger
        self.arbiter = arbiter
        self.name = name
        self._rules: list[tuple] = []
        self._proposed: dict[tuple, object] = {}
        if monitor is not None:
            monitor.subscribe(self._on_tick)
        else:
            sim.every(interval, self._tick, label="reputation:adjust")

    def add_rule(self, knob_for: Callable[[str], str],
                 probation: Optional[Callable] = None,
                 suspect: Optional[Callable] = None) -> None:
        """``knob_for(device_id)`` names the knob; ``probation`` /
        ``suspect`` map the knob's base value to the value proposed while
        the device sits in that band (``None`` = no proposal, i.e. the
        band inherits whatever lower-priority adjusters decide)."""
        self._rules.append((knob_for, {"probation": probation,
                                       "suspect": suspect}))

    def _on_tick(self, now: float, _readings: dict) -> None:
        self._tick(now)

    def _tick(self, now: Optional[float] = None) -> None:
        now = self.sim.now if now is None else now
        for device_id in self.ledger.known():
            band = self.ledger.band(device_id, now)
            for knob_for, by_band in self._rules:
                knob = knob_for(device_id)
                if not self.arbiter.has(knob):
                    continue
                value_fn = by_band.get(band)
                key = (knob,)
                if value_fn is None:
                    if key in self._proposed:
                        del self._proposed[key]
                        self.arbiter.withdraw(knob, self.name)
                    continue
                value = value_fn(self.arbiter.base(knob))
                if self._proposed.get(key) == value:
                    continue
                self._proposed[key] = value
                self.arbiter.propose(knob, self.name, self.PRIORITY, value,
                                     cause=f"band:{band}")
