"""The paper's Skynet-prevention mechanisms (sec VI A-E and sec VII).

Each module implements one mechanism as a :class:`~repro.core.engine.Safeguard`
(or fleet-level service) wired into device engines:

* ``preaction`` — VI-A pre-action harm checks (+ obligations for indirect harm)
* ``statespace`` — VI-B never-enter-a-bad-state guard with preference
  ontology, risk estimation, and break-glass escalation
* ``deactivation`` — VI-C tamper-proof watchdog that kills devices in bad states
* ``collection`` — VI-D checks on collection formation and collaborative
  aggregate-state assessment
* ``governance`` — VI-E three mutually-checking collectives (2-of-3)
* ``utility`` — VII partial-derivative (pleasure/pain) utility functions
* ``tamper`` — the tamper-proofing primitive the paper assumes throughout
* ``gateway`` — E21 replay-proof actuation gateway (verify-then-execute
  in front of device actuators, with budgets/cooldowns/global freeze)
"""

from repro.safeguards.batch import (
    BatchPolicyEvaluator,
    BatchProgram,
    compile_condition,
)
from repro.safeguards.crossvalidation import CrossValidationGuard
from repro.safeguards.collection import (
    AggregateConstraint,
    CollectionGuard,
    CollectiveStateAssessment,
    HumanCheckModel,
    JoinClient,
    JoinDesk,
    OfflineAnalyzer,
)
from repro.safeguards.deactivation import OverseerLink, Watchdog, WatchdogReport
from repro.safeguards.gateway import ActuationGateway, AuthzDecision
from repro.safeguards.lease import EmergencyLease, LeaseAuthority
from repro.safeguards.governance import (
    Ballot,
    BallotBox,
    BallotMember,
    Collective,
    GovernanceGuard,
    GovernanceSystem,
    MetaPolicy,
    policy_digest,
)
from repro.safeguards.preaction import CallableHarmModel, HarmModel, PreActionCheck
from repro.safeguards.statespace import StateSpaceGuard
from repro.safeguards.tamper import SealedChain, attest_device, seal_guard_chain
from repro.safeguards.utility import PartialDerivativeUtility, UtilityGuard

__all__ = [
    "ActuationGateway",
    "BatchPolicyEvaluator",
    "BatchProgram",
    "AggregateConstraint",
    "AuthzDecision",
    "Ballot",
    "BallotBox",
    "BallotMember",
    "CallableHarmModel",
    "Collective",
    "CollectionGuard",
    "CollectiveStateAssessment",
    "CrossValidationGuard",
    "EmergencyLease",
    "LeaseAuthority",
    "GovernanceGuard",
    "GovernanceSystem",
    "HarmModel",
    "HumanCheckModel",
    "JoinClient",
    "JoinDesk",
    "MetaPolicy",
    "OverseerLink",
    "OfflineAnalyzer",
    "PartialDerivativeUtility",
    "PreActionCheck",
    "SealedChain",
    "StateSpaceGuard",
    "UtilityGuard",
    "Watchdog",
    "WatchdogReport",
    "attest_device",
    "compile_condition",
    "policy_digest",
    "seal_guard_chain",
]
